// robusthd — command-line front end for the library.
//
// Subcommands:
//   train   --dataset NAME --out FILE [--dimension D] [--levels L]
//           [--train N] [--test N] [--precision B] [--seed S]
//       Train on a synthetic paper benchmark and save the model.
//       Alternatively --csv FILE [--label-col I] [--header 1]
//       [--split 0.8] trains on a real CSV dataset (numeric features,
//       label column anywhere; see data/loader.hpp).
//   eval    --model FILE --dataset NAME [--test N] [--seed S]
//       Load a model and report accuracy.
//   attack  --model FILE --dataset NAME --rate R
//           [--mode random|targeted|clustered] [--out FILE]
//       Inject bit flips into a stored model, report the damage, and
//       optionally save the attacked model.
//   recover --model FILE --dataset NAME [--epochs E] [--out FILE]
//       Run the RobustHD self-recovery over unlabeled queries.
//   info    --model FILE
//       Print a stored model's shape and storage format (RHD1/RHD2).
//   integrity --model FILE [--trials N] [--rate R] [--seed S]
//       Corrupt copies of the stored blob (single-bit sweep plus the
//       Table-3 flip rates, or just --rate) and report how often the
//       loader detects the damage. RHD2 blobs must detect every
//       corrupted copy; exits nonzero if one slips through.
//   serve-bench --dataset NAME [--model FILE] [--workers N] [--rounds R]
//           [--rate R --mode random|targeted|clustered]
//           [--batch B] [--dimension D]
//       Drive the concurrent serving runtime (robusthd::serve) over the
//       test queries, optionally injecting faults so the background
//       scrubber repairs the model while it serves; prints a throughput/
//       latency table (see also bench/serve_throughput.cpp).
//   adversary --dataset NAME [--model FILE] [--budget N] [--queries N]
//           [--epsilon E] [--waves W] [--defend 0|1] [--workers N]
//           [--floor A] [--dimension D]
//       Run the input-space attack suite (robusthd::adversary) against a
//       live server: greedy bit-flip attacks on encoded queries at
//       --budget flips, genetic feature-space attacks through the
//       encoder inside an L-inf --epsilon ball, then a PoisonCampaign of
//       --waves waves of high-confidence poison queries against the
//       scrubber's trust ring. --defend 1 (default) arms the enforcing
//       TrustGate; --defend 0 runs it in shadow mode to measure the
//       undefended damage. With --floor, exits nonzero when the final
//       canary accuracy is below it (see bench/adversarial_attacks.cpp
//       and docs/resilience.md).
//   chaos   --dataset NAME [--model FILE] [--workers N] [--seconds S]
//           [--rate R] [--mode random|targeted|clustered] [--steps N]
//           [--floor A] [--dimension D]
//       Live-fire soak: serve traffic while an in-process ChaosAgent
//       attacks the published model under a rate budget, the plane
//       health sentinel quarantines damaged chunks, and the scrubber
//       repairs from trusted traffic (docs/resilience.md). Prints the
//       steady-state accuracy and degradation-ladder activity; with
//       --floor, exits nonzero when the final canary accuracy is below
//       it (see also bench/chaos_soak.cpp).
//   fleet-serve --dataset NAME [--model FILE] [--shards N] [--workers N]
//           [--port P] [--seconds S] [--dimension D]
//       Stand up a sharded fleet (robusthd::fleet) behind its TCP front
//       end on loopback, run a wire self-test against the held-out
//       queries, then serve for --seconds (0 = until killed) and print
//       the per-shard health/repair counters (docs/fleet.md).
//   fleet-bench [--shards N] [--clients N] [--seconds S] [--dimension D]
//           [--rate R] [--gate G] [--net-delay-ms MS] [--net-drop R]
//           [--net-reset R] [--partition I]
//       Closed-loop loopback throughput: measures 1 shard vs --shards
//       shards under --clients client threads per shard, prints QPS /
//       latency / repair counters and the core-aware weak-scaling
//       efficiency; with --gate, exits nonzero below the floor (the
//       same measurement as bench/fleet_throughput.cpp). Any --net-*
//       flag routes the traffic through the in-process NetChaos proxy
//       (fleet/netchaos.hpp): --net-delay-ms holds every chunk,
//       --net-drop / --net-reset silently swallow or RST-kill at the
//       given per-chunk probability, and --partition I blackholes
//       shard I at the midpoint of the multi-shard run so the client's
//       failover and retry machinery shows up in the numbers.
//
// Flags are strict: every flag takes exactly one value, and a flag a
// subcommand does not document is rejected (run `robusthd <cmd> --help`).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "robusthd/robusthd.hpp"
#include "robusthd/util/timer.hpp"

using namespace robusthd;

namespace {

/// Everything the driver knows about one subcommand: the one-line
/// summary for the global usage screen, the flag reference for
/// `robusthd <cmd> --help`, and the exact set of flags it accepts.
struct CommandSpec {
  const char* name;
  const char* summary;
  const char* flags_help;
  std::vector<const char*> flags;
};

/// Flags understood by every command that loads a dataset (load_split).
#define ROBUSTHD_SPLIT_FLAGS \
  "dataset", "train", "test", "seed", "csv", "label-col", "header", "split"

const std::vector<CommandSpec>& command_specs() {
  static const std::vector<CommandSpec> specs = {
      {"train", "train on a dataset and save the model",
       "  --dataset NAME | --csv FILE   data source (synthetic benchmark or CSV)\n"
       "  --out FILE                    where to save the model (required)\n"
       "  --dimension D --levels L      encoder shape (default 10000 x 32)\n"
       "  --precision B                 stored bits per counter (default 1)\n"
       "  --train N --test N --seed S   synthetic split caps\n"
       "  --label-col I --header 1 --split 0.8   CSV options\n",
       {"out", "dimension", "levels", "precision", ROBUSTHD_SPLIT_FLAGS}},
      {"eval", "load a model and report accuracy",
       "  --model FILE                  stored model (required)\n"
       "  --dataset NAME | --csv FILE   evaluation data\n"
       "  --test N --seed S             synthetic split caps\n"
       "  --label-col I --header 1 --split 0.8   CSV options\n",
       {"model", ROBUSTHD_SPLIT_FLAGS}},
      {"attack", "inject bit flips into a stored model",
       "  --model FILE                  stored model (required)\n"
       "  --dataset NAME | --csv FILE   evaluation data\n"
       "  --rate R                      fraction of stored bits (default 0.10)\n"
       "  --mode random|targeted|clustered\n"
       "  --out FILE                    save the attacked model\n",
       {"model", "rate", "mode", "out", ROBUSTHD_SPLIT_FLAGS}},
      {"recover", "run self-recovery over unlabeled queries",
       "  --model FILE                  stored (attacked) model (required)\n"
       "  --dataset NAME | --csv FILE   query source\n"
       "  --epochs E                    replay epochs (default 10)\n"
       "  --out FILE                    save the recovered model\n",
       {"model", "epochs", "out", ROBUSTHD_SPLIT_FLAGS}},
      {"serve-bench", "drive the concurrent serving runtime",
       "  --dataset NAME | --csv FILE   traffic source\n"
       "  --model FILE                  serve a stored model (else train one)\n"
       "  --workers N --batch B         server shape (default 4 x 16)\n"
       "  --rounds R                    passes over the test queries\n"
       "  --rate R --mode M             optional fault injection\n"
       "  --dimension D                 trained-model dimension (default 4000)\n"
       "  --layout rowmajor|arena       plane-memory scoring layout (default arena)\n"
       "  --persist-dir DIR             journal publications into a WAL dir\n"
       "                                (recovers from it when state exists)\n",
       {"model", "workers", "rounds", "rate", "mode", "batch", "dimension",
        "layout", "persist-dir", ROBUSTHD_SPLIT_FLAGS}},
      {"chaos", "live-fire soak with in-service chaos + recovery",
       "  --dataset NAME | --csv FILE   traffic source\n"
       "  --model FILE                  serve a stored model (else train one)\n"
       "  --workers N --seconds S       soak shape (default 4 x 5s)\n"
       "  --rate R --mode M --steps N   chaos campaign budget\n"
       "  --floor A                     exit nonzero below this canary accuracy\n"
       "  --dimension D                 trained-model dimension (default 4000)\n",
       {"model", "workers", "seconds", "rate", "mode", "steps", "floor",
        "dimension", ROBUSTHD_SPLIT_FLAGS}},
      {"adversary", "input-space attacks + poison campaign vs a live server",
       "  --dataset NAME | --csv FILE   data source\n"
       "  --model FILE                  attack a stored model (else train one)\n"
       "  --budget N                    bit-flip Hamming budget (default 128)\n"
       "  --queries N                   bit-flip sample size (default 40)\n"
       "  --epsilon E                   genetic L-inf ball (default 0.10)\n"
       "  --waves W                     poison campaign waves (default 12)\n"
       "  --defend 0|1                  1 = enforcing trust gate (default),\n"
       "                                0 = shadow mode (measure the damage)\n"
       "  --workers N                   server worker threads (default 4)\n"
       "  --floor A                     exit nonzero below this canary accuracy\n"
       "  --dimension D                 trained-model dimension (default 4000)\n",
       {"model", "budget", "queries", "epsilon", "waves", "defend", "workers",
        "floor", "dimension", ROBUSTHD_SPLIT_FLAGS}},
      {"fleet-serve", "serve a sharded fleet over TCP",
       "  --dataset NAME | --csv FILE   model/training source\n"
       "  --model FILE                  serve a stored model (else train one)\n"
       "  --shards N --workers N        fleet shape (default 2 shards x 1)\n"
       "  --port P                      first port; shard i on P+i (default\n"
       "                                ephemeral — the actual ports are printed)\n"
       "  --seconds S                   serve duration, 0 = forever (default 5)\n"
       "  --dimension D                 trained-model dimension (default 4000)\n"
       "  --persist-dir DIR             per-shard WAL dirs under DIR/shard-<i>\n",
       {"model", "shards", "workers", "port", "seconds", "dimension",
        "persist-dir", ROBUSTHD_SPLIT_FLAGS}},
      {"fleet-bench", "closed-loop fleet throughput over loopback",
       "  --shards N                    shard count to compare vs 1 (default 2)\n"
       "  --clients N                   client threads per shard (default 2)\n"
       "  --seconds S                   measured seconds per point (default 2)\n"
       "  --dimension D                 hypervector dimension (default 2048)\n"
       "  --rate R                      mid-run bit-flip rate (default 0.05)\n"
       "  --gate G                      efficiency floor, exit nonzero below\n"
       "  --seed S                      world seed\n"
       "  --layout rowmajor|arena       plane-memory scoring layout (default arena)\n"
       "  --net-delay-ms MS             NetChaos: hold every chunk MS ms\n"
       "  --net-drop R                  NetChaos: drop chunks at rate R [0,1]\n"
       "  --net-reset R                 NetChaos: inject RSTs at rate R [0,1]\n"
       "  --partition I                 NetChaos: blackhole shard I mid-run\n",
       {"shards", "clients", "seconds", "dimension", "rate", "gate", "seed",
        "layout", "net-delay-ms", "net-drop", "net-reset", "partition"}},
      {"info", "print a stored model's shape and format",
       "  --model FILE                  stored model (required)\n",
       {"model"}},
      {"wal-recover", "replay a persist directory (kill-9 recovery)",
       "  --dir DIR                     persist directory (required)\n"
       "  --out FILE                    save the recovered model as RHD2\n",
       {"dir", "out"}},
      {"integrity", "corrupt stored blobs, verify detection",
       "  --model FILE                  stored model (required)\n"
       "  --trials N                    corrupted copies per cell (default 200)\n"
       "  --rate R                      test only this flip rate\n"
       "  --seed S                      corruption seed\n",
       {"model", "trials", "rate", "seed"}},
  };
  return specs;
}

#undef ROBUSTHD_SPLIT_FLAGS

const CommandSpec* find_spec(const std::string& name) {
  for (const auto& spec : command_specs()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

void usage_for(const CommandSpec& spec) {
  std::fprintf(stderr, "usage: robusthd %s [--flag value]...\n%s\n%s",
               spec.name, spec.summary, spec.flags_help);
}

/// Strict --flag VALUE parser: every flag takes exactly one value, and
/// only the subcommand's documented flags are accepted.
class Args {
 public:
  Args(int argc, char** argv, const CommandSpec& spec) {
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        usage_for(spec);
        std::exit(2);
      }
      const std::string key = argv[i] + 2;
      if (key == "help") {
        usage_for(spec);
        std::exit(0);
      }
      if (std::find_if(spec.flags.begin(), spec.flags.end(),
                       [&](const char* f) { return key == f; }) ==
          spec.flags.end()) {
        std::fprintf(stderr, "unknown flag --%s for %s\n", key.c_str(),
                     spec.name);
        usage_for(spec);
        std::exit(2);
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", key.c_str());
        usage_for(spec);
        std::exit(2);
      }
      values_[key] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

  long number(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Applies --layout rowmajor|arena (default arena). Strict: any other
/// value is a usage error, so a typo can't silently bench the wrong path.
void apply_layout_flag(const Args& args) {
  const auto layout = args.get("layout", "arena");
  if (layout == "arena") {
    model::set_scoring_layout(model::ScoringLayout::kArena);
  } else if (layout == "rowmajor") {
    model::set_scoring_layout(model::ScoringLayout::kRowMajor);
  } else {
    std::fprintf(stderr, "invalid --layout %s (expected rowmajor|arena)\n",
                 layout.c_str());
    std::exit(2);
  }
}

data::Split load_split(const Args& args) {
  const auto csv = args.get("csv", "");
  if (!csv.empty()) {
    data::CsvOptions options;
    options.label_column = static_cast<int>(args.number("label-col", -1));
    options.has_header = args.number("header", 0) != 0;
    const auto dataset = data::load_csv(csv, options);
    auto split = data::train_test_split(
        dataset, args.real("split", 0.8),
        static_cast<std::uint64_t>(args.number("seed", 0x5eed)));
    data::normalize_minmax(split);
    return split;
  }
  const auto name = args.require("dataset");
  const auto spec = data::scaled(
      data::dataset_by_name(name),
      static_cast<std::size_t>(args.number("train", 2000)),
      static_cast<std::size_t>(args.number("test", 600)));
  return data::make_synthetic(
      spec, static_cast<std::uint64_t>(args.number("seed", 0x5eed)));
}

fault::AttackMode parse_mode(const std::string& mode) {
  if (mode == "random") return fault::AttackMode::kRandom;
  if (mode == "targeted") return fault::AttackMode::kTargeted;
  if (mode == "clustered") return fault::AttackMode::kClustered;
  std::fprintf(stderr, "unknown attack mode: %s\n", mode.c_str());
  std::exit(2);
}

int cmd_train(const Args& args) {
  const auto split = load_split(args);
  core::HdcClassifierConfig config;
  config.encoder.dimension =
      static_cast<std::size_t>(args.number("dimension", 10000));
  config.encoder.levels = static_cast<std::size_t>(args.number("levels", 32));
  config.model.precision_bits =
      static_cast<unsigned>(args.number("precision", 1));

  util::Timer timer;
  auto clf = core::HdcClassifier::train(split.train, config);
  const double train_acc = clf.evaluate(split.train);
  const double test_acc = clf.evaluate(split.test);
  std::printf("trained in %.1fs: train %.2f%%, test %.2f%%\n",
              timer.seconds(), train_acc * 100.0, test_acc * 100.0);

  const auto out = args.require("out");
  core::save_model(clf, out);
  std::printf("saved %s (%zu classes x D=%zu, %u-bit)\n", out.c_str(),
              clf.model().num_classes(), clf.model().dimension(),
              clf.model().precision_bits());
  return 0;
}

int cmd_eval(const Args& args) {
  auto clf = core::load_model(args.require("model"));
  const auto split = load_split(args);
  std::printf("test accuracy %.2f%%\n", clf.evaluate(split.test) * 100.0);
  return 0;
}

int cmd_attack(const Args& args) {
  auto clf = core::load_model(args.require("model"));
  const auto split = load_split(args);
  const double clean = clf.evaluate(split.test);

  util::Xoshiro256 rng(static_cast<std::uint64_t>(args.number("seed", 1)));
  auto regions = clf.memory_regions();
  const auto report = fault::BitFlipInjector::inject(
      regions, args.real("rate", 0.10),
      parse_mode(args.get("mode", "random")), rng);
  const double attacked = clf.evaluate(split.test);
  std::printf("flipped %zu/%zu bits (%.2f%%): accuracy %.2f%% -> %.2f%% "
              "(quality loss %.2f%%)\n",
              report.flipped, report.total_bits, report.rate() * 100.0,
              clean * 100.0, attacked * 100.0, (clean - attacked) * 100.0);

  const auto out = args.get("out", "");
  if (!out.empty()) {
    core::save_model(clf, out);
    std::printf("saved attacked model to %s\n", out.c_str());
  }
  return 0;
}

int cmd_recover(const Args& args) {
  auto clf = core::load_model(args.require("model"));
  const auto split = load_split(args);
  const double before = clf.evaluate(split.test);

  clf.enable_recovery({});
  const auto epochs = args.number("epochs", 10);
  for (long e = 0; e < epochs; ++e) {
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      clf.predict_and_recover(split.test.sample(i));
    }
  }
  const double after = clf.evaluate(split.test);
  std::printf("recovery over %ld epochs (%zu updates, %zu bits): accuracy "
              "%.2f%% -> %.2f%%\n",
              epochs, clf.recovery_engine()->total_updates(),
              clf.recovery_engine()->total_substituted_bits(),
              before * 100.0, after * 100.0);

  const auto out = args.get("out", "");
  if (!out.empty()) {
    core::save_model(clf, out);
    std::printf("saved recovered model to %s\n", out.c_str());
  }
  return 0;
}

int cmd_serve_bench(const Args& args) {
  apply_layout_flag(args);
  const auto split = load_split(args);

  // Either load a stored model (its encoder re-encodes the queries) or
  // train a fresh one at a serving-friendly dimension.
  model::HdcModel model;
  std::vector<hv::BinVec> queries;
  const auto model_file = args.get("model", "");
  if (!model_file.empty()) {
    auto clf = core::load_model(model_file);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  } else {
    core::HdcClassifierConfig config;
    config.encoder.dimension =
        static_cast<std::size_t>(args.number("dimension", 4000));
    auto clf = core::HdcClassifier::train(split.train, config);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  }

  serve::ServerConfig config;
  config.worker_threads = static_cast<std::size_t>(args.number("workers", 4));
  config.max_batch = static_cast<std::size_t>(args.number("batch", 16));
  if (model.precision_bits() != 1) {
    std::printf("note: %u-bit model, serving without the recovery "
                "scrubber (substitution is binary-only)\n",
                model.precision_bits());
    config.enable_recovery = false;
  }
  const auto persist_dir = args.get("persist-dir", "");
  config.persist.dir = persist_dir;
  std::unique_ptr<serve::Server> server_holder;
  if (!persist_dir.empty() && persist::has_state(persist_dir)) {
    // A previous run left durable state: resume it (the trained/loaded
    // model above only seeds a first run).
    server_holder = serve::Server::recover(persist_dir, config);
    const auto& rs = server_holder->replay_stats();
    std::printf("recovered from %s: %zu segments, %zu records, %zu epochs"
                "%s, state crc %s\n",
                persist_dir.c_str(), static_cast<std::size_t>(rs.segments),
                static_cast<std::size_t>(rs.replay_records),
                static_cast<std::size_t>(rs.epochs_applied),
                rs.torn_tail ? ", torn tail discarded" : "",
                rs.state_crc_ok ? "OK" : "MISMATCH");
  } else {
    server_holder =
        std::make_unique<serve::Server>(std::move(model), config);
  }
  serve::Server& server = *server_holder;

  const double rate = args.real("rate", 0.0);
  if (rate > 0.0) {
    server.inject_faults(rate, parse_mode(args.get("mode", "clustered")),
                         static_cast<std::uint64_t>(args.number("seed", 1)));
    server.drain();
  }

  const auto rounds = args.number("rounds", 10);
  util::Timer timer;
  std::size_t correct = 0;
  for (long r = 0; r < rounds; ++r) {
    const auto responses = server.predict_all(queries);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].predicted == split.test.labels[i]) ++correct;
    }
  }
  const double elapsed = timer.seconds();
  server.drain();
  if (!persist_dir.empty()) server.persist_barrier();
  const auto stats = server.stats();
  server.shutdown();

  const auto answered = static_cast<double>(stats.completed);
  std::printf("served %zu queries with %zu workers in %.2fs: %.0f qps\n",
              static_cast<std::size_t>(stats.completed),
              server.config().worker_threads, elapsed, answered / elapsed);
  std::printf("latency p50 %.3f ms, p99 %.3f ms; mean batch %.2f\n",
              stats.end_to_end.p50_ns / 1e6, stats.end_to_end.p99_ns / 1e6,
              stats.mean_batch);
  std::printf("accuracy %.2f%%; trusted %zu, scrub processed %zu, "
              "repairs %zu (%zu bits), snapshots published %zu\n",
              100.0 * static_cast<double>(correct) / answered,
              static_cast<std::size_t>(stats.trusted),
              static_cast<std::size_t>(stats.scrub_processed),
              static_cast<std::size_t>(stats.scrub_repairs),
              static_cast<std::size_t>(stats.scrub_substituted_bits),
              static_cast<std::size_t>(stats.snapshots_published));
  std::printf("trust ring drops %zu, scrub resyncs %zu, reloads %zu, "
              "integrity failures %zu\n",
              static_cast<std::size_t>(stats.trust_drops),
              static_cast<std::size_t>(stats.scrub_resyncs),
              static_cast<std::size_t>(stats.reloads),
              static_cast<std::size_t>(stats.integrity_failures));
  std::printf("resilience: canary runs %zu, quarantined chunks %zu, "
              "degraded %zu, abstained %zu, breaker trips %zu, "
              "reload retries %zu\n",
              static_cast<std::size_t>(stats.canary_runs),
              stats.quarantined_chunks,
              static_cast<std::size_t>(stats.degraded_responses),
              static_cast<std::size_t>(stats.abstained_responses),
              static_cast<std::size_t>(stats.breaker_trips),
              static_cast<std::size_t>(stats.reload_retries));
  if (rate > 0.0) {
    std::printf("faults injected: %zu\n",
                static_cast<std::size_t>(stats.faults_injected));
  }
  if (!persist_dir.empty()) {
    std::printf("durability: epochs closed %zu, wal bytes %zu, "
                "rotations %zu, compactions %zu, io errors %zu\n",
                static_cast<std::size_t>(stats.epochs_closed),
                static_cast<std::size_t>(stats.wal_bytes),
                static_cast<std::size_t>(stats.wal_rotations),
                static_cast<std::size_t>(stats.wal_compactions),
                static_cast<std::size_t>(stats.persist_io_errors));
  }
  return 0;
}

int cmd_chaos(const Args& args) {
  const auto split = load_split(args);

  model::HdcModel model;
  std::vector<hv::BinVec> queries;
  const auto model_file = args.get("model", "");
  if (!model_file.empty()) {
    auto clf = core::load_model(model_file);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  } else {
    core::HdcClassifierConfig config;
    config.encoder.dimension =
        static_cast<std::size_t>(args.number("dimension", 4000));
    auto clf = core::HdcClassifier::train(split.train, config);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  }
  if (model.precision_bits() != 1) {
    std::fprintf(stderr,
                 "chaos requires a binary (1-bit) model: the recovery "
                 "ladder is substitution-based\n");
    return 2;
  }

  // Hold out canaries for the sentinel; serve the rest as traffic.
  const std::size_t canary_count =
      std::min<std::size_t>(150, queries.size() / 3);
  serve::ServerConfig config;
  config.worker_threads = static_cast<std::size_t>(args.number("workers", 4));
  config.max_batch = 16;
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(10);
  config.sentinel.chunks = config.scrubber.recovery.chunks;
  config.canaries.assign(queries.begin(), queries.begin() + canary_count);
  config.canary_labels.assign(split.test.labels.begin(),
                              split.test.labels.begin() + canary_count);
  const double seconds = args.real("seconds", 5.0);
  config.chaos.enabled = true;
  config.chaos.rate = args.real("rate", 0.06);
  config.chaos.mode = parse_mode(args.get("mode", "random"));
  config.chaos.steps_to_full =
      static_cast<std::size_t>(args.number("steps", 250));
  config.chaos.period = std::chrono::microseconds(static_cast<long>(
      seconds * 0.6 * 1e6 /
      static_cast<double>(config.chaos.steps_to_full)));

  std::vector<hv::BinVec> traffic(queries.begin() + canary_count,
                                  queries.end());
  std::vector<int> traffic_labels(split.test.labels.begin() + canary_count,
                                  split.test.labels.end());

  serve::Server server(std::move(model), config);
  util::Timer timer;
  std::size_t scored = 0, correct = 0, shed = 0;
  while (timer.seconds() < seconds) {
    const auto responses = server.predict_all(traffic);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].abstained) {
        ++shed;
        continue;
      }
      ++scored;
      if (responses[i].predicted == traffic_labels[i]) ++correct;
    }
  }
  const double elapsed = timer.seconds();
  server.drain();
  const auto stats = server.stats();
  server.shutdown();

  std::printf("soak %.1fs at attack rate %.3f (%s): %.0f qps\n", elapsed,
              config.chaos.rate, args.get("mode", "random").c_str(),
              static_cast<double>(scored + shed) / elapsed);
  std::printf("traffic accuracy %.2f%% over %zu scored (%zu abstained)\n",
              scored == 0 ? 0.0
                          : 100.0 * static_cast<double>(correct) /
                                static_cast<double>(scored),
              scored, shed);
  std::printf("chaos: %zu ticks, %zu flips scheduled\n",
              static_cast<std::size_t>(stats.chaos_ticks),
              static_cast<std::size_t>(stats.chaos_flips));
  std::printf("sentinel: %zu canary runs, effective canary accuracy "
              "%.2f%%, %zu chunks quarantined, %zu priority marks\n",
              static_cast<std::size_t>(stats.canary_runs),
              100.0 * stats.canary_accuracy, stats.quarantined_chunks,
              static_cast<std::size_t>(stats.priority_marks));
  std::printf("ladder: %zu degraded, %zu abstained, %zu breaker trips, "
              "%zu reload retries; scrub repairs %zu (%zu bits)\n",
              static_cast<std::size_t>(stats.degraded_responses),
              static_cast<std::size_t>(stats.abstained_responses),
              static_cast<std::size_t>(stats.breaker_trips),
              static_cast<std::size_t>(stats.reload_retries),
              static_cast<std::size_t>(stats.scrub_repairs),
              static_cast<std::size_t>(stats.scrub_substituted_bits));

  const double floor = args.real("floor", 0.0);
  if (floor > 0.0 && stats.canary_accuracy < floor) {
    std::printf("FAIL: canary accuracy %.4f below floor %.4f\n",
                stats.canary_accuracy, floor);
    return 1;
  }
  return 0;
}

int cmd_adversary(const Args& args) {
  const auto split = load_split(args);

  auto clf = [&] {
    const auto model_file = args.get("model", "");
    if (!model_file.empty()) return core::load_model(model_file);
    core::HdcClassifierConfig config;
    config.encoder.dimension =
        static_cast<std::size_t>(args.number("dimension", 4000));
    return core::HdcClassifier::train(split.train, config);
  }();
  const auto& model = clf.model();
  const auto& encoder = clf.encoder();
  const auto queries = encoder.encode_all(split.test);
  if (model.precision_bits() != 1) {
    std::fprintf(stderr,
                 "adversary requires a binary (1-bit) model: the poison "
                 "campaign forges substitution evidence\n");
    return 2;
  }

  // Bit-flip attack on encoded queries.
  const auto budget = static_cast<std::size_t>(args.number("budget", 128));
  const std::size_t sample_count = std::min<std::size_t>(
      static_cast<std::size_t>(args.number("queries", 40)), queries.size());
  const std::vector<hv::BinVec> sample(queries.begin(),
                                       queries.begin() + sample_count);
  const auto rates = adversary::bit_flip_success(model, sample, budget, 0.88);
  std::printf("bit-flip @ %zu flips over %zu queries: %.1f%% flipped, "
              "%.1f%% still trusted, mean %.1f flips\n",
              budget, sample_count, 100.0 * rates.any, 100.0 * rates.confident,
              rates.mean_flips);

  // Genetic feature-space attack through the encoder.
  const double epsilon = args.real("epsilon", 0.10);
  const std::size_t genetic_count =
      std::min<std::size_t>(8, split.test.features.rows());
  std::size_t genetic_wins = 0;
  for (std::size_t i = 0; i < genetic_count; ++i) {
    adversary::GeneticConfig config;
    config.epsilon = epsilon;
    config.seed = 0xadf00d + i;
    const auto result = adversary::genetic_feature_attack(
        model, encoder, split.test.features.row(i), config);
    if (result.success) ++genetic_wins;
  }
  std::printf("genetic @ epsilon %.2f over %zu queries: %.1f%% flipped\n",
              epsilon, genetic_count,
              100.0 * static_cast<double>(genetic_wins) /
                  static_cast<double>(genetic_count));

  // Poison campaign against a live server.
  const bool defend = args.number("defend", 1) != 0;
  const std::size_t canary_count =
      std::min<std::size_t>(150, queries.size() / 3);
  serve::ServerConfig config;
  config.worker_threads = static_cast<std::size_t>(args.number("workers", 4));
  config.max_batch = 16;
  config.scrubber.gate.enabled = true;
  config.scrubber.gate.enforce = defend;
  config.canaries.assign(queries.begin(), queries.begin() + canary_count);
  config.canary_labels.assign(split.test.labels.begin(),
                              split.test.labels.begin() + canary_count);
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(10);
  config.sentinel.chunks = config.scrubber.recovery.chunks;

  std::vector<hv::BinVec> traffic(queries.begin() + canary_count,
                                  queries.end());
  adversary::PoisonConfig poison;
  poison.chunks = config.scrubber.recovery.chunks;
  poison.waves = static_cast<std::size_t>(args.number("waves", 12));

  const model::HdcModel blessed = model;
  serve::Server server(model, config);
  std::ignore = server.predict_all(traffic);  // natural traffic warms the
  server.drain();                             // engine's per-class gates
  server.reset_stats();

  adversary::PoisonCampaign campaign(blessed, poison);
  const auto report = campaign.run(server);
  server.drain();
  const auto stats = server.stats();
  const auto wrong =
      adversary::PoisonCampaign::wrong_bits(blessed, *server.current_model());
  server.shutdown();

  std::printf("poison campaign (%s): %zu sent, %zu answered, %zu trusted\n",
              defend ? "defended" : "shadow",
              static_cast<std::size_t>(report.sent),
              static_cast<std::size_t>(report.answered),
              static_cast<std::size_t>(report.trusted));
  std::printf("gate: %zu poisoned offers flagged, %zu rejected; "
              "%zu suspect substitutions, %zu wrong bits vs blessed\n",
              static_cast<std::size_t>(stats.poisoned_offers),
              static_cast<std::size_t>(stats.gate_rejects),
              static_cast<std::size_t>(stats.suspect_substitutions),
              static_cast<std::size_t>(wrong));
  std::printf("sentinel: %zu canary runs, effective canary accuracy %.2f%%, "
              "%zu chunks quarantined\n",
              static_cast<std::size_t>(stats.canary_runs),
              100.0 * stats.canary_accuracy, stats.quarantined_chunks);

  const double floor = args.real("floor", 0.0);
  if (floor > 0.0 && stats.canary_accuracy < floor) {
    std::printf("FAIL: canary accuracy %.4f below floor %.4f\n",
                stats.canary_accuracy, floor);
    return 1;
  }
  return 0;
}

std::vector<std::byte> read_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> blob(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("cannot read model file: " + path);
  return blob;
}

int cmd_info(const Args& args) {
  const auto path = args.require("model");
  const auto blob = read_blob(path);
  const auto info = core::inspect(blob);
  std::printf("format RHD%u (%s)\n", info.version,
              info.integrity_checked ? "CRC32C integrity-checked"
                                     : "legacy, no integrity checks");
  auto clf = core::deserialize(blob);
  const auto& model = clf.model();
  std::printf("RobustHD model: %zu classes, D=%zu, %u-bit precision, "
              "%zu features, %zu levels, encoder seed %#zx\n",
              model.num_classes(), model.dimension(),
              model.precision_bits(), clf.encoder().feature_count(),
              clf.encoder_config().levels,
              static_cast<std::size_t>(clf.encoder_config().seed));
  std::size_t bits = 0;
  for (const auto& region : clf.memory_regions()) bits += region.bit_count();
  std::printf("stored model size: %zu bits (%.1f KiB)\n", bits,
              static_cast<double>(bits) / 8192.0);
  return 0;
}

int cmd_integrity(const Args& args) {
  const auto blob = read_blob(args.require("model"));
  const auto info = core::inspect(blob);
  std::printf("format RHD%u, %zu bytes, %s\n", info.version, blob.size(),
              info.integrity_checked ? "integrity-checked"
                                     : "legacy (no CRCs)");

  const auto trials = static_cast<std::size_t>(args.number("trials", 200));
  util::Xoshiro256 rng(static_cast<std::uint64_t>(args.number("seed", 1)));

  bool perfect = true;
  const auto report = [&](const char* label,
                          const core::IntegrityCell& cell) {
    std::printf("  %-12s corrupted %4zu/%zu trials, detected %4zu "
                "(P[detect] = %.4f)\n",
                label, cell.corrupted, cell.trials, cell.detected,
                cell.detection_rate());
    if (cell.corrupted > 0 && cell.detection_rate() < 1.0) perfect = false;
  };

  report("single bit", core::storage_single_bit(blob, trials, rng));
  const double only = args.real("rate", 0.0);
  if (only > 0.0) {
    report("--rate", core::storage_roundtrip(blob, only, trials, rng));
  } else {
    for (const double rate : {0.0001, 0.001, 0.01, 0.05, 0.10}) {
      char label[32];
      std::snprintf(label, sizeof label, "rate %.4f", rate);
      report(label, core::storage_roundtrip(blob, rate, trials, rng));
    }
  }

  if (info.integrity_checked && !perfect) {
    std::printf("FAIL: corrupted blob slipped past the integrity checks\n");
    return 1;
  }
  std::printf(info.integrity_checked
                  ? "PASS: every corrupted copy was detected\n"
                  : "note: legacy format — low detection is expected; "
                    "re-save with `robusthd train` for RHD2\n");
  return 0;
}

int cmd_wal_recover(const Args& args) {
  const auto dir = args.require("dir");
  const auto rec = persist::recover_dir(dir);
  if (!rec) {
    std::fprintf(stderr, "no usable persisted state in %s\n", dir.c_str());
    return 1;
  }
  const auto& rs = rec->stats;
  std::printf("recovered generation %zu: D=%zu, %u classes, %u-bit\n",
              static_cast<std::size_t>(rec->generation),
              rec->base_info.dimension, rec->base_info.num_classes,
              rec->base_info.precision_bits);
  std::printf("replay: %zu segments (%zu bytes), %zu records committed "
              "across %zu epochs, %zu discarded%s\n",
              static_cast<std::size_t>(rs.segments),
              static_cast<std::size_t>(rs.wal_bytes),
              static_cast<std::size_t>(rs.replay_records),
              static_cast<std::size_t>(rs.epochs_applied),
              static_cast<std::size_t>(rs.discarded_records),
              rs.torn_tail ? " (torn tail)" : "");
  std::printf("state crc: %s\n", rs.state_crc_ok ? "OK" : "MISMATCH");
  if (rec->engine_state) {
    std::printf("engine state: %zu updates, %zu substituted bits%s\n",
                static_cast<std::size_t>(rec->engine_state->total_updates),
                static_cast<std::size_t>(
                    rec->engine_state->total_substituted_bits),
                rec->engine_state->frozen ? " (frozen)" : "");
  }
  const auto out = args.get("out", "");
  if (!out.empty()) {
    core::save_model(rec->model, out);
    std::printf("saved recovered model to %s\n", out.c_str());
  }
  return rs.state_crc_ok ? 0 : 1;
}

/// Trained model + encoded queries for the fleet commands (same
/// load-or-train convention as serve-bench/chaos).
struct FleetWorld {
  model::HdcModel model;
  std::vector<hv::BinVec> queries;
  std::vector<int> labels;
};

FleetWorld fleet_world(const Args& args) {
  const auto split = load_split(args);
  FleetWorld w;
  const auto model_file = args.get("model", "");
  if (!model_file.empty()) {
    auto clf = core::load_model(model_file);
    w.queries = clf.encoder().encode_all(split.test);
    w.model = clf.model();
  } else {
    core::HdcClassifierConfig config;
    config.encoder.dimension =
        static_cast<std::size_t>(args.number("dimension", 4000));
    auto clf = core::HdcClassifier::train(split.train, config);
    w.queries = clf.encoder().encode_all(split.test);
    w.model = clf.model();
  }
  w.labels = split.test.labels;
  return w;
}

fleet::Fleet make_fleet(const model::HdcModel& model, std::size_t shards,
                        std::size_t workers,
                        const std::string& persist_dir = "") {
  std::vector<model::HdcModel> models;
  fleet::FleetConfig config;
  config.persist_dir = persist_dir;
  for (std::size_t s = 0; s < shards; ++s) {
    models.push_back(model);
    fleet::ShardConfig shard;
    shard.server.worker_threads = workers;
    shard.server.enable_recovery = model.precision_bits() == 1;
    config.shards.push_back(std::move(shard));
  }
  return fleet::Fleet(std::move(models), std::move(config));
}

void print_fleet_stats(const fleet::FleetStats& stats) {
  std::printf("fleet: completed %zu, rejected %zu, failovers %zu, "
              "shed (group down) %zu\n",
              static_cast<std::size_t>(stats.completed),
              static_cast<std::size_t>(stats.rejected),
              static_cast<std::size_t>(stats.failovers),
              static_cast<std::size_t>(stats.shed_unrouteable));
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    const auto& sh = stats.shards[s];
    std::printf("  shard %zu: completed %zu, repairs %zu (%zu bits), "
                "quarantined %zu, degraded %zu, abstained %zu, "
                "breaker %s, p99 %.3f ms\n",
                s, static_cast<std::size_t>(sh.completed),
                static_cast<std::size_t>(sh.scrub_repairs),
                static_cast<std::size_t>(sh.scrub_substituted_bits),
                sh.quarantined_chunks,
                static_cast<std::size_t>(sh.degraded_responses),
                static_cast<std::size_t>(sh.abstained_responses),
                sh.breaker_open ? "OPEN" : "closed", sh.p99_ms);
  }
}

int cmd_fleet_serve(const Args& args) {
  const auto w = fleet_world(args);
  const auto shards =
      static_cast<std::size_t>(std::max(1L, args.number("shards", 2)));
  const auto workers =
      static_cast<std::size_t>(std::max(1L, args.number("workers", 1)));
  auto fleet = make_fleet(w.model, shards, workers,
                          args.get("persist-dir", ""));

  fleet::FrontendConfig frontend_config;
  frontend_config.base_port =
      static_cast<std::uint16_t>(args.number("port", 0));
  fleet::Frontend frontend(fleet, frontend_config);
  frontend.start();
  std::printf("fleet up: %zu shards x %zu workers, D=%zu\n", shards, workers,
              fleet.dimension());
  const auto ports = frontend.ports();
  for (std::size_t s = 0; s < ports.size(); ++s) {
    std::printf("  shard %zu listening on 127.0.0.1:%u\n", s, ports[s]);
  }

  // Loopback self-test: the wire path must answer exactly like the model.
  {
    std::vector<fleet::Endpoint> endpoints;
    std::vector<std::string> groups;
    for (const auto port : ports) {
      endpoints.push_back({"127.0.0.1", port});
      groups.push_back("default");
    }
    fleet::Client client(std::move(endpoints), std::move(groups));
    const std::size_t probes = std::min<std::size_t>(64, w.queries.size());
    std::size_t ok = 0, correct = 0;
    for (std::size_t i = 0; i < probes; ++i) {
      const auto r = client.predict(i, w.queries[i]);
      if (!r.ok) continue;
      ++ok;
      if (r.predicted == w.labels[i]) ++correct;
    }
    std::printf("self-test: %zu/%zu probes answered, accuracy %.2f%%\n", ok,
                probes,
                ok == 0 ? 0.0
                        : 100.0 * static_cast<double>(correct) /
                              static_cast<double>(ok));
    if (ok != probes) {
      frontend.stop();
      fleet.shutdown();
      return 1;
    }
  }

  const double seconds = args.real("seconds", 5.0);
  if (seconds <= 0.0) {
    std::printf("serving until killed (ctrl-c)...\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }
  std::printf("serving for %.1fs...\n", seconds);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));

  print_fleet_stats(fleet.stats());
  frontend.stop();
  fleet.shutdown();
  return 0;
}

/// One closed-loop measurement (same shape as bench/fleet_throughput).
struct FleetPoint {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  fleet::FleetStats stats;
};

FleetPoint run_fleet_point(const model::HdcModel& model,
                           const std::vector<hv::BinVec>& queries,
                           std::size_t shards, std::size_t clients,
                           double seconds, double fault_rate,
                           const fleet::NetChaosConfig* net = nullptr,
                           long partition = -1) {
  auto fleet = make_fleet(model, shards, /*workers=*/1);
  fleet::Frontend frontend(fleet);
  frontend.start();
  std::vector<fleet::Endpoint> endpoints;
  std::vector<std::string> groups;
  for (const auto port : frontend.ports()) {
    endpoints.push_back({"127.0.0.1", port});
    groups.push_back("default");
  }
  std::unique_ptr<fleet::NetChaos> chaos;
  if (net != nullptr) {
    chaos = std::make_unique<fleet::NetChaos>(endpoints, *net);
    chaos->start();
    endpoints = chaos->endpoints();
  }

  serve::LatencyHistogram latency;
  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> responses{0};
  std::vector<std::thread> threads;
  fleet::ClientConfig client_config;
  if (chaos) {
    // Under injected faults a dropped chunk must burn one attempt's
    // slice, not the whole predict budget.
    client_config.retry.attempt_timeout = std::chrono::milliseconds(250);
    client_config.retry.initial_backoff = std::chrono::milliseconds(1);
  }
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      fleet::Client client(endpoints, groups, client_config);
      std::uint64_t tenant = t;
      std::size_t q = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto begin = std::chrono::steady_clock::now();
        const auto r = client.predict(tenant, queries[q % queries.size()]);
        const auto end = std::chrono::steady_clock::now();
        tenant += clients;
        ++q;
        if (r.ok && measuring.load(std::memory_order_relaxed)) {
          responses.fetch_add(1, std::memory_order_relaxed);
          latency.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   begin)
                  .count()));
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  measuring.store(true, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2.0));
  if (fault_rate > 0.0 && model.precision_bits() == 1) {
    for (std::size_t s = 0; s < shards; ++s) {
      fleet.shard(s).server().inject_faults(
          fault_rate, fault::AttackMode::kRandom, 0x5eed + s);
    }
  }
  if (chaos && partition >= 0 && static_cast<std::size_t>(partition) < shards) {
    chaos->set_blackholed(static_cast<std::size_t>(partition), true);
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2.0));
  const auto t1 = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();

  FleetPoint point;
  point.qps = static_cast<double>(responses.load()) /
              std::chrono::duration<double>(t1 - t0).count();
  const auto summary = latency.summarize();
  point.p50_ms = summary.p50_ns / 1e6;
  point.p99_ms = summary.p99_ns / 1e6;
  fleet.drain();
  point.stats = fleet.stats();
  if (chaos) {
    const auto c = chaos->counters();
    std::printf("netchaos: %llu conns, %llu delayed, %llu dropped, "
                "%llu resets, %llu blackholed chunks\n",
                static_cast<unsigned long long>(c.connections),
                static_cast<unsigned long long>(c.chunks_delayed),
                static_cast<unsigned long long>(c.chunks_dropped),
                static_cast<unsigned long long>(c.resets_injected),
                static_cast<unsigned long long>(c.blackholed_chunks));
    chaos->stop();
  }
  frontend.stop();
  fleet.shutdown();
  return point;
}

int cmd_fleet_bench(const Args& args) {
  apply_layout_flag(args);
  // Synthetic tight-cluster world at a serving-friendly dimension (the
  // standalone bench uses the identical geometry).
  const auto dim =
      static_cast<std::size_t>(std::max(64L, args.number("dimension", 2048)));
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 0x5eed));
  constexpr std::size_t kClasses = 4;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes, train, queries;
  std::vector<int> labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(dim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < dim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 15; ++i) {
      train.push_back(noisy(c));
      labels.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 16; ++i) queries.push_back(noisy(c));
  }
  auto model = model::HdcModel::train(train, labels, kClasses, {});

  const auto shards =
      static_cast<std::size_t>(std::max(1L, args.number("shards", 2)));
  const auto clients_per_shard =
      static_cast<std::size_t>(std::max(1L, args.number("clients", 2)));
  const double seconds = args.real("seconds", 2.0);
  const double rate = args.real("rate", 0.05);
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  // Optional NetChaos faults between the clients and the frontend.
  const long net_delay_ms = args.number("net-delay-ms", 0);
  const double net_drop = args.real("net-drop", 0.0);
  const double net_reset = args.real("net-reset", 0.0);
  const long partition = args.number("partition", -1);
  if (net_delay_ms < 0) {
    std::fprintf(stderr, "--net-delay-ms must be >= 0\n");
    return 2;
  }
  if (net_drop < 0.0 || net_drop > 1.0 || net_reset < 0.0 || net_reset > 1.0) {
    std::fprintf(stderr, "--net-drop / --net-reset must be in [0,1]\n");
    return 2;
  }
  if (partition >= 0 && static_cast<std::size_t>(partition) >= shards) {
    std::fprintf(stderr, "--partition %ld out of range (shards=%zu)\n",
                 partition, shards);
    return 2;
  }
  if (partition >= 0 && shards < 2) {
    std::fprintf(stderr, "--partition needs --shards >= 2 to fail over to\n");
    return 2;
  }
  const bool use_net =
      net_delay_ms > 0 || net_drop > 0.0 || net_reset > 0.0 || partition >= 0;
  fleet::NetChaosConfig net;
  net.delay = std::chrono::milliseconds(net_delay_ms);
  net.drop_rate = net_drop;
  net.reset_rate = net_reset;
  const fleet::NetChaosConfig* net_ptr = use_net ? &net : nullptr;

  // The 1-shard reference sees the same wire faults (a fair baseline)
  // but never the partition — with no twin there is nowhere to fail
  // over, so the partition only applies to the multi-shard point.
  const auto base = run_fleet_point(model, queries, 1, clients_per_shard,
                                    seconds, rate, net_ptr);
  std::printf("shards=1 clients=%zu: %.0f qps, p50 %.3f ms, p99 %.3f ms\n",
              clients_per_shard, base.qps, base.p50_ms, base.p99_ms);
  const auto scaled =
      run_fleet_point(model, queries, shards, clients_per_shard * shards,
                      seconds, rate, net_ptr, partition);
  std::printf("shards=%zu clients=%zu: %.0f qps, p50 %.3f ms, p99 %.3f ms\n",
              shards, clients_per_shard * shards, scaled.qps, scaled.p50_ms,
              scaled.p99_ms);
  print_fleet_stats(scaled.stats);

  const double ideal =
      static_cast<double>(std::min(shards, cores)) * base.qps;
  const double efficiency = ideal > 0.0 ? scaled.qps / ideal : 0.0;
  std::printf("weak-scaling efficiency 1 -> %zu shards: %.2f "
              "(core-aware, %zu cores)\n",
              shards, efficiency, cores);

  const double gate = args.real("gate", 0.0);
  if (gate > 0.0 && shards > 1 && efficiency < gate) {
    std::printf("FAIL: efficiency %.2f below gate %.2f\n", efficiency, gate);
    return 1;
  }
  return 0;
}

void usage() {
  std::fprintf(stderr, "usage: robusthd <command> [--flag value]...\n"
                       "commands:\n");
  for (const auto& spec : command_specs()) {
    std::fprintf(stderr, "  %-12s %s\n", spec.name, spec.summary);
  }
  std::fprintf(stderr,
               "run `robusthd <command> --help` for that command's flags\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    usage();
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  const CommandSpec* spec = find_spec(command);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    usage();
    return 2;
  }
  const Args args(argc, argv, *spec);
  try {
    if (command == "train") return cmd_train(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "attack") return cmd_attack(args);
    if (command == "recover") return cmd_recover(args);
    if (command == "serve-bench") return cmd_serve_bench(args);
    if (command == "chaos") return cmd_chaos(args);
    if (command == "adversary") return cmd_adversary(args);
    if (command == "fleet-serve") return cmd_fleet_serve(args);
    if (command == "fleet-bench") return cmd_fleet_bench(args);
    if (command == "info") return cmd_info(args);
    if (command == "integrity") return cmd_integrity(args);
    if (command == "wal-recover") return cmd_wal_recover(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
