// robusthd — command-line front end for the library.
//
// Subcommands:
//   train   --dataset NAME --out FILE [--dimension D] [--levels L]
//           [--train N] [--test N] [--precision B] [--seed S]
//       Train on a synthetic paper benchmark and save the model.
//       Alternatively --csv FILE [--label-col I] [--header 1]
//       [--split 0.8] trains on a real CSV dataset (numeric features,
//       label column anywhere; see data/loader.hpp).
//   eval    --model FILE --dataset NAME [--test N] [--seed S]
//       Load a model and report accuracy.
//   attack  --model FILE --dataset NAME --rate R
//           [--mode random|targeted|clustered] [--out FILE]
//       Inject bit flips into a stored model, report the damage, and
//       optionally save the attacked model.
//   recover --model FILE --dataset NAME [--epochs E] [--out FILE]
//       Run the RobustHD self-recovery over unlabeled queries.
//   info    --model FILE
//       Print a stored model's shape and storage format (RHD1/RHD2).
//   integrity --model FILE [--trials N] [--rate R] [--seed S]
//       Corrupt copies of the stored blob (single-bit sweep plus the
//       Table-3 flip rates, or just --rate) and report how often the
//       loader detects the damage. RHD2 blobs must detect every
//       corrupted copy; exits nonzero if one slips through.
//   serve-bench --dataset NAME [--model FILE] [--workers N] [--rounds R]
//           [--rate R --mode random|targeted|clustered]
//           [--batch B] [--dimension D]
//       Drive the concurrent serving runtime (robusthd::serve) over the
//       test queries, optionally injecting faults so the background
//       scrubber repairs the model while it serves; prints a throughput/
//       latency table (see also bench/serve_throughput.cpp).
//   chaos   --dataset NAME [--model FILE] [--workers N] [--seconds S]
//           [--rate R] [--mode random|targeted|clustered] [--steps N]
//           [--floor A] [--dimension D]
//       Live-fire soak: serve traffic while an in-process ChaosAgent
//       attacks the published model under a rate budget, the plane
//       health sentinel quarantines damaged chunks, and the scrubber
//       repairs from trusted traffic (docs/resilience.md). Prints the
//       steady-state accuracy and degradation-ladder activity; with
//       --floor, exits nonzero when the final canary accuracy is below
//       it (see also bench/chaos_soak.cpp).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "robusthd/robusthd.hpp"
#include "robusthd/util/timer.hpp"

using namespace robusthd;

namespace {

/// Minimal --flag VALUE parser; every flag takes exactly one value.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

  long number(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

data::Split load_split(const Args& args) {
  const auto csv = args.get("csv", "");
  if (!csv.empty()) {
    data::CsvOptions options;
    options.label_column = static_cast<int>(args.number("label-col", -1));
    options.has_header = args.number("header", 0) != 0;
    const auto dataset = data::load_csv(csv, options);
    auto split = data::train_test_split(
        dataset, args.real("split", 0.8),
        static_cast<std::uint64_t>(args.number("seed", 0x5eed)));
    data::normalize_minmax(split);
    return split;
  }
  const auto name = args.require("dataset");
  const auto spec = data::scaled(
      data::dataset_by_name(name),
      static_cast<std::size_t>(args.number("train", 2000)),
      static_cast<std::size_t>(args.number("test", 600)));
  return data::make_synthetic(
      spec, static_cast<std::uint64_t>(args.number("seed", 0x5eed)));
}

fault::AttackMode parse_mode(const std::string& mode) {
  if (mode == "random") return fault::AttackMode::kRandom;
  if (mode == "targeted") return fault::AttackMode::kTargeted;
  if (mode == "clustered") return fault::AttackMode::kClustered;
  std::fprintf(stderr, "unknown attack mode: %s\n", mode.c_str());
  std::exit(2);
}

int cmd_train(const Args& args) {
  const auto split = load_split(args);
  core::HdcClassifierConfig config;
  config.encoder.dimension =
      static_cast<std::size_t>(args.number("dimension", 10000));
  config.encoder.levels = static_cast<std::size_t>(args.number("levels", 32));
  config.model.precision_bits =
      static_cast<unsigned>(args.number("precision", 1));

  util::Timer timer;
  auto clf = core::HdcClassifier::train(split.train, config);
  const double train_acc = clf.evaluate(split.train);
  const double test_acc = clf.evaluate(split.test);
  std::printf("trained in %.1fs: train %.2f%%, test %.2f%%\n",
              timer.seconds(), train_acc * 100.0, test_acc * 100.0);

  const auto out = args.require("out");
  core::save_model(clf, out);
  std::printf("saved %s (%zu classes x D=%zu, %u-bit)\n", out.c_str(),
              clf.model().num_classes(), clf.model().dimension(),
              clf.model().precision_bits());
  return 0;
}

int cmd_eval(const Args& args) {
  auto clf = core::load_model(args.require("model"));
  const auto split = load_split(args);
  std::printf("test accuracy %.2f%%\n", clf.evaluate(split.test) * 100.0);
  return 0;
}

int cmd_attack(const Args& args) {
  auto clf = core::load_model(args.require("model"));
  const auto split = load_split(args);
  const double clean = clf.evaluate(split.test);

  util::Xoshiro256 rng(static_cast<std::uint64_t>(args.number("seed", 1)));
  auto regions = clf.memory_regions();
  const auto report = fault::BitFlipInjector::inject(
      regions, args.real("rate", 0.10),
      parse_mode(args.get("mode", "random")), rng);
  const double attacked = clf.evaluate(split.test);
  std::printf("flipped %zu/%zu bits (%.2f%%): accuracy %.2f%% -> %.2f%% "
              "(quality loss %.2f%%)\n",
              report.flipped, report.total_bits, report.rate() * 100.0,
              clean * 100.0, attacked * 100.0, (clean - attacked) * 100.0);

  const auto out = args.get("out", "");
  if (!out.empty()) {
    core::save_model(clf, out);
    std::printf("saved attacked model to %s\n", out.c_str());
  }
  return 0;
}

int cmd_recover(const Args& args) {
  auto clf = core::load_model(args.require("model"));
  const auto split = load_split(args);
  const double before = clf.evaluate(split.test);

  clf.enable_recovery({});
  const auto epochs = args.number("epochs", 10);
  for (long e = 0; e < epochs; ++e) {
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      clf.predict_and_recover(split.test.sample(i));
    }
  }
  const double after = clf.evaluate(split.test);
  std::printf("recovery over %ld epochs (%zu updates, %zu bits): accuracy "
              "%.2f%% -> %.2f%%\n",
              epochs, clf.recovery_engine()->total_updates(),
              clf.recovery_engine()->total_substituted_bits(),
              before * 100.0, after * 100.0);

  const auto out = args.get("out", "");
  if (!out.empty()) {
    core::save_model(clf, out);
    std::printf("saved recovered model to %s\n", out.c_str());
  }
  return 0;
}

int cmd_serve_bench(const Args& args) {
  const auto split = load_split(args);

  // Either load a stored model (its encoder re-encodes the queries) or
  // train a fresh one at a serving-friendly dimension.
  model::HdcModel model;
  std::vector<hv::BinVec> queries;
  const auto model_file = args.get("model", "");
  if (!model_file.empty()) {
    auto clf = core::load_model(model_file);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  } else {
    core::HdcClassifierConfig config;
    config.encoder.dimension =
        static_cast<std::size_t>(args.number("dimension", 4000));
    auto clf = core::HdcClassifier::train(split.train, config);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  }

  serve::ServerConfig config;
  config.worker_threads = static_cast<std::size_t>(args.number("workers", 4));
  config.max_batch = static_cast<std::size_t>(args.number("batch", 16));
  if (model.precision_bits() != 1) {
    std::printf("note: %u-bit model, serving without the recovery "
                "scrubber (substitution is binary-only)\n",
                model.precision_bits());
    config.enable_recovery = false;
  }
  serve::Server server(std::move(model), config);

  const double rate = args.real("rate", 0.0);
  if (rate > 0.0) {
    server.inject_faults(rate, parse_mode(args.get("mode", "clustered")),
                         static_cast<std::uint64_t>(args.number("seed", 1)));
    server.drain();
  }

  const auto rounds = args.number("rounds", 10);
  util::Timer timer;
  std::size_t correct = 0;
  for (long r = 0; r < rounds; ++r) {
    const auto responses = server.predict_all(queries);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].predicted == split.test.labels[i]) ++correct;
    }
  }
  const double elapsed = timer.seconds();
  server.drain();
  const auto stats = server.stats();
  server.shutdown();

  const auto answered = static_cast<double>(stats.completed);
  std::printf("served %zu queries with %zu workers in %.2fs: %.0f qps\n",
              static_cast<std::size_t>(stats.completed),
              server.config().worker_threads, elapsed, answered / elapsed);
  std::printf("latency p50 %.3f ms, p99 %.3f ms; mean batch %.2f\n",
              stats.end_to_end.p50_ns / 1e6, stats.end_to_end.p99_ns / 1e6,
              stats.mean_batch);
  std::printf("accuracy %.2f%%; trusted %zu, scrub processed %zu, "
              "repairs %zu (%zu bits), snapshots published %zu\n",
              100.0 * static_cast<double>(correct) / answered,
              static_cast<std::size_t>(stats.trusted),
              static_cast<std::size_t>(stats.scrub_processed),
              static_cast<std::size_t>(stats.scrub_repairs),
              static_cast<std::size_t>(stats.scrub_substituted_bits),
              static_cast<std::size_t>(stats.snapshots_published));
  std::printf("trust ring drops %zu, scrub resyncs %zu, reloads %zu, "
              "integrity failures %zu\n",
              static_cast<std::size_t>(stats.trust_drops),
              static_cast<std::size_t>(stats.scrub_resyncs),
              static_cast<std::size_t>(stats.reloads),
              static_cast<std::size_t>(stats.integrity_failures));
  std::printf("resilience: canary runs %zu, quarantined chunks %zu, "
              "degraded %zu, abstained %zu, breaker trips %zu, "
              "reload retries %zu\n",
              static_cast<std::size_t>(stats.canary_runs),
              stats.quarantined_chunks,
              static_cast<std::size_t>(stats.degraded_responses),
              static_cast<std::size_t>(stats.abstained_responses),
              static_cast<std::size_t>(stats.breaker_trips),
              static_cast<std::size_t>(stats.reload_retries));
  if (rate > 0.0) {
    std::printf("faults injected: %zu\n",
                static_cast<std::size_t>(stats.faults_injected));
  }
  return 0;
}

int cmd_chaos(const Args& args) {
  const auto split = load_split(args);

  model::HdcModel model;
  std::vector<hv::BinVec> queries;
  const auto model_file = args.get("model", "");
  if (!model_file.empty()) {
    auto clf = core::load_model(model_file);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  } else {
    core::HdcClassifierConfig config;
    config.encoder.dimension =
        static_cast<std::size_t>(args.number("dimension", 4000));
    auto clf = core::HdcClassifier::train(split.train, config);
    queries = clf.encoder().encode_all(split.test);
    model = clf.model();
  }
  if (model.precision_bits() != 1) {
    std::fprintf(stderr,
                 "chaos requires a binary (1-bit) model: the recovery "
                 "ladder is substitution-based\n");
    return 2;
  }

  // Hold out canaries for the sentinel; serve the rest as traffic.
  const std::size_t canary_count =
      std::min<std::size_t>(150, queries.size() / 3);
  serve::ServerConfig config;
  config.worker_threads = static_cast<std::size_t>(args.number("workers", 4));
  config.max_batch = 16;
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(10);
  config.sentinel.chunks = config.scrubber.recovery.chunks;
  config.canaries.assign(queries.begin(), queries.begin() + canary_count);
  config.canary_labels.assign(split.test.labels.begin(),
                              split.test.labels.begin() + canary_count);
  const double seconds = args.real("seconds", 5.0);
  config.chaos.enabled = true;
  config.chaos.rate = args.real("rate", 0.06);
  config.chaos.mode = parse_mode(args.get("mode", "random"));
  config.chaos.steps_to_full =
      static_cast<std::size_t>(args.number("steps", 250));
  config.chaos.period = std::chrono::microseconds(static_cast<long>(
      seconds * 0.6 * 1e6 /
      static_cast<double>(config.chaos.steps_to_full)));

  std::vector<hv::BinVec> traffic(queries.begin() + canary_count,
                                  queries.end());
  std::vector<int> traffic_labels(split.test.labels.begin() + canary_count,
                                  split.test.labels.end());

  serve::Server server(std::move(model), config);
  util::Timer timer;
  std::size_t scored = 0, correct = 0, shed = 0;
  while (timer.seconds() < seconds) {
    const auto responses = server.predict_all(traffic);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].abstained) {
        ++shed;
        continue;
      }
      ++scored;
      if (responses[i].predicted == traffic_labels[i]) ++correct;
    }
  }
  const double elapsed = timer.seconds();
  server.drain();
  const auto stats = server.stats();
  server.shutdown();

  std::printf("soak %.1fs at attack rate %.3f (%s): %.0f qps\n", elapsed,
              config.chaos.rate, args.get("mode", "random").c_str(),
              static_cast<double>(scored + shed) / elapsed);
  std::printf("traffic accuracy %.2f%% over %zu scored (%zu abstained)\n",
              scored == 0 ? 0.0
                          : 100.0 * static_cast<double>(correct) /
                                static_cast<double>(scored),
              scored, shed);
  std::printf("chaos: %zu ticks, %zu flips scheduled\n",
              static_cast<std::size_t>(stats.chaos_ticks),
              static_cast<std::size_t>(stats.chaos_flips));
  std::printf("sentinel: %zu canary runs, effective canary accuracy "
              "%.2f%%, %zu chunks quarantined, %zu priority marks\n",
              static_cast<std::size_t>(stats.canary_runs),
              100.0 * stats.canary_accuracy, stats.quarantined_chunks,
              static_cast<std::size_t>(stats.priority_marks));
  std::printf("ladder: %zu degraded, %zu abstained, %zu breaker trips, "
              "%zu reload retries; scrub repairs %zu (%zu bits)\n",
              static_cast<std::size_t>(stats.degraded_responses),
              static_cast<std::size_t>(stats.abstained_responses),
              static_cast<std::size_t>(stats.breaker_trips),
              static_cast<std::size_t>(stats.reload_retries),
              static_cast<std::size_t>(stats.scrub_repairs),
              static_cast<std::size_t>(stats.scrub_substituted_bits));

  const double floor = args.real("floor", 0.0);
  if (floor > 0.0 && stats.canary_accuracy < floor) {
    std::printf("FAIL: canary accuracy %.4f below floor %.4f\n",
                stats.canary_accuracy, floor);
    return 1;
  }
  return 0;
}

std::vector<std::byte> read_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> blob(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("cannot read model file: " + path);
  return blob;
}

int cmd_info(const Args& args) {
  const auto path = args.require("model");
  const auto blob = read_blob(path);
  const auto info = core::inspect(blob);
  std::printf("format RHD%u (%s)\n", info.version,
              info.integrity_checked ? "CRC32C integrity-checked"
                                     : "legacy, no integrity checks");
  auto clf = core::deserialize(blob);
  const auto& model = clf.model();
  std::printf("RobustHD model: %zu classes, D=%zu, %u-bit precision, "
              "%zu features, %zu levels, encoder seed %#zx\n",
              model.num_classes(), model.dimension(),
              model.precision_bits(), clf.encoder().feature_count(),
              clf.encoder_config().levels,
              static_cast<std::size_t>(clf.encoder_config().seed));
  std::size_t bits = 0;
  for (const auto& region : clf.memory_regions()) bits += region.bit_count();
  std::printf("stored model size: %zu bits (%.1f KiB)\n", bits,
              static_cast<double>(bits) / 8192.0);
  return 0;
}

int cmd_integrity(const Args& args) {
  const auto blob = read_blob(args.require("model"));
  const auto info = core::inspect(blob);
  std::printf("format RHD%u, %zu bytes, %s\n", info.version, blob.size(),
              info.integrity_checked ? "integrity-checked"
                                     : "legacy (no CRCs)");

  const auto trials = static_cast<std::size_t>(args.number("trials", 200));
  util::Xoshiro256 rng(static_cast<std::uint64_t>(args.number("seed", 1)));

  bool perfect = true;
  const auto report = [&](const char* label,
                          const core::IntegrityCell& cell) {
    std::printf("  %-12s corrupted %4zu/%zu trials, detected %4zu "
                "(P[detect] = %.4f)\n",
                label, cell.corrupted, cell.trials, cell.detected,
                cell.detection_rate());
    if (cell.corrupted > 0 && cell.detection_rate() < 1.0) perfect = false;
  };

  report("single bit", core::storage_single_bit(blob, trials, rng));
  const double only = args.real("rate", 0.0);
  if (only > 0.0) {
    report("--rate", core::storage_roundtrip(blob, only, trials, rng));
  } else {
    for (const double rate : {0.0001, 0.001, 0.01, 0.05, 0.10}) {
      char label[32];
      std::snprintf(label, sizeof label, "rate %.4f", rate);
      report(label, core::storage_roundtrip(blob, rate, trials, rng));
    }
  }

  if (info.integrity_checked && !perfect) {
    std::printf("FAIL: corrupted blob slipped past the integrity checks\n");
    return 1;
  }
  std::printf(info.integrity_checked
                  ? "PASS: every corrupted copy was detected\n"
                  : "note: legacy format — low detection is expected; "
                    "re-save with `robusthd train` for RHD2\n");
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: robusthd "
      "<train|eval|attack|recover|serve-bench|chaos|info|integrity>\n"
      "       [--flag value]...\n"
      "see the header comment of tools/robusthd_cli.cpp for flags\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "train") return cmd_train(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "attack") return cmd_attack(args);
    if (command == "recover") return cmd_recover(args);
    if (command == "serve-bench") return cmd_serve_bench(args);
    if (command == "chaos") return cmd_chaos(args);
    if (command == "info") return cmd_info(args);
    if (command == "integrity") return cmd_integrity(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
