// Serving-runtime throughput bench: batched concurrent inference with the
// background scrubber repairing injected faults while traffic flows.
//
// Emits one machine-readable JSON line to stdout and to BENCH_serve.json
// (next to the binary) so CI and plotting scripts can diff runs:
//
//   {"bench":"serve_throughput","workers":4,"qps":...,"qps_serial":...,
//    "speedup":...,"p50_ms":...,"p99_ms":...,"mean_batch":...,
//    "repairs_per_sec":...,"substituted_bits":...,"accuracy":...}
//
// Knobs: ROBUSTHD_WORKERS (default 4), ROBUSTHD_SERVE_ROUNDS (default 20
// passes over the encoded test set), plus the usual ROBUSTHD_TRAIN /
// ROBUSTHD_TEST caps from bench_common.hpp.

#include <fstream>
#include <sstream>

#include "bench_common.hpp"

namespace robusthd {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int run() {
  const std::size_t workers = bench::env_size("ROBUSTHD_WORKERS", 4);
  const std::size_t rounds = bench::env_size("ROBUSTHD_SERVE_ROUNDS", 20);

  bench::header("serve throughput (batched concurrent inference + scrub)");
  const auto split = bench::load("PAMAP");
  hv::EncoderConfig encoder_config;
  encoder_config.dimension = 4000;
  const hv::RecordEncoder encoder(split.train.feature_count(),
                                  encoder_config);
  const auto train = encoder.encode_all(split.train);
  const auto queries = encoder.encode_all(split.test);
  const auto trained =
      model::HdcModel::train(train, split.train.labels,
                             split.train.num_classes, {});

  // Serial baseline: one thread, direct predict, no queue/futures.
  double qps_serial = 0.0;
  {
    model::HdcModel reference = trained;
    const auto start = std::chrono::steady_clock::now();
    std::size_t answered = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const auto& q : queries) {
        volatile int sink = reference.predict(q);
        (void)sink;
        ++answered;
      }
    }
    qps_serial = static_cast<double>(answered) / seconds_since(start);
  }

  // Server under attack: inject clustered faults, then keep serving so
  // the scrubber repairs from trusted traffic while workers score.
  serve::ServerConfig config;
  config.worker_threads = workers;
  config.max_batch = 16;
  serve::Server server(trained, config);
  server.inject_faults(0.10, fault::AttackMode::kClustered, 0xdac);
  server.drain();

  const auto start = std::chrono::steady_clock::now();
  std::size_t answered = 0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto responses = server.predict_all(queries);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ++answered;
      if (responses[i].predicted == split.test.labels[i]) ++correct;
    }
  }
  const double elapsed = seconds_since(start);
  server.drain();
  const auto stats = server.stats();
  server.shutdown();

  const double qps = static_cast<double>(answered) / elapsed;
  const double repairs_per_sec =
      static_cast<double>(stats.scrub_repairs) / elapsed;
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(answered);

  util::TextTable table({"metric", "value"});
  table.add_row({"workers", std::to_string(workers)});
  table.add_row({"queries answered", std::to_string(answered)});
  table.add_row({"qps (server)", util::fixed(qps, 1)});
  table.add_row({"qps (serial)", util::fixed(qps_serial, 1)});
  table.add_row({"speedup", util::fixed(qps / qps_serial, 2)});
  table.add_row({"p50 latency (ms)",
                 util::fixed(stats.end_to_end.p50_ns / 1e6, 3)});
  table.add_row({"p99 latency (ms)",
                 util::fixed(stats.end_to_end.p99_ns / 1e6, 3)});
  table.add_row({"mean batch", util::fixed(stats.mean_batch, 2)});
  table.add_row({"faults injected", std::to_string(stats.faults_injected)});
  table.add_row({"scrub repairs", std::to_string(stats.scrub_repairs)});
  table.add_row(
      {"substituted bits", std::to_string(stats.scrub_substituted_bits)});
  table.add_row({"accuracy under attack+repair",
                 util::fixed(accuracy, 4)});
  table.print(std::cout);

  std::ostringstream json;
  json << "{\"bench\":\"serve_throughput\""
       << ",\"workers\":" << workers << ",\"qps\":" << qps
       << ",\"qps_serial\":" << qps_serial
       << ",\"speedup\":" << qps / qps_serial
       << ",\"p50_ms\":" << stats.end_to_end.p50_ns / 1e6
       << ",\"p99_ms\":" << stats.end_to_end.p99_ns / 1e6
       << ",\"mean_batch\":" << stats.mean_batch
       << ",\"repairs_per_sec\":" << repairs_per_sec
       << ",\"substituted_bits\":" << stats.scrub_substituted_bits
       << ",\"accuracy\":" << accuracy << "}";
  std::cout << json.str() << "\n";
  std::ofstream("BENCH_serve.json") << json.str() << "\n";
  return 0;
}

}  // namespace
}  // namespace robusthd

int main() { return robusthd::run(); }
