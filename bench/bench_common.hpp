#pragma once
// Shared helpers for the experiment benches (one binary per paper table /
// figure). Each bench prints the same rows or series the paper reports,
// and optionally writes a CSV next to the binary for re-plotting.
//
// Scaling: real FACE/PAMAP have 10^5-10^6 samples; benches run on
// synthetic equivalents capped to keep the full suite in minutes. Set
// ROBUSTHD_TRAIN / ROBUSTHD_TEST to change the caps, ROBUSTHD_REPS for the
// number of fault-injection repetitions per cell.

#include <cstdlib>
#include <iostream>
#include <string>

#include "robusthd/robusthd.hpp"
#include "robusthd/util/table.hpp"
#include "robusthd/util/timer.hpp"

namespace robusthd::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

inline std::size_t train_cap() { return env_size("ROBUSTHD_TRAIN", 2000); }
inline std::size_t test_cap() { return env_size("ROBUSTHD_TEST", 600); }
inline std::size_t repetitions() { return env_size("ROBUSTHD_REPS", 3); }

/// Scaled synthetic split for a named paper dataset.
inline data::Split load(const std::string& name, std::uint64_t seed = 0x5eed) {
  const auto spec =
      data::scaled(data::dataset_by_name(name), train_cap(), test_cap());
  return data::make_synthetic(spec, seed);
}

/// Mean quality loss of a trained HDC model under `reps` independent
/// attacks at `rate`/`mode`, evaluated on pre-encoded queries.
inline double hdc_quality_loss(const model::HdcModel& trained,
                               std::span<const hv::BinVec> queries,
                               std::span<const int> labels, double clean,
                               double rate, fault::AttackMode mode,
                               std::uint64_t seed) {
  util::RunningStats loss;
  for (std::size_t r = 0; r < repetitions(); ++r) {
    model::HdcModel victim = trained;
    util::Xoshiro256 rng(seed + 77 * r);
    auto regions = victim.memory_regions();
    fault::BitFlipInjector::inject(regions, rate, mode, rng);
    loss.add(util::quality_loss(clean, victim.evaluate(queries, labels)));
  }
  return loss.mean();
}

/// Mean quality loss of a cloneable baseline classifier under attack.
inline double classifier_quality_loss(const baseline::Classifier& trained,
                                      const data::Dataset& test, double clean,
                                      double rate, fault::AttackMode mode,
                                      std::uint64_t seed) {
  util::RunningStats loss;
  for (std::size_t r = 0; r < repetitions(); ++r) {
    auto victim = trained.clone();
    util::Xoshiro256 rng(seed + 77 * r);
    auto regions = victim->memory_regions();
    fault::BitFlipInjector::inject(regions, rate, mode, rng);
    loss.add(util::quality_loss(clean, victim->evaluate(test)));
  }
  return loss.mean();
}

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace robusthd::bench
