// Table 1 — HDC quality loss under random hardware error, for model
// dimensionality D ∈ {5k, 10k} and deployed precision ∈ {1, 2} bits,
// against the DNN baseline. Workload: UCI-HAR-like synthetic data
// (the paper reports Table 1 on UCI HAR).
//
// Paper's qualitative claims this bench reproduces:
//  * losses grow with error rate but stay small for HDC;
//  * higher dimensionality is more robust (D=10k beats D=5k);
//  * lower precision is more robust (1-bit beats 2-bit);
//  * the DNN row is an order of magnitude worse.

#include "bench_common.hpp"

using namespace robusthd;

int main() {
  bench::header("Table 1: HDC quality loss vs precision/dimension (UCIHAR)");
  auto split = bench::load("UCIHAR");

  const double rates[] = {0.01, 0.02, 0.05, 0.10, 0.15};

  util::TextTable table(
      {"Model", "1%", "2%", "5%", "10%", "15%"});

  // DNN baseline row.
  {
    auto mlp = baseline::Mlp::train(split.train, {});
    const double clean = mlp.evaluate(split.test);
    std::vector<std::string> row{"DNN (int8)"};
    for (const double rate : rates) {
      row.push_back(util::pct(bench::classifier_quality_loss(
          mlp, split.test, clean, rate, fault::AttackMode::kRandom, 0xd1)));
    }
    table.add_row(row);
  }

  // HDC rows: D x precision grid.
  for (const std::size_t dim : {std::size_t{5000}, std::size_t{10000}}) {
    for (const unsigned bits : {1u, 2u}) {
      core::HdcClassifierConfig config;
      config.encoder.dimension = dim;
      config.model.precision_bits = bits;
      auto clf = core::HdcClassifier::train(split.train, config);
      const auto queries = clf.encoder().encode_all(split.test);
      const double clean = clf.model().evaluate(queries, split.test.labels);

      std::vector<std::string> row{"HDC D=" + std::to_string(dim / 1000) +
                                   "k " + std::to_string(bits) + "-bit"};
      for (const double rate : rates) {
        row.push_back(util::pct(bench::hdc_quality_loss(
            clf.model(), queries, split.test.labels, clean, rate,
            fault::AttackMode::kRandom, 0x7a + dim + bits)));
      }
      table.add_row(row);
    }
  }

  table.print(std::cout);
  std::cout << "(paper: DNN 3.9->40% across 1-15%; HDC <=4.7% worst case,\n"
               " 1-bit more robust than 2-bit, D=10k more robust than 5k)\n";
  return 0;
}
