// Ablation — chunk count m (Section 4.2). Small m = coarse chunks with a
// strong statistical signal but poor damage localisation; large m = fine
// localisation but the per-chunk argmax drowns in Hamming noise. Reports
// recovery quality after clustered damage across m.

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

int main() {
  bench::header("Ablation: chunk count m (UCIHAR, 4% clustered damage)");
  auto split = bench::load("UCIHAR");
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);

  util::TextTable table({"m", "chunk bits d", "Final loss", "Updates"});
  util::CsvWriter csv("ablation_chunks.csv",
                      {"chunks", "final_loss", "updates"});

  for (const std::size_t m : {4, 10, 20, 40, 100, 250}) {
    util::RunningStats loss;
    std::size_t updates = 0;
    for (std::size_t r = 0; r < bench::repetitions(); ++r) {
      model::HdcModel victim = clf.model();
      util::Xoshiro256 rng(0xc4 + 31 * r);
      auto regions = victim.memory_regions();
      fault::BitFlipInjector::inject(regions, 0.04,
                                     fault::AttackMode::kClustered, rng);
      model::RecoveryConfig config;
      config.chunks = m;
      config.seed = 0xc4 + 7 * r;
      model::RecoveryEngine engine(victim, config);
      for (int epoch = 0; epoch < 10; ++epoch) {
        for (const auto& q : queries) engine.observe(q);
      }
      loss.add(util::quality_loss(
          clean, victim.evaluate(queries, split.test.labels)));
      updates += engine.total_updates();
    }
    table.add_row({std::to_string(m),
                   std::to_string(clf.model().dimension() / m),
                   util::pct(loss.mean()),
                   std::to_string(updates / bench::repetitions())});
    csv.row(m, loss.mean(), updates / bench::repetitions());
  }
  table.print(std::cout);
  return 0;
}
