// Head-to-head: SECDED ECC vs RobustHD self-recovery (Section 6.6's
// "eliminate the necessity of using costly error correction code").
//
// Four deployments of the same trained model face the same DRAM-retention
// error rates (uniform physical bit errors accumulated between scrubs):
//   raw         — unprotected model, no recovery;
//   ecc         — SECDED(72,64)-protected storage, scrub after the attack
//                 (+12.5% storage, +20% access energy, per mem/ecc.hpp);
//   recovery    — unprotected storage + the unsupervised recovery engine;
//   ecc+recovery— belt and braces.
// At trace-level BER, ECC wins outright (it is exact); at the
// relaxed-refresh BERs of Figure 4b it stops correcting, while the HDC
// representation never needed the help — which is the paper's argument.

#include "bench_common.hpp"

#include "robusthd/core/protected_model.hpp"
#include "robusthd/util/csv.hpp"

using namespace robusthd;

namespace {

struct Cell {
  double loss = 0.0;
  double uncorrectable_fraction = 0.0;  // ECC arms only
};

}  // namespace

int main() {
  bench::header("ECC vs RobustHD recovery under DRAM-retention errors");
  auto split = bench::load("UCIHAR");
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);
  std::cout << "clean accuracy " << util::pct(clean) << "\n";

  // Storage overhead accounting through the read-only region view — const
  // callers never need the writable attack surface.
  {
    model::HdcModel probe = clf.model();
    const core::EccProtectedModel protect(probe);
    const std::size_t raw_bits =
        probe.dimension() * probe.num_classes() * probe.precision_bits();
    const std::size_t stored = fault::total_bits(
        std::span<const fault::ConstMemoryRegion>(protect.memory_regions()));
    std::cout << "ECC storage: " << stored << " bits for a " << raw_bits
              << "-bit model (+"
              << util::pct(static_cast<double>(stored) /
                               static_cast<double>(raw_bits) -
                           1.0)
              << " overhead)\n";
  }

  const double bers[] = {0.0005, 0.005, 0.02, 0.06};
  const char* arms[] = {"raw", "ecc", "recovery", "ecc+recovery"};

  util::TextTable table({"BER", "raw", "ecc", "recovery", "ecc+recovery",
                         "ECC uncorrectable"});
  util::CsvWriter csv("ecc_vs_recovery.csv",
                      {"ber", "arm", "quality_loss", "ecc_uncorrectable"});

  for (const double ber : bers) {
    Cell cells[4];
    for (int arm = 0; arm < 4; ++arm) {
      const bool use_ecc = arm == 1 || arm == 3;
      const bool use_recovery = arm == 2 || arm == 3;
      util::RunningStats loss, uncorrectable;
      for (std::size_t r = 0; r < bench::repetitions(); ++r) {
        model::HdcModel victim = clf.model();
        util::Xoshiro256 rng(0xecc + 31 * r + static_cast<int>(ber * 1e5));
        if (use_ecc) {
          core::EccProtectedModel protect(victim);
          auto regions = protect.memory_regions();
          fault::BitFlipInjector::inject_bit_errors(regions, ber, rng);
          const auto report = protect.scrub_and_refresh();
          const double words = static_cast<double>(
              report.clean + report.corrected + report.uncorrectable);
          uncorrectable.add(static_cast<double>(report.uncorrectable) /
                            words);
        } else {
          auto regions = victim.memory_regions();
          fault::BitFlipInjector::inject_bit_errors(regions, ber, rng);
        }
        if (use_recovery) {
          model::RecoveryConfig config;
          config.seed = 0xecc + 7 * r;
          model::RecoveryEngine engine(victim, config);
          for (int epoch = 0; epoch < 6; ++epoch) {
            for (const auto& q : queries) engine.observe(q);
          }
        }
        loss.add(util::quality_loss(
            clean, victim.evaluate(queries, split.test.labels)));
      }
      cells[arm].loss = loss.mean();
      cells[arm].uncorrectable_fraction = uncorrectable.mean();
      csv.row(ber, arms[arm], cells[arm].loss,
              cells[arm].uncorrectable_fraction);
    }
    table.add_row({util::pct(ber, 2), util::pct(cells[0].loss),
                   util::pct(cells[1].loss), util::pct(cells[2].loss),
                   util::pct(cells[3].loss),
                   util::pct(cells[1].uncorrectable_fraction, 1)});
  }
  table.print(std::cout);
  std::cout
      << "(ECC is exact below ~0.1% BER but pays 12.5% storage + 20% access\n"
         " energy always; at relaxed-refresh BERs its words go\n"
         " uncorrectable while the bare HDC model never needed the help)\n";
  return 0;
}
