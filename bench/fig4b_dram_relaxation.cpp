// Figure 4b — DRAM refresh-cycle relaxation: energy-efficiency gain vs the
// bit error rate the relaxed refresh causes, and what that error rate does
// to DNN vs HDC model accuracy (plus what SECDED ECC could and could not
// absorb).
//
// Paper's claims to reproduce:
//  * conventional 64 ms refresh: ~zero errors, both models at full
//    accuracy;
//  * relaxing to percent-level error rates buys double-digit % energy
//    gains;
//  * at those error rates the int8 DNN loses heavily while HDC barely
//    moves — HDC converts refresh relaxation into free energy savings and
//    eliminates the need for ECC.

#include "bench_common.hpp"

#include "robusthd/mem/dram.hpp"
#include "robusthd/mem/ecc.hpp"
#include "robusthd/util/csv.hpp"

using namespace robusthd;

int main() {
  bench::header("Figure 4b: DRAM refresh relaxation vs model accuracy");
  auto split = bench::load("UCIHAR");
  auto dnn = baseline::Mlp::train(split.train, {});
  auto hdc = core::HdcClassifier::train(split.train, {});
  const auto queries = hdc.encoder().encode_all(split.test);
  const double dnn_clean = dnn.evaluate(split.test);
  const double hdc_clean = hdc.model().evaluate(queries, split.test.labels);

  const mem::DramParams dram = mem::DramParams::ddr4();
  const mem::EccParams ecc;

  const double target_bers[] = {0.0, 0.01, 0.02, 0.04, 0.06, 0.08};

  util::TextTable table({"Refresh (ms)", "BER", "Energy gain", "DNN loss",
                         "HDC loss", "ECC residual BER"});
  util::CsvWriter csv("fig4b_dram_relaxation.csv",
                      {"interval_ms", "ber", "energy_gain", "dnn_loss",
                       "hdc_loss", "ecc_residual"});

  for (const double ber : target_bers) {
    const double interval =
        ber == 0.0 ? dram.base_refresh_ms : mem::interval_for_error_rate(ber, dram);
    const double gain = mem::energy_efficiency_gain(interval, dram);

    util::RunningStats dnn_loss, hdc_loss;
    for (std::size_t r = 0; r < bench::repetitions(); ++r) {
      util::Xoshiro256 rng(0x4b + 31 * r + static_cast<int>(ber * 1000));
      auto dnn_victim = dnn;  // value copy
      auto regions = dnn_victim.memory_regions();
      fault::BitFlipInjector::inject_bit_errors(regions, ber, rng);
      dnn_loss.add(util::quality_loss(dnn_clean,
                                      dnn_victim.evaluate(split.test)));

      model::HdcModel hdc_victim = hdc.model();
      auto hdc_regions = hdc_victim.memory_regions();
      fault::BitFlipInjector::inject_bit_errors(hdc_regions, ber, rng);
      hdc_loss.add(util::quality_loss(
          hdc_clean, hdc_victim.evaluate(queries, split.test.labels)));
    }

    table.add_row({util::fixed(interval, 0), util::pct(ber, 1),
                   util::pct(gain, 1), util::pct(dnn_loss.mean()),
                   util::pct(hdc_loss.mean()),
                   util::pct(mem::residual_bit_error_rate(ber, ecc), 3)});
    csv.row(interval, ber, gain, dnn_loss.mean(), hdc_loss.mean(),
            mem::residual_bit_error_rate(ber, ecc));
  }
  table.print(std::cout);
  std::cout
      << "(paper: 4%/6% error <-> 14%/22% energy gain; HDC keeps accuracy,\n"
         " DNN does not. SECDED ECC cannot correct percent-level BER — its\n"
         " residual error stays percent-level while costing "
      << util::pct(ecc.storage_overhead(), 1) << " storage and "
      << util::pct(ecc.access_energy_overhead, 0) << " access energy.)\n";
  return 0;
}
