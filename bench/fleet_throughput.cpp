// Closed-loop fleet load generator: for each shard count N it stands up
// a Fleet + TCP Frontend on loopback, drives it with blocking Clients
// (one per load thread, each its own sockets), injects faults mid-run so
// the per-shard scrubbers have real repair work, and reports aggregate
// QPS, p50/p99 latency and per-shard recovery counters.
//
// Emits one JSON line to stdout and BENCH_fleet.json, and *enforces* the
// scaling gate: efficiency at the largest shard count must be at least
// ROBUSTHD_FLEET_GATE (default 0.70) or the process exits nonzero — this
// is the CI tripwire against serialization creeping into the fleet path.
//
// The sweep is weak scaling: offered load grows with the fleet
// (ROBUSTHD_FLEET_CLIENTS closed-loop client threads per shard), and
// efficiency is normalised core-aware:
//
//   efficiency(N) = QPS(N) / (min(N, hardware cores) x QPS(1))
//
// On a multicore box this is the standard weak-scaling fraction: N
// shards under N x the per-shard load should deliver N x the
// throughput until the cores run out. On a single-core box
// min(N, cores) == 1 and the gate degenerates into an overhead gate:
// growing the fleet (and its offered load) must never cost more than
// 30% of single-shard throughput. Both readings trip on the same
// regression class — locks or hot shared state on the per-request path.
//
// Knobs (environment):
//   ROBUSTHD_FLEET_SHARDS   comma list of shard counts   (default 1,2,4,8)
//   ROBUSTHD_FLEET_SECONDS  measured seconds per point   (default 2)
//   ROBUSTHD_FLEET_CLIENTS  client threads per shard     (default 2)
//   ROBUSTHD_FLEET_DIM      hypervector dimension        (default 2048)
//   ROBUSTHD_FLEET_RATE     mid-run bit-flip rate        (default 0.05)
//   ROBUSTHD_FLEET_RECOVERY 0 disables the scrubbers     (default 1)
//   ROBUSTHD_FLEET_GATE     efficiency floor, 0 disables (default 0.70)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "robusthd/fleet/client.hpp"
#include "robusthd/fleet/fleet.hpp"
#include "robusthd/fleet/frontend.hpp"

namespace {

using namespace robusthd;
using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed >= 0.0) return parsed;
  }
  return fallback;
}

std::vector<std::size_t> env_shard_counts() {
  std::vector<std::size_t> counts;
  if (const char* v = std::getenv("ROBUSTHD_FLEET_SHARDS")) {
    std::stringstream ss(v);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const long long parsed = std::atoll(item.c_str());
      if (parsed > 0) counts.push_back(static_cast<std::size_t>(parsed));
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

struct World {
  std::vector<hv::BinVec> queries;
  model::HdcModel model;
};

World make_world(std::size_t dim, std::uint64_t seed) {
  constexpr std::size_t kClasses = 4;
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> train;
  std::vector<int> labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(dim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < dim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 15; ++i) {
      train.push_back(noisy(c));
      labels.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 16; ++i) w.queries.push_back(noisy(c));
  }
  w.model = model::HdcModel::train(train, labels, kClasses, {});
  return w;
}

struct PointResult {
  std::size_t shards = 0;
  std::size_t clients = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t responses = 0;
  std::uint64_t client_failovers = 0;
  std::uint64_t transport_errors = 0;
  fleet::FleetStats fleet_stats;
};

PointResult run_point(const World& world, std::size_t shards,
                      std::size_t clients, double seconds,
                      double fault_rate, bool recovery) {
  std::vector<model::HdcModel> models;
  fleet::FleetConfig config;
  for (std::size_t s = 0; s < shards; ++s) {
    models.push_back(world.model);
    fleet::ShardConfig shard;
    shard.server.worker_threads = 1;  // scaling comes from shard count
    shard.server.queue_capacity = 256;
    shard.server.enable_recovery = recovery;
    config.shards.push_back(std::move(shard));
  }
  fleet::Fleet fleet(std::move(models), std::move(config));
  fleet::Frontend frontend(fleet);
  frontend.start();

  std::vector<fleet::Endpoint> endpoints;
  std::vector<std::string> groups;
  for (const auto port : frontend.ports()) {
    endpoints.push_back({"127.0.0.1", port});
    groups.push_back("default");
  }

  serve::LatencyHistogram latency;  // lock-free, shared across threads
  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> client_failovers{0};
  std::atomic<std::uint64_t> transport_errors{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      fleet::Client client(endpoints, groups);
      std::uint64_t tenant = t;  // stride over threads covers every shard
      std::size_t q = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto begin = Clock::now();
        const auto r =
            client.predict(tenant, world.queries[q % world.queries.size()]);
        const auto end = Clock::now();
        tenant += clients;
        ++q;
        if (!measuring.load(std::memory_order_relaxed)) continue;
        if (r.ok) {
          responses.fetch_add(1, std::memory_order_relaxed);
          latency.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   begin)
                  .count()));
          if (r.failover) {
            client_failovers.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (r.error == fleet::wire::ErrorCode::kNone) {
          transport_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Warmup (connections, caches, first batches), then measure.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  measuring.store(true, std::memory_order_relaxed);
  const auto t0 = Clock::now();

  // Half-way through, wound every shard: the remainder of the window runs
  // with the scrubbers actively repairing, so the reported QPS includes
  // recovery overhead and the per-shard repair counters are live.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds / 2.0));
  for (std::size_t s = 0; s < shards; ++s) {
    fleet.shard(s).server().inject_faults(
        fault_rate, fault::AttackMode::kRandom, 0x5eed + s);
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds / 2.0));

  const auto t1 = Clock::now();
  measuring.store(false, std::memory_order_relaxed);
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();

  PointResult r;
  r.shards = shards;
  r.clients = clients;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.responses = responses.load();
  r.qps = static_cast<double>(r.responses) / r.seconds;
  const auto summary = latency.summarize();
  r.p50_ms = summary.p50_ns / 1e6;
  r.p99_ms = summary.p99_ns / 1e6;
  r.client_failovers = client_failovers.load();
  r.transport_errors = transport_errors.load();

  fleet.drain();  // let the scrubbers finish the injected repair work
  r.fleet_stats = fleet.stats();
  frontend.stop();
  fleet.shutdown();
  return r;
}

}  // namespace

int main() {
  const auto shard_counts = env_shard_counts();
  const double seconds = env_double("ROBUSTHD_FLEET_SECONDS", 2.0);
  const std::size_t dim = bench::env_size("ROBUSTHD_FLEET_DIM", 2048);
  const double gate = env_double("ROBUSTHD_FLEET_GATE", 0.70);
  const double fault_rate = env_double("ROBUSTHD_FLEET_RATE", 0.05);
  const bool recovery = env_double("ROBUSTHD_FLEET_RECOVERY", 1.0) != 0.0;
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t clients_per_shard =
      bench::env_size("ROBUSTHD_FLEET_CLIENTS", 2);

  bench::header("fleet_throughput (loopback TCP, closed loop)");
  std::cout << "dim=" << dim << " seconds/point=" << seconds
            << " clients/shard=" << clients_per_shard << " cores=" << cores
            << " gate=" << gate << "\n";

  const auto world = make_world(dim, 0x5eed);

  std::vector<PointResult> points;
  double qps1 = 0.0;
  for (const auto shards : shard_counts) {
    auto point = run_point(world, shards, clients_per_shard * shards,
                           seconds, fault_rate, recovery);
    if (point.shards == 1) qps1 = point.qps;
    points.push_back(std::move(point));
    const auto& r = points.back();
    std::cout << "shards=" << r.shards << " clients=" << r.clients
              << " qps=" << static_cast<std::uint64_t>(r.qps)
              << " p50=" << r.p50_ms << "ms p99=" << r.p99_ms << "ms"
              << " repairs=" << r.fleet_stats.scrub_repairs
              << " degraded=" << r.fleet_stats.degraded_responses
              << " abstained=" << r.fleet_stats.abstained_responses << "\n";
  }

  // Core-aware efficiency per point, relative to the 1-shard baseline.
  auto efficiency = [&](const PointResult& r) {
    if (qps1 <= 0.0) return 0.0;
    const double ideal =
        static_cast<double>(std::min(r.shards, cores)) * qps1;
    return r.qps / ideal;
  };

  std::ostringstream json;
  json << "{\"bench\":\"fleet_throughput\",\"dim\":" << dim
       << ",\"seconds_per_point\":" << seconds << ",\"cores\":" << cores
       << ",\"gate\":" << gate << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i];
    if (i) json << ",";
    json << "{\"shards\":" << r.shards << ",\"clients\":" << r.clients
         << ",\"seconds\":" << r.seconds << ",\"qps\":" << r.qps
         << ",\"p50_ms\":" << r.p50_ms << ",\"p99_ms\":" << r.p99_ms
         << ",\"responses\":" << r.responses
         << ",\"client_failovers\":" << r.client_failovers
         << ",\"transport_errors\":" << r.transport_errors
         << ",\"efficiency\":" << efficiency(r)
         << ",\"server_failovers\":" << r.fleet_stats.failovers
         << ",\"per_shard\":[";
    for (std::size_t s = 0; s < r.fleet_stats.shards.size(); ++s) {
      const auto& sh = r.fleet_stats.shards[s];
      if (s) json << ",";
      json << "{\"completed\":" << sh.completed
           << ",\"rejected\":" << sh.rejected
           << ",\"scrub_repairs\":" << sh.scrub_repairs
           << ",\"scrub_substituted_bits\":" << sh.scrub_substituted_bits
           << ",\"faults_injected\":" << sh.faults_injected
           << ",\"quarantined_chunks\":" << sh.quarantined_chunks
           << ",\"degraded\":" << sh.degraded_responses
           << ",\"abstained\":" << sh.abstained_responses
           << ",\"breaker_trips\":" << sh.breaker_trips
           << ",\"p99_ms\":" << sh.p99_ms << "}";
    }
    json << "]}";
  }

  const auto& last = points.back();
  const double last_eff = efficiency(last);
  const bool gate_enabled = gate > 0.0 && last.shards > 1 && qps1 > 0.0;
  const bool gate_pass = !gate_enabled || last_eff >= gate;
  json << "],\"max_shards\":" << last.shards
       << ",\"max_shards_efficiency\":" << last_eff
       << ",\"gate_enabled\":" << (gate_enabled ? "true" : "false")
       << ",\"gate_pass\":" << (gate_pass ? "true" : "false") << "}";

  std::cout << json.str() << "\n";
  std::ofstream("BENCH_fleet.json") << json.str() << "\n";

  if (!gate_pass) {
    std::cerr << "FAIL: scaling efficiency " << last_eff << " at "
              << last.shards << " shards is below the " << gate
              << " gate\n";
    return 1;
  }
  return 0;
}
