// Table 4 — quality loss with and without the RobustHD self data recovery,
// per dataset, at 2/6/10% error rates.
//
// Protocol: train, inject the attack, then serve several epochs of
// unlabeled inference queries through the RecoveryEngine, and measure the
// final quality loss. Both damage profiles are reported:
//  * random   — uniform flips. At our synthetic geometry the binary HDC
//    model barely notices these (see EXPERIMENTS.md), so there is little
//    for recovery to repair; the engine's gates correctly keep it from
//    touching a healthy model.
//  * clustered — row-hammer-style contiguous damage, the profile the
//    chunk detector localises; this is where adaptive regeneration shows
//    its full effect.

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

namespace {

struct Outcome {
  double without_recovery = 0.0;
  double with_recovery = 0.0;
};

Outcome run_cell(const core::HdcClassifier& trained,
                 std::span<const hv::BinVec> queries,
                 std::span<const int> labels, double clean, double rate,
                 fault::AttackMode mode, std::uint64_t seed) {
  Outcome out;
  util::RunningStats no_rec, with_rec;
  for (std::size_t r = 0; r < bench::repetitions(); ++r) {
    // Without recovery.
    {
      model::HdcModel victim = trained.model();
      util::Xoshiro256 rng(seed + 977 * r);
      auto regions = victim.memory_regions();
      fault::BitFlipInjector::inject(regions, rate, mode, rng);
      no_rec.add(util::quality_loss(clean, victim.evaluate(queries, labels)));
    }
    // With recovery: same injection, then an unlabeled query stream.
    {
      model::HdcModel victim = trained.model();
      util::Xoshiro256 rng(seed + 977 * r);
      auto regions = victim.memory_regions();
      fault::BitFlipInjector::inject(regions, rate, mode, rng);
      model::RecoveryConfig config;
      config.seed = seed + 13 * r;
      model::RecoveryEngine engine(victim, config);
      for (int epoch = 0; epoch < 10; ++epoch) {
        for (const auto& q : queries) engine.observe(q);
      }
      with_rec.add(
          util::quality_loss(clean, victim.evaluate(queries, labels)));
    }
  }
  out.without_recovery = no_rec.mean();
  out.with_recovery = with_rec.mean();
  return out;
}

}  // namespace

int main() {
  bench::header("Table 4: quality loss with/without RobustHD data recovery");
  const double rates[] = {0.02, 0.06, 0.10};

  for (const auto mode :
       {fault::AttackMode::kClustered, fault::AttackMode::kRandom}) {
    const bool clustered = mode == fault::AttackMode::kClustered;
    std::cout << "\n-- " << (clustered ? "clustered (row-hammer) damage"
                                       : "uniform random damage")
              << " --\n";
    util::TextTable table({"Error", "Recovery", "MNIST", "UCIHAR", "ISOLET",
                           "FACE", "PAMAP", "PECAN"});
    util::CsvWriter csv(clustered ? "table4_recovery_clustered.csv"
                                  : "table4_recovery_random.csv",
                        {"dataset", "rate", "without", "with"});

    // outcome[rate][dataset]
    std::vector<std::vector<Outcome>> grid(
        3, std::vector<Outcome>(data::paper_datasets().size()));

    std::size_t d = 0;
    for (const auto& spec : data::paper_datasets()) {
      auto split = bench::load(spec.name);
      auto clf = core::HdcClassifier::train(split.train, {});
      const auto queries = clf.encoder().encode_all(split.test);
      const double clean =
          clf.model().evaluate(queries, split.test.labels);
      std::cout << "  " << spec.name << ": clean "
                << util::pct(clean) << "\n"
                << std::flush;
      for (int r = 0; r < 3; ++r) {
        grid[r][d] = run_cell(clf, queries, split.test.labels, clean,
                              rates[r], mode, 0xab5 + d * 101 + r);
        csv.row(spec.name, rates[r], grid[r][d].without_recovery,
                grid[r][d].with_recovery);
      }
      ++d;
    }

    for (int r = 0; r < 3; ++r) {
      std::vector<std::string> without{util::pct(rates[r], 0), "without"};
      std::vector<std::string> with{util::pct(rates[r], 0), "with"};
      for (std::size_t i = 0; i < grid[r].size(); ++i) {
        without.push_back(util::pct(grid[r][i].without_recovery));
        with.push_back(util::pct(grid[r][i].with_recovery));
      }
      table.add_row(without).add_row(with);
    }
    table.print(std::cout);
  }
  std::cout << "(paper, random damage: without 0.14-3.7%, with <=0.53%)\n";

  // Stress section: at the paper's error rates our binary models barely
  // lose accuracy (see EXPERIMENTS.md), which hides the regeneration in
  // the tables above. Bit-level agreement with the clean stored model is
  // the direct signal: how much of the damage did recovery actually undo?
  std::cout << "\n-- regeneration evidence: stored-bit agreement with the "
               "clean model (UCIHAR, clustered) --\n";
  {
    auto split = bench::load("UCIHAR");
    auto clf = core::HdcClassifier::train(split.train, {});
    const auto queries = clf.encoder().encode_all(split.test);
    const auto clean_model = clf.model();

    util::TextTable table({"Error", "Agreement attacked", "Agreement recovered",
                           "Damage undone"});
    for (const double rate : {0.05, 0.10, 0.15, 0.20}) {
      util::RunningStats before, after;
      for (std::size_t r = 0; r < bench::repetitions(); ++r) {
        model::HdcModel victim = clean_model;
        util::Xoshiro256 rng(0x57e55 + 31 * r + static_cast<int>(rate * 100));
        auto regions = victim.memory_regions();
        fault::BitFlipInjector::inject(regions, rate,
                                       fault::AttackMode::kClustered, rng);
        auto agreement = [&](const model::HdcModel& m) {
          double total = 0.0;
          for (std::size_t c = 0; c < m.num_classes(); ++c) {
            total += hv::similarity(m.class_vector(c).planes[0],
                                    clean_model.class_vector(c).planes[0]);
          }
          return total / static_cast<double>(m.num_classes());
        };
        before.add(agreement(victim));
        model::RecoveryConfig config;
        config.seed = 0x57e55 + 7 * r;
        model::RecoveryEngine engine(victim, config);
        for (int epoch = 0; epoch < 10; ++epoch) {
          for (const auto& q : queries) engine.observe(q);
        }
        after.add(agreement(victim));
      }
      const double undone =
          (after.mean() - before.mean()) / (1.0 - before.mean());
      table.add_row({util::pct(rate, 0), util::pct(before.mean(), 2),
                     util::pct(after.mean(), 2), util::pct(undone, 0)});
    }
    table.print(std::cout);
  }
  return 0;
}
