// Ablation — which recovery safeguards matter (DESIGN.md's stability
// mechanisms). Starting from the full RobustHD recovery configuration,
// each row disables one mechanism and reports the final quality loss after
// a clustered 4% attack followed by an unlabeled recovery stream:
//
//  * consensus buffering (majority of 3 trusted flaggers vs single-query
//    substitution — the paper's literal rule);
//  * repair budget (bounded vs unlimited rewrites per chunk);
//  * balanced repair (lockstep across classes vs first-come);
//  * chunk significance (noise-floor test vs raw argmax mismatch);
//  * absolute-similarity gate (typicality check vs margin-only trust).

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

namespace {

double run(const core::HdcClassifier& trained,
           std::span<const hv::BinVec> queries, std::span<const int> labels,
           double clean, const model::RecoveryConfig& config,
           std::uint64_t seed) {
  util::RunningStats loss;
  for (std::size_t r = 0; r < bench::repetitions(); ++r) {
    model::HdcModel victim = trained.model();
    util::Xoshiro256 rng(seed + 31 * r);
    auto regions = victim.memory_regions();
    fault::BitFlipInjector::inject(regions, 0.04,
                                   fault::AttackMode::kClustered, rng);
    auto cfg = config;
    cfg.seed = seed + 7 * r;
    model::RecoveryEngine engine(victim, cfg);
    for (int epoch = 0; epoch < 10; ++epoch) {
      for (const auto& q : queries) engine.observe(q);
    }
    loss.add(util::quality_loss(clean, victim.evaluate(queries, labels)));
  }
  return loss.mean();
}

}  // namespace

int main() {
  bench::header("Ablation: recovery stability mechanisms (UCIHAR, 4% clustered)");
  auto split = bench::load("UCIHAR");
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);

  // Damage without any recovery, for reference.
  util::RunningStats no_rec;
  for (std::size_t r = 0; r < bench::repetitions(); ++r) {
    model::HdcModel victim = clf.model();
    util::Xoshiro256 rng(0xab1 + 31 * r);
    auto regions = victim.memory_regions();
    fault::BitFlipInjector::inject(regions, 0.04,
                                   fault::AttackMode::kClustered, rng);
    no_rec.add(util::quality_loss(
        clean, victim.evaluate(queries, split.test.labels)));
  }

  struct Variant {
    const char* name;
    model::RecoveryConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"full configuration", {}});
  {
    model::RecoveryConfig c;
    c.consensus_flags = 1;
    variants.push_back({"- consensus (single-query substitution)", c});
  }
  {
    model::RecoveryConfig c;
    c.max_updates_per_chunk = 0;
    variants.push_back({"- repair budget (unlimited rewrites)", c});
  }
  {
    model::RecoveryConfig c;
    c.repair_balance_slack = 0;
    variants.push_back({"- balanced repair (first-come scheduling)", c});
  }
  {
    model::RecoveryConfig c;
    c.chunk_significance = 0.0;
    variants.push_back({"- significance (raw argmax mismatch)", c});
  }
  {
    model::RecoveryConfig c;
    c.absolute_gate_sigma = -100.0;
    variants.push_back({"- absolute gate (margin-only trust)", c});
  }

  util::TextTable table({"Variant", "Final loss", "vs no recovery"});
  util::CsvWriter csv("ablation_recovery_gates.csv",
                      {"variant", "final_loss"});
  table.add_row({"(no recovery)", util::pct(no_rec.mean()), "-"});
  for (const auto& v : variants) {
    const double loss =
        run(clf, queries, split.test.labels, clean, v.config, 0xab1);
    table.add_row({v.name, util::pct(loss),
                   loss <= no_rec.mean() ? "better" : "worse"});
    csv.row(v.name, loss);
  }
  table.print(std::cout);
  return 0;
}
