// Ablation — does the robustness story survive the choice of encoder?
// Trains HDC models with three encoder families (the paper's record/ID-
// level encoder, a thermometer variant, and a sparse random projection)
// and reports clean accuracy plus quality loss under random flips. The
// holographic-robustness claim is about the *binary distributed
// representation*, not one encoder, so the loss rows should look alike.

#include "bench_common.hpp"

#include "robusthd/hv/alt_encoders.hpp"
#include "robusthd/util/csv.hpp"

using namespace robusthd;

namespace {

struct Row {
  std::string name;
  double clean = 0.0;
  double loss5 = 0.0;
  double loss15 = 0.0;
};

Row evaluate_encoder(const std::string& name, const hv::Encoder& encoder,
                     const data::Split& split) {
  Row row;
  row.name = name;
  const auto train = encoder.encode_all(split.train);
  const auto test = encoder.encode_all(split.test);
  auto model = model::HdcModel::train(train, split.train.labels,
                                      split.train.num_classes, {});
  row.clean = model.evaluate(test, split.test.labels);
  row.loss5 = bench::hdc_quality_loss(model, test, split.test.labels,
                                      row.clean, 0.05,
                                      fault::AttackMode::kRandom, 0xe5c);
  row.loss15 = bench::hdc_quality_loss(model, test, split.test.labels,
                                       row.clean, 0.15,
                                       fault::AttackMode::kRandom, 0xe5d);
  return row;
}

}  // namespace

int main() {
  bench::header("Ablation: encoder family vs robustness (UCIHAR)");
  auto split = bench::load("UCIHAR");
  const std::size_t n = split.train.feature_count();

  std::vector<Row> rows;
  {
    hv::RecordEncoder encoder(n, hv::EncoderConfig{});
    rows.push_back(evaluate_encoder("record (ID-level)", encoder, split));
  }
  {
    hv::ThermometerEncoder encoder(n, hv::ThermometerEncoder::Config{});
    rows.push_back(evaluate_encoder("thermometer", encoder, split));
  }
  {
    hv::RandomProjectionEncoder encoder(
        n, hv::RandomProjectionEncoder::Config{});
    rows.push_back(evaluate_encoder("random projection", encoder, split));
  }

  util::TextTable table({"Encoder", "Clean", "Loss@5%", "Loss@15%"});
  util::CsvWriter csv("ablation_encoders.csv",
                      {"encoder", "clean", "loss5", "loss15"});
  for (const auto& row : rows) {
    table.add_row({row.name, util::pct(row.clean, 1), util::pct(row.loss5),
                   util::pct(row.loss15)});
    csv.row(row.name, row.clean, row.loss5, row.loss15);
  }
  table.print(std::cout);
  std::cout << "(expected: comparable low losses across encoder families —\n"
               " the robustness belongs to the representation)\n";
  return 0;
}
