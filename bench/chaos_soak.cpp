// Chaos soak — live-fire resilience of the serving runtime.
//
// Two phases over the same trained model and traffic:
//
//   1. baseline  — serve with recovery + sentinel on, no chaos: the
//                  latency and accuracy reference;
//   2. chaos     — identical server with the ChaosAgent driving a
//                  StreamAttacker-style campaign against the live model
//                  while the scrubber repairs, the sentinel quarantines,
//                  and traffic keeps flowing.
//
// The gate compares the steady-state canary accuracy under live attack +
// recovery against the *offline* Table-4 protocol at the matched attack
// rate (damage a quiet copy, run the RecoveryEngine over the same query
// stream): the serving stack must hold what the offline experiment holds,
// minus a tolerance. Exit code 1 when the gate fails — CI runs this.
//
// Emits one JSON line to stdout and BENCH_chaos.json.
//
// Knobs: ROBUSTHD_CHAOS_RATE (fraction of stored bits, default 0.06 — a
// Table-3/4 attack rate), ROBUSTHD_SOAK_SECONDS (per phase, default 5),
// ROBUSTHD_CHAOS_TOL (accuracy tolerance, default 0.10), ROBUSTHD_WORKERS,
// plus the usual ROBUSTHD_TRAIN / ROBUSTHD_TEST caps.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "bench_common.hpp"

namespace robusthd {
namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PhaseResult {
  double qps = 0.0;
  double traffic_accuracy = 0.0;  ///< over non-abstained responses
  serve::ServerStats stats{};
};

/// Drives predict_all passes over `queries` for ~`seconds`, tallying
/// accuracy on the responses that carried a prediction.
PhaseResult soak(serve::Server& server,
                 const std::vector<hv::BinVec>& queries,
                 const std::vector<int>& labels, double seconds) {
  PhaseResult result;
  std::size_t answered = 0;
  std::size_t correct = 0;
  std::size_t scored = 0;
  const auto start = std::chrono::steady_clock::now();
  while (seconds_since(start) < seconds) {
    const auto responses = server.predict_all(queries);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      ++answered;
      if (responses[i].abstained) continue;
      ++scored;
      if (responses[i].predicted == labels[i]) ++correct;
    }
  }
  const double elapsed = seconds_since(start);
  server.drain();
  result.qps = static_cast<double>(answered) / elapsed;
  result.traffic_accuracy =
      scored == 0 ? 0.0
                  : static_cast<double>(correct) /
                        static_cast<double>(scored);
  result.stats = server.stats();
  return result;
}

int run() {
  const double rate = env_double("ROBUSTHD_CHAOS_RATE", 0.06);
  const double phase_seconds = env_double("ROBUSTHD_SOAK_SECONDS", 5.0);
  const double tolerance = env_double("ROBUSTHD_CHAOS_TOL", 0.10);
  const std::size_t workers = bench::env_size("ROBUSTHD_WORKERS", 4);

  bench::header("chaos soak (live-fire attack vs serving recovery ladder)");
  const auto split = bench::load("PAMAP");
  hv::EncoderConfig encoder_config;
  encoder_config.dimension = 4000;
  const hv::RecordEncoder encoder(split.train.feature_count(),
                                  encoder_config);
  const auto train = encoder.encode_all(split.train);
  const auto all_queries = encoder.encode_all(split.test);
  const auto trained = model::HdcModel::train(
      train, split.train.labels, split.train.num_classes, {});

  // Hold out canaries for the sentinel; the rest is client traffic.
  const std::size_t canary_count =
      std::min<std::size_t>(150, all_queries.size() / 3);
  std::vector<hv::BinVec> canaries(all_queries.begin(),
                                   all_queries.begin() + canary_count);
  std::vector<int> canary_labels(split.test.labels.begin(),
                                 split.test.labels.begin() + canary_count);
  std::vector<hv::BinVec> traffic(all_queries.begin() + canary_count,
                                  all_queries.end());
  std::vector<int> traffic_labels(split.test.labels.begin() + canary_count,
                                  split.test.labels.end());

  serve::ServerConfig config;
  config.worker_threads = workers;
  config.max_batch = 16;
  config.enable_recovery = true;
  config.sentinel.enabled = true;
  config.sentinel.period = std::chrono::milliseconds(10);
  config.sentinel.chunks = config.scrubber.recovery.chunks;
  config.canaries = canaries;
  config.canary_labels = canary_labels;

  // ---- Phase 1: no chaos ------------------------------------------------
  PhaseResult baseline;
  {
    serve::Server server(trained, config);
    baseline = soak(server, traffic, traffic_labels, phase_seconds);
    server.shutdown();
  }

  // ---- Phase 2: chaos campaign while serving ----------------------------
  auto chaos_config = config;
  chaos_config.chaos.enabled = true;
  chaos_config.chaos.rate = rate;
  chaos_config.chaos.mode = fault::AttackMode::kRandom;
  // Spend the campaign budget over the first ~60% of the phase so the
  // tail of the soak measures the recovered steady state.
  chaos_config.chaos.steps_to_full = 250;
  chaos_config.chaos.period = std::chrono::microseconds(
      static_cast<long>(phase_seconds * 0.6 * 1e6 / 250.0));

  PhaseResult chaos;
  double canary_accuracy = 0.0;
  {
    serve::Server server(trained, chaos_config);
    // Warm the batch/encode paths, then measure from a clean slate — the
    // bench-facing use of Server::reset_stats().
    std::ignore = server.predict_all(
        std::span<const hv::BinVec>(traffic.data(),
                                    std::min<std::size_t>(64, traffic.size())));
    server.drain();
    server.reset_stats();
    chaos = soak(server, traffic, traffic_labels, phase_seconds);
    canary_accuracy = chaos.stats.canary_accuracy;
    server.shutdown();
  }

  // ---- Offline reference: Table-4 protocol at the matched rate ----------
  const double clean_accuracy =
      trained.evaluate(traffic, traffic_labels);
  double offline_recovered = 0.0;
  {
    model::HdcModel victim = trained;
    util::Xoshiro256 rng(0xdac22);
    auto regions = victim.memory_regions();
    fault::BitFlipInjector::inject(regions, rate,
                                   fault::AttackMode::kRandom, rng);
    model::RecoveryEngine engine(victim, config.scrubber.recovery);
    for (int epoch = 0; epoch < 10; ++epoch) {
      for (const auto& q : traffic) engine.observe(q);
    }
    offline_recovered = victim.evaluate(traffic, traffic_labels);
  }

  const double gate_floor = offline_recovered - tolerance;
  const bool gate_pass = canary_accuracy >= gate_floor;
  const double p99_base_ms = baseline.stats.end_to_end.p99_ns / 1e6;
  const double p99_chaos_ms = chaos.stats.end_to_end.p99_ns / 1e6;
  const double repairs_per_sec =
      static_cast<double>(chaos.stats.scrub_repairs) / phase_seconds;

  util::TextTable table({"metric", "baseline", "chaos"});
  table.add_row({"qps", util::fixed(baseline.qps, 1),
                 util::fixed(chaos.qps, 1)});
  table.add_row({"p99 latency (ms)", util::fixed(p99_base_ms, 3),
                 util::fixed(p99_chaos_ms, 3)});
  table.add_row({"traffic accuracy",
                 util::fixed(baseline.traffic_accuracy, 4),
                 util::fixed(chaos.traffic_accuracy, 4)});
  table.add_row({"canary accuracy (effective)",
                 util::fixed(baseline.stats.canary_accuracy, 4),
                 util::fixed(canary_accuracy, 4)});
  table.add_row({"chaos flips", "0",
                 std::to_string(chaos.stats.chaos_flips)});
  table.add_row({"repairs/sec", "-", util::fixed(repairs_per_sec, 1)});
  table.add_row({"quarantined chunks (final)", "0",
                 std::to_string(chaos.stats.quarantined_chunks)});
  table.add_row({"degraded responses", "0",
                 std::to_string(chaos.stats.degraded_responses)});
  table.add_row({"abstained responses", "0",
                 std::to_string(chaos.stats.abstained_responses)});
  table.add_row({"breaker trips", "0",
                 std::to_string(chaos.stats.breaker_trips)});
  table.add_row({"offline recovered accuracy",
                 util::fixed(offline_recovered, 4), "-"});
  table.add_row({"gate floor (offline - tol)",
                 util::fixed(gate_floor, 4),
                 gate_pass ? "PASS" : "FAIL"});
  table.print(std::cout);

  std::ostringstream json;
  json << "{\"bench\":\"chaos_soak\""
       << ",\"rate\":" << rate
       << ",\"phase_seconds\":" << phase_seconds
       << ",\"workers\":" << workers
       << ",\"clean_accuracy\":" << clean_accuracy
       << ",\"qps_baseline\":" << baseline.qps
       << ",\"qps_chaos\":" << chaos.qps
       << ",\"p99_baseline_ms\":" << p99_base_ms
       << ",\"p99_chaos_ms\":" << p99_chaos_ms
       << ",\"p99_delta_ms\":" << p99_chaos_ms - p99_base_ms
       << ",\"traffic_accuracy_baseline\":" << baseline.traffic_accuracy
       << ",\"traffic_accuracy_chaos\":" << chaos.traffic_accuracy
       << ",\"canary_accuracy\":" << canary_accuracy
       << ",\"offline_recovered_accuracy\":" << offline_recovered
       << ",\"tolerance\":" << tolerance
       << ",\"chaos_ticks\":" << chaos.stats.chaos_ticks
       << ",\"chaos_flips\":" << chaos.stats.chaos_flips
       << ",\"repairs_per_sec\":" << repairs_per_sec
       << ",\"substituted_bits\":" << chaos.stats.scrub_substituted_bits
       << ",\"canary_runs\":" << chaos.stats.canary_runs
       << ",\"quarantined_chunks\":" << chaos.stats.quarantined_chunks
       << ",\"priority_marks\":" << chaos.stats.priority_marks
       << ",\"degraded_responses\":" << chaos.stats.degraded_responses
       << ",\"abstained_responses\":" << chaos.stats.abstained_responses
       << ",\"breaker_trips\":" << chaos.stats.breaker_trips
       << ",\"reload_retries\":" << chaos.stats.reload_retries
       << ",\"gate_pass\":" << (gate_pass ? "true" : "false") << "}";
  std::cout << json.str() << "\n";
  std::ofstream("BENCH_chaos.json") << json.str() << "\n";

  if (!gate_pass) {
    std::cerr << "chaos_soak gate FAILED: canary accuracy "
              << canary_accuracy << " < offline recovered "
              << offline_recovered << " - tolerance " << tolerance << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robusthd

int main() { return robusthd::run(); }
