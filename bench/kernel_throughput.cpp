// Kernel-layer throughput bench: measures the SIMD similarity kernels
// against the portable scalar reference and the batched distance-matrix
// prediction path against the per-pair scalar baseline it replaced.
//
// Emits one machine-readable JSON line to stdout and to BENCH_kernels.json
// (next to the binary):
//
//   {"bench":"kernel_throughput","isa":"avx512",
//    "hamming_gbits_s":{"scalar":...,"avx2":...,"avx512":...},
//    "matrix_gdist_s":{"scalar":...,...},
//    "batch_pred_per_s":...,"scalar_pairwise_pred_per_s":...,
//    "batch_speedup":...,"wordops_per_pred":...}
//
// The acceptance number is batch_speedup: batched distance-matrix
// prediction (active ISA) over per-pair scalar-kernel prediction, both
// measured here on the same model and query stream. wordops_per_pred is
// pim::hdc_search_wordops for the same shape, tying the measured kernels
// to the analytic GPU/PIM cost models (docs/performance.md).
//
// The arena_vs_rowmajor section runs batched prediction twice on a model
// deliberately sized past L2 — once forced onto the historical row-major
// pointer-table path, once on the tiled PlaneArena path — and records the
// layout speedup. On an AVX-512 host the speedup is a gate: below
// ROBUSTHD_KT_ARENA_GATE (default 1.5) the bench exits nonzero.
//
// Knobs: ROBUSTHD_KT_DIM (default 10000), ROBUSTHD_KT_CLASSES (26),
// ROBUSTHD_KT_BATCH (256), ROBUSTHD_KT_MS (per-measurement budget, 300),
// ROBUSTHD_KT_ARENA_DIM (262144), ROBUSTHD_KT_ARENA_CLASSES (128),
// ROBUSTHD_KT_ARENA_BATCH (256), ROBUSTHD_KT_ARENA_GATE (1.5; 0 disables).

#include <chrono>
#include <cstdint>
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace robusthd {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` repeatedly for at least `budget_s` seconds (after one
/// untimed warmup call) and returns iterations per second.
template <typename Body>
double measure_rate(double budget_s, Body&& body) {
  body();  // warmup: page in, settle dispatch
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < budget_s);
  return static_cast<double>(iters) / elapsed;
}

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) return std::atof(v);
  return fallback;
}

int run() {
  const std::size_t dim = bench::env_size("ROBUSTHD_KT_DIM", 10000);
  const std::size_t classes = bench::env_size("ROBUSTHD_KT_CLASSES", 26);
  const std::size_t batch = bench::env_size("ROBUSTHD_KT_BATCH", 256);
  const double budget_s =
      static_cast<double>(bench::env_size("ROBUSTHD_KT_MS", 300)) / 1000.0;
  const std::size_t words = util::words_for_bits(dim);

  bench::header("kernel throughput (SIMD dispatch vs scalar reference)");
  std::cout << "active isa: " << kernels::isa_name(kernels::active_isa())
            << "  dim=" << dim << " classes=" << classes
            << " batch=" << batch << "\n";

  util::Xoshiro256 rng(0x51ead);
  std::vector<hv::BinVec> planes_store, queries_store;
  std::vector<const std::uint64_t*> planes, queries;
  for (std::size_t c = 0; c < classes; ++c) {
    planes_store.push_back(hv::BinVec::random(dim, rng));
  }
  for (const auto& p : planes_store) planes.push_back(p.words().data());
  for (std::size_t q = 0; q < batch; ++q) {
    queries_store.push_back(hv::BinVec::random(dim, rng));
  }
  for (const auto& q : queries_store) queries.push_back(q.words().data());

  // Per-ISA raw kernel throughput: pairwise Hamming (Gbit/s of compared
  // dimensions) and the distance matrix (G distances/s worth of
  // query x plane pairs).
  std::ostringstream hamming_json, matrix_json;
  hamming_json << "{";
  matrix_json << "{";
  bool first = true;
  for (const auto isa : {kernels::Isa::kScalar, kernels::Isa::kAvx2,
                         kernels::Isa::kAvx512}) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;

    const double hamming_rate = measure_rate(budget_s, [&] {
      volatile std::size_t sink =
          ops->hamming(queries[0], planes[0], words);
      (void)sink;
    });
    const double gbits = hamming_rate * static_cast<double>(dim) / 1.0e9;

    std::vector<std::uint32_t> out(batch * classes);
    const double matrix_rate = measure_rate(budget_s, [&] {
      ops->hamming_matrix(queries.data(), batch, planes.data(), classes,
                          words, out.data());
    });
    const double gdist = matrix_rate * static_cast<double>(batch) *
                         static_cast<double>(classes) / 1.0e9;

    std::cout << "  " << kernels::isa_name(isa) << ": hamming "
              << gbits << " Gbit/s, matrix " << gdist << " Gdist/s\n";
    const char* sep = first ? "" : ",";
    hamming_json << sep << "\"" << kernels::isa_name(isa) << "\":" << gbits;
    matrix_json << sep << "\"" << kernels::isa_name(isa) << "\":" << gdist;
    first = false;
  }
  hamming_json << "}";
  matrix_json << "}";

  // End-to-end prediction: batched matrix path (active ISA) vs the per-pair
  // scalar baseline this PR replaced — the same work predict() used to do,
  // pinned to the scalar kernel table.
  std::vector<hv::SignedAccumulator> accs;
  for (std::size_t c = 0; c < classes; ++c) {
    hv::SignedAccumulator acc(dim);
    for (int i = 0; i < 4; ++i) acc.add(hv::BinVec::random(dim, rng));
    accs.push_back(std::move(acc));
  }
  const auto model = model::HdcModel::from_accumulators(accs, 1);

  const double batch_rate = measure_rate(budget_s, [&] {
    volatile int sink = model.predict_batch(queries_store, 1).back();
    (void)sink;
  });
  const double batch_pred_per_s = batch_rate * static_cast<double>(batch);

  const auto* scalar = kernels::ops_for(kernels::Isa::kScalar);
  std::vector<std::uint32_t> row(classes);
  const double scalar_rate = measure_rate(budget_s, [&] {
    // Per-pair scalar baseline: k independent hamming scans per query,
    // argmin by distance — the pre-kernel predict() inner loop.
    int last = -1;
    for (std::size_t q = 0; q < batch; ++q) {
      std::size_t best = 0;
      std::uint32_t best_d = UINT32_MAX;
      for (std::size_t c = 0; c < classes; ++c) {
        row[c] = static_cast<std::uint32_t>(
            scalar->hamming(queries[q], planes[c], words));
        if (row[c] < best_d) {
          best_d = row[c];
          best = c;
        }
      }
      last = static_cast<int>(best);
    }
    volatile int sink = last;
    (void)sink;
  });
  const double scalar_pred_per_s = scalar_rate * static_cast<double>(batch);
  const double speedup =
      scalar_pred_per_s > 0.0 ? batch_pred_per_s / scalar_pred_per_s : 0.0;

  std::cout << "  batched (" << kernels::isa_name(kernels::active_isa())
            << "): " << batch_pred_per_s << " pred/s\n"
            << "  per-pair scalar baseline: " << scalar_pred_per_s
            << " pred/s\n"
            << "  speedup: " << speedup << "x\n";

  // ---- arena vs row-major layout at an L2-exceeding shape ---------------
  // The small default shape above fits in L2, where layout cannot matter;
  // this section sizes the model well past it (default 128 classes x
  // 262144 dims = a 4 MiB model the row-major path re-streams from L3
  // once per 32-query block) so the arena's tile reuse shows up as
  // wall-clock.
  const std::size_t a_dim = bench::env_size("ROBUSTHD_KT_ARENA_DIM", 262144);
  const std::size_t a_classes =
      bench::env_size("ROBUSTHD_KT_ARENA_CLASSES", 128);
  const std::size_t a_batch = bench::env_size("ROBUSTHD_KT_ARENA_BATCH", 256);
  const double gate = env_double("ROBUSTHD_KT_ARENA_GATE", 1.5);

  std::vector<model::ClassVector> a_planes;
  for (std::size_t c = 0; c < a_classes; ++c) {
    model::ClassVector cv;
    cv.planes.push_back(hv::BinVec::random(a_dim, rng));
    a_planes.push_back(std::move(cv));
  }
  const auto a_model = model::HdcModel::from_planes(std::move(a_planes), 1);
  std::vector<hv::BinVec> a_queries;
  for (std::size_t q = 0; q < a_batch; ++q) {
    a_queries.push_back(hv::BinVec::random(a_dim, rng));
  }

  // Three alternating passes per layout, best-of: on a shared host a
  // single timed window can absorb a neighbor's burst, and the gate
  // judges the paired ratio — best-of keeps one unlucky window from
  // flaking it.
  const auto prev_layout = model::scoring_layout();
  double rowmajor_rate = 0.0;
  double arena_rate = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    model::set_scoring_layout(model::ScoringLayout::kRowMajor);
    rowmajor_rate = std::max(rowmajor_rate, measure_rate(budget_s, [&] {
                      volatile int sink =
                          a_model.predict_batch(a_queries, 1).back();
                      (void)sink;
                    }));
    model::set_scoring_layout(model::ScoringLayout::kArena);
    arena_rate = std::max(arena_rate, measure_rate(budget_s, [&] {
                   volatile int sink =
                       a_model.predict_batch(a_queries, 1).back();
                   (void)sink;
                 }));
  }
  model::set_scoring_layout(prev_layout);

  const double rowmajor_pred_per_s =
      rowmajor_rate * static_cast<double>(a_batch);
  const double arena_pred_per_s = arena_rate * static_cast<double>(a_batch);
  const double arena_speedup =
      rowmajor_pred_per_s > 0.0 ? arena_pred_per_s / rowmajor_pred_per_s : 0.0;
  // Only an AVX-512 host is held to the gate: the tiled layout is sized
  // for 512-bit streams, and narrower ISAs bottleneck on popcount long
  // before the memory system (so layout cannot buy them 1.5x).
  const bool gate_enforced =
      gate > 0.0 && kernels::active_isa() == kernels::Isa::kAvx512;

  std::cout << "  arena layout (" << a_classes << " classes x " << a_dim
            << " dims, batch " << a_batch << ", "
            << a_model.arena().bytes() / (1024.0 * 1024.0) << " MiB arena, "
            << "tile " << a_model.arena().tile_words() << " words, hugepage="
            << (a_model.arena().hugepage_backed() ? "yes" : "no") << ")\n"
            << "    row-major: " << rowmajor_pred_per_s << " pred/s\n"
            << "    arena:     " << arena_pred_per_s << " pred/s\n"
            << "    layout speedup: " << arena_speedup << "x (gate "
            << gate << "x, " << (gate_enforced ? "enforced" : "advisory")
            << ")\n";

  std::ostringstream json;
  json << "{\"bench\":\"kernel_throughput\""
       << ",\"isa\":\"" << kernels::isa_name(kernels::active_isa()) << "\""
       << ",\"dim\":" << dim << ",\"classes\":" << classes
       << ",\"batch\":" << batch
       << ",\"hamming_gbits_s\":" << hamming_json.str()
       << ",\"matrix_gdist_s\":" << matrix_json.str()
       << ",\"batch_pred_per_s\":" << batch_pred_per_s
       << ",\"scalar_pairwise_pred_per_s\":" << scalar_pred_per_s
       << ",\"batch_speedup\":" << speedup << ",\"wordops_per_pred\":"
       << pim::hdc_search_wordops(dim, classes)
       << ",\"arena_vs_rowmajor\":{\"dim\":" << a_dim
       << ",\"classes\":" << a_classes << ",\"batch\":" << a_batch
       << ",\"arena_bytes\":" << a_model.arena().bytes()
       << ",\"tile_words\":" << a_model.arena().tile_words()
       << ",\"hugepage\":" << (a_model.arena().hugepage_backed() ? "true"
                                                                 : "false")
       << ",\"rowmajor_pred_per_s\":" << rowmajor_pred_per_s
       << ",\"arena_pred_per_s\":" << arena_pred_per_s
       << ",\"arena_speedup\":" << arena_speedup << ",\"gate\":" << gate
       << ",\"gate_enforced\":" << (gate_enforced ? "true" : "false") << "}}";
  std::cout << json.str() << "\n";
  std::ofstream("BENCH_kernels.json") << json.str() << "\n";

  if (gate_enforced && arena_speedup < gate) {
    std::cerr << "FAIL: arena layout speedup " << arena_speedup
              << "x below gate " << gate << "x\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robusthd

int main() { return robusthd::run(); }
