// Kernel-layer throughput bench: measures the SIMD similarity kernels
// against the portable scalar reference and the batched distance-matrix
// prediction path against the per-pair scalar baseline it replaced.
//
// Emits one machine-readable JSON line to stdout and to BENCH_kernels.json
// (next to the binary):
//
//   {"bench":"kernel_throughput","isa":"avx512",
//    "hamming_gbits_s":{"scalar":...,"avx2":...,"avx512":...},
//    "matrix_gdist_s":{"scalar":...,...},
//    "batch_pred_per_s":...,"scalar_pairwise_pred_per_s":...,
//    "batch_speedup":...,"wordops_per_pred":...}
//
// The acceptance number is batch_speedup: batched distance-matrix
// prediction (active ISA) over per-pair scalar-kernel prediction, both
// measured here on the same model and query stream. wordops_per_pred is
// pim::hdc_search_wordops for the same shape, tying the measured kernels
// to the analytic GPU/PIM cost models (docs/performance.md).
//
// Knobs: ROBUSTHD_KT_DIM (default 10000), ROBUSTHD_KT_CLASSES (26),
// ROBUSTHD_KT_BATCH (256), ROBUSTHD_KT_MS (per-measurement budget, 300).

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace robusthd {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` repeatedly for at least `budget_s` seconds (after one
/// untimed warmup call) and returns iterations per second.
template <typename Body>
double measure_rate(double budget_s, Body&& body) {
  body();  // warmup: page in, settle dispatch
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < budget_s);
  return static_cast<double>(iters) / elapsed;
}

int run() {
  const std::size_t dim = bench::env_size("ROBUSTHD_KT_DIM", 10000);
  const std::size_t classes = bench::env_size("ROBUSTHD_KT_CLASSES", 26);
  const std::size_t batch = bench::env_size("ROBUSTHD_KT_BATCH", 256);
  const double budget_s =
      static_cast<double>(bench::env_size("ROBUSTHD_KT_MS", 300)) / 1000.0;
  const std::size_t words = util::words_for_bits(dim);

  bench::header("kernel throughput (SIMD dispatch vs scalar reference)");
  std::cout << "active isa: " << kernels::isa_name(kernels::active_isa())
            << "  dim=" << dim << " classes=" << classes
            << " batch=" << batch << "\n";

  util::Xoshiro256 rng(0x51ead);
  std::vector<hv::BinVec> planes_store, queries_store;
  std::vector<const std::uint64_t*> planes, queries;
  for (std::size_t c = 0; c < classes; ++c) {
    planes_store.push_back(hv::BinVec::random(dim, rng));
  }
  for (const auto& p : planes_store) planes.push_back(p.words().data());
  for (std::size_t q = 0; q < batch; ++q) {
    queries_store.push_back(hv::BinVec::random(dim, rng));
  }
  for (const auto& q : queries_store) queries.push_back(q.words().data());

  // Per-ISA raw kernel throughput: pairwise Hamming (Gbit/s of compared
  // dimensions) and the distance matrix (G distances/s worth of
  // query x plane pairs).
  std::ostringstream hamming_json, matrix_json;
  hamming_json << "{";
  matrix_json << "{";
  bool first = true;
  for (const auto isa : {kernels::Isa::kScalar, kernels::Isa::kAvx2,
                         kernels::Isa::kAvx512}) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;

    const double hamming_rate = measure_rate(budget_s, [&] {
      volatile std::size_t sink =
          ops->hamming(queries[0], planes[0], words);
      (void)sink;
    });
    const double gbits = hamming_rate * static_cast<double>(dim) / 1.0e9;

    std::vector<std::uint32_t> out(batch * classes);
    const double matrix_rate = measure_rate(budget_s, [&] {
      ops->hamming_matrix(queries.data(), batch, planes.data(), classes,
                          words, out.data());
    });
    const double gdist = matrix_rate * static_cast<double>(batch) *
                         static_cast<double>(classes) / 1.0e9;

    std::cout << "  " << kernels::isa_name(isa) << ": hamming "
              << gbits << " Gbit/s, matrix " << gdist << " Gdist/s\n";
    const char* sep = first ? "" : ",";
    hamming_json << sep << "\"" << kernels::isa_name(isa) << "\":" << gbits;
    matrix_json << sep << "\"" << kernels::isa_name(isa) << "\":" << gdist;
    first = false;
  }
  hamming_json << "}";
  matrix_json << "}";

  // End-to-end prediction: batched matrix path (active ISA) vs the per-pair
  // scalar baseline this PR replaced — the same work predict() used to do,
  // pinned to the scalar kernel table.
  std::vector<hv::SignedAccumulator> accs;
  for (std::size_t c = 0; c < classes; ++c) {
    hv::SignedAccumulator acc(dim);
    for (int i = 0; i < 4; ++i) acc.add(hv::BinVec::random(dim, rng));
    accs.push_back(std::move(acc));
  }
  const auto model = model::HdcModel::from_accumulators(accs, 1);

  const double batch_rate = measure_rate(budget_s, [&] {
    volatile int sink = model.predict_batch(queries_store, 1).back();
    (void)sink;
  });
  const double batch_pred_per_s = batch_rate * static_cast<double>(batch);

  const auto* scalar = kernels::ops_for(kernels::Isa::kScalar);
  std::vector<std::uint32_t> row(classes);
  const double scalar_rate = measure_rate(budget_s, [&] {
    // Per-pair scalar baseline: k independent hamming scans per query,
    // argmin by distance — the pre-kernel predict() inner loop.
    int last = -1;
    for (std::size_t q = 0; q < batch; ++q) {
      std::size_t best = 0;
      std::uint32_t best_d = UINT32_MAX;
      for (std::size_t c = 0; c < classes; ++c) {
        row[c] = static_cast<std::uint32_t>(
            scalar->hamming(queries[q], planes[c], words));
        if (row[c] < best_d) {
          best_d = row[c];
          best = c;
        }
      }
      last = static_cast<int>(best);
    }
    volatile int sink = last;
    (void)sink;
  });
  const double scalar_pred_per_s = scalar_rate * static_cast<double>(batch);
  const double speedup =
      scalar_pred_per_s > 0.0 ? batch_pred_per_s / scalar_pred_per_s : 0.0;

  std::cout << "  batched (" << kernels::isa_name(kernels::active_isa())
            << "): " << batch_pred_per_s << " pred/s\n"
            << "  per-pair scalar baseline: " << scalar_pred_per_s
            << " pred/s\n"
            << "  speedup: " << speedup << "x\n";

  std::ostringstream json;
  json << "{\"bench\":\"kernel_throughput\""
       << ",\"isa\":\"" << kernels::isa_name(kernels::active_isa()) << "\""
       << ",\"dim\":" << dim << ",\"classes\":" << classes
       << ",\"batch\":" << batch
       << ",\"hamming_gbits_s\":" << hamming_json.str()
       << ",\"matrix_gdist_s\":" << matrix_json.str()
       << ",\"batch_pred_per_s\":" << batch_pred_per_s
       << ",\"scalar_pairwise_pred_per_s\":" << scalar_pred_per_s
       << ",\"batch_speedup\":" << speedup << ",\"wordops_per_pred\":"
       << pim::hdc_search_wordops(dim, classes) << "}";
  std::cout << json.str() << "\n";
  std::ofstream("BENCH_kernels.json") << json.str() << "\n";
  return 0;
}

}  // namespace
}  // namespace robusthd

int main() { return robusthd::run(); }
