// Table 2 companion — the experimental setup table, enriched with the
// clean accuracies every other bench builds on: per dataset, the synthetic
// shapes (n, k, scaled sizes) and the test accuracy of all four learners.
// Useful as the first bench to read: if these numbers look wrong, nothing
// downstream means anything.

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

int main() {
  bench::header("Table 2: datasets and clean accuracies (synthetic, scaled)");
  util::TextTable table({"Dataset", "n", "k", "train", "test", "DNN", "SVM",
                         "AdaBoost", "RobustHD"});
  util::CsvWriter csv("table2_setup.csv",
                      {"dataset", "n", "k", "train", "test", "dnn", "svm",
                       "adaboost", "hdc"});

  for (const auto& spec : data::paper_datasets()) {
    auto split = bench::load(spec.name);
    auto mlp = baseline::Mlp::train(split.train, {});
    auto svm = baseline::LinearSvm::train(split.train, {});
    auto ada = baseline::AdaBoost::train(split.train, {});
    auto hdc = core::HdcClassifier::train(split.train, {});
    const double a_mlp = mlp.evaluate(split.test);
    const double a_svm = svm.evaluate(split.test);
    const double a_ada = ada.evaluate(split.test);
    const double a_hdc = hdc.evaluate(split.test);
    table.add_row({spec.name, std::to_string(spec.feature_count),
                   std::to_string(spec.num_classes),
                   std::to_string(split.train.size()),
                   std::to_string(split.test.size()), util::pct(a_mlp, 1),
                   util::pct(a_svm, 1), util::pct(a_ada, 1),
                   util::pct(a_hdc, 1)});
    csv.row(spec.name, spec.feature_count, spec.num_classes,
            split.train.size(), split.test.size(), a_mlp, a_svm, a_ada,
            a_hdc);
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "(paper's Table 2 lists the full-size datasets; these are\n"
               " the scaled synthetic equivalents every bench runs on)\n";
  return 0;
}
