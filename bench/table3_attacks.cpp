// Table 3 — quality loss of DNN / SVM / AdaBoost / HDC under random and
// targeted bit-flip attacks at 2-12% error rates.
//
// The paper reports one aggregate number per (model, mode, rate); we do the
// same by averaging over the six Table-2 benchmarks (scaled synthetic
// equivalents). The qualitative structure this bench reproduces:
//  * DNN is the most fragile, then SVM, then AdaBoost; HDC barely moves;
//  * targeted attacks are at least as damaging as random for every
//    fixed-point model;
//  * HDC's targeted row equals its random row (holographic storage has no
//    preferred bits).

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

namespace {

struct Cell {
  util::RunningStats loss;
};

}  // namespace

int main() {
  bench::header("Table 3: quality loss under random/targeted attack");
  const double rates[] = {0.02, 0.04, 0.06, 0.08, 0.10, 0.12};
  const char* names[] = {"DNN", "SVM", "AdaBoost", "HDC"};
  const fault::AttackMode modes[] = {fault::AttackMode::kRandom,
                                     fault::AttackMode::kTargeted};

  // cells[model][mode][rate]
  Cell cells[4][2][6];

  for (const auto& spec : data::paper_datasets()) {
    auto split = bench::load(spec.name);
    std::cout << "  training on " << spec.name << " ("
              << split.train.size() << " train)\n"
              << std::flush;

    auto mlp = baseline::Mlp::train(split.train, {});
    auto svm = baseline::LinearSvm::train(split.train, {});
    auto ada = baseline::AdaBoost::train(split.train, {});
    auto hdc = core::HdcClassifier::train(split.train, {});
    const auto queries = hdc.encoder().encode_all(split.test);

    const baseline::Classifier* models[3] = {&mlp, &svm, &ada};
    for (int m = 0; m < 3; ++m) {
      const double clean = models[m]->evaluate(split.test);
      for (int mode = 0; mode < 2; ++mode) {
        for (int r = 0; r < 6; ++r) {
          cells[m][mode][r].loss.add(bench::classifier_quality_loss(
              *models[m], split.test, clean, rates[r], modes[mode],
              0xbead + m * 31 + r));
        }
      }
    }
    const double hdc_clean =
        hdc.model().evaluate(queries, split.test.labels);
    for (int mode = 0; mode < 2; ++mode) {
      for (int r = 0; r < 6; ++r) {
        cells[3][mode][r].loss.add(bench::hdc_quality_loss(
            hdc.model(), queries, split.test.labels, hdc_clean, rates[r],
            modes[mode], 0x4d7 + r));
      }
    }
  }

  util::TextTable table({"Model", "Attack", "2%", "4%", "6%", "8%", "10%",
                         "12%"});
  util::CsvWriter csv("table3_attacks.csv",
                      {"model", "mode", "rate", "quality_loss"});
  for (int m = 0; m < 4; ++m) {
    for (int mode = 0; mode < 2; ++mode) {
      std::vector<std::string> row{names[m],
                                   mode == 0 ? "Random" : "Targeted"};
      for (int r = 0; r < 6; ++r) {
        row.push_back(util::pct(cells[m][mode][r].loss.mean()));
        csv.row(names[m], mode == 0 ? "random" : "targeted", rates[r],
                cells[m][mode][r].loss.mean());
      }
      table.add_row(row);
    }
  }
  table.print(std::cout);
  std::cout << "(paper @12%: DNN 29.6/80.0, SVM 22.4/53.1, AdaBoost\n"
               " 11.6/30.2, HDC 3.2/3.3 — random/targeted)\n";
  return 0;
}
