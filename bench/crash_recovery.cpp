// Crash-recovery campaign — the kill-9 gate for robusthd::persist.
//
// Each trial forks a child that serves real traffic with persistence on
// (fresh on the first trial, Server::recover on every later one — so the
// campaign also soaks recover-under-fire), injects bit-flip attacks so
// the scrubber generates WAL traffic, and is SIGKILLed at a random
// instant 5–80 ms in. After every kill the parent replays the directory
// and asserts the contract:
//
//   * recover_dir() succeeds — a kill at ANY instant leaves a loadable
//     base checkpoint (atomic_write_file) plus replayable closed epochs;
//   * state_crc_ok — the rebuilt model is bit-identical to the writer's
//     shadow at its last closed epoch (CRC32C over every plane word);
//   * replaying the same directory twice yields bit-identical models —
//     recovery is deterministic, not best-effort.
//
// The final recovered state is then actually served (Server::recover +
// live queries) to prove the recovered model is a serving model, not just
// bytes that validate. Any violation exits 1 — CI runs this.
//
// Knobs: ROBUSTHD_CRASH_TRIALS (default 50), ROBUSTHD_CRASH_SEED.
// Emits one JSON line to stdout and BENCH_crash_recovery.json.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "robusthd/core/serialize.hpp"
#include "robusthd/fault/injector.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/persist/recover.hpp"
#include "robusthd/serve/server.hpp"
#include "robusthd/util/fsio.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd {
namespace {

constexpr std::size_t kDim = 2048;
constexpr std::size_t kClasses = 6;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

struct World {
  model::HdcModel model;
  std::vector<hv::BinVec> queries;
};

World make_world(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> train;
  std::vector<int> labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    const auto proto = hv::BinVec::random(kDim, rng);
    for (int i = 0; i < 10; ++i) {
      auto v = proto;
      for (std::size_t d = 0; d < kDim; ++d) {
        if (rng.bernoulli(0.04)) v.flip(d);
      }
      train.push_back(std::move(v));
      labels.push_back(static_cast<int>(c));
    }
  }
  World world{model::HdcModel::train(train, labels, kClasses, {}), {}};
  for (int i = 0; i < 64; ++i) {
    auto q = train[static_cast<std::size_t>(rng.below(train.size()))];
    for (std::size_t d = 0; d < kDim; ++d) {
      if (rng.bernoulli(0.02)) q.flip(d);
    }
    world.queries.push_back(std::move(q));
  }
  return world;
}

bool models_bit_identical(const model::HdcModel& a, const model::HdcModel& b) {
  if (a.num_classes() != b.num_classes() || a.dimension() != b.dimension() ||
      a.precision_bits() != b.precision_bits()) {
    return false;
  }
  for (std::size_t c = 0; c < a.num_classes(); ++c) {
    const auto& pa = a.class_vector(c).planes;
    const auto& pb = b.class_vector(c).planes;
    if (pa.size() != pb.size()) return false;
    for (std::size_t p = 0; p < pa.size(); ++p) {
      const auto wa = pa[p].words();
      const auto wb = pb[p].words();
      if (!std::equal(wa.begin(), wa.end(), wb.begin(), wb.end())) {
        return false;
      }
    }
  }
  return true;
}

serve::ServerConfig server_config(const std::string& dir) {
  serve::ServerConfig config;
  config.worker_threads = 2;
  config.persist.dir = dir;
  // Tight epochs so a 5-80 ms life still closes several — the kill lands
  // inside write/fsync/rename windows, which is the point.
  config.persist.epoch_period = std::chrono::milliseconds(2);
  return config;
}

/// Child body: serve forever (until killed). Never returns.
[[noreturn]] void child_serve(const World& world, const std::string& dir,
                              std::uint64_t trial) {
  std::unique_ptr<serve::Server> server;
  if (persist::has_state(dir)) {
    server = serve::Server::recover(dir, server_config(dir));
  } else {
    server = std::make_unique<serve::Server>(world.model, server_config(dir));
  }
  server->inject_faults(0.03, fault::AttackMode::kRandom, 100 + trial);
  util::Xoshiro256 rng(trial * 977 + 11);
  for (;;) {
    auto q = world.queries[static_cast<std::size_t>(
        rng.below(world.queries.size()))];
    (void)server->submit(std::move(q)).get();
    if (rng.bernoulli(0.001)) {
      // Occasional hot reload: generation rotations race the kill too.
      server->reload(*server->current_model());
    }
  }
}

}  // namespace
}  // namespace robusthd

int main() {
  using namespace robusthd;

  const std::size_t trials = env_size("ROBUSTHD_CRASH_TRIALS", 50);
  const auto seed = static_cast<std::uint64_t>(
      env_size("ROBUSTHD_CRASH_SEED", 0x5eed));
  const World world = make_world(seed);

  char tmpl[] = "/tmp/robusthd_crash_XXXXXX";
  const char* dir_c = ::mkdtemp(tmpl);
  if (dir_c == nullptr) {
    std::fprintf(stderr, "crash_recovery: mkdtemp failed\n");
    return 1;
  }
  const std::string dir = dir_c;

  util::Xoshiro256 rng(seed ^ 0xfeedface);
  std::size_t failures = 0;
  std::size_t torn_tails = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t epochs_applied = 0;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "crash_recovery: fork failed at trial %zu\n",
                   trial);
      return 1;
    }
    if (pid == 0) {
      child_serve(world, dir, trial);  // never returns
    }
    const auto life_ms = 5 + rng.below(76);  // 5..80 ms
    std::this_thread::sleep_for(std::chrono::milliseconds(life_ms));
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);

    const auto first = persist::recover_dir(dir);
    if (!first.has_value()) {
      std::fprintf(stderr, "trial %zu: recover_dir found no usable state\n",
                   trial);
      ++failures;
      continue;
    }
    if (!first->stats.state_crc_ok) {
      std::fprintf(stderr,
                   "trial %zu: recovered model CRC mismatches the last "
                   "closed epoch (gen %llu, %llu records)\n",
                   trial,
                   static_cast<unsigned long long>(first->generation),
                   static_cast<unsigned long long>(
                       first->stats.replay_records));
      ++failures;
      continue;
    }
    const auto second = persist::recover_dir(dir);
    if (!second.has_value() ||
        !models_bit_identical(first->model, second->model)) {
      std::fprintf(stderr, "trial %zu: replay is not deterministic\n", trial);
      ++failures;
      continue;
    }
    if (first->stats.torn_tail) ++torn_tails;
    records_replayed += first->stats.replay_records;
    epochs_applied += first->stats.epochs_applied;
  }

  // The recovered bytes must also *serve*: bring the final state up and
  // push live traffic through it.
  bool serves = false;
  if (failures == 0) {
    auto server = serve::Server::recover(dir, server_config(dir));
    serves = true;
    for (const auto& q : world.queries) {
      if (server->submit(q).get().predicted < 0) serves = false;
    }
    server->shutdown();
  }

  for (const auto& name : util::list_dir(dir)) {
    util::remove_file(dir + "/" + name);
  }
  ::rmdir(dir.c_str());

  const bool pass = failures == 0 && serves;
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"bench\":\"crash_recovery\",\"trials\":%zu,"
                "\"failures\":%zu,\"torn_tails\":%zu,"
                "\"records_replayed\":%llu,\"epochs_applied\":%llu,"
                "\"recovered_serves\":%s,\"pass\":%s}",
                trials, failures, torn_tails,
                static_cast<unsigned long long>(records_replayed),
                static_cast<unsigned long long>(epochs_applied),
                serves ? "true" : "false", pass ? "true" : "false");
  std::printf("%s\n", line);
  std::ofstream("BENCH_crash_recovery.json") << line << "\n";
  return pass ? 0 : 1;
}
