// Storage-integrity round trip — detection probability of bit flips in a
// *serialized* model, at the Table-3 attack rates, for the RHD2 format
// (CRC32C header + payload sums) vs the legacy RHD1 format (no checks).
//
// Acceptance bar: RHD2 detects every corrupted copy (probability 1 across
// all trials, including the exhaustive-ish single-bit sweep over header
// and payload positions). RHD1 is the control: payload flips load
// silently, so its detection rate collapses to the small fraction of
// flips that happen to land in a header field the sanity bounds catch.
// This is the storage half of the paper's story — detect-and-refuse at
// load time composes with detect-and-repair (self-recovery) at run time.
//
// Emits BENCH_storage_integrity.csv for the CI artifact.

#include "bench_common.hpp"

#include "robusthd/core/storage_integrity.hpp"
#include "robusthd/util/csv.hpp"

using namespace robusthd;

int main() {
  bench::header("Storage integrity: detection of bit flips at rest");

  auto split = bench::load("PAMAP");
  core::HdcClassifierConfig config;
  config.encoder.dimension = 4000;
  auto clf = core::HdcClassifier::train(split.train, config);

  const auto rhd2 = core::serialize(clf);
  const auto rhd1 = core::serialize_rhd1(clf);
  std::cout << "  model blob: RHD2 " << rhd2.size() << " bytes, RHD1 "
            << rhd1.size() << " bytes\n";

  const double rates[] = {0.0001, 0.001, 0.01, 0.02, 0.04,
                          0.06,   0.08,  0.10, 0.12};
  const std::size_t trials = bench::env_size("ROBUSTHD_REPS", 3) * 40;

  util::CsvWriter csv("BENCH_storage_integrity.csv",
                      {"format", "flip_rate", "trials", "corrupted",
                       "detected", "detection_rate"});
  util::TextTable table({"format", "flip rate", "corrupted", "detected",
                         "P[detect]"});

  util::Xoshiro256 rng(0xb10b);
  bool rhd2_perfect = true;
  for (const bool legacy : {false, true}) {
    const auto& blob = legacy ? rhd1 : rhd2;
    const char* name = legacy ? "RHD1" : "RHD2";

    const auto single = core::storage_single_bit(blob, trials, rng);
    table.add_row({name, "single bit", std::to_string(single.corrupted),
                   std::to_string(single.detected),
                   util::fixed(single.detection_rate(), 4)});
    csv.row(name, "single_bit", single.trials, single.corrupted,
            single.detected, single.detection_rate());
    if (!legacy && single.detection_rate() < 1.0) rhd2_perfect = false;

    for (const double rate : rates) {
      const auto cell = core::storage_roundtrip(blob, rate, trials, rng);
      table.add_row({name, util::fixed(rate, 4),
                     std::to_string(cell.corrupted),
                     std::to_string(cell.detected),
                     util::fixed(cell.detection_rate(), 4)});
      csv.row(name, rate, cell.trials, cell.corrupted, cell.detected,
              cell.detection_rate());
      if (!legacy && cell.corrupted > 0 && cell.detection_rate() < 1.0) {
        rhd2_perfect = false;
      }
    }
  }
  table.print(std::cout);

  std::cout << (rhd2_perfect
                    ? "  PASS: RHD2 detected every corrupted blob\n"
                    : "  FAIL: RHD2 missed corrupted blobs\n");
  return rhd2_perfect ? 0 : 1;
}
