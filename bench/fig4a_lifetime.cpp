// Figure 4a — accuracy of the PIM accelerator over its operational
// lifetime, for DNN (int8 and int16) and HDC (D=4k, D=10k) workloads on
// NVM with 10^9 write endurance.
//
// Composition: the endurance model turns sustained inference into a
// failed-cell fraction over time (stuck bits == random bit errors in the
// stored model), and the robustness side turns that bit error rate into a
// model accuracy. The paper's claims to reproduce:
//  * DNN on PIM starts losing accuracy within months, sooner at higher
//    precision;
//  * HDC survives years, and larger D survives longer (D=10k ~5 years vs
//    D=4k ~3.4 years at <1% loss).

#include "bench_common.hpp"

#include <functional>

#include "robusthd/util/csv.hpp"

using namespace robusthd;

namespace {

/// Accuracy of a model whose storage suffers a given physical BER
/// (mean over repetitions).
double accuracy_at_ber(
    const std::function<std::unique_ptr<baseline::Classifier>()>& make,
    const data::Dataset& test, double ber, std::uint64_t seed) {
  util::RunningStats acc;
  for (std::size_t r = 0; r < bench::repetitions(); ++r) {
    auto victim = make();
    util::Xoshiro256 rng(seed + 977 * r);
    auto regions = victim->memory_regions();
    fault::BitFlipInjector::inject_bit_errors(regions, ber, rng);
    acc.add(victim->evaluate(test));
  }
  return acc.mean();
}

}  // namespace

int main() {
  bench::header("Figure 4a: accelerator lifetime on 1e9-endurance NVM");
  auto split = bench::load("UCIHAR");

  // Train the four deployed models.
  baseline::MlpConfig mlp8;
  baseline::MlpConfig mlp16;
  mlp16.precision = baseline::Precision::kInt16;
  auto dnn8 = baseline::Mlp::train(split.train, mlp8);
  auto dnn16 = baseline::Mlp::train(split.train, mlp16);

  core::HdcClassifierConfig hdc4k_cfg;
  hdc4k_cfg.encoder.dimension = 4000;
  auto hdc4k = core::HdcClassifier::train(split.train, hdc4k_cfg);
  core::HdcClassifierConfig hdc10k_cfg;
  auto hdc10k = core::HdcClassifier::train(split.train, hdc10k_cfg);

  // Wear model: sustained service at a fixed inference rate.
  pim::DpimAccelerator accelerator;
  pim::LifetimeConfig service;  // default sustained 300 inf/s

  pim::DnnWorkloadSpec dnn_shape;
  dnn_shape.layers = {{561, 512}, {512, 512}, {512, 12}};
  pim::DnnWorkloadSpec dnn_shape16 = dnn_shape;
  dnn_shape16.weight_bits = 16;
  pim::HdcWorkloadSpec hdc_shape4k{4000, 12, 561, true};
  pim::HdcWorkloadSpec hdc_shape10k{10000, 12, 561, true};

  struct Arm {
    const char* name;
    pim::LifetimeModel lifetime;
    std::function<std::unique_ptr<baseline::Classifier>()> make;
    double clean;
  };

  std::vector<Arm> arms;
  arms.push_back({"DNN int8",
                  pim::LifetimeModel(accelerator.cost_dnn(dnn_shape), service),
                  [&] { return dnn8.clone(); }, dnn8.evaluate(split.test)});
  arms.push_back(
      {"DNN int16",
       pim::LifetimeModel(accelerator.cost_dnn(dnn_shape16), service),
       [&] { return dnn16.clone(); }, dnn16.evaluate(split.test)});
  arms.push_back(
      {"HDC D=4k",
       pim::LifetimeModel(accelerator.cost_hdc(hdc_shape4k), service),
       [&] { return hdc4k.clone(); }, hdc4k.evaluate(split.test)});
  arms.push_back(
      {"HDC D=10k",
       pim::LifetimeModel(accelerator.cost_hdc(hdc_shape10k), service),
       [&] { return hdc10k.clone(); }, hdc10k.evaluate(split.test)});

  const double months[] = {1, 3, 6, 12, 24, 41, 60};  // 3.4y = 41 months
  util::TextTable table({"Workload", "1mo", "3mo", "6mo", "1yr", "2yr",
                         "3.4yr", "5yr", "Life@1% loss"});
  util::CsvWriter csv("fig4a_lifetime.csv",
                      {"workload", "months", "failed_fraction", "accuracy"});

  for (auto& arm : arms) {
    std::vector<std::string> row{arm.name};
    for (const double m : months) {
      const double days = m * 30.44;
      const double ber = arm.lifetime.failed_fraction(days);
      const double acc = ber <= 0.0
                             ? arm.clean
                             : accuracy_at_ber(arm.make, split.test, ber,
                                               0x41f + static_cast<int>(m));
      row.push_back(util::pct(acc, 1));
      csv.row(arm.name, m, ber, acc);
    }

    // Lifetime until 1% quality loss: find the BER at which the model
    // loses 1%, then invert the wear curve.
    double lo = 0.0, hi = 0.5;
    for (int iter = 0; iter < 18; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double acc =
          accuracy_at_ber(arm.make, split.test, mid, 0x11fe + iter);
      (arm.clean - acc < 0.01 ? lo : hi) = mid;
    }
    const double tolerated_ber = 0.5 * (lo + hi);
    const double days = arm.lifetime.days_until_failed_fraction(
        std::max(tolerated_ber, 1e-6));
    row.push_back(util::fixed(days / 365.25, 2) + "yr");
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(paper: DNN loses accuracy in <3 months; HDC D=4k lasts\n"
               " ~3.4 years, D=10k ~5 years at <1% quality loss)\n";
  return 0;
}
