// Adversarial attack campaign — input-space attacks vs the serving stack.
//
// Four measurements over one trained model:
//
//   1. bit-flip curve  — greedy leverage-ranked bit flips on encoded
//                        queries: attack success rate vs Hamming budget,
//                        raw and "confident" (the flip also clears the
//                        serving trust threshold — what survives the
//                        abstention defense);
//   2. genetic curve   — feature-space genetic/boundary search through
//                        the encoder: success rate vs L-infinity budget;
//   3. undefended poison — a PoisonCampaign streams high-confidence
//                        adversarial queries at a live server whose trust
//                        gate runs in shadow mode: measures how many
//                        wrong bits the recovery engine substitutes when
//                        confidence is the only admission check;
//   4. defended poison — the same campaign against an enforcing gate,
//                        while a ChaosAgent drives a Table-4-rate memory
//                        attack and natural traffic keeps the scrubber
//                        fed: the self-healing loop must keep recovering
//                        real damage while rejecting the poison.
//
// The gate (CI runs this): the undefended run must show measurable
// poisoning (wrong bits > 0 — the attack is real), and the defended run
// must hold live canary accuracy >= the offline Table-4 recovered
// accuracy at the matched rate minus a tolerance (the defense does not
// cost recovery). Exit code 1 otherwise.
//
// Emits one JSON line to stdout and BENCH_adversarial.json.
//
// Knobs: ROBUSTHD_ADV_RATE (memory-attack rate for the defended phase,
// default 0.06), ROBUSTHD_ADV_SECONDS (defended soak length, default 4),
// ROBUSTHD_ADV_TOL (accuracy tolerance, default 0.10),
// ROBUSTHD_ADV_QUERIES (bit-flip sample size, default 40),
// ROBUSTHD_WORKERS, plus the usual ROBUSTHD_TRAIN / ROBUSTHD_TEST caps.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "bench_common.hpp"

namespace robusthd {
namespace {

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

constexpr double kTrustThreshold = 0.88;  // the serving trust gate's T_C

int run() {
  const double rate = env_double("ROBUSTHD_ADV_RATE", 0.06);
  const double soak_seconds = env_double("ROBUSTHD_ADV_SECONDS", 4.0);
  const double tolerance = env_double("ROBUSTHD_ADV_TOL", 0.10);
  const std::size_t attack_queries =
      bench::env_size("ROBUSTHD_ADV_QUERIES", 40);
  const std::size_t workers = bench::env_size("ROBUSTHD_WORKERS", 4);

  bench::header("adversarial attacks (input space vs the self-healing loop)");
  const auto split = bench::load("PAMAP");
  hv::EncoderConfig encoder_config;
  encoder_config.dimension = 4000;
  const hv::RecordEncoder encoder(split.train.feature_count(),
                                  encoder_config);
  const auto train = encoder.encode_all(split.train);
  const auto all_queries = encoder.encode_all(split.test);
  const auto trained = model::HdcModel::train(
      train, split.train.labels, split.train.num_classes, {});

  // Canary holdout (sentinel + trust-gate centroids); the rest is traffic.
  const std::size_t canary_count =
      std::min<std::size_t>(150, all_queries.size() / 3);
  std::vector<hv::BinVec> canaries(all_queries.begin(),
                                   all_queries.begin() + canary_count);
  std::vector<int> canary_labels(split.test.labels.begin(),
                                 split.test.labels.begin() + canary_count);
  std::vector<hv::BinVec> traffic(all_queries.begin() + canary_count,
                                  all_queries.end());
  std::vector<int> traffic_labels(split.test.labels.begin() + canary_count,
                                  split.test.labels.end());

  // ---- Phase 1: bit-flip success vs Hamming budget -----------------------
  const std::vector<std::size_t> budgets = {8, 16, 32, 64, 128, 256};
  std::vector<hv::BinVec> sample(
      traffic.begin(),
      traffic.begin() + std::min(attack_queries, traffic.size()));
  std::vector<adversary::SuccessRates> bitflip;
  bitflip.reserve(budgets.size());
  util::TextTable flip_table(
      {"budget (flips)", "success", "confident success", "mean flips"});
  for (const auto budget : budgets) {
    const auto rates = adversary::bit_flip_success(trained, sample, budget,
                                                   kTrustThreshold);
    bitflip.push_back(rates);
    flip_table.add_row({std::to_string(budget), util::fixed(rates.any, 3),
                        util::fixed(rates.confident, 3),
                        util::fixed(rates.mean_flips, 1)});
  }
  flip_table.print(std::cout);

  // ---- Phase 2: genetic feature-space success vs epsilon -----------------
  const std::vector<double> epsilons = {0.05, 0.10, 0.20};
  const std::size_t genetic_queries =
      std::min<std::size_t>(8, split.test.features.rows() - canary_count);
  struct GeneticPoint {
    double epsilon = 0.0;
    double success = 0.0;
    double confident = 0.0;
    double mean_linf = 0.0;
  };
  std::vector<GeneticPoint> genetic;
  util::TextTable gen_table(
      {"epsilon (Linf)", "success", "confident success", "mean Linf"});
  for (const auto eps : epsilons) {
    GeneticPoint point;
    point.epsilon = eps;
    std::size_t wins = 0;
    std::size_t confident = 0;
    double linf_sum = 0.0;
    for (std::size_t q = 0; q < genetic_queries; ++q) {
      adversary::GeneticConfig config;
      config.epsilon = eps;
      config.seed = 0xadf00d + q;
      const auto result = adversary::genetic_feature_attack(
          trained, encoder, split.test.features.row(canary_count + q),
          config);
      if (!result.success) continue;
      ++wins;
      linf_sum += result.linf;
      if (result.final_confidence >= kTrustThreshold) ++confident;
    }
    point.success =
        static_cast<double>(wins) / static_cast<double>(genetic_queries);
    point.confident =
        static_cast<double>(confident) / static_cast<double>(genetic_queries);
    point.mean_linf = wins == 0 ? 0.0 : linf_sum / static_cast<double>(wins);
    genetic.push_back(point);
    gen_table.add_row({util::fixed(eps, 2), util::fixed(point.success, 3),
                       util::fixed(point.confident, 3),
                       util::fixed(point.mean_linf, 3)});
  }
  gen_table.print(std::cout);

  serve::ServerConfig base_config;
  base_config.worker_threads = workers;
  base_config.max_batch = 16;
  base_config.enable_recovery = true;
  base_config.scrubber.gate.enabled = true;
  base_config.canaries = canaries;
  base_config.canary_labels = canary_labels;

  adversary::PoisonConfig poison;
  poison.chunks = base_config.scrubber.recovery.chunks;
  poison.waves = 16;

  // ---- Phase 3: undefended (shadow gate) poison campaign ----------------
  // Clean model, no memory attack: every bit the recovery engine rewrites
  // here is attack-induced damage.
  std::uint64_t undefended_wrong_bits = 0;
  serve::ServerStats undefended_stats;
  {
    auto config = base_config;
    config.scrubber.gate.enforce = false;  // observe + tag, admit all
    serve::Server server(trained, config);
    std::ignore = server.predict_all(traffic);  // warm the engine's gates
    server.drain();
    server.reset_stats();
    adversary::PoisonCampaign campaign(trained, poison);
    std::ignore = campaign.run(server);
    server.drain();
    undefended_stats = server.stats();
    undefended_wrong_bits = adversary::PoisonCampaign::wrong_bits(
        trained, *server.current_model());
    server.shutdown();
  }

  // ---- Phase 4: defended (enforcing gate) under memory attack -----------
  // The hard scenario: the gate must reject the poison *without* starving
  // the scrubber of the legitimate evidence it needs to repair real
  // chaos-injected damage at a Table-4 rate.
  double canary_accuracy = 0.0;
  std::uint64_t defended_wrong_bits = 0;
  serve::ServerStats defended_stats;
  {
    auto config = base_config;
    config.scrubber.gate.enforce = true;
    config.sentinel.enabled = true;
    config.sentinel.period = std::chrono::milliseconds(10);
    config.sentinel.chunks = config.scrubber.recovery.chunks;
    config.chaos.enabled = true;
    config.chaos.rate = rate;
    config.chaos.mode = fault::AttackMode::kRandom;
    // Spend the chaos budget over the first ~60% of the soak so the tail
    // measures the recovered steady state (chaos_soak's schedule).
    config.chaos.steps_to_full = 250;
    config.chaos.period = std::chrono::microseconds(
        static_cast<long>(soak_seconds * 0.6 * 1e6 / 250.0));

    serve::Server server(trained, config);
    std::ignore = server.predict_all(
        std::span<const hv::BinVec>(traffic.data(),
                                    std::min<std::size_t>(64, traffic.size())));
    server.drain();
    server.reset_stats();

    adversary::PoisonCampaign campaign(trained, poison);
    const auto start = std::chrono::steady_clock::now();
    while (seconds_since(start) < soak_seconds) {
      // One poison wave between traffic passes: the attacker competes
      // with natural evidence exactly as it would in production.
      auto wave = campaign.craft_wave();
      std::vector<std::future<serve::Response>> futures;
      futures.reserve(wave.size());
      for (auto& query : wave) {
        futures.push_back(server.submit(std::move(query)));
      }
      for (auto& future : futures) std::ignore = future.get();
      std::ignore = server.predict_all(traffic);
    }
    server.drain();
    defended_stats = server.stats();
    canary_accuracy = defended_stats.canary_accuracy;
    defended_wrong_bits = adversary::PoisonCampaign::wrong_bits(
        trained, *server.current_model());
    server.shutdown();
  }

  // ---- Offline reference: Table-4 protocol at the matched rate ----------
  const double clean_accuracy = trained.evaluate(traffic, traffic_labels);
  double offline_recovered = 0.0;
  {
    model::HdcModel victim = trained;
    util::Xoshiro256 rng(0xdac22);
    auto regions = victim.memory_regions();
    fault::BitFlipInjector::inject(regions, rate, fault::AttackMode::kRandom,
                                   rng);
    model::RecoveryEngine engine(victim, base_config.scrubber.recovery);
    for (int epoch = 0; epoch < 10; ++epoch) {
      for (const auto& q : traffic) engine.observe(q);
    }
    offline_recovered = victim.evaluate(traffic, traffic_labels);
  }

  const double gate_floor = offline_recovered - tolerance;
  const bool poison_measured = undefended_wrong_bits > 0 &&
                               undefended_stats.suspect_substitutions > 0;
  const bool defense_holds = canary_accuracy >= gate_floor;
  const bool gate_pass = poison_measured && defense_holds;

  util::TextTable table({"metric", "undefended", "defended"});
  table.add_row({"poisoned offers",
                 std::to_string(undefended_stats.poisoned_offers),
                 std::to_string(defended_stats.poisoned_offers)});
  table.add_row({"gate rejects",
                 std::to_string(undefended_stats.gate_rejects),
                 std::to_string(defended_stats.gate_rejects)});
  table.add_row({"suspect substitutions",
                 std::to_string(undefended_stats.suspect_substitutions),
                 std::to_string(defended_stats.suspect_substitutions)});
  table.add_row({"wrong bits vs blessed",
                 std::to_string(undefended_wrong_bits),
                 std::to_string(defended_wrong_bits)});
  table.add_row({"chaos flips", "0",
                 std::to_string(defended_stats.chaos_flips)});
  table.add_row({"live canary accuracy", "-",
                 util::fixed(canary_accuracy, 4)});
  table.add_row({"offline recovered accuracy",
                 util::fixed(offline_recovered, 4), "-"});
  table.add_row({"gate floor (offline - tol)", util::fixed(gate_floor, 4),
                 gate_pass ? "PASS" : "FAIL"});
  table.print(std::cout);

  std::ostringstream json;
  json << "{\"bench\":\"adversarial_attacks\""
       << ",\"rate\":" << rate
       << ",\"soak_seconds\":" << soak_seconds
       << ",\"workers\":" << workers
       << ",\"clean_accuracy\":" << clean_accuracy
       << ",\"bitflip_budgets\":[";
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    json << (i ? "," : "") << budgets[i];
  }
  json << "],\"bitflip_success\":[";
  for (std::size_t i = 0; i < bitflip.size(); ++i) {
    json << (i ? "," : "") << bitflip[i].any;
  }
  json << "],\"bitflip_confident_success\":[";
  for (std::size_t i = 0; i < bitflip.size(); ++i) {
    json << (i ? "," : "") << bitflip[i].confident;
  }
  json << "],\"genetic_epsilons\":[";
  for (std::size_t i = 0; i < genetic.size(); ++i) {
    json << (i ? "," : "") << genetic[i].epsilon;
  }
  json << "],\"genetic_success\":[";
  for (std::size_t i = 0; i < genetic.size(); ++i) {
    json << (i ? "," : "") << genetic[i].success;
  }
  json << "],\"undefended_poisoned_offers\":"
       << undefended_stats.poisoned_offers
       << ",\"undefended_suspect_substitutions\":"
       << undefended_stats.suspect_substitutions
       << ",\"undefended_wrong_bits\":" << undefended_wrong_bits
       << ",\"defended_poisoned_offers\":" << defended_stats.poisoned_offers
       << ",\"defended_gate_rejects\":" << defended_stats.gate_rejects
       << ",\"defended_suspect_substitutions\":"
       << defended_stats.suspect_substitutions
       << ",\"defended_wrong_bits\":" << defended_wrong_bits
       << ",\"defended_chaos_flips\":" << defended_stats.chaos_flips
       << ",\"defended_repairs\":" << defended_stats.scrub_repairs
       << ",\"canary_accuracy\":" << canary_accuracy
       << ",\"offline_recovered_accuracy\":" << offline_recovered
       << ",\"tolerance\":" << tolerance
       << ",\"gate_pass\":" << (gate_pass ? "true" : "false") << "}";
  std::cout << json.str() << "\n";
  std::ofstream("BENCH_adversarial.json") << json.str() << "\n";

  if (!gate_pass) {
    if (!poison_measured) {
      std::cerr << "adversarial gate FAILED: undefended campaign caused no "
                   "measurable poisoning (wrong bits "
                << undefended_wrong_bits << ", suspect substitutions "
                << undefended_stats.suspect_substitutions << ")\n";
    }
    if (!defense_holds) {
      std::cerr << "adversarial gate FAILED: defended canary accuracy "
                << canary_accuracy << " < offline recovered "
                << offline_recovered << " - tolerance " << tolerance << "\n";
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace robusthd

int main() { return robusthd::run(); }
