// Google-benchmark microbenchmarks of the kernels everything else is built
// on: XOR binding, Hamming distance, record encoding, model prediction and
// fault injection. These are the operations whose costs the DPIM mapping
// (pim/accelerator) models analytically — keeping them measured here ties
// the simulator's op counts to observable software behaviour.

#include <benchmark/benchmark.h>

#include "robusthd/robusthd.hpp"

using namespace robusthd;

namespace {

constexpr std::size_t kDim = 10000;

void BM_Bind(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  auto a = hv::BinVec::random(kDim, rng);
  const auto b = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    a.bind(b);
    benchmark::DoNotOptimize(a.words().data());
  }
  state.SetItemsProcessed(state.iterations() * kDim);
}
BENCHMARK(BM_Bind);

void BM_Hamming(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  const auto a = hv::BinVec::random(kDim, rng);
  const auto b = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv::hamming(a, b));
  }
  state.SetItemsProcessed(state.iterations() * kDim);
}
BENCHMARK(BM_Hamming);

void BM_HammingRange(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto a = hv::BinVec::random(kDim, rng);
  const auto b = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv::hamming_range(a, b, 500, 1000));
  }
}
BENCHMARK(BM_HammingRange);

void BM_Encode(benchmark::State& state) {
  const auto features = static_cast<std::size_t>(state.range(0));
  hv::EncoderConfig config;
  hv::RecordEncoder encoder(features, config);
  util::Xoshiro256 rng(4);
  std::vector<float> sample(features);
  for (auto& v : sample) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(sample));
  }
  state.SetItemsProcessed(state.iterations() * features);
}
BENCHMARK(BM_Encode)->Arg(75)->Arg(561)->Arg(784);

void BM_Predict(benchmark::State& state) {
  const auto classes = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(5);
  std::vector<hv::BinVec> encoded;
  std::vector<int> labels;
  for (std::size_t i = 0; i < classes * 8; ++i) {
    encoded.push_back(hv::BinVec::random(kDim, rng));
    labels.push_back(static_cast<int>(i % classes));
  }
  auto model = model::HdcModel::train(encoded, labels, classes, {});
  const auto query = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(query));
  }
}
BENCHMARK(BM_Predict)->Arg(2)->Arg(12)->Arg(26);

void BM_InjectRandom(benchmark::State& state) {
  util::Xoshiro256 rng(6);
  auto vec = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    auto words = vec.mutable_words();
    fault::MemoryRegion region{std::as_writable_bytes(words), 1, "hv"};
    benchmark::DoNotOptimize(
        fault::BitFlipInjector::flip_random_bits(region, 1000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_InjectRandom);

void BM_CrossbarRippleAdd(benchmark::State& state) {
  pim::Crossbar xbar(64, 64);
  std::vector<std::size_t> rows(64);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const std::size_t scratch_cols[] = {40, 41, 42, 43, 44, 45, 46, 47};
  for (auto _ : state) {
    xbar.ripple_add(0, 8, 16, 30, scratch_cols, 8, rows);
    benchmark::DoNotOptimize(xbar.nor_steps());
  }
}
BENCHMARK(BM_CrossbarRippleAdd);

}  // namespace

BENCHMARK_MAIN();
