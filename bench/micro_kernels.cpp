// Google-benchmark microbenchmarks of the kernels everything else is built
// on: XOR binding, Hamming distance, record encoding, model prediction and
// fault injection. These are the operations whose costs the DPIM mapping
// (pim/accelerator) models analytically — keeping them measured here ties
// the simulator's op counts to observable software behaviour.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "robusthd/robusthd.hpp"

using namespace robusthd;

namespace {

constexpr std::size_t kDim = 10000;

void BM_Bind(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  auto a = hv::BinVec::random(kDim, rng);
  const auto b = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    a.bind(b);
    benchmark::DoNotOptimize(a.words().data());
  }
  state.SetItemsProcessed(state.iterations() * kDim);
}
BENCHMARK(BM_Bind);

void BM_Hamming(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  const auto a = hv::BinVec::random(kDim, rng);
  const auto b = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv::hamming(a, b));
  }
  state.SetItemsProcessed(state.iterations() * kDim);
}
BENCHMARK(BM_Hamming);

void BM_HammingRange(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const auto a = hv::BinVec::random(kDim, rng);
  const auto b = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hv::hamming_range(a, b, 500, 1000));
  }
}
BENCHMARK(BM_HammingRange);

void BM_Encode(benchmark::State& state) {
  const auto features = static_cast<std::size_t>(state.range(0));
  hv::EncoderConfig config;
  hv::RecordEncoder encoder(features, config);
  util::Xoshiro256 rng(4);
  std::vector<float> sample(features);
  for (auto& v : sample) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(sample));
  }
  state.SetItemsProcessed(state.iterations() * features);
}
BENCHMARK(BM_Encode)->Arg(75)->Arg(561)->Arg(784);

void BM_Predict(benchmark::State& state) {
  const auto classes = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(5);
  std::vector<hv::BinVec> encoded;
  std::vector<int> labels;
  for (std::size_t i = 0; i < classes * 8; ++i) {
    encoded.push_back(hv::BinVec::random(kDim, rng));
    labels.push_back(static_cast<int>(i % classes));
  }
  auto model = model::HdcModel::train(encoded, labels, classes, {});
  const auto query = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(query));
  }
}
BENCHMARK(BM_Predict)->Arg(2)->Arg(12)->Arg(26);

void BM_EncodeInto(benchmark::State& state) {
  // Workspace-reuse variant of BM_Encode: the bit-sliced counter and the
  // output vector persist across iterations, so steady state allocates
  // nothing per sample. The gap to BM_Encode is the allocator cost the
  // serve workers no longer pay.
  const auto features = static_cast<std::size_t>(state.range(0));
  hv::EncoderConfig config;
  hv::RecordEncoder encoder(features, config);
  util::Xoshiro256 rng(4);
  std::vector<float> sample(features);
  for (auto& v : sample) v = static_cast<float>(rng.uniform());
  hv::EncodeWorkspace ws;
  hv::BinVec out;
  for (auto _ : state) {
    encoder.encode_into(sample, out, ws);
    benchmark::DoNotOptimize(out.words().data());
  }
  state.SetItemsProcessed(state.iterations() * features);
}
BENCHMARK(BM_EncodeInto)->Arg(75)->Arg(561)->Arg(784);

void BM_PredictBatch(benchmark::State& state) {
  // Batched inference through the blocked distance-matrix kernel; compare
  // per-query items/s against BM_Predict to see the batching win.
  const auto classes = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(5);
  std::vector<hv::BinVec> encoded;
  std::vector<int> labels;
  for (std::size_t i = 0; i < classes * 8; ++i) {
    encoded.push_back(hv::BinVec::random(kDim, rng));
    labels.push_back(static_cast<int>(i % classes));
  }
  auto model = model::HdcModel::train(encoded, labels, classes, {});
  std::vector<hv::BinVec> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(hv::BinVec::random(kDim, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(queries, 1));
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_PredictBatch)->Arg(2)->Arg(12)->Arg(26);

void BM_InjectRandom(benchmark::State& state) {
  util::Xoshiro256 rng(6);
  auto vec = hv::BinVec::random(kDim, rng);
  for (auto _ : state) {
    auto words = vec.mutable_words();
    fault::MemoryRegion region{std::as_writable_bytes(words), 1, "hv"};
    benchmark::DoNotOptimize(
        fault::BitFlipInjector::flip_random_bits(region, 1000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_InjectRandom);

void BM_CrossbarRippleAdd(benchmark::State& state) {
  pim::Crossbar xbar(64, 64);
  std::vector<std::size_t> rows(64);
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const std::size_t scratch_cols[] = {40, 41, 42, 43, 44, 45, 46, 47};
  for (auto _ : state) {
    xbar.ripple_add(0, 8, 16, 30, scratch_cols, 8, rows);
    benchmark::DoNotOptimize(xbar.nor_steps());
  }
}
BENCHMARK(BM_CrossbarRippleAdd);

// Per-ISA kernel microbenchmarks, registered dynamically for every tier
// the host can actually run (scalar is always present; AVX2/AVX-512 appear
// when hardware + OS support them). Names come out as e.g.
// "BM_KernelHamming/avx512" so runs on different hosts stay comparable.
void register_isa_benchmarks() {
  static util::Xoshiro256 rng(7);
  static const auto a = hv::BinVec::random(kDim, rng);
  static const auto b = hv::BinVec::random(kDim, rng);
  static std::vector<hv::BinVec> planes_store;
  static std::vector<const std::uint64_t*> planes;
  if (planes.empty()) {
    for (int i = 0; i < 26; ++i) {
      planes_store.push_back(hv::BinVec::random(kDim, rng));
    }
    for (const auto& p : planes_store) planes.push_back(p.words().data());
  }
  static std::vector<hv::BinVec> queries_store;
  static std::vector<const std::uint64_t*> queries;
  if (queries.empty()) {
    for (int i = 0; i < 32; ++i) {
      queries_store.push_back(hv::BinVec::random(kDim, rng));
    }
    for (const auto& q : queries_store) queries.push_back(q.words().data());
  }

  for (const auto isa : {kernels::Isa::kScalar, kernels::Isa::kAvx2,
                         kernels::Isa::kAvx512}) {
    const auto* ops = kernels::ops_for(isa);
    if (ops == nullptr) continue;
    const std::string suffix = kernels::isa_name(isa);
    const std::size_t words = a.word_count();

    benchmark::RegisterBenchmark(
        ("BM_KernelPopcount/" + suffix).c_str(),
        [ops, words](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(ops->popcount(a.words().data(), words));
          }
          state.SetItemsProcessed(state.iterations() * kDim);
        });

    benchmark::RegisterBenchmark(
        ("BM_KernelHamming/" + suffix).c_str(),
        [ops, words](benchmark::State& state) {
          for (auto _ : state) {
            benchmark::DoNotOptimize(
                ops->hamming(a.words().data(), b.words().data(), words));
          }
          state.SetItemsProcessed(state.iterations() * kDim);
        });

    benchmark::RegisterBenchmark(
        ("BM_KernelHammingMatrix/" + suffix).c_str(),
        [ops, words](benchmark::State& state) {
          std::vector<std::uint32_t> out(queries.size() * planes.size());
          for (auto _ : state) {
            ops->hamming_matrix(queries.data(), queries.size(), planes.data(),
                                planes.size(), words, out.data());
            benchmark::DoNotOptimize(out.data());
          }
          // One "item" = one query/plane Hamming distance.
          state.SetItemsProcessed(state.iterations() * queries.size() *
                                  planes.size());
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_isa_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
