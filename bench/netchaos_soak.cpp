// NetChaos soak — live-fire *network* resilience of the serving fleet.
//
// Where bench/chaos_soak.cpp attacks the model's memory, this attacks
// the wire: a closed-loop client fleet drives a 2-shard Fleet + TCP
// Frontend through the NetChaos fault-injecting proxy, under memory
// chaos at the same time. Four phases:
//
//   1. baseline  — clean proxy (passthrough): the goodput and latency
//                  reference for the gates;
//   2. hedge A/B — a seeded latency tail (40ms on ~12% of chunks) is
//                  injected; the same load runs once without and once
//                  with hedged requests. Gate: hedging must cut the
//                  client-observed p99 to <= ROBUSTHD_NETCHAOS_HEDGE
//                  (default 0.8) of the unhedged run;
//   3. full chaos — delay + resets + silent drops + bit flips on the
//                  wire; at half-time one shard is blackholed
//                  (partitioned) AND every shard's model takes a
//                  Table-3/4 rate memory attack while the scrubbers
//                  repair. Gates: goodput >= ROBUSTHD_NETCHAOS_GOODPUT
//                  (default 0.25) x baseline; ZERO corrupted answers
//                  (every torn/flipped frame must die on a CRC, never
//                  parse); post-phase canary accuracy >= the offline
//                  Table-4 recovered floor - ROBUSTHD_NETCHAOS_TOL
//                  (default 0.10);
//   4. compat    — a legacy client (send_deadline=false, version-0
//                  frames) must get answers bit-identical to in-process
//                  Fleet::submit on the same queries.
//
// Emits one JSON line to stdout and BENCH_netchaos.json; exit 1 when
// any gate fails — CI runs this.
//
// Knobs: ROBUSTHD_SOAK_SECONDS (per phase, default 4), ROBUSTHD_NETCHAOS_DIM
// (default 2048), ROBUSTHD_NETCHAOS_RATE (memory attack rate, default 0.06),
// ROBUSTHD_NETCHAOS_CLIENTS (threads, default 4), plus the three gate knobs
// above.

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "robusthd/fleet/client.hpp"
#include "robusthd/fleet/fleet.hpp"
#include "robusthd/fleet/frontend.hpp"
#include "robusthd/fleet/netchaos.hpp"
#include "robusthd/model/recovery.hpp"

namespace {

using namespace robusthd;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kClasses = 4;
constexpr std::size_t kShards = 2;

double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double parsed = std::atof(v);
    if (parsed > 0.0) return parsed;
  }
  return fallback;
}

struct World {
  std::vector<hv::BinVec> traffic;
  std::vector<int> traffic_labels;
  std::vector<hv::BinVec> canaries;
  std::vector<int> canary_labels;
  model::HdcModel model;
};

World make_world(std::size_t dim, std::uint64_t seed) {
  World w;
  util::Xoshiro256 rng(seed);
  std::vector<hv::BinVec> prototypes;
  std::vector<hv::BinVec> train;
  std::vector<int> labels;
  for (std::size_t c = 0; c < kClasses; ++c) {
    prototypes.push_back(hv::BinVec::random(dim, rng));
  }
  auto noisy = [&](std::size_t c) {
    auto v = prototypes[c];
    for (std::size_t d = 0; d < dim; ++d) {
      if (rng.bernoulli(0.04)) v.flip(d);
    }
    return v;
  };
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 15; ++i) {
      train.push_back(noisy(c));
      labels.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 24; ++i) {
      w.traffic.push_back(noisy(c));
      w.traffic_labels.push_back(static_cast<int>(c));
    }
    for (int i = 0; i < 12; ++i) {
      w.canaries.push_back(noisy(c));
      w.canary_labels.push_back(static_cast<int>(c));
    }
  }
  w.model = model::HdcModel::train(train, labels, kClasses, {});
  return w;
}

fleet::Fleet make_fleet(const World& w, bool recovery) {
  std::vector<model::HdcModel> models;
  fleet::FleetConfig config;
  for (std::size_t s = 0; s < kShards; ++s) {
    models.push_back(w.model);
    fleet::ShardConfig shard;
    shard.server.worker_threads = 2;
    shard.server.queue_capacity = 256;
    shard.server.enable_recovery = recovery;
    config.shards.push_back(std::move(shard));
  }
  return fleet::Fleet(std::move(models), std::move(config));
}

std::vector<std::string> default_groups() {
  return std::vector<std::string>(kShards, "default");
}

struct DriveResult {
  double seconds = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t corrupted = 0;  ///< ok responses carrying invalid data
  double goodput = 0.0;         ///< ok responses / second
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  fleet::Client::Counters counters;  ///< summed over client threads
};

/// Closed-loop load through `endpoints` for ~`seconds`. `mid` (if any)
/// runs on the driver thread at the phase midpoint — that is where the
/// partition and the memory attack land in phase 3 — and `late` at 75%,
/// where the partition heals. An ok response with an out-of-range
/// prediction or a non-finite/out-of-range confidence is corruption:
/// bytes that should have died on a CRC came back as data.
DriveResult drive(const std::vector<fleet::Endpoint>& endpoints,
                  const fleet::ClientConfig& client_config,
                  const World& world, std::size_t threads, double seconds,
                  const std::function<void()>& mid = nullptr,
                  const std::function<void()>& late = nullptr) {
  serve::LatencyHistogram latency;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::vector<fleet::Client::Counters> per_thread(threads);

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      fleet::Client client(endpoints, default_groups(), client_config);
      std::uint64_t tenant = t;
      std::size_t q = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto begin = Clock::now();
        const auto r = client.predict(
            tenant, world.traffic[q % world.traffic.size()]);
        const auto end = Clock::now();
        tenant += threads;
        ++q;
        if (r.ok) {
          ok.fetch_add(1, std::memory_order_relaxed);
          latency.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                   begin)
                  .count()));
          const bool bad_prediction =
              r.predicted < -1 ||
              r.predicted >= static_cast<std::int32_t>(kClasses);
          const bool bad_confidence = !std::isfinite(r.confidence) ||
                                      r.confidence < 0.0 ||
                                      r.confidence > 1.0;
          if (bad_prediction || bad_confidence) {
            corrupted.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      per_thread[t] = client.counters();
    });
  }

  const auto t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2.0));
  if (mid) mid();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 4.0));
  if (late) late();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 4.0));
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  const auto t1 = Clock::now();

  DriveResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.ok = ok.load();
  result.failed = failed.load();
  result.corrupted = corrupted.load();
  result.goodput = static_cast<double>(result.ok) / result.seconds;
  const auto summary = latency.summarize();
  result.p50_ms = summary.p50_ns / 1e6;
  result.p99_ms = summary.p99_ns / 1e6;
  for (const auto& c : per_thread) {
    result.counters.requests += c.requests;
    result.counters.responses += c.responses;
    result.counters.server_errors += c.server_errors;
    result.counters.transport_errors += c.transport_errors;
    result.counters.failovers += c.failovers;
    result.counters.reconnects += c.reconnects;
    result.counters.retries += c.retries;
    result.counters.retry_budget_exhausted += c.retry_budget_exhausted;
    result.counters.hedged_requests += c.hedged_requests;
    result.counters.hedge_wins += c.hedge_wins;
    result.counters.connect_timeouts += c.connect_timeouts;
  }
  return result;
}

std::vector<fleet::Endpoint> frontend_endpoints(
    const fleet::Frontend& frontend) {
  std::vector<fleet::Endpoint> out;
  for (const auto port : frontend.ports()) out.push_back({"127.0.0.1", port});
  return out;
}

/// Per-shard canary accuracy after the chaos phase; returns the worst
/// shard (both were attacked — the floor must hold everywhere).
double min_canary_accuracy(fleet::Fleet& fleet, const World& w) {
  double worst = 1.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const auto responses = fleet.shard(s).server().predict_all(w.canaries);
    std::size_t scored = 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].abstained) continue;
      ++scored;
      if (responses[i].predicted == w.canary_labels[i]) ++correct;
    }
    const double acc =
        scored == 0
            ? 0.0
            : static_cast<double>(correct) / static_cast<double>(scored);
    worst = std::min(worst, acc);
  }
  return worst;
}

int run() {
  const double phase_seconds = env_double("ROBUSTHD_SOAK_SECONDS", 4.0);
  const std::size_t dim = bench::env_size("ROBUSTHD_NETCHAOS_DIM", 2048);
  const double attack_rate = env_double("ROBUSTHD_NETCHAOS_RATE", 0.06);
  const double tolerance = env_double("ROBUSTHD_NETCHAOS_TOL", 0.10);
  // Closed-loop goodput is latency-bound: injected delays inflate the
  // mean RTT, so under the storm a large drop is *expected arithmetic*,
  // not a failure. The gate catches collapse (a fleet that stops
  // answering), not latency inflation — the p99 rows cover that.
  const double goodput_gate = env_double("ROBUSTHD_NETCHAOS_GOODPUT", 0.05);
  const double hedge_gate = env_double("ROBUSTHD_NETCHAOS_HEDGE", 0.8);
  const std::size_t threads = bench::env_size("ROBUSTHD_NETCHAOS_CLIENTS", 4);

  bench::header("netchaos soak (wire faults + memory chaos vs the fleet)");
  std::cout << "dim=" << dim << " seconds/phase=" << phase_seconds
            << " clients=" << threads << " attack_rate=" << attack_rate
            << "\n";
  const auto world = make_world(dim, 0x5eedface);

  // ---- Phase 1: clean proxy baseline ------------------------------------
  DriveResult baseline;
  {
    auto fleet = make_fleet(world, /*recovery=*/true);
    fleet::Frontend frontend(fleet);
    frontend.start();
    fleet::NetChaos chaos(frontend_endpoints(frontend));
    chaos.start();
    fleet::ClientConfig cc;
    cc.retry.attempt_timeout = std::chrono::milliseconds(250);
    baseline = drive(chaos.endpoints(), cc, world, threads, phase_seconds);
    chaos.stop();
    frontend.stop();
    fleet.shutdown();
  }
  std::cout << "baseline: goodput=" << static_cast<std::uint64_t>(
                   baseline.goodput)
            << "/s p99=" << baseline.p99_ms << "ms\n";

  // ---- Phase 2: injected tail, hedged vs unhedged -----------------------
  DriveResult unhedged;
  DriveResult hedged;
  {
    fleet::NetChaosConfig tail;
    tail.seed = 0xdac22;
    tail.delay = std::chrono::milliseconds(40);
    tail.delay_jitter = std::chrono::milliseconds(20);
    tail.delay_rate = 0.12;

    fleet::ClientConfig cc;
    cc.response_timeout = std::chrono::milliseconds(2000);
    cc.retry.attempt_timeout = std::chrono::milliseconds(500);

    for (const bool hedge : {false, true}) {
      auto fleet = make_fleet(world, /*recovery=*/true);
      fleet::Frontend frontend(fleet);
      frontend.start();
      fleet::NetChaos chaos(frontend_endpoints(frontend), tail);
      chaos.start();
      auto config = cc;
      config.hedge.enabled = hedge;
      config.hedge.delay = std::chrono::milliseconds(10);
      (hedge ? hedged : unhedged) =
          drive(chaos.endpoints(), config, world, threads, phase_seconds);
      chaos.stop();
      frontend.stop();
      fleet.shutdown();
    }
  }
  const bool hedge_pass =
      unhedged.p99_ms <= 0.0 ||
      hedged.p99_ms <= hedge_gate * unhedged.p99_ms;
  std::cout << "tail: unhedged p99=" << unhedged.p99_ms
            << "ms hedged p99=" << hedged.p99_ms << "ms (hedges fired "
            << hedged.counters.hedged_requests << ", won "
            << hedged.counters.hedge_wins << ") "
            << (hedge_pass ? "PASS" : "FAIL") << "\n";

  // ---- Phase 3: full chaos ----------------------------------------------
  DriveResult chaos_result;
  double canary_accuracy = 0.0;
  std::uint64_t wire_flips = 0;
  std::uint64_t wire_resets = 0;
  std::uint64_t wire_drops = 0;
  std::uint64_t blackholed_chunks = 0;
  std::uint64_t frontend_protocol_errors = 0;
  std::uint64_t frontend_deadline_sheds = 0;
  std::uint64_t frontend_reaped = 0;
  {
    auto fleet = make_fleet(world, /*recovery=*/true);
    fleet::FrontendConfig fc;
    fc.read_deadline = std::chrono::milliseconds(500);
    fleet::Frontend frontend(fleet, fc);
    frontend.start();

    fleet::NetChaosConfig storm;
    storm.seed = 0xdac22;
    storm.delay = std::chrono::milliseconds(5);
    storm.delay_jitter = std::chrono::milliseconds(10);
    storm.delay_rate = 0.02;
    storm.reset_rate = 0.002;
    storm.drop_rate = 0.002;
    storm.flip_rate = 0.002;
    fleet::NetChaos chaos(frontend_endpoints(frontend), storm);
    chaos.start();

    fleet::ClientConfig cc;
    cc.response_timeout = std::chrono::milliseconds(600);
    cc.retry.attempt_timeout = std::chrono::milliseconds(150);
    cc.retry.initial_backoff = std::chrono::milliseconds(2);
    cc.retry.max_backoff = std::chrono::milliseconds(20);
    cc.hedge.enabled = true;
    cc.hedge.delay = std::chrono::milliseconds(10);
    cc.unhealthy_cooldown = std::chrono::milliseconds(100);

    chaos_result = drive(
        chaos.endpoints(), cc, world, threads, phase_seconds,
        [&] {
          // Half-time: partition shard 0 at the network AND wound every
          // shard's model memory — the recovery ladder and the retry /
          // failover / hedging machinery have to hold the fort
          // together. Every request hashed to shard 0 now survives only
          // because its hedge to the twin wins.
          chaos.set_blackholed(0, true);
          for (std::size_t s = 0; s < kShards; ++s) {
            fleet.shard(s).server().inject_faults(
                attack_rate, fault::AttackMode::kRandom, 0x5eed + s);
          }
        },
        [&] {
          // 75%: the partition heals; the last quarter shows goodput
          // recovering while the scrubbers keep repairing memory.
          chaos.set_blackholed(0, false);
        });

    fleet.drain();
    canary_accuracy = min_canary_accuracy(fleet, world);
    const auto wire = chaos.counters();
    wire_flips = wire.bits_flipped;
    wire_resets = wire.resets_injected;
    wire_drops = wire.chunks_dropped;
    blackholed_chunks = wire.blackholed_chunks;
    const auto fcnt = frontend.counters();
    frontend_protocol_errors = fcnt.protocol_errors;
    frontend_deadline_sheds = fcnt.deadline_sheds;
    frontend_reaped = fcnt.reaped_connections;
    chaos.stop();
    frontend.stop();
    fleet.shutdown();
  }

  // Offline Table-4 reference at the matched attack rate.
  double offline_recovered = 0.0;
  {
    model::HdcModel victim = world.model;
    util::Xoshiro256 rng(0xdac22);
    auto regions = victim.memory_regions();
    fault::BitFlipInjector::inject(regions, attack_rate,
                                   fault::AttackMode::kRandom, rng);
    serve::ServerConfig reference_config;
    model::RecoveryEngine engine(victim,
                                 reference_config.scrubber.recovery);
    for (int epoch = 0; epoch < 10; ++epoch) {
      for (const auto& q : world.traffic) engine.observe(q);
    }
    offline_recovered = victim.evaluate(world.canaries, world.canary_labels);
  }

  const double canary_floor = offline_recovered - tolerance;
  const bool canary_pass = canary_accuracy >= canary_floor;
  const bool goodput_pass =
      chaos_result.goodput >= goodput_gate * baseline.goodput;
  const bool corruption_pass = chaos_result.corrupted == 0 &&
                               baseline.corrupted == 0 &&
                               unhedged.corrupted == 0 &&
                               hedged.corrupted == 0;

  std::cout << "chaos: goodput=" << static_cast<std::uint64_t>(
                   chaos_result.goodput)
            << "/s (" << util::fixed(
                   baseline.goodput > 0.0
                       ? chaos_result.goodput / baseline.goodput
                       : 0.0,
                   3)
            << "x baseline, gate " << goodput_gate << "x) "
            << (goodput_pass ? "PASS" : "FAIL") << "\n";
  std::cout << "chaos: corrupted answers=" << chaos_result.corrupted
            << " (wire flips=" << wire_flips
            << ", frontend protocol errors=" << frontend_protocol_errors
            << ") " << (corruption_pass ? "PASS" : "FAIL") << "\n";
  std::cout << "chaos: canary accuracy=" << util::fixed(canary_accuracy, 4)
            << " vs offline recovered " << util::fixed(offline_recovered, 4)
            << " - tol " << tolerance << " "
            << (canary_pass ? "PASS" : "FAIL") << "\n";

  // ---- Phase 4: legacy version-0 client compat --------------------------
  bool compat_pass = true;
  {
    auto fleet = make_fleet(world, /*recovery=*/false);
    fleet::Frontend frontend(fleet);
    frontend.start();
    fleet::ClientConfig cc;
    cc.send_deadline = false;  // byte-identical legacy frames
    fleet::Client legacy(frontend_endpoints(frontend), default_groups(), cc);
    for (std::size_t i = 0; i < world.canaries.size(); ++i) {
      const auto over_wire = legacy.predict(i, world.canaries[i]);
      const auto direct = fleet.submit(i, world.canaries[i]).get();
      if (!over_wire.ok ||
          over_wire.predicted != direct.predicted ||
          std::bit_cast<std::uint64_t>(over_wire.confidence) !=
              std::bit_cast<std::uint64_t>(direct.confidence)) {
        compat_pass = false;
      }
    }
    frontend.stop();
    fleet.shutdown();
  }
  std::cout << "compat: legacy v0 client "
            << (compat_pass ? "PASS" : "FAIL") << "\n";

  const bool gate_pass = hedge_pass && goodput_pass && corruption_pass &&
                         canary_pass && compat_pass;

  util::TextTable table({"metric", "baseline", "tail", "chaos"});
  table.add_row({"goodput (ok/s)", util::fixed(baseline.goodput, 1),
                 util::fixed(unhedged.goodput, 1),
                 util::fixed(chaos_result.goodput, 1)});
  table.add_row({"p99 (ms)", util::fixed(baseline.p99_ms, 2),
                 util::fixed(unhedged.p99_ms, 2) + " -> " +
                     util::fixed(hedged.p99_ms, 2),
                 util::fixed(chaos_result.p99_ms, 2)});
  table.add_row({"failed requests", std::to_string(baseline.failed),
                 std::to_string(unhedged.failed + hedged.failed),
                 std::to_string(chaos_result.failed)});
  table.add_row({"retries", std::to_string(baseline.counters.retries),
                 std::to_string(hedged.counters.retries),
                 std::to_string(chaos_result.counters.retries)});
  table.add_row({"hedges fired / won", "-",
                 std::to_string(hedged.counters.hedged_requests) + " / " +
                     std::to_string(hedged.counters.hedge_wins),
                 std::to_string(chaos_result.counters.hedged_requests) +
                     " / " +
                     std::to_string(chaos_result.counters.hedge_wins)});
  table.add_row({"corrupted answers", std::to_string(baseline.corrupted),
                 std::to_string(unhedged.corrupted + hedged.corrupted),
                 std::to_string(chaos_result.corrupted)});
  table.print(std::cout);

  std::ostringstream json;
  json << "{\"bench\":\"netchaos_soak\""
       << ",\"dim\":" << dim
       << ",\"phase_seconds\":" << phase_seconds
       << ",\"clients\":" << threads
       << ",\"attack_rate\":" << attack_rate
       << ",\"goodput_baseline\":" << baseline.goodput
       << ",\"goodput_chaos\":" << chaos_result.goodput
       << ",\"goodput_fraction\":"
       << (baseline.goodput > 0.0 ? chaos_result.goodput / baseline.goodput
                                  : 0.0)
       << ",\"goodput_gate\":" << goodput_gate
       << ",\"p99_baseline_ms\":" << baseline.p99_ms
       << ",\"p99_unhedged_ms\":" << unhedged.p99_ms
       << ",\"p99_hedged_ms\":" << hedged.p99_ms
       << ",\"hedge_gate\":" << hedge_gate
       << ",\"hedges_fired\":" << hedged.counters.hedged_requests
       << ",\"hedge_wins\":" << hedged.counters.hedge_wins
       << ",\"chaos_retries\":" << chaos_result.counters.retries
       << ",\"chaos_transport_errors\":"
       << chaos_result.counters.transport_errors
       << ",\"chaos_failed\":" << chaos_result.failed
       << ",\"corrupted_answers\":" << chaos_result.corrupted
       << ",\"wire_bits_flipped\":" << wire_flips
       << ",\"wire_resets\":" << wire_resets
       << ",\"wire_drops\":" << wire_drops
       << ",\"blackholed_chunks\":" << blackholed_chunks
       << ",\"frontend_protocol_errors\":" << frontend_protocol_errors
       << ",\"frontend_deadline_sheds\":" << frontend_deadline_sheds
       << ",\"frontend_reaped_connections\":" << frontend_reaped
       << ",\"canary_accuracy\":" << canary_accuracy
       << ",\"offline_recovered_accuracy\":" << offline_recovered
       << ",\"tolerance\":" << tolerance
       << ",\"gate_hedge\":" << (hedge_pass ? "true" : "false")
       << ",\"gate_goodput\":" << (goodput_pass ? "true" : "false")
       << ",\"gate_corruption\":" << (corruption_pass ? "true" : "false")
       << ",\"gate_canary\":" << (canary_pass ? "true" : "false")
       << ",\"gate_compat\":" << (compat_pass ? "true" : "false")
       << ",\"gate_pass\":" << (gate_pass ? "true" : "false") << "}";
  std::cout << json.str() << "\n";
  std::ofstream("BENCH_netchaos.json") << json.str() << "\n";

  if (!gate_pass) {
    std::cerr << "netchaos_soak gate FAILED:"
              << (hedge_pass ? "" : " hedge-p99")
              << (goodput_pass ? "" : " goodput")
              << (corruption_pass ? "" : " corruption")
              << (canary_pass ? "" : " canary-accuracy")
              << (compat_pass ? "" : " legacy-compat") << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return run(); }
