// Figure 2 — speedup and energy efficiency of DNN and HDC inference on the
// DPIM accelerator, normalised to the DNN-on-GPU baseline.
//
// The paper's reported points: DNN-PIM ~19.8x/5.7x over DNN-GPU (implied),
// HDC-PIM 47.6x faster / 21.2x more energy-efficient than DNN-GPU and
// 2.4x / 3.7x over DNN-PIM. We rebuild these bars from the MAGIC-NOR cost
// algebra + device model; the structure to check is the ordering
// (HDC-PIM > DNN-PIM >> GPU on both axes) and rough magnitudes.

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

int main() {
  bench::header("Figure 2: PIM efficiency running DNN and HDC");

  // UCI-HAR-like inference workloads (the paper's running example):
  // a LookNN-style MLP and a D=10k HDC model with on-line encoding.
  pim::DnnWorkloadSpec dnn;
  dnn.layers = {{561, 512}, {512, 512}, {512, 12}};
  dnn.weight_bits = 8;

  pim::HdcWorkloadSpec hdc;
  hdc.dimension = 10000;
  hdc.classes = 12;
  hdc.features = 561;
  hdc.include_encoding = true;

  pim::DpimAccelerator accelerator;
  const auto dnn_pim = accelerator.cost_dnn(dnn);
  const auto hdc_pim = accelerator.cost_hdc(hdc);
  const auto dnn_gpu = pim::gpu_cost_dnn(dnn);
  const auto hdc_gpu = pim::gpu_cost_hdc(hdc);

  // Normalise to DNN-GPU: speedup = throughput ratio, energy efficiency =
  // inverse energy-per-inference ratio.
  const double base_tp = dnn_gpu.throughput_per_s;
  const double base_en = dnn_gpu.energy_uj;

  struct Row {
    const char* name;
    double throughput;
    double energy;
  } rows[] = {
      {"DNN-GPU", dnn_gpu.throughput_per_s, dnn_gpu.energy_uj},
      {"HDC-GPU", hdc_gpu.throughput_per_s, hdc_gpu.energy_uj},
      {"DNN-PIM", dnn_pim.throughput_per_s, dnn_pim.energy_uj},
      {"HDC-PIM", hdc_pim.throughput_per_s, hdc_pim.energy_uj},
  };

  util::TextTable table({"Config", "Speedup vs DNN-GPU",
                         "Energy eff. vs DNN-GPU"});
  util::CsvWriter csv("fig2_pim_efficiency.csv",
                      {"config", "speedup", "energy_efficiency"});
  for (const auto& row : rows) {
    const double speedup = row.throughput / base_tp;
    const double eff = base_en / row.energy;
    table.add_row({row.name, util::fixed(speedup, 2) + "x",
                   util::fixed(eff, 2) + "x"});
    csv.row(row.name, speedup, eff);
  }
  table.print(std::cout);

  const double speed_ratio =
      hdc_pim.throughput_per_s / dnn_pim.throughput_per_s;
  const double energy_ratio = dnn_pim.energy_uj / hdc_pim.energy_uj;
  std::cout << "HDC-PIM vs DNN-PIM: " << util::fixed(speed_ratio, 2)
            << "x faster, " << util::fixed(energy_ratio, 2)
            << "x more energy-efficient\n"
            << "(paper: 2.4x and 3.7x; vs GPU 47.6x and 21.2x)\n";

  std::cout << "\nPer-inference detail:\n";
  util::TextTable detail({"Config", "Latency (us)", "Energy (uJ)",
                          "Switches", "Batch throughput (inf/s)"});
  detail.add_row({"DNN-PIM", util::fixed(dnn_pim.latency_us, 1),
                  util::fixed(dnn_pim.energy_uj, 2),
                  std::to_string(dnn_pim.device_switches),
                  util::fixed(dnn_pim.throughput_per_s, 0)});
  detail.add_row({"HDC-PIM", util::fixed(hdc_pim.latency_us, 1),
                  util::fixed(hdc_pim.energy_uj, 2),
                  std::to_string(hdc_pim.device_switches),
                  util::fixed(hdc_pim.throughput_per_s, 0)});
  detail.print(std::cout);
  return 0;
}
