// Ablation — hypervector dimensionality vs robustness (the redundancy knob
// of Section 3.2). Sweeps D and reports clean accuracy plus quality loss
// under 5/10/15% random flips. Expectation: accuracy saturates early, but
// robustness keeps improving with D (margins grow linearly in D while flip
// noise grows as sqrt(D)).

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

int main() {
  bench::header("Ablation: dimensionality vs robustness (UCIHAR)");
  auto split = bench::load("UCIHAR");

  util::TextTable table({"D", "Clean", "Loss@5%", "Loss@10%", "Loss@15%",
                         "Loss@25%"});
  util::CsvWriter csv("ablation_dimension.csv",
                      {"dimension", "clean", "rate", "loss"});

  for (const std::size_t dim : {500, 1000, 2000, 4000, 10000, 20000}) {
    core::HdcClassifierConfig config;
    config.encoder.dimension = dim;
    auto clf = core::HdcClassifier::train(split.train, config);
    const auto queries = clf.encoder().encode_all(split.test);
    const double clean = clf.model().evaluate(queries, split.test.labels);

    std::vector<std::string> row{std::to_string(dim), util::pct(clean, 1)};
    for (const double rate : {0.05, 0.10, 0.15, 0.25}) {
      const double loss = bench::hdc_quality_loss(
          clf.model(), queries, split.test.labels, clean, rate,
          fault::AttackMode::kRandom, 0xd1e + dim);
      row.push_back(util::pct(loss));
      csv.row(dim, clean, rate, loss);
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(expected: larger D -> same clean accuracy, lower loss)\n";
  return 0;
}
