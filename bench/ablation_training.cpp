// Ablation — training regimes: single-pass bundling, OnlineHD-style
// single-pass with similarity weighting, and the default margin-aware
// multi-epoch retraining. Reports clean accuracy and robustness; the
// margin knob is the design decision DESIGN.md calls out (wider margins
// buy fault tolerance).

#include "bench_common.hpp"

#include "robusthd/model/online_trainer.hpp"
#include "robusthd/util/csv.hpp"

using namespace robusthd;

int main() {
  bench::header("Ablation: training regime vs robustness (UCIHAR)");
  auto split = bench::load("UCIHAR");
  hv::RecordEncoder encoder(split.train.feature_count(), hv::EncoderConfig{});
  const auto train = encoder.encode_all(split.train);
  const auto test = encoder.encode_all(split.test);

  struct Arm {
    std::string name;
    model::HdcModel model;
  };
  std::vector<Arm> arms;

  {
    model::HdcConfig config;
    config.retrain_epochs = 0;
    arms.push_back({"single-pass bundle",
                    model::HdcModel::train(train, split.train.labels,
                                           split.train.num_classes, config)});
  }
  {
    model::OnlineTrainer trainer(encoder.dimension(),
                                 split.train.num_classes);
    for (std::size_t i = 0; i < train.size(); ++i) {
      trainer.observe(train[i], split.train.labels[i]);
    }
    arms.push_back({"OnlineHD single-pass", trainer.deploy()});
  }
  {
    model::HdcConfig config;
    config.retrain_epochs = 10;
    config.retrain_margin = 0.0;
    arms.push_back({"retrain, no margin",
                    model::HdcModel::train(train, split.train.labels,
                                           split.train.num_classes, config)});
  }
  {
    arms.push_back({"retrain + margin (default)",
                    model::HdcModel::train(train, split.train.labels,
                                           split.train.num_classes, {})});
  }

  util::TextTable table({"Training", "Clean", "Loss@10%", "Loss@20%"});
  util::CsvWriter csv("ablation_training.csv",
                      {"regime", "clean", "loss10", "loss20"});
  for (auto& arm : arms) {
    const double clean = arm.model.evaluate(test, split.test.labels);
    const double loss10 = bench::hdc_quality_loss(
        arm.model, test, split.test.labels, clean, 0.10,
        fault::AttackMode::kRandom, 0x7a1);
    const double loss20 = bench::hdc_quality_loss(
        arm.model, test, split.test.labels, clean, 0.20,
        fault::AttackMode::kRandom, 0x7a2);
    table.add_row({arm.name, util::pct(clean, 1), util::pct(loss10),
                   util::pct(loss20)});
    csv.row(arm.name, clean, loss10, loss20);
  }
  table.print(std::cout);
  return 0;
}
