// Figure 3 — impact of the confidence threshold T_C and the substitution
// rate S on the recovery process: how many unlabeled samples the engine
// needs before accuracy returns to within 0.5% of clean, and the final
// quality loss.
//
// Paper's qualitative claims this bench reproduces:
//  * too-high T_C starves the updater (few trusted samples -> slow or no
//    recovery); too-low T_C admits unreliable teachers (fluctuation);
//  * too-low S repairs slower than damage; too-high S makes each update
//    coarse and hurts final accuracy; a middle S is best.

#include "bench_common.hpp"

#include "robusthd/util/csv.hpp"

using namespace robusthd;

namespace {

struct SweepPoint {
  double final_loss = 0.0;
  double samples_to_recover = 0.0;  // mean; stream length if never
  double trusted_fraction = 0.0;
};

SweepPoint run_point(const core::HdcClassifier& trained,
                     std::span<const hv::BinVec> queries,
                     std::span<const int> labels, double clean,
                     const model::RecoveryConfig& config,
                     std::uint64_t seed) {
  SweepPoint point;
  util::RunningStats loss, samples, trusted;
  const std::size_t epochs = 10;
  for (std::size_t r = 0; r < bench::repetitions(); ++r) {
    model::HdcModel victim = trained.model();
    util::Xoshiro256 rng(seed + 31 * r);
    auto regions = victim.memory_regions();
    // Clustered damage is what the chunk detector can localise; Figure 3
    // studies the recovery dynamics, so give it something to recover.
    fault::BitFlipInjector::inject(regions, 0.04,
                                   fault::AttackMode::kClustered, rng);
    auto engine_config = config;
    engine_config.seed = seed + 7 * r;
    model::RecoveryEngine engine(victim, engine_config);

    // Stream epochs of unlabeled queries; evaluate periodically.
    std::vector<hv::BinVec> stream;
    stream.reserve(queries.size() * epochs);
    for (std::size_t e = 0; e < epochs; ++e) {
      stream.insert(stream.end(), queries.begin(), queries.end());
    }
    model::StreamConfig stream_config;
    stream_config.eval_every = std::max<std::size_t>(queries.size() / 2, 1);
    const auto result = model::run_recovery_stream(
        victim, engine, stream, nullptr, queries, labels, clean,
        stream_config);
    loss.add(util::quality_loss(clean, result.final_accuracy));
    samples.add(result.samples_to_recover ==
                        std::numeric_limits<std::size_t>::max()
                    ? static_cast<double>(stream.size())
                    : static_cast<double>(result.samples_to_recover));
    trusted.add(static_cast<double>(result.trusted_queries) /
                static_cast<double>(stream.size()));
  }
  point.final_loss = loss.mean();
  point.samples_to_recover = samples.mean();
  point.trusted_fraction = trusted.mean();
  return point;
}

}  // namespace

int main() {
  bench::header("Figure 3: impact of confidence T_C and substitution S");
  auto split = bench::load("UCIHAR");
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);
  std::cout << "clean accuracy " << util::pct(clean) << "\n";

  util::CsvWriter csv("fig3_confidence_substitution.csv",
                      {"sweep", "value", "final_loss", "samples_to_recover",
                       "trusted_fraction"});

  {
    std::cout << "\n-- sweep confidence threshold T_C (S fixed at 0.30) --\n";
    util::TextTable table({"T_C", "Final loss", "Samples to recover",
                           "Trusted queries"});
    for (const double tc : {0.50, 0.70, 0.88, 0.95, 0.99}) {
      model::RecoveryConfig config;
      config.confidence_threshold = tc;
      const auto p = run_point(clf, queries, split.test.labels, clean,
                               config, 0xf16 + static_cast<int>(tc * 100));
      table.add_row({util::fixed(tc, 2), util::pct(p.final_loss),
                     util::fixed(p.samples_to_recover, 0),
                     util::pct(p.trusted_fraction, 1)});
      csv.row("T_C", tc, p.final_loss, p.samples_to_recover,
              p.trusted_fraction);
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n-- sweep substitution rate S (T_C fixed at 0.88) --\n";
    util::TextTable table({"S", "Final loss", "Samples to recover",
                           "Trusted queries"});
    for (const double s : {0.05, 0.15, 0.30, 0.50, 0.80}) {
      model::RecoveryConfig config;
      config.substitution_prob = s;
      const auto p = run_point(clf, queries, split.test.labels, clean,
                               config, 0x516 + static_cast<int>(s * 100));
      table.add_row({util::fixed(s, 2), util::pct(p.final_loss),
                     util::fixed(p.samples_to_recover, 0),
                     util::pct(p.trusted_fraction, 1)});
      csv.row("S", s, p.final_loss, p.samples_to_recover,
              p.trusted_fraction);
    }
    table.print(std::cout);
  }

  std::cout << "(paper: extreme T_C or S values recover slower / lose more;\n"
               " a moderate setting is best on both axes)\n";
  return 0;
}
