#include "robusthd/mem/plane_arena.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "robusthd/util/bitops.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace robusthd::mem {

namespace {

constexpr std::size_t kVecWords = 8;  // one 512-bit vector / cache line

std::size_t round_up_words(std::size_t words) noexcept {
  std::size_t stride = (words + kVecWords - 1) / kVecWords * kVecWords;
  // De-alias power-of-two strides: with a page-multiple stride the same
  // tile chunk of every plane lands on the same small group of L2 sets
  // (the set index cycles with period 4096 / stride_bytes pages), and a
  // tile that nominally fits in L2 conflict-misses its way straight back
  // to L3. One extra cache line makes the line-stride odd, spreading
  // consecutive plane rows across every set.
  if (stride * sizeof(std::uint64_t) % 4096 == 0) stride += kVecWords;
  return stride;
}

/// Per-plane words the widest kernel query group keeps live in L1: an
/// 8-query group touches 9 chunks (8 query + 1 plane), and 9 x 4 KiB
/// sits under a 48 KiB L1d. Chunks above this cap make the query chunks
/// re-stream from L2 on every plane iteration, which costs more than the
/// extra per-chunk accumulator reduces a smaller chunk pays.
constexpr std::size_t kL1ChunkWords = 512;

/// Tile width so one tile of all planes targets `tile_bytes` (the L2
/// budget), rounded down to a whole vector, capped at kL1ChunkWords and
/// clamped to [8, words]. Small arenas collapse to a single tile.
std::size_t compute_tile_words(std::size_t planes, std::size_t words,
                               std::size_t tile_bytes) noexcept {
  if (words == 0 || planes == 0) return 0;
  std::size_t tw = tile_bytes / (sizeof(std::uint64_t) * planes);
  tw = tw / kVecWords * kVecWords;
  if (tw > kL1ChunkWords) tw = kL1ChunkWords;
  if (tw < kVecWords) tw = kVecWords;
  if (tw > words) tw = words;
  return tw;
}

}  // namespace

PlaneArenaConfig PlaneArenaConfig::from_env() {
  PlaneArenaConfig config;
  if (const char* v = std::getenv("ROBUSTHD_ARENA_TILE_KB")) {
    const long long kb = std::atoll(v);
    if (kb > 0) config.l2_tile_bytes = static_cast<std::size_t>(kb) * 1024;
  }
  if (const char* v = std::getenv("ROBUSTHD_ARENA_HUGEPAGES")) {
    config.hugepages = std::atoll(v) != 0;
  }
  return config;
}

PlaneArena::PlaneArena(std::size_t planes, std::size_t dimension,
                       const PlaneArenaConfig& config)
    : planes_(planes),
      dim_(dimension),
      words_(util::words_for_bits(dimension)) {
  stride_words_ = round_up_words(words_);
  tile_words_ = compute_tile_words(planes_, words_, config.l2_tile_bytes);
  allocate(config);
}

PlaneArena::~PlaneArena() { release(); }

PlaneArena::PlaneArena(const PlaneArena& other)
    : planes_(other.planes_),
      dim_(other.dim_),
      words_(other.words_),
      stride_words_(other.stride_words_),
      tile_words_(other.tile_words_) {
  if (other.base_ == nullptr) return;
  PlaneArenaConfig config;
  config.hugepages = other.hugepage_backed_;
  allocate(config);
  std::memcpy(base_, other.base_, bytes_);
}

PlaneArena& PlaneArena::operator=(const PlaneArena& other) {
  if (this == &other) return *this;
  // Same geometry: reuse the allocation, one memcpy (the snapshot-copy
  // hot path — publication of a repaired model).
  if (base_ != nullptr && other.base_ != nullptr && bytes_ == other.bytes_ &&
      stride_words_ == other.stride_words_ && planes_ == other.planes_) {
    dim_ = other.dim_;
    words_ = other.words_;
    tile_words_ = other.tile_words_;
    std::memcpy(base_, other.base_, bytes_);
    return *this;
  }
  PlaneArena copy(other);
  *this = std::move(copy);
  return *this;
}

PlaneArena::PlaneArena(PlaneArena&& other) noexcept
    : base_(other.base_),
      planes_(other.planes_),
      dim_(other.dim_),
      words_(other.words_),
      stride_words_(other.stride_words_),
      tile_words_(other.tile_words_),
      bytes_(other.bytes_),
      hugepage_backed_(other.hugepage_backed_),
      mmapped_(other.mmapped_) {
  other.base_ = nullptr;
  other.bytes_ = 0;
  other.planes_ = other.dim_ = other.words_ = 0;
  other.stride_words_ = other.tile_words_ = 0;
  other.hugepage_backed_ = other.mmapped_ = false;
}

PlaneArena& PlaneArena::operator=(PlaneArena&& other) noexcept {
  if (this == &other) return *this;
  release();
  base_ = other.base_;
  planes_ = other.planes_;
  dim_ = other.dim_;
  words_ = other.words_;
  stride_words_ = other.stride_words_;
  tile_words_ = other.tile_words_;
  bytes_ = other.bytes_;
  hugepage_backed_ = other.hugepage_backed_;
  mmapped_ = other.mmapped_;
  other.base_ = nullptr;
  other.bytes_ = 0;
  other.planes_ = other.dim_ = other.words_ = 0;
  other.stride_words_ = other.tile_words_ = 0;
  other.hugepage_backed_ = other.mmapped_ = false;
  return *this;
}

void PlaneArena::allocate(const PlaneArenaConfig& config) {
  bytes_ = planes_ * stride_words_ * sizeof(std::uint64_t);
  if (bytes_ == 0) {
    base_ = nullptr;
    return;
  }
#if defined(__linux__)
  // Anonymous mmap: page-aligned (>= 64B), zero-filled, and the only
  // allocation path madvise(MADV_HUGEPAGE) applies to. The hint is
  // best-effort by design — on kernels without THP (or with it disabled)
  // madvise fails and the arena runs on normal 4K pages.
  void* p = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    base_ = static_cast<std::uint64_t*>(p);
    mmapped_ = true;
    if (config.hugepages) {
      hugepage_backed_ = ::madvise(base_, bytes_, MADV_HUGEPAGE) == 0;
    }
    return;
  }
#endif
  // Portable fallback: over-aligned operator new, zeroed by hand.
  base_ = static_cast<std::uint64_t*>(
      ::operator new(bytes_, std::align_val_t{64}));
  std::memset(base_, 0, bytes_);
  mmapped_ = false;
  hugepage_backed_ = false;
}

void PlaneArena::release() noexcept {
  if (base_ == nullptr) return;
#if defined(__linux__)
  if (mmapped_) {
    ::munmap(base_, bytes_);
    base_ = nullptr;
    return;
  }
#endif
  ::operator delete(base_, std::align_val_t{64});
  base_ = nullptr;
}

void PlaneArena::store_plane(std::size_t p, const hv::BinVec& v) noexcept {
  assert(p < planes_);
  assert(v.dimension() == dim_);
  std::memcpy(plane(p), v.words().data(), words_ * sizeof(std::uint64_t));
}

void PlaneArena::load_plane(std::size_t p, hv::BinVec& out) const noexcept {
  assert(p < planes_);
  if (out.dimension() != dim_) out = hv::BinVec(dim_);
  std::memcpy(out.mutable_words().data(), plane(p),
              words_ * sizeof(std::uint64_t));
}

void PlaneArena::store_words(std::size_t p, std::size_t word_begin,
                             std::size_t word_end,
                             const std::uint64_t* src) noexcept {
  assert(p < planes_);
  assert(word_begin <= word_end && word_end <= words_);
  std::memcpy(plane(p) + word_begin, src + word_begin,
              (word_end - word_begin) * sizeof(std::uint64_t));
}

}  // namespace robusthd::mem
