#include "robusthd/mem/ecc.hpp"

#include <cmath>

namespace robusthd::mem {

double uncorrectable_word_rate(double ber, const EccParams& params) {
  const auto n = static_cast<double>(params.data_bits + params.check_bits);
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  // P(0 or 1 flips) under binomial(n, ber).
  const double p0 = std::pow(1.0 - ber, n);
  const double p1 = n * ber * std::pow(1.0 - ber, n - 1.0);
  return 1.0 - p0 - p1;
}

double residual_bit_error_rate(double ber, const EccParams& params) {
  const auto n = static_cast<double>(params.data_bits + params.check_bits);
  if (ber <= 0.0) return 0.0;
  // Expected flips per word, conditioned on the word being uncorrectable,
  // spread over the data bits. E[flips · 1(flips>=2)] = n·ber − P(1 flip).
  const double p1 = n * ber * std::pow(1.0 - ber, n - 1.0);
  const double expected_bad_flips = n * ber - p1;
  const double residual =
      expected_bad_flips / static_cast<double>(params.data_bits);
  return residual < 0.0 ? 0.0 : residual;
}

}  // namespace robusthd::mem
