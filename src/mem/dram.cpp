#include "robusthd/mem/dram.hpp"

#include <algorithm>
#include <cmath>

namespace robusthd::mem {

namespace {

double phi(double z) noexcept { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double phi_inv(double p) noexcept {
  double lo = -12.0, hi = 12.0;
  for (int i = 0; i < 90; ++i) {
    const double mid = 0.5 * (lo + hi);
    (phi(mid) < p ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double bit_error_rate(double interval_ms, const DramParams& params) {
  if (interval_ms <= 0.0) return 0.0;
  // A cell errs when its retention time is shorter than the interval.
  const double z = (std::log(interval_ms) - std::log(params.retention_median_ms)) /
                   params.retention_sigma;
  return phi(z);
}

double interval_for_error_rate(double ber, const DramParams& params) {
  ber = std::clamp(ber, 1.0e-12, 1.0 - 1.0e-12);
  return params.retention_median_ms *
         std::exp(params.retention_sigma * phi_inv(ber));
}

double relative_power(double interval_ms, const DramParams& params) {
  const double refresh_scale =
      params.base_refresh_ms / std::max(interval_ms, params.base_refresh_ms);
  return (1.0 - params.refresh_power_fraction) +
         params.refresh_power_fraction * refresh_scale;
}

double energy_efficiency_gain(double interval_ms, const DramParams& params) {
  return 1.0 - relative_power(interval_ms, params);
}

}  // namespace robusthd::mem
