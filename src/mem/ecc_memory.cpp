#include "robusthd/mem/ecc_memory.hpp"

#include <algorithm>
#include <cstring>

namespace robusthd::mem {

namespace {

constexpr int kCodeBits = 71;  // 64 data + 7 Hamming parity (positions 1..71)

constexpr bool is_power_of_two(int x) noexcept { return (x & (x - 1)) == 0; }

/// Expands (data, parity bits) into the 1-indexed codeword bit at `pos`.
/// Data bits fill the non-power-of-two positions in increasing order; the
/// mapping is fixed by construction, so both encoder and decoder iterate
/// positions the same way.
struct Codeword {
  // code[pos] for pos in 1..71; index 0 unused.
  bool bits[kCodeBits + 1] = {};

  static Codeword from_data(std::uint64_t data) noexcept {
    Codeword cw;
    int d = 0;
    for (int pos = 1; pos <= kCodeBits; ++pos) {
      if (!is_power_of_two(pos)) {
        cw.bits[pos] = (data >> d) & 1ULL;
        ++d;
      }
    }
    return cw;
  }

  std::uint64_t to_data() const noexcept {
    std::uint64_t data = 0;
    int d = 0;
    for (int pos = 1; pos <= kCodeBits; ++pos) {
      if (!is_power_of_two(pos)) {
        data |= static_cast<std::uint64_t>(bits[pos]) << d;
        ++d;
      }
    }
    return data;
  }

  /// Sets the 7 Hamming parities so each covered group XORs to zero.
  void set_parities() noexcept {
    for (int p = 0; p < 7; ++p) {
      const int pp = 1 << p;
      bool parity = false;
      for (int pos = 1; pos <= kCodeBits; ++pos) {
        if ((pos & pp) && pos != pp) parity ^= bits[pos];
      }
      bits[pp] = parity;
    }
  }

  /// Syndrome: position of a single flipped bit, 0 if parities check out.
  int syndrome() const noexcept {
    int s = 0;
    for (int p = 0; p < 7; ++p) {
      const int pp = 1 << p;
      bool parity = false;
      for (int pos = 1; pos <= kCodeBits; ++pos) {
        if (pos & pp) parity ^= bits[pos];
      }
      if (parity) s |= pp;
    }
    return s;
  }

  bool overall_parity() const noexcept {
    bool parity = false;
    for (int pos = 1; pos <= kCodeBits; ++pos) parity ^= bits[pos];
    return parity;
  }
};

/// check byte layout: bits 0..6 = Hamming parities P1,P2,...,P64;
/// bit 7 = overall parity over the 71 codeword bits and itself
/// (even parity over all 72 stored bits).
void split_check(std::uint8_t check, Codeword& cw, bool& overall) noexcept {
  for (int p = 0; p < 7; ++p) cw.bits[1 << p] = (check >> p) & 1u;
  overall = (check >> 7) & 1u;
}

std::uint8_t join_check(const Codeword& cw, bool overall) noexcept {
  std::uint8_t check = 0;
  for (int p = 0; p < 7; ++p) {
    check |= static_cast<std::uint8_t>(cw.bits[1 << p]) << p;
  }
  check |= static_cast<std::uint8_t>(overall) << 7;
  return check;
}

}  // namespace

std::uint8_t secded_encode(std::uint64_t data) noexcept {
  Codeword cw = Codeword::from_data(data);
  cw.set_parities();
  // Even parity over all 72 bits: overall bit = parity of the 71.
  return join_check(cw, cw.overall_parity());
}

EccOutcome secded_decode(std::uint64_t& data, std::uint8_t& check) noexcept {
  Codeword cw = Codeword::from_data(data);
  bool stored_overall = false;
  split_check(check, cw, stored_overall);

  const int syndrome = cw.syndrome();
  const bool parity_mismatch = cw.overall_parity() != stored_overall;

  if (syndrome == 0 && !parity_mismatch) return EccOutcome::kClean;

  if (parity_mismatch) {
    // Odd number of flips; assume one and repair it.
    if (syndrome == 0) {
      // The overall-parity bit itself flipped.
      check ^= 0x80;
    } else if (syndrome <= kCodeBits) {
      cw.bits[syndrome] = !cw.bits[syndrome];
      data = cw.to_data();
      check = join_check(cw, stored_overall);
    } else {
      return EccOutcome::kUncorrectable;  // syndrome points past the code
    }
    return EccOutcome::kCorrected;
  }

  // Non-zero syndrome with matching overall parity: even flip count.
  return EccOutcome::kUncorrectable;
}

EccProtectedMemory::EccProtectedMemory(std::span<const std::byte> payload)
    : payload_size_(payload.size()) {
  const std::size_t words = (payload.size() + 7) / 8;
  words_.assign(words, 0);
  std::memcpy(words_.data(), payload.data(), payload.size());
  checks_.resize(words);
  for (std::size_t w = 0; w < words; ++w) {
    checks_[w] = secded_encode(words_[w]);
  }
}

std::span<std::byte> EccProtectedMemory::stored_data() noexcept {
  return {reinterpret_cast<std::byte*>(words_.data()), words_.size() * 8};
}

std::span<std::byte> EccProtectedMemory::stored_checks() noexcept {
  return {reinterpret_cast<std::byte*>(checks_.data()), checks_.size()};
}

std::span<const std::byte> EccProtectedMemory::stored_data() const noexcept {
  return {reinterpret_cast<const std::byte*>(words_.data()),
          words_.size() * 8};
}

std::span<const std::byte> EccProtectedMemory::stored_checks() const noexcept {
  return {reinterpret_cast<const std::byte*>(checks_.data()), checks_.size()};
}

EccProtectedMemory::ScrubReport EccProtectedMemory::read_all(
    std::span<std::byte> out) {
  ScrubReport report;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    switch (secded_decode(words_[w], checks_[w])) {
      case EccOutcome::kClean: ++report.clean; break;
      case EccOutcome::kCorrected: ++report.corrected; break;
      case EccOutcome::kUncorrectable: ++report.uncorrectable; break;
    }
  }
  const std::size_t n = std::min(out.size(), payload_size_);
  std::memcpy(out.data(), words_.data(), n);
  return report;
}

}  // namespace robusthd::mem
