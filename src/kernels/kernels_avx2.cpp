// AVX2 kernels: Harley–Seal carry-save popcount (Muła/Kurz/Lemire) for the
// long reductions, PSHUFB nibble popcount for the blocked matrix kernel.
// This TU is the only place compiled with -mavx2; it is reached strictly
// through the runtime dispatcher, so building it never makes the library
// require AVX2 at load time.

#include "kernels_internal.hpp"

#if defined(ROBUSTHD_KERNELS_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace robusthd::kernels::detail {

namespace {

/// Per-64-bit-lane popcount of a 256-bit vector (PSHUFB nibble LUT + SAD).
inline __m256i popcount256(__m256i v) noexcept {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Carry-save adder: (h, l) = a + b + c in bit-sliced form.
inline void csa(__m256i& h, __m256i& l, __m256i a, __m256i b,
                __m256i c) noexcept {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

inline std::uint64_t hsum256(__m256i v) noexcept {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// Harley–Seal reduction over `vecs` 256-bit blocks produced by `load`;
/// `load(i)` yields block i. Fusing the XOR into the loader makes the same
/// routine serve popcount (identity load) and Hamming (xor load).
template <typename Load>
std::uint64_t harley_seal(Load load, std::size_t vecs) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  __m256i total = zero, ones = zero, twos = zero, fours = zero,
          eights = zero;
  __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;

  std::size_t i = 0;
  for (; i + 16 <= vecs; i += 16) {
    csa(twos_a, ones, ones, load(i + 0), load(i + 1));
    csa(twos_b, ones, ones, load(i + 2), load(i + 3));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 4), load(i + 5));
    csa(twos_b, ones, ones, load(i + 6), load(i + 7));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_a, fours, fours, fours_a, fours_b);
    csa(twos_a, ones, ones, load(i + 8), load(i + 9));
    csa(twos_b, ones, ones, load(i + 10), load(i + 11));
    csa(fours_a, twos, twos, twos_a, twos_b);
    csa(twos_a, ones, ones, load(i + 12), load(i + 13));
    csa(twos_b, ones, ones, load(i + 14), load(i + 15));
    csa(fours_b, twos, twos, twos_a, twos_b);
    csa(eights_b, fours, fours, fours_a, fours_b);
    csa(sixteens, eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, popcount256(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(eights), 3));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(twos), 1));
  total = _mm256_add_epi64(total, popcount256(ones));
  for (; i < vecs; ++i) total = _mm256_add_epi64(total, popcount256(load(i)));
  return hsum256(total);
}

std::size_t popcount_avx2(const std::uint64_t* words, std::size_t n) {
  const std::size_t vecs = n / 4;
  std::uint64_t total = harley_seal(
      [&](std::size_t i) {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(words + 4 * i));
      },
      vecs);
  for (std::size_t i = vecs * 4; i < n; ++i) total += word_popcount(words[i]);
  return static_cast<std::size_t>(total);
}

std::size_t hamming_avx2(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  const std::size_t vecs = n / 4;
  std::uint64_t total = harley_seal(
      [&](std::size_t i) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a + 4 * i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + 4 * i));
        return _mm256_xor_si256(va, vb);
      },
      vecs);
  for (std::size_t i = vecs * 4; i < n; ++i) {
    total += word_popcount(a[i] ^ b[i]);
  }
  return static_cast<std::size_t>(total);
}

std::size_t hamming_masked_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n, std::uint64_t first_mask,
                                std::uint64_t last_mask) {
  if (n == 0) return 0;
  if (n == 1) return word_popcount((a[0] ^ b[0]) & first_mask & last_mask);
  // Masked edge words scalar, SIMD over the full interior.
  std::size_t total = word_popcount((a[0] ^ b[0]) & first_mask) +
                      word_popcount((a[n - 1] ^ b[n - 1]) & last_mask);
  return total + hamming_avx2(a + 1, b + 1, n - 2);
}

void hamming_matrix_avx2(const std::uint64_t* const* queries,
                         std::size_t num_queries,
                         const std::uint64_t* const* planes,
                         std::size_t num_planes, std::size_t words,
                         std::uint32_t* out) {
  constexpr std::size_t kBlock = 4;
  const std::size_t vecs = words / 4;
  std::size_t q = 0;
  for (; q + kBlock <= num_queries; q += kBlock) {
    const std::uint64_t* q0 = queries[q + 0];
    const std::uint64_t* q1 = queries[q + 1];
    const std::uint64_t* q2 = queries[q + 2];
    const std::uint64_t* q3 = queries[q + 3];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t v = 0; v < vecs; ++v) {
        // One plane load serves all four queries in the block.
        const __m256i pw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(plane + 4 * v));
        acc0 = _mm256_add_epi64(
            acc0, popcount256(_mm256_xor_si256(
                      _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(q0 + 4 * v)),
                      pw)));
        acc1 = _mm256_add_epi64(
            acc1, popcount256(_mm256_xor_si256(
                      _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(q1 + 4 * v)),
                      pw)));
        acc2 = _mm256_add_epi64(
            acc2, popcount256(_mm256_xor_si256(
                      _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(q2 + 4 * v)),
                      pw)));
        acc3 = _mm256_add_epi64(
            acc3, popcount256(_mm256_xor_si256(
                      _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(q3 + 4 * v)),
                      pw)));
      }
      std::uint64_t d0 = hsum256(acc0), d1 = hsum256(acc1),
                    d2 = hsum256(acc2), d3 = hsum256(acc3);
      for (std::size_t w = vecs * 4; w < words; ++w) {
        const std::uint64_t pw = plane[w];
        d0 += word_popcount(q0[w] ^ pw);
        d1 += word_popcount(q1[w] ^ pw);
        d2 += word_popcount(q2[w] ^ pw);
        d3 += word_popcount(q3[w] ^ pw);
      }
      out[(q + 0) * num_planes + p] = static_cast<std::uint32_t>(d0);
      out[(q + 1) * num_planes + p] = static_cast<std::uint32_t>(d1);
      out[(q + 2) * num_planes + p] = static_cast<std::uint32_t>(d2);
      out[(q + 3) * num_planes + p] = static_cast<std::uint32_t>(d3);
    }
  }
  for (; q < num_queries; ++q) {
    for (std::size_t p = 0; p < num_planes; ++p) {
      out[q * num_planes + p] =
          static_cast<std::uint32_t>(hamming_avx2(queries[q], planes[p],
                                                  words));
    }
  }
}

void hamming_matrix_masked_avx2(const std::uint64_t* const* queries,
                                std::size_t num_queries,
                                const std::uint64_t* const* planes,
                                std::size_t num_planes, std::size_t words,
                                const std::uint64_t* mask,
                                std::uint32_t* out) {
  constexpr std::size_t kBlock = 4;
  const std::size_t vecs = words / 4;
  std::size_t q = 0;
  for (; q + kBlock <= num_queries; q += kBlock) {
    const std::uint64_t* q0 = queries[q + 0];
    const std::uint64_t* q1 = queries[q + 1];
    const std::uint64_t* q2 = queries[q + 2];
    const std::uint64_t* q3 = queries[q + 3];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t v = 0; v < vecs; ++v) {
        // One plane load serves all four queries; the quarantine mask is
        // ANDed into each XOR so excluded words never reach the popcount.
        const __m256i pw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(plane + 4 * v));
        const __m256i mw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(mask + 4 * v));
        acc0 = _mm256_add_epi64(
            acc0, popcount256(_mm256_and_si256(
                      _mm256_xor_si256(
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(q0 + 4 * v)),
                          pw),
                      mw)));
        acc1 = _mm256_add_epi64(
            acc1, popcount256(_mm256_and_si256(
                      _mm256_xor_si256(
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(q1 + 4 * v)),
                          pw),
                      mw)));
        acc2 = _mm256_add_epi64(
            acc2, popcount256(_mm256_and_si256(
                      _mm256_xor_si256(
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(q2 + 4 * v)),
                          pw),
                      mw)));
        acc3 = _mm256_add_epi64(
            acc3, popcount256(_mm256_and_si256(
                      _mm256_xor_si256(
                          _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(q3 + 4 * v)),
                          pw),
                      mw)));
      }
      std::uint64_t d0 = hsum256(acc0), d1 = hsum256(acc1),
                    d2 = hsum256(acc2), d3 = hsum256(acc3);
      for (std::size_t w = vecs * 4; w < words; ++w) {
        const std::uint64_t pw = plane[w];
        const std::uint64_t mw = mask[w];
        d0 += word_popcount((q0[w] ^ pw) & mw);
        d1 += word_popcount((q1[w] ^ pw) & mw);
        d2 += word_popcount((q2[w] ^ pw) & mw);
        d3 += word_popcount((q3[w] ^ pw) & mw);
      }
      out[(q + 0) * num_planes + p] = static_cast<std::uint32_t>(d0);
      out[(q + 1) * num_planes + p] = static_cast<std::uint32_t>(d1);
      out[(q + 2) * num_planes + p] = static_cast<std::uint32_t>(d2);
      out[(q + 3) * num_planes + p] = static_cast<std::uint32_t>(d3);
    }
  }
  for (; q < num_queries; ++q) {
    const std::uint64_t* qw = queries[q];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      const std::size_t n = words;
      const std::size_t tail_vecs = n / 4;
      std::uint64_t total = harley_seal(
          [&](std::size_t i) {
            const __m256i vq = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(qw + 4 * i));
            const __m256i vp = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(plane + 4 * i));
            const __m256i vm = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(mask + 4 * i));
            return _mm256_and_si256(_mm256_xor_si256(vq, vp), vm);
          },
          tail_vecs);
      for (std::size_t w = tail_vecs * 4; w < n; ++w) {
        total += word_popcount((qw[w] ^ plane[w]) & mask[w]);
      }
      out[q * num_planes + p] = static_cast<std::uint32_t>(total);
    }
  }
}

// Arena kernels: stride-addressed plane rows, tile-outer traversal so one
// tile of every plane stays L2-resident across query blocks, next-tile
// software prefetch issued on the last query block of each tile. Aligned
// loads are safe on the plane side (the arena is 64-byte aligned with an
// 8-word stride) but queries may be arbitrary, so both sides keep loadu —
// on AVX2 hardware loadu of an aligned address costs the same.
void hamming_matrix_arena_avx2(const std::uint64_t* const* queries,
                               std::size_t num_queries, const PlaneSet& ps,
                               std::uint32_t* out) {
  const std::size_t np = ps.planes;
  for (std::size_t i = 0; i < num_queries * np; ++i) out[i] = 0;
  if (num_queries == 0 || np == 0 || ps.words == 0) return;
  const std::size_t tile = arena_tile_words(ps);
  for (std::size_t t0 = 0; t0 < ps.words; t0 += tile) {
    const std::size_t tw = std::min(tile, ps.words - t0);
    const bool has_next = t0 + tw < ps.words;
    const std::size_t vecs = tw / 4;
    std::size_t q = 0;
    for (; q + 4 <= num_queries; q += 4) {
      const bool last_block = q + 8 > num_queries;
      const std::uint64_t* q0 = queries[q + 0] + t0;
      const std::uint64_t* q1 = queries[q + 1] + t0;
      const std::uint64_t* q2 = queries[q + 2] + t0;
      const std::uint64_t* q3 = queries[q + 3] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        if (last_block && has_next) {
          prefetch_words(plane + tw, std::min(tile, ps.words - t0 - tw));
        }
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        __m256i acc2 = _mm256_setzero_si256();
        __m256i acc3 = _mm256_setzero_si256();
        for (std::size_t v = 0; v < vecs; ++v) {
          const __m256i pw = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(plane + 4 * v));
          acc0 = _mm256_add_epi64(
              acc0, popcount256(_mm256_xor_si256(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(q0 + 4 * v)),
                        pw)));
          acc1 = _mm256_add_epi64(
              acc1, popcount256(_mm256_xor_si256(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(q1 + 4 * v)),
                        pw)));
          acc2 = _mm256_add_epi64(
              acc2, popcount256(_mm256_xor_si256(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(q2 + 4 * v)),
                        pw)));
          acc3 = _mm256_add_epi64(
              acc3, popcount256(_mm256_xor_si256(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(q3 + 4 * v)),
                        pw)));
        }
        std::uint64_t d0 = hsum256(acc0), d1 = hsum256(acc1),
                      d2 = hsum256(acc2), d3 = hsum256(acc3);
        for (std::size_t w = vecs * 4; w < tw; ++w) {
          const std::uint64_t pw = plane[w];
          d0 += word_popcount(q0[w] ^ pw);
          d1 += word_popcount(q1[w] ^ pw);
          d2 += word_popcount(q2[w] ^ pw);
          d3 += word_popcount(q3[w] ^ pw);
        }
        out[(q + 0) * np + p] += static_cast<std::uint32_t>(d0);
        out[(q + 1) * np + p] += static_cast<std::uint32_t>(d1);
        out[(q + 2) * np + p] += static_cast<std::uint32_t>(d2);
        out[(q + 3) * np + p] += static_cast<std::uint32_t>(d3);
      }
    }
    for (; q < num_queries; ++q) {
      const std::uint64_t* qw = queries[q] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        out[q * np + p] +=
            static_cast<std::uint32_t>(hamming_avx2(qw, plane, tw));
      }
    }
  }
}

void hamming_matrix_arena_masked_avx2(const std::uint64_t* const* queries,
                                      std::size_t num_queries,
                                      const PlaneSet& ps,
                                      const std::uint64_t* mask,
                                      std::uint32_t* out) {
  const std::size_t np = ps.planes;
  for (std::size_t i = 0; i < num_queries * np; ++i) out[i] = 0;
  if (num_queries == 0 || np == 0 || ps.words == 0) return;
  const std::size_t tile = arena_tile_words(ps);
  for (std::size_t t0 = 0; t0 < ps.words; t0 += tile) {
    const std::size_t tw = std::min(tile, ps.words - t0);
    const bool has_next = t0 + tw < ps.words;
    const std::uint64_t* mw_base = mask + t0;
    const std::size_t vecs = tw / 4;
    std::size_t q = 0;
    for (; q + 4 <= num_queries; q += 4) {
      const bool last_block = q + 8 > num_queries;
      const std::uint64_t* q0 = queries[q + 0] + t0;
      const std::uint64_t* q1 = queries[q + 1] + t0;
      const std::uint64_t* q2 = queries[q + 2] + t0;
      const std::uint64_t* q3 = queries[q + 3] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        if (last_block && has_next) {
          prefetch_words(plane + tw, std::min(tile, ps.words - t0 - tw));
        }
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        __m256i acc2 = _mm256_setzero_si256();
        __m256i acc3 = _mm256_setzero_si256();
        for (std::size_t v = 0; v < vecs; ++v) {
          const __m256i pw = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(plane + 4 * v));
          const __m256i mw = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(mw_base + 4 * v));
          acc0 = _mm256_add_epi64(
              acc0, popcount256(_mm256_and_si256(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(q0 + 4 * v)),
                            pw),
                        mw)));
          acc1 = _mm256_add_epi64(
              acc1, popcount256(_mm256_and_si256(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(q1 + 4 * v)),
                            pw),
                        mw)));
          acc2 = _mm256_add_epi64(
              acc2, popcount256(_mm256_and_si256(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(q2 + 4 * v)),
                            pw),
                        mw)));
          acc3 = _mm256_add_epi64(
              acc3, popcount256(_mm256_and_si256(
                        _mm256_xor_si256(
                            _mm256_loadu_si256(
                                reinterpret_cast<const __m256i*>(q3 + 4 * v)),
                            pw),
                        mw)));
        }
        std::uint64_t d0 = hsum256(acc0), d1 = hsum256(acc1),
                      d2 = hsum256(acc2), d3 = hsum256(acc3);
        for (std::size_t w = vecs * 4; w < tw; ++w) {
          const std::uint64_t pw = plane[w];
          const std::uint64_t mw = mw_base[w];
          d0 += word_popcount((q0[w] ^ pw) & mw);
          d1 += word_popcount((q1[w] ^ pw) & mw);
          d2 += word_popcount((q2[w] ^ pw) & mw);
          d3 += word_popcount((q3[w] ^ pw) & mw);
        }
        out[(q + 0) * np + p] += static_cast<std::uint32_t>(d0);
        out[(q + 1) * np + p] += static_cast<std::uint32_t>(d1);
        out[(q + 2) * np + p] += static_cast<std::uint32_t>(d2);
        out[(q + 3) * np + p] += static_cast<std::uint32_t>(d3);
      }
    }
    for (; q < num_queries; ++q) {
      const std::uint64_t* qw = queries[q] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        std::uint64_t total = harley_seal(
            [&](std::size_t i) {
              const __m256i vq = _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(qw + 4 * i));
              const __m256i vp = _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(plane + 4 * i));
              const __m256i vm = _mm256_loadu_si256(
                  reinterpret_cast<const __m256i*>(mw_base + 4 * i));
              return _mm256_and_si256(_mm256_xor_si256(vq, vp), vm);
            },
            vecs);
        for (std::size_t w = vecs * 4; w < tw; ++w) {
          total += word_popcount((qw[w] ^ plane[w]) & mw_base[w]);
        }
        out[q * np + p] += static_cast<std::uint32_t>(total);
      }
    }
  }
}

constexpr Ops kAvx2Ops{popcount_avx2,
                       hamming_avx2,
                       hamming_masked_avx2,
                       hamming_matrix_avx2,
                       hamming_matrix_masked_avx2,
                       hamming_matrix_arena_avx2,
                       hamming_matrix_arena_masked_avx2};

}  // namespace

const Ops* avx2_ops() noexcept { return &kAvx2Ops; }

}  // namespace robusthd::kernels::detail

#else  // ROBUSTHD_KERNELS_HAVE_AVX2

namespace robusthd::kernels::detail {

// Compiled out (toolchain lacks AVX2 support): the dispatcher sees no table.
const Ops* avx2_ops() noexcept { return nullptr; }

}  // namespace robusthd::kernels::detail

#endif  // ROBUSTHD_KERNELS_HAVE_AVX2
