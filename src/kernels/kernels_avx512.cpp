// AVX-512 kernels: VPOPCNTDQ gives a native per-64-bit-lane popcount, so
// every kernel is a straight-line XOR + VPOPCNTQ + ADD stream over 512-bit
// blocks, with masked loads covering the tail words (masked-out lanes read
// as zero and contribute nothing). This TU is the only place compiled with
// AVX-512 flags; it is reached strictly through the runtime dispatcher.

#include "kernels_internal.hpp"

#if defined(ROBUSTHD_KERNELS_HAVE_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <utility>

namespace robusthd::kernels::detail {



namespace {

inline __mmask8 tail_mask(std::size_t remaining) noexcept {
  return static_cast<__mmask8>((1u << remaining) - 1u);
}

std::size_t popcount_avx512(const std::uint64_t* words, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(words + i)));
  }
  if (i < n) {
    const __m512i v = _mm512_maskz_loadu_epi64(tail_mask(n - i), words + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

std::size_t hamming_avx512(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  // Two independent accumulators hide the VPOPCNTQ latency.
  __m512i acc2 = _mm512_setzero_si512();
  for (; i + 16 <= n; i += 16) {
    const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                        _mm512_loadu_si512(b + i));
    const __m512i x1 = _mm512_xor_si512(_mm512_loadu_si512(a + i + 8),
                                        _mm512_loadu_si512(b + i + 8));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x0));
    acc2 = _mm512_add_epi64(acc2, _mm512_popcnt_epi64(x1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  if (i < n) {
    const __mmask8 m = tail_mask(n - i);
    const __m512i x = _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                       _mm512_maskz_loadu_epi64(m, b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  acc = _mm512_add_epi64(acc, acc2);
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

std::size_t hamming_masked_avx512(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n,
                                  std::uint64_t first_mask,
                                  std::uint64_t last_mask) {
  if (n == 0) return 0;
  if (n == 1) return word_popcount((a[0] ^ b[0]) & first_mask & last_mask);
  const std::size_t total = word_popcount((a[0] ^ b[0]) & first_mask) +
                            word_popcount((a[n - 1] ^ b[n - 1]) & last_mask);
  return total + hamming_avx512(a + 1, b + 1, n - 2);
}

void hamming_matrix_avx512(const std::uint64_t* const* queries,
                           std::size_t num_queries,
                           const std::uint64_t* const* planes,
                           std::size_t num_planes, std::size_t words,
                           std::uint32_t* out) {
  constexpr std::size_t kBlock = 4;
  const std::size_t vecs = words / 8;
  const __mmask8 tail =
      words % 8 != 0 ? tail_mask(words % 8) : static_cast<__mmask8>(0);
  std::size_t q = 0;
  for (; q + kBlock <= num_queries; q += kBlock) {
    const std::uint64_t* q0 = queries[q + 0];
    const std::uint64_t* q1 = queries[q + 1];
    const std::uint64_t* q2 = queries[q + 2];
    const std::uint64_t* q3 = queries[q + 3];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      for (std::size_t v = 0; v < vecs; ++v) {
        // One plane load is XOR-popcounted against all four queries.
        const __m512i pw = _mm512_loadu_si512(plane + 8 * v);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(
                      _mm512_xor_si512(_mm512_loadu_si512(q0 + 8 * v), pw)));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(
                      _mm512_xor_si512(_mm512_loadu_si512(q1 + 8 * v), pw)));
        acc2 = _mm512_add_epi64(
            acc2, _mm512_popcnt_epi64(
                      _mm512_xor_si512(_mm512_loadu_si512(q2 + 8 * v), pw)));
        acc3 = _mm512_add_epi64(
            acc3, _mm512_popcnt_epi64(
                      _mm512_xor_si512(_mm512_loadu_si512(q3 + 8 * v), pw)));
      }
      if (tail) {
        const std::size_t off = vecs * 8;
        const __m512i pw = _mm512_maskz_loadu_epi64(tail, plane + off);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_xor_si512(
                      _mm512_maskz_loadu_epi64(tail, q0 + off), pw)));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(_mm512_xor_si512(
                      _mm512_maskz_loadu_epi64(tail, q1 + off), pw)));
        acc2 = _mm512_add_epi64(
            acc2, _mm512_popcnt_epi64(_mm512_xor_si512(
                      _mm512_maskz_loadu_epi64(tail, q2 + off), pw)));
        acc3 = _mm512_add_epi64(
            acc3, _mm512_popcnt_epi64(_mm512_xor_si512(
                      _mm512_maskz_loadu_epi64(tail, q3 + off), pw)));
      }
      out[(q + 0) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc0));
      out[(q + 1) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc1));
      out[(q + 2) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc2));
      out[(q + 3) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc3));
    }
  }
  for (; q < num_queries; ++q) {
    for (std::size_t p = 0; p < num_planes; ++p) {
      out[q * num_planes + p] = static_cast<std::uint32_t>(
          hamming_avx512(queries[q], planes[p], words));
    }
  }
}

void hamming_matrix_masked_avx512(const std::uint64_t* const* queries,
                                  std::size_t num_queries,
                                  const std::uint64_t* const* planes,
                                  std::size_t num_planes, std::size_t words,
                                  const std::uint64_t* mask,
                                  std::uint32_t* out) {
  constexpr std::size_t kBlock = 4;
  const std::size_t vecs = words / 8;
  const __mmask8 tail =
      words % 8 != 0 ? tail_mask(words % 8) : static_cast<__mmask8>(0);
  std::size_t q = 0;
  for (; q + kBlock <= num_queries; q += kBlock) {
    const std::uint64_t* q0 = queries[q + 0];
    const std::uint64_t* q1 = queries[q + 1];
    const std::uint64_t* q2 = queries[q + 2];
    const std::uint64_t* q3 = queries[q + 3];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      for (std::size_t v = 0; v < vecs; ++v) {
        // One plane + one mask load serve all four queries; excluded words
        // are zeroed before the popcount.
        const __m512i pw = _mm512_loadu_si512(plane + 8 * v);
        const __m512i mw = _mm512_loadu_si512(mask + 8 * v);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(_mm512_loadu_si512(q0 + 8 * v), pw),
                      mw)));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(_mm512_loadu_si512(q1 + 8 * v), pw),
                      mw)));
        acc2 = _mm512_add_epi64(
            acc2, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(_mm512_loadu_si512(q2 + 8 * v), pw),
                      mw)));
        acc3 = _mm512_add_epi64(
            acc3, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(_mm512_loadu_si512(q3 + 8 * v), pw),
                      mw)));
      }
      if (tail) {
        const std::size_t off = vecs * 8;
        const __m512i pw = _mm512_maskz_loadu_epi64(tail, plane + off);
        const __m512i mw = _mm512_maskz_loadu_epi64(tail, mask + off);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(
                          _mm512_maskz_loadu_epi64(tail, q0 + off), pw),
                      mw)));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(
                          _mm512_maskz_loadu_epi64(tail, q1 + off), pw),
                      mw)));
        acc2 = _mm512_add_epi64(
            acc2, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(
                          _mm512_maskz_loadu_epi64(tail, q2 + off), pw),
                      mw)));
        acc3 = _mm512_add_epi64(
            acc3, _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(
                          _mm512_maskz_loadu_epi64(tail, q3 + off), pw),
                      mw)));
      }
      out[(q + 0) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc0));
      out[(q + 1) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc1));
      out[(q + 2) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc2));
      out[(q + 3) * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc3));
    }
  }
  for (; q < num_queries; ++q) {
    const std::uint64_t* qw = queries[q];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      __m512i acc = _mm512_setzero_si512();
      std::size_t i = 0;
      for (; i + 8 <= words; i += 8) {
        const __m512i x = _mm512_and_si512(
            _mm512_xor_si512(_mm512_loadu_si512(qw + i),
                             _mm512_loadu_si512(plane + i)),
            _mm512_loadu_si512(mask + i));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
      }
      if (i < words) {
        const __mmask8 m = tail_mask(words - i);
        const __m512i x = _mm512_and_si512(
            _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, qw + i),
                             _mm512_maskz_loadu_epi64(m, plane + i)),
            _mm512_maskz_loadu_epi64(m, mask + i));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
      }
      out[q * num_planes + p] =
          static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc));
    }
  }
}

// Arena kernels: stride-addressed plane rows, tile-outer traversal so one
// tile of every plane stays L2-resident across query groups, next-tile
// software prefetch on the final query group of each tile. The arena's
// 8-word stride means every full tile is a whole number of 512-bit
// vectors; only the final tile of a plane can have a masked tail.
//
// Query groups have a compile-time width (8, rimmed by 4 and 1): one
// plane-word load serves NQ queries, and each plane chunk is visited
// num_queries / NQ times per tile — wider groups cut both the L2 re-read
// traffic and the horizontal-reduce overhead per chunk. The per-query
// accumulate is a fold expression over an index pack, not a runtime
// loop: every acc[] index is a constant, so the accumulators scalarize
// into zmm registers (a rolled loop parks them on the stack and pays a
// load/add/store round trip per plane word). Group width never changes
// results: the per-cell sums are exact integer popcounts.
template <std::size_t NQ, std::size_t... J>
void arena_group_avx512_impl(std::index_sequence<J...>,
                             const std::uint64_t* const* q,
                             const std::uint64_t* plane, std::size_t vecs,
                             __mmask8 tail, std::uint32_t* out,
                             std::size_t np) {
  __m512i acc[NQ];
  ((acc[J] = _mm512_setzero_si512()), ...);
  for (std::size_t v = 0; v < vecs; ++v) {
    const __m512i pw = _mm512_loadu_si512(plane + 8 * v);
    ((acc[J] = _mm512_add_epi64(
          acc[J], _mm512_popcnt_epi64(_mm512_xor_si512(
                      _mm512_loadu_si512(q[J] + 8 * v), pw)))),
     ...);
  }
  if (tail) {
    const std::size_t off = vecs * 8;
    const __m512i pw = _mm512_maskz_loadu_epi64(tail, plane + off);
    ((acc[J] = _mm512_add_epi64(
          acc[J], _mm512_popcnt_epi64(_mm512_xor_si512(
                      _mm512_maskz_loadu_epi64(tail, q[J] + off), pw)))),
     ...);
  }
  ((out[J * np] +=
    static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc[J]))),
   ...);
}

template <std::size_t NQ>
void arena_group_avx512(const std::uint64_t* const* q,
                        const std::uint64_t* plane, std::size_t vecs,
                        __mmask8 tail, std::uint32_t* out, std::size_t np) {
  arena_group_avx512_impl<NQ>(std::make_index_sequence<NQ>{}, q, plane, vecs,
                              tail, out, np);
}

template <std::size_t NQ, std::size_t... J>
void arena_group_masked_avx512_impl(std::index_sequence<J...>,
                                    const std::uint64_t* const* q,
                                    const std::uint64_t* plane,
                                    const std::uint64_t* mask,
                                    std::size_t vecs, __mmask8 tail,
                                    std::uint32_t* out, std::size_t np) {
  __m512i acc[NQ];
  ((acc[J] = _mm512_setzero_si512()), ...);
  for (std::size_t v = 0; v < vecs; ++v) {
    const __m512i pw = _mm512_loadu_si512(plane + 8 * v);
    const __m512i mw = _mm512_loadu_si512(mask + 8 * v);
    ((acc[J] = _mm512_add_epi64(
          acc[J],
          _mm512_popcnt_epi64(_mm512_and_si512(
              _mm512_xor_si512(_mm512_loadu_si512(q[J] + 8 * v), pw), mw)))),
     ...);
  }
  if (tail) {
    const std::size_t off = vecs * 8;
    const __m512i pw = _mm512_maskz_loadu_epi64(tail, plane + off);
    const __m512i mw = _mm512_maskz_loadu_epi64(tail, mask + off);
    ((acc[J] = _mm512_add_epi64(
          acc[J], _mm512_popcnt_epi64(_mm512_and_si512(
                      _mm512_xor_si512(
                          _mm512_maskz_loadu_epi64(tail, q[J] + off), pw),
                      mw)))),
     ...);
  }
  ((out[J * np] +=
    static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc[J]))),
   ...);
}

template <std::size_t NQ>
void arena_group_masked_avx512(const std::uint64_t* const* q,
                               const std::uint64_t* plane,
                               const std::uint64_t* mask, std::size_t vecs,
                               __mmask8 tail, std::uint32_t* out,
                               std::size_t np) {
  arena_group_masked_avx512_impl<NQ>(std::make_index_sequence<NQ>{}, q, plane,
                                     mask, vecs, tail, out, np);
}

void hamming_matrix_arena_avx512(const std::uint64_t* const* queries,
                                 std::size_t num_queries, const PlaneSet& ps,
                                 std::uint32_t* out) {
  const std::size_t np = ps.planes;
  for (std::size_t i = 0; i < num_queries * np; ++i) out[i] = 0;
  if (num_queries == 0 || np == 0 || ps.words == 0) return;
  const std::size_t tile = arena_tile_words(ps);
  for (std::size_t t0 = 0; t0 < ps.words; t0 += tile) {
    const std::size_t tw = std::min(tile, ps.words - t0);
    const bool has_next = t0 + tw < ps.words;
    const std::size_t vecs = tw / 8;
    const __mmask8 tail =
        tw % 8 != 0 ? tail_mask(tw % 8) : static_cast<__mmask8>(0);
    std::size_t q = 0;
    while (q < num_queries) {
      const std::size_t group =
          num_queries - q >= 8 ? 8 : (num_queries - q >= 4 ? 4 : 1);
      const bool last_group = q + group >= num_queries;
      const std::uint64_t* qp[8];
      for (std::size_t j = 0; j < group; ++j) qp[j] = queries[q + j] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        if (last_group && has_next) {
          prefetch_words(plane + tw, std::min(tile, ps.words - t0 - tw));
        }
        std::uint32_t* cell = out + q * np + p;
        if (group == 8) {
          arena_group_avx512<8>(qp, plane, vecs, tail, cell, np);
        } else if (group == 4) {
          arena_group_avx512<4>(qp, plane, vecs, tail, cell, np);
        } else {
          arena_group_avx512<1>(qp, plane, vecs, tail, cell, np);
        }
      }
      q += group;
    }
  }
}

void hamming_matrix_arena_masked_avx512(const std::uint64_t* const* queries,
                                        std::size_t num_queries,
                                        const PlaneSet& ps,
                                        const std::uint64_t* mask,
                                        std::uint32_t* out) {
  const std::size_t np = ps.planes;
  for (std::size_t i = 0; i < num_queries * np; ++i) out[i] = 0;
  if (num_queries == 0 || np == 0 || ps.words == 0) return;
  const std::size_t tile = arena_tile_words(ps);
  for (std::size_t t0 = 0; t0 < ps.words; t0 += tile) {
    const std::size_t tw = std::min(tile, ps.words - t0);
    const bool has_next = t0 + tw < ps.words;
    const std::uint64_t* mw_base = mask + t0;
    const std::size_t vecs = tw / 8;
    const __mmask8 tail =
        tw % 8 != 0 ? tail_mask(tw % 8) : static_cast<__mmask8>(0);
    std::size_t q = 0;
    while (q < num_queries) {
      const std::size_t group =
          num_queries - q >= 8 ? 8 : (num_queries - q >= 4 ? 4 : 1);
      const bool last_group = q + group >= num_queries;
      const std::uint64_t* qp[8];
      for (std::size_t j = 0; j < group; ++j) qp[j] = queries[q + j] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        if (last_group && has_next) {
          prefetch_words(plane + tw, std::min(tile, ps.words - t0 - tw));
        }
        std::uint32_t* cell = out + q * np + p;
        if (group == 8) {
          arena_group_masked_avx512<8>(qp, plane, mw_base, vecs, tail, cell,
                                       np);
        } else if (group == 4) {
          arena_group_masked_avx512<4>(qp, plane, mw_base, vecs, tail, cell,
                                       np);
        } else {
          arena_group_masked_avx512<1>(qp, plane, mw_base, vecs, tail, cell,
                                       np);
        }
      }
      q += group;
    }
  }
}

constexpr Ops kAvx512Ops{popcount_avx512,
                         hamming_avx512,
                         hamming_masked_avx512,
                         hamming_matrix_avx512,
                         hamming_matrix_masked_avx512,
                         hamming_matrix_arena_avx512,
                         hamming_matrix_arena_masked_avx512};

}  // namespace

const Ops* avx512_ops() noexcept { return &kAvx512Ops; }

}  // namespace robusthd::kernels::detail

#else  // ROBUSTHD_KERNELS_HAVE_AVX512

namespace robusthd::kernels::detail {

// Compiled out (toolchain lacks AVX-512 support): dispatcher sees no table.
const Ops* avx512_ops() noexcept { return nullptr; }

}  // namespace robusthd::kernels::detail

#endif  // ROBUSTHD_KERNELS_HAVE_AVX512
