// Runtime kernel dispatch: probe CPUID + OS vector state once, honour the
// ROBUSTHD_FORCE_SCALAR / ROBUSTHD_ISA overrides, and pin the process to
// one kernel table. Selection happens inside a function-local static, so
// it is thread-safe and costs one indirect branch after first use.

#include <cstdlib>
#include <cstring>

#include "kernels_internal.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define ROBUSTHD_KERNELS_X86 1
#include <cpuid.h>
#endif

namespace robusthd::kernels {

namespace {

#if defined(ROBUSTHD_KERNELS_X86)

std::uint64_t read_xcr0() noexcept {
  std::uint32_t lo = 0, hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

struct CpuFeatures {
  bool avx2 = false;
  bool avx512_popcnt = false;  ///< F + BW + VL + VPOPCNTDQ, OS-enabled
};

CpuFeatures probe_cpu() noexcept {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool popcnt = (ecx & (1u << 23)) != 0;
  if (!osxsave || !avx || !popcnt) return f;

  const std::uint64_t xcr0 = read_xcr0();
  const bool ymm_enabled = (xcr0 & 0x6) == 0x6;           // XMM + YMM
  const bool zmm_enabled = (xcr0 & 0xe6) == 0xe6;         // + opmask/ZMM/hi16

  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool avx512bw = (ebx & (1u << 30)) != 0;
  const bool avx512vl = (ebx & (1u << 31)) != 0;
  const bool avx512vpopcntdq = (ecx & (1u << 14)) != 0;

  f.avx2 = ymm_enabled && avx2;
  f.avx512_popcnt =
      zmm_enabled && avx512f && avx512bw && avx512vl && avx512vpopcntdq;
  return f;
}

#endif  // ROBUSTHD_KERNELS_X86

bool hardware_supports(Isa isa) noexcept {
  if (isa == Isa::kScalar) return true;
#if defined(ROBUSTHD_KERNELS_X86)
  static const auto features = probe_cpu();
  switch (isa) {
    case Isa::kAvx2:
      return features.avx2 && detail::avx2_ops() != nullptr;
    case Isa::kAvx512:
      return features.avx512_popcnt && detail::avx512_ops() != nullptr;
    default:
      return true;
  }
#else
  return false;
#endif
}

/// Highest ISA the environment allows; defaults to no cap.
Isa env_cap() noexcept {
  if (const char* force = std::getenv("ROBUSTHD_FORCE_SCALAR")) {
    if (force[0] != '\0' && std::strcmp(force, "0") != 0) {
      return Isa::kScalar;
    }
  }
  if (const char* isa = std::getenv("ROBUSTHD_ISA")) {
    if (std::strcmp(isa, "scalar") == 0) return Isa::kScalar;
    if (std::strcmp(isa, "avx2") == 0) return Isa::kAvx2;
    if (std::strcmp(isa, "avx512") == 0) return Isa::kAvx512;
  }
  return Isa::kAvx512;
}

Isa select_isa() noexcept {
  const Isa cap = env_cap();
  if (cap >= Isa::kAvx512 && hardware_supports(Isa::kAvx512)) {
    return Isa::kAvx512;
  }
  if (cap >= Isa::kAvx2 && hardware_supports(Isa::kAvx2)) {
    return Isa::kAvx2;
  }
  return Isa::kScalar;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

bool isa_supported(Isa isa) noexcept { return hardware_supports(isa); }

const Ops* ops_for(Isa isa) noexcept {
  if (!hardware_supports(isa)) return nullptr;
  switch (isa) {
    case Isa::kAvx512:
      return detail::avx512_ops();
    case Isa::kAvx2:
      return detail::avx2_ops();
    default:
      return &detail::scalar_ops();
  }
}

Isa active_isa() noexcept {
  static const Isa selected = select_isa();
  return selected;
}

const Ops& ops() noexcept {
  static const Ops& table = *ops_for(active_isa());
  return table;
}

}  // namespace robusthd::kernels
