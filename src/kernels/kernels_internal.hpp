#pragma once
// Internal glue between the dispatch unit and the per-ISA translation
// units. Each ISA lives in its own TU compiled with exactly the flags it
// needs, so the rest of the library keeps the portable baseline ABI and
// the dispatcher can select at runtime without illegal-instruction risk.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "robusthd/kernels/kernels.hpp"

namespace robusthd::kernels::detail {

/// Portable reference kernels (always available; the equivalence oracle).
const Ops& scalar_ops() noexcept;

/// AVX2 Harley–Seal kernels; nullptr when compiled out.
const Ops* avx2_ops() noexcept;

/// AVX-512 VPOPCNTDQ kernels; nullptr when compiled out.
const Ops* avx512_ops() noexcept;

/// Scalar popcount of one word without assuming the POPCNT instruction —
/// shared by the tail paths of every variant (std::popcount lowers to the
/// best sequence each TU's flags permit).
inline std::size_t word_popcount(std::uint64_t w) noexcept {
  return static_cast<std::size_t>(std::popcount(w));
}

/// Applies the first/last word masks in place for the masked-range kernels.
/// n >= 1; when n == 1 both masks intersect.
inline std::uint64_t masked_word(std::uint64_t x, std::size_t i, std::size_t n,
                                 std::uint64_t first_mask,
                                 std::uint64_t last_mask) noexcept {
  if (i == 0) x &= first_mask;
  if (i + 1 == n) x &= last_mask;
  return x;
}

/// Effective tile width of an arena PlaneSet (0 means untiled).
inline std::size_t arena_tile_words(const PlaneSet& ps) noexcept {
  return ps.tile_words == 0 || ps.tile_words > ps.words ? ps.words
                                                        : ps.tile_words;
}

/// Software-prefetches words [p, p + n), one touch per 64-byte line. Used
/// by the arena kernels to pull the next tile of a plane row into cache
/// while the current tile is being consumed.
inline void prefetch_words(const std::uint64_t* p, std::size_t n) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  for (std::size_t i = 0; i < n; i += 8) {
    __builtin_prefetch(p + i, /*rw=*/0, /*locality=*/3);
  }
#else
  (void)p;
  (void)n;
#endif
}

}  // namespace robusthd::kernels::detail
