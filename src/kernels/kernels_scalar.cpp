// Portable scalar kernels — the reference implementation every SIMD
// variant is tested bit-for-bit against. Compiled with the project's
// baseline flags only, so it runs on any x86-64 (or non-x86) host.
//
// The matrix kernel still blocks queries (4 at a time) so a stored plane
// word is loaded once per block instead of once per query: even without
// wider registers, the blocked layout roughly halves memory traffic on
// large batches, and it keeps the traversal order identical to the SIMD
// variants.

#include "kernels_internal.hpp"

#include <algorithm>

namespace robusthd::kernels::detail {

namespace {

std::size_t popcount_scalar(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += word_popcount(words[i]);
  return total;
}

std::size_t hamming_scalar(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += word_popcount(a[i] ^ b[i]);
  return total;
}

std::size_t hamming_masked_scalar(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n,
                                  std::uint64_t first_mask,
                                  std::uint64_t last_mask) {
  if (n == 0) return 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += word_popcount(masked_word(a[i] ^ b[i], i, n, first_mask,
                                       last_mask));
  }
  return total;
}

void hamming_matrix_scalar(const std::uint64_t* const* queries,
                           std::size_t num_queries,
                           const std::uint64_t* const* planes,
                           std::size_t num_planes, std::size_t words,
                           std::uint32_t* out) {
  constexpr std::size_t kBlock = 4;
  std::size_t q = 0;
  for (; q + kBlock <= num_queries; q += kBlock) {
    const std::uint64_t* q0 = queries[q + 0];
    const std::uint64_t* q1 = queries[q + 1];
    const std::uint64_t* q2 = queries[q + 2];
    const std::uint64_t* q3 = queries[q + 3];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      std::size_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t pw = plane[w];
        d0 += word_popcount(q0[w] ^ pw);
        d1 += word_popcount(q1[w] ^ pw);
        d2 += word_popcount(q2[w] ^ pw);
        d3 += word_popcount(q3[w] ^ pw);
      }
      out[(q + 0) * num_planes + p] = static_cast<std::uint32_t>(d0);
      out[(q + 1) * num_planes + p] = static_cast<std::uint32_t>(d1);
      out[(q + 2) * num_planes + p] = static_cast<std::uint32_t>(d2);
      out[(q + 3) * num_planes + p] = static_cast<std::uint32_t>(d3);
    }
  }
  for (; q < num_queries; ++q) {
    for (std::size_t p = 0; p < num_planes; ++p) {
      out[q * num_planes + p] =
          static_cast<std::uint32_t>(hamming_scalar(queries[q], planes[p],
                                                    words));
    }
  }
}

void hamming_matrix_masked_scalar(const std::uint64_t* const* queries,
                                  std::size_t num_queries,
                                  const std::uint64_t* const* planes,
                                  std::size_t num_planes, std::size_t words,
                                  const std::uint64_t* mask,
                                  std::uint32_t* out) {
  constexpr std::size_t kBlock = 4;
  std::size_t q = 0;
  for (; q + kBlock <= num_queries; q += kBlock) {
    const std::uint64_t* q0 = queries[q + 0];
    const std::uint64_t* q1 = queries[q + 1];
    const std::uint64_t* q2 = queries[q + 2];
    const std::uint64_t* q3 = queries[q + 3];
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* plane = planes[p];
      std::size_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t pw = plane[w];
        const std::uint64_t mw = mask[w];
        d0 += word_popcount((q0[w] ^ pw) & mw);
        d1 += word_popcount((q1[w] ^ pw) & mw);
        d2 += word_popcount((q2[w] ^ pw) & mw);
        d3 += word_popcount((q3[w] ^ pw) & mw);
      }
      out[(q + 0) * num_planes + p] = static_cast<std::uint32_t>(d0);
      out[(q + 1) * num_planes + p] = static_cast<std::uint32_t>(d1);
      out[(q + 2) * num_planes + p] = static_cast<std::uint32_t>(d2);
      out[(q + 3) * num_planes + p] = static_cast<std::uint32_t>(d3);
    }
  }
  for (; q < num_queries; ++q) {
    for (std::size_t p = 0; p < num_planes; ++p) {
      const std::uint64_t* qw = queries[q];
      const std::uint64_t* plane = planes[p];
      std::size_t d = 0;
      for (std::size_t w = 0; w < words; ++w) {
        d += word_popcount((qw[w] ^ plane[w]) & mask[w]);
      }
      out[q * num_planes + p] = static_cast<std::uint32_t>(d);
    }
  }
}

// Arena kernels: same 4-query blocking, but plane rows come from stride
// arithmetic on one contiguous base and the word dimension is walked
// tile-by-tile across all planes, so a tile of the whole plane set stays
// L2-resident across query blocks. Per-tile partial distances are integer
// sums accumulated into `out`, so any tile split is bit-identical to the
// untiled traversal.
void hamming_matrix_arena_scalar(const std::uint64_t* const* queries,
                                 std::size_t num_queries, const PlaneSet& ps,
                                 std::uint32_t* out) {
  const std::size_t np = ps.planes;
  for (std::size_t i = 0; i < num_queries * np; ++i) out[i] = 0;
  if (num_queries == 0 || np == 0 || ps.words == 0) return;
  const std::size_t tile = arena_tile_words(ps);
  for (std::size_t t0 = 0; t0 < ps.words; t0 += tile) {
    const std::size_t tw = std::min(tile, ps.words - t0);
    const bool has_next = t0 + tw < ps.words;
    std::size_t q = 0;
    for (; q + 4 <= num_queries; q += 4) {
      const bool last_block = q + 8 > num_queries;
      const std::uint64_t* q0 = queries[q + 0] + t0;
      const std::uint64_t* q1 = queries[q + 1] + t0;
      const std::uint64_t* q2 = queries[q + 2] + t0;
      const std::uint64_t* q3 = queries[q + 3] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        if (last_block && has_next) {
          prefetch_words(plane + tw, std::min(tile, ps.words - t0 - tw));
        }
        std::size_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
        for (std::size_t w = 0; w < tw; ++w) {
          const std::uint64_t pw = plane[w];
          d0 += word_popcount(q0[w] ^ pw);
          d1 += word_popcount(q1[w] ^ pw);
          d2 += word_popcount(q2[w] ^ pw);
          d3 += word_popcount(q3[w] ^ pw);
        }
        out[(q + 0) * np + p] += static_cast<std::uint32_t>(d0);
        out[(q + 1) * np + p] += static_cast<std::uint32_t>(d1);
        out[(q + 2) * np + p] += static_cast<std::uint32_t>(d2);
        out[(q + 3) * np + p] += static_cast<std::uint32_t>(d3);
      }
    }
    for (; q < num_queries; ++q) {
      const std::uint64_t* qw = queries[q] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        out[q * np + p] +=
            static_cast<std::uint32_t>(hamming_scalar(qw, plane, tw));
      }
    }
  }
}

void hamming_matrix_arena_masked_scalar(const std::uint64_t* const* queries,
                                        std::size_t num_queries,
                                        const PlaneSet& ps,
                                        const std::uint64_t* mask,
                                        std::uint32_t* out) {
  const std::size_t np = ps.planes;
  for (std::size_t i = 0; i < num_queries * np; ++i) out[i] = 0;
  if (num_queries == 0 || np == 0 || ps.words == 0) return;
  const std::size_t tile = arena_tile_words(ps);
  for (std::size_t t0 = 0; t0 < ps.words; t0 += tile) {
    const std::size_t tw = std::min(tile, ps.words - t0);
    const bool has_next = t0 + tw < ps.words;
    const std::uint64_t* mw_base = mask + t0;
    std::size_t q = 0;
    for (; q + 4 <= num_queries; q += 4) {
      const bool last_block = q + 8 > num_queries;
      const std::uint64_t* q0 = queries[q + 0] + t0;
      const std::uint64_t* q1 = queries[q + 1] + t0;
      const std::uint64_t* q2 = queries[q + 2] + t0;
      const std::uint64_t* q3 = queries[q + 3] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        if (last_block && has_next) {
          prefetch_words(plane + tw, std::min(tile, ps.words - t0 - tw));
        }
        std::size_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
        for (std::size_t w = 0; w < tw; ++w) {
          const std::uint64_t pw = plane[w];
          const std::uint64_t mw = mw_base[w];
          d0 += word_popcount((q0[w] ^ pw) & mw);
          d1 += word_popcount((q1[w] ^ pw) & mw);
          d2 += word_popcount((q2[w] ^ pw) & mw);
          d3 += word_popcount((q3[w] ^ pw) & mw);
        }
        out[(q + 0) * np + p] += static_cast<std::uint32_t>(d0);
        out[(q + 1) * np + p] += static_cast<std::uint32_t>(d1);
        out[(q + 2) * np + p] += static_cast<std::uint32_t>(d2);
        out[(q + 3) * np + p] += static_cast<std::uint32_t>(d3);
      }
    }
    for (; q < num_queries; ++q) {
      const std::uint64_t* qw = queries[q] + t0;
      for (std::size_t p = 0; p < np; ++p) {
        const std::uint64_t* plane = ps.base + p * ps.stride_words + t0;
        std::size_t d = 0;
        for (std::size_t w = 0; w < tw; ++w) {
          d += word_popcount((qw[w] ^ plane[w]) & mw_base[w]);
        }
        out[q * np + p] += static_cast<std::uint32_t>(d);
      }
    }
  }
}

constexpr Ops kScalarOps{popcount_scalar,
                         hamming_scalar,
                         hamming_masked_scalar,
                         hamming_matrix_scalar,
                         hamming_matrix_masked_scalar,
                         hamming_matrix_arena_scalar,
                         hamming_matrix_arena_masked_scalar};

}  // namespace

const Ops& scalar_ops() noexcept { return kScalarOps; }

}  // namespace robusthd::kernels::detail
