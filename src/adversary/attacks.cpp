#include "robusthd/adversary/attacks.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "robusthd/util/rng.hpp"

namespace robusthd::adversary {
namespace {

int runner_up(std::span<const double> scores, int winner) {
  int best = -1;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (static_cast<int>(c) == winner) continue;
    if (best < 0 || scores[c] > scores[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace

BitFlipResult greedy_bit_flip(const model::HdcModel& model,
                              const hv::BinVec& query,
                              const BitFlipConfig& config,
                              const model::ConfidenceConfig& confidence) {
  if (model.precision_bits() != 1) {
    throw std::invalid_argument("greedy_bit_flip: 1-bit models only");
  }
  if (model.num_classes() < 2) {
    throw std::invalid_argument("greedy_bit_flip: need at least two classes");
  }
  if (query.dimension() != model.dimension()) {
    throw std::invalid_argument("greedy_bit_flip: query dimension mismatch");
  }

  BitFlipResult result;
  result.adversarial = query;

  const auto clean = model.scores(query);
  const auto conf0 = model::assess(clean, confidence, model.dimension());
  result.original_prediction = conf0.predicted;
  result.final_prediction = conf0.predicted;
  result.final_confidence = conf0.top_probability;
  result.final_margin = conf0.margin;

  const int origin = conf0.predicted;
  const int target =
      config.target >= 0 ? config.target : runner_up(clean, origin);
  if (target < 0 || static_cast<std::size_t>(target) >= model.num_classes() ||
      target == origin) {
    throw std::invalid_argument("greedy_bit_flip: bad target class");
  }

  // The leverage set: bits where the query sides with the origin plane and
  // against the target plane. Flipping one moves the origin similarity
  // down by 1/D and the target similarity up by 1/D — the maximum
  // possible +2/D swing on the margin; every other bit moves it by 0.
  // Word-parallel: (q ^ target) & ~(q ^ origin). Tail words are masked on
  // all three vectors, so no out-of-range bit can appear.
  const auto o_words = model.plane_words(static_cast<std::size_t>(origin), 0);
  const auto t_words = model.plane_words(static_cast<std::size_t>(target), 0);
  const auto q_words = query.words();
  std::vector<std::size_t> lever;
  lever.reserve(std::min(config.max_flips, model.dimension()));
  for (std::size_t w = 0;
       w < q_words.size() && lever.size() < config.max_flips; ++w) {
    std::uint64_t bits = (q_words[w] ^ t_words[w]) & ~(q_words[w] ^ o_words[w]);
    while (bits != 0 && lever.size() < config.max_flips) {
      lever.push_back(w * 64 +
                      static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }

  const std::size_t step = std::max<std::size_t>(1, config.step);
  auto rescore = [&]() {
    const auto s = model.scores(result.adversarial);
    const auto conf = model::assess(s, confidence, model.dimension());
    result.final_prediction = conf.predicted;
    result.final_confidence = conf.top_probability;
    result.final_margin = conf.margin;
    return conf.predicted != origin;
  };

  std::size_t flipped = 0;
  bool flipped_prediction = false;
  bool checked_at = false;  // rescore ran exactly at the current flip count
  for (const std::size_t i : lever) {
    result.adversarial.flip(i);
    ++flipped;
    checked_at = false;
    if (flipped % step == 0) {
      flipped_prediction = rescore();
      checked_at = true;
      if (flipped_prediction) break;
    }
  }
  if (!flipped_prediction && !checked_at && flipped > 0) {
    flipped_prediction = rescore();
  }

  result.success = flipped_prediction;
  result.hit_target = result.final_prediction == target;
  result.flips_used = flipped;
  return result;
}

SuccessRates bit_flip_success(const model::HdcModel& model,
                              std::span<const hv::BinVec> queries,
                              std::size_t budget, double trust_threshold,
                              const model::ConfidenceConfig& confidence) {
  SuccessRates rates;
  if (queries.empty()) return rates;
  BitFlipConfig config;
  config.max_flips = budget;
  std::size_t any = 0;
  std::size_t confident = 0;
  std::size_t flips = 0;
  for (const auto& query : queries) {
    const auto r = greedy_bit_flip(model, query, config, confidence);
    if (!r.success) continue;
    ++any;
    flips += r.flips_used;
    if (r.final_confidence >= trust_threshold) ++confident;
  }
  rates.any = static_cast<double>(any) / static_cast<double>(queries.size());
  rates.confident =
      static_cast<double>(confident) / static_cast<double>(queries.size());
  rates.mean_flips =
      any == 0 ? 0.0 : static_cast<double>(flips) / static_cast<double>(any);
  return rates;
}

GeneticResult genetic_feature_attack(const model::HdcModel& model,
                                     const hv::Encoder& encoder,
                                     std::span<const float> features,
                                     const GeneticConfig& config,
                                     const model::ConfidenceConfig&
                                         confidence) {
  if (encoder.feature_count() != features.size()) {
    throw std::invalid_argument(
        "genetic_feature_attack: feature count mismatch");
  }
  if (encoder.dimension() != model.dimension()) {
    throw std::invalid_argument("genetic_feature_attack: dimension mismatch");
  }
  if (model.num_classes() < 2) {
    throw std::invalid_argument(
        "genetic_feature_attack: need at least two classes");
  }

  util::Xoshiro256 rng(config.seed);
  GeneticResult result;
  result.adversarial.assign(features.begin(), features.end());

  const auto clean = model.scores(encoder.encode(features));
  const auto conf0 = model::assess(clean, confidence, model.dimension());
  result.original_prediction = conf0.predicted;
  result.final_prediction = conf0.predicted;
  result.final_confidence = conf0.top_probability;
  const int origin = conf0.predicted;
  const int target = config.target;
  if (target >= 0 &&
      (static_cast<std::size_t>(target) >= model.num_classes() ||
       target == origin)) {
    throw std::invalid_argument("genetic_feature_attack: bad target class");
  }

  const std::size_t n = features.size();
  const double eps = config.epsilon;

  struct Candidate {
    std::vector<float> x;
    double fitness = 0.0;
    int predicted = -1;
    double confidence = 0.0;
    bool success = false;
  };

  auto evaluate = [&](std::vector<float> x) {
    Candidate cand;
    cand.x = std::move(x);
    const auto s = model.scores(encoder.encode(cand.x));
    const auto conf = model::assess(s, confidence, model.dimension());
    cand.predicted = conf.predicted;
    cand.confidence = conf.top_probability;
    const double own = s[static_cast<std::size_t>(origin)];
    if (target >= 0) {
      cand.fitness = s[static_cast<std::size_t>(target)] - own;
      cand.success = conf.predicted == target;
    } else {
      const int rival = runner_up(s, origin);
      cand.fitness = s[static_cast<std::size_t>(rival)] - own;
      cand.success = conf.predicted != origin;
    }
    return cand;
  };

  // Perturbations are expressed relative to the original sample and kept
  // inside both the epsilon-ball and the normalised [0, 1] feature range.
  auto project = [&](double value, std::size_t i) {
    const double lo = std::max(0.0, static_cast<double>(features[i]) - eps);
    const double hi = std::min(1.0, static_cast<double>(features[i]) + eps);
    return static_cast<float>(std::clamp(value, lo, hi));
  };

  const std::size_t population = std::max<std::size_t>(2, config.population);
  const std::size_t elite =
      std::clamp<std::size_t>(config.elite, 1, population - 1);
  std::vector<Candidate> pool;
  pool.reserve(population);
  for (std::size_t p = 0; p < population; ++p) {
    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = project(features[i] + rng.uniform(-eps, eps), i);
    }
    pool.push_back(evaluate(std::move(x)));
  }

  auto by_fitness = [](const Candidate& a, const Candidate& b) {
    return a.fitness > b.fitness;
  };

  const Candidate* best_success = nullptr;
  Candidate winner;
  for (std::size_t g = 0; g < config.generations; ++g) {
    std::sort(pool.begin(), pool.end(), by_fitness);
    const auto hit = std::find_if(pool.begin(), pool.end(),
                                  [](const Candidate& c) { return c.success; });
    if (hit != pool.end()) {
      winner = *hit;
      best_success = &winner;
      result.generations_used = g + 1;
      break;
    }
    std::vector<Candidate> next;
    next.reserve(population);
    for (std::size_t e = 0; e < elite; ++e) next.push_back(pool[e]);
    while (next.size() < population) {
      const auto& a = pool[rng.below(elite)];
      const auto& b = pool[rng.below(elite)];
      std::vector<float> x(n);
      for (std::size_t i = 0; i < n; ++i) {
        double v = rng.bernoulli(0.5) ? a.x[i] : b.x[i];
        if (rng.bernoulli(config.mutation_rate)) {
          v += rng.uniform(-config.mutation_scale * eps,
                           config.mutation_scale * eps);
        }
        x[i] = project(v, i);
      }
      next.push_back(evaluate(std::move(x)));
    }
    pool = std::move(next);
    result.generations_used = g + 1;
  }
  if (best_success == nullptr) {
    // One last look: the final generation was produced but never scanned.
    const auto hit = std::find_if(pool.begin(), pool.end(),
                                  [](const Candidate& c) { return c.success; });
    if (hit != pool.end()) {
      winner = *hit;
      best_success = &winner;
    }
  }

  if (best_success == nullptr) {
    std::sort(pool.begin(), pool.end(), by_fitness);
    result.adversarial = pool.front().x;
    result.final_prediction = pool.front().predicted;
    result.final_confidence = pool.front().confidence;
  } else {
    // Boundary walk: bisect the blend factor toward the original sample,
    // keeping the smallest perturbation that still flips the prediction.
    Candidate kept = *best_success;
    double lo = 0.0;  // original side — does not flip
    double hi = 1.0;  // adversarial side — flips
    for (std::size_t s = 0; s < config.boundary_steps; ++s) {
      const double mid = 0.5 * (lo + hi);
      std::vector<float> x(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double blended =
            features[i] + mid * (best_success->x[i] - features[i]);
        x[i] = project(blended, i);
      }
      auto cand = evaluate(std::move(x));
      if (cand.success) {
        hi = mid;
        kept = std::move(cand);
      } else {
        lo = mid;
      }
    }
    result.success = true;
    result.adversarial = kept.x;
    result.final_prediction = kept.predicted;
    result.final_confidence = kept.confidence;
  }

  double linf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    linf = std::max(linf, std::abs(static_cast<double>(result.adversarial[i]) -
                                   static_cast<double>(features[i])));
  }
  result.linf = linf;
  return result;
}

}  // namespace robusthd::adversary
