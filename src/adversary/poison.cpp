#include "robusthd/adversary/poison.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <utility>

namespace robusthd::adversary {

PoisonCampaign::PoisonCampaign(model::HdcModel reference,
                               const PoisonConfig& config)
    : reference_(std::move(reference)), config_(config), rng_(config.seed) {
  if (reference_.precision_bits() != 1) {
    throw std::invalid_argument("PoisonCampaign: 1-bit models only");
  }
  if (reference_.num_classes() < 2) {
    throw std::invalid_argument("PoisonCampaign: need at least two classes");
  }
  if (config_.chunks == 0 || config_.chunks > reference_.dimension()) {
    throw std::invalid_argument("PoisonCampaign: bad chunk count");
  }
  if (config_.dirty_chunks == 0 || config_.dirty_chunks >= config_.chunks) {
    throw std::invalid_argument(
        "PoisonCampaign: dirty_chunks must be in [1, chunks)");
  }
  if (!config_.all_classes &&
      config_.target_class >= reference_.num_classes()) {
    throw std::invalid_argument("PoisonCampaign: bad target class");
  }
}

std::vector<hv::BinVec> PoisonCampaign::craft_wave() {
  const std::size_t dim = reference_.dimension();
  const std::size_t k = reference_.num_classes();
  const std::size_t m = config_.chunks;
  const std::size_t first_chunk =
      config_.fixed_chunk != static_cast<std::size_t>(-1)
          ? config_.fixed_chunk % m
          : wave_ % m;
  ++wave_;

  std::vector<hv::BinVec> wave;
  wave.reserve((config_.all_classes ? k : 1) * config_.queries_per_class);
  for (std::size_t t = 0; t < k; ++t) {
    if (!config_.all_classes && t != config_.target_class) continue;
    const std::size_t rival = (t + 1) % k;
    const auto& victim_plane = reference_.class_vector(t).planes[0];
    const auto& rival_plane = reference_.class_vector(rival).planes[0];
    for (std::size_t q = 0; q < config_.queries_per_class; ++q) {
      hv::BinVec query = victim_plane;
      // Sparse noise outside the payload keeps the queries distinct (so
      // they read as a traffic stream, not one repeated vector) while the
      // payload itself stays bit-exact across the wave — the engine's
      // consensus majority then reproduces the rival's bits verbatim.
      for (std::size_t i = 0; i < dim; ++i) {
        if (rng_.bernoulli(config_.query_noise)) query.flip(i);
      }
      for (std::size_t c = 0; c < config_.dirty_chunks; ++c) {
        const std::size_t chunk = (first_chunk + c) % m;
        const std::size_t begin = chunk * dim / m;
        const std::size_t end = (chunk + 1) * dim / m;
        for (std::size_t i = begin; i < end; ++i) {
          query.set(i, rival_plane.get(i));
        }
      }
      wave.push_back(std::move(query));
    }
  }
  return wave;
}

PoisonReport PoisonCampaign::run(serve::Server& server) {
  PoisonReport report;
  for (std::size_t w = 0; w < config_.waves; ++w) {
    auto wave = craft_wave();
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(wave.size());
    for (auto& query : wave) {
      futures.push_back(server.submit(std::move(query)));
      ++report.sent;
    }
    for (auto& future : futures) {
      try {
        const auto response = future.get();
        ++report.answered;
        if (response.trusted) ++report.trusted;
      } catch (const std::future_error&) {
        ++report.failed;
      }
    }
    // Let the scrubber consume this wave before the next one lands, so
    // each wave's consensus votes target the intended chunk.
    server.drain();
  }
  return report;
}

std::size_t PoisonCampaign::wrong_bits(const model::HdcModel& blessed,
                                       const model::HdcModel& current) {
  std::size_t bits = 0;
  const std::size_t k =
      std::min(blessed.num_classes(), current.num_classes());
  for (std::size_t c = 0; c < k; ++c) {
    const auto& a = blessed.class_vector(c).planes;
    const auto& b = current.class_vector(c).planes;
    const std::size_t planes = std::min(a.size(), b.size());
    for (std::size_t p = 0; p < planes; ++p) {
      bits += hv::hamming(a[p], b[p]);
    }
  }
  return bits;
}

}  // namespace robusthd::adversary
