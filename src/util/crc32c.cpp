#include "robusthd/util/crc32c.hpp"

#include <array>

namespace robusthd::util {

namespace {

// Reflected Castagnoli polynomial (iSCSI, RFC 3720 appendix B.4).
constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t crc) noexcept {
  crc = ~crc;
  for (const std::byte b : data) {
    crc = kTable[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace robusthd::util
