#include "robusthd/util/fsio.hpp"

#include <cerrno>
#include <cstring>

#if defined(_WIN32)
#error "robusthd::util fsio requires a POSIX platform"
#endif

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace robusthd::util {

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw FsError("robusthd: " + op + " failed for " + path + ": " +
                std::strerror(errno));
}

std::string parent_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// write(2) until everything is out, tolerating short writes and EINTR.
void write_all(int fd, std::span<const std::byte> data,
               const std::string& path) {
  const auto* p = reinterpret_cast<const char*>(data.data());
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  int release() noexcept {
    const int f = fd;
    fd = -1;
    return f;
  }
};

}  // namespace

void fsync_fd(int fd) {
  if (::fsync(fd) != 0) fail("fsync", "<fd>");
}

void write_fd(int fd, std::span<const std::byte> data) {
  write_all(fd, data, "<fd>");
}

void fsync_dir(const std::string& dir) {
  FdGuard g{::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC)};
  if (g.fd < 0) fail("open(dir)", dir);
  if (::fsync(g.fd) != 0) fail("fsync(dir)", dir);
}

void fsync_parent_dir(const std::string& path) { fsync_dir(parent_of(path)); }

void atomic_write_file(const std::string& path,
                       std::span<const std::byte> data) {
  // O_EXCL collision guard: a stale temp file (crashed writer) or a
  // concurrent writer makes open fail with EEXIST; we move to the next
  // suffix rather than truncating someone else's in-progress file.
  std::string tmp;
  FdGuard g;
  const auto pid = static_cast<unsigned long>(::getpid());
  for (unsigned attempt = 0; attempt < 64; ++attempt) {
    tmp = path + ".tmp." + std::to_string(pid) + "." + std::to_string(attempt);
    g.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (g.fd >= 0) break;
    if (errno != EEXIST) fail("open(tmp)", tmp);
  }
  if (g.fd < 0) fail("open(tmp, O_EXCL) — too many stale temp files", tmp);

  try {
    write_all(g.fd, data, tmp);
    // The data must be on stable storage *before* the rename publishes
    // the name — otherwise a crash can leave a fully-named empty file.
    fsync_fd(g.fd);
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(g.release()) != 0) {
    ::unlink(tmp.c_str());
    fail("close(tmp)", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }
  // And the rename itself must be durable: fsync the parent directory.
  fsync_parent_dir(path);
}

void make_dirs(const std::string& dir) {
  if (dir.empty()) return;
  std::string partial;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const auto slash = dir.find('/', pos);
    const auto end = slash == std::string::npos ? dir.size() : slash;
    partial = dir.substr(0, end);
    pos = end + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      fail("mkdir", partial);
    }
  }
}

std::vector<std::byte> read_file(const std::string& path,
                                 std::size_t max_bytes) {
  FdGuard g{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (g.fd < 0) fail("open", path);
  struct stat st{};
  if (::fstat(g.fd, &st) != 0) fail("fstat", path);
  if (st.st_size < 0 ||
      static_cast<std::uint64_t>(st.st_size) > max_bytes) {
    throw FsError("robusthd: " + path + " exceeds the read bound (" +
                  std::to_string(st.st_size) + " > " +
                  std::to_string(max_bytes) + " bytes)");
  }
  std::vector<std::byte> out(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::read(g.fd, reinterpret_cast<char*>(out.data()) + off,
               out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read", path);
    }
    if (n == 0) break;  // concurrent truncation: return what exists
    off += static_cast<std::size_t>(n);
  }
  out.resize(off);
  return out;
}

bool path_exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::string> list_dir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) fail("unlink", path);
}

}  // namespace robusthd::util
