#include "robusthd/util/parallel.hpp"

namespace robusthd::util {

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads) {
  detail::parallel_run(n, fn, max_threads);
}

}  // namespace robusthd::util
