#include "robusthd/util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace robusthd::util {

std::size_t hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t max_threads) {
  if (n == 0) return;
  std::size_t workers = max_threads == 0 ? hardware_threads() : max_threads;
  workers = std::min(workers, n);

  // Below this, thread startup costs more than it saves.
  constexpr std::size_t kSerialThreshold = 16;
  if (workers <= 1 || n < kSerialThreshold) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto run_range = [&](std::size_t begin, std::size_t end) {
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 1; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    if (begin >= n) break;
    threads.emplace_back(run_range, begin, std::min(begin + chunk, n));
  }
  run_range(0, std::min(chunk, n));
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace robusthd::util
