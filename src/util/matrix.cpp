#include "robusthd/util/matrix.hpp"

#include <cassert>
#include <cstring>

namespace robusthd::util {

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  assert(out.rows() == a.rows() && out.cols() == b.cols());
  out.fill(0.0f);
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    float* orow = out.row(i).data();
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a(i, p);
      if (av == 0.0f) continue;
      const float* brow = b.row(p).data();
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void gemm_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  assert(out.rows() == a.rows() && out.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.row(i).data();
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b.row(j).data();
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      out(i, j) = acc;
    }
  }
}

void gemm_at(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  assert(out.rows() == a.cols() && out.cols() == b.cols());
  out.fill(0.0f);
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p).data();
    const float* brow = b.row(p).data();
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i).data();
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void gemv(const Matrix& w, std::span<const float> x,
          std::span<const float> bias, std::span<float> y) {
  assert(w.cols() == x.size());
  assert(y.size() == w.rows());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    const float* row = w.row(i).data();
    float acc = bias.empty() ? 0.0f : bias[i];
    for (std::size_t j = 0; j < w.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

}  // namespace robusthd::util
