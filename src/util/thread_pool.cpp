#include "robusthd/util/thread_pool.hpp"

#include <algorithm>

#include "robusthd/util/parallel.hpp"

namespace robusthd::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads == 0 ? hardware_threads() : threads;
  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    workers_.emplace_back(&ThreadPool::worker_main, this, w);
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // Tiny sections and single-worker pools run inline: a broadcast would
  // cost more than it buys, and inline execution keeps the pool reentrant
  // for small n (fn may itself use the pool).
  if (workers_.size() <= 1 || n < detail::kParallelSerialThreshold) {
    body(0, n);
    return;
  }

  const std::lock_guard<std::mutex> section(section_mutex_);
  const std::size_t workers = std::min(workers_.size(), n);
  const std::size_t chunk = (n + workers - 1) / workers;
  // chunk >= 1, so the number of non-empty ranges is ceil(n / chunk).
  const std::size_t active = (n + chunk - 1) / chunk;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    body_ = &body;
    n_ = n;
    chunk_ = chunk;
    active_workers_ = active;
    remaining_ = active;
    first_error_ = nullptr;
    ++generation_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    body_ = nullptr;
    if (first_error_) {
      auto error = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }
}

void ThreadPool::worker_main(std::size_t index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0, end = 0;
    bool participate = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(
          lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      if (index < active_workers_) {
        participate = true;
        body = body_;
        begin = index * chunk_;
        end = std::min(begin + chunk_, n_);
      }
    }
    if (!participate) continue;

    std::exception_ptr error;
    try {
      (*body)(begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace robusthd::util
