#include "robusthd/util/table.hpp"

#include <sstream>

namespace robusthd::util {

std::string pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return os.str();
}

std::string fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace robusthd::util
