#include "robusthd/fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "robusthd/util/bitops.hpp"

namespace robusthd::fault {

std::size_t total_bits(std::span<const MemoryRegion> regions) noexcept {
  std::size_t total = 0;
  for (const auto& r : regions) total += r.bit_count();
  return total;
}

std::size_t total_bits(std::span<const ConstMemoryRegion> regions) noexcept {
  std::size_t total = 0;
  for (const auto& r : regions) total += r.bit_count();
  return total;
}

namespace {

/// Samples `count` distinct values in [0, n) — hash-set rejection, which is
/// fine for the fractions (<20%) these experiments use.
std::vector<std::size_t> sample_distinct(std::size_t count, std::size_t n,
                                         util::Xoshiro256& rng) {
  count = std::min(count, n);
  std::vector<std::size_t> out;
  out.reserve(count);
  if (count * 2 >= n) {
    // Dense case: partial Fisher-Yates over all positions.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.below(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<std::size_t> seen;
  seen.reserve(count * 2);
  while (out.size() < count) {
    const auto pos = static_cast<std::size_t>(rng.below(n));
    if (seen.insert(pos).second) out.push_back(pos);
  }
  return out;
}

}  // namespace

std::size_t BitFlipInjector::flip_random_bits(MemoryRegion& region,
                                              std::size_t count,
                                              util::Xoshiro256& rng) {
  const std::size_t n = region.bit_count();
  const auto positions = sample_distinct(count, n, rng);
  for (const auto pos : positions) util::flip_bit(region.bytes, pos);
  return positions.size();
}

std::size_t BitFlipInjector::flip_targeted_bits(MemoryRegion& region,
                                                std::size_t count,
                                                util::Xoshiro256& rng) {
  const unsigned width = std::max(region.value_bits, 1u);
  if (width <= 1) {
    // Holographic/binary storage: every bit is equally (in)significant, so
    // the worst case an adversary can do equals the random case.
    return flip_random_bits(region, count, rng);
  }

  const std::size_t total = region.bit_count();
  const std::size_t values = total / width;
  count = std::min(count, total);
  std::size_t flipped = 0;

  // Spend the budget tier by tier: all MSBs first (bit width-1 of every
  // value), then bit width-2, and so on — the adversary maximises per-flip
  // damage before moving to less significant positions.
  if (values > 0) {
    for (unsigned tier = 0; tier < width && flipped < count; ++tier) {
      const unsigned bit_in_value = width - 1 - tier;
      const std::size_t want = count - flipped;
      const auto chosen = sample_distinct(std::min(want, values), values, rng);
      for (const auto v : chosen) {
        util::flip_bit(region.bytes, v * width + bit_in_value);
      }
      flipped += chosen.size();
    }
  }

  // When the region's bit count is not a multiple of the value width, the
  // bits past the last whole value belong to no tier; an adversary with
  // leftover budget still spends it there, so the attack lands exactly
  // rate x total_bits flips whatever the width.
  if (flipped < count) {
    const std::size_t tail_begin = values * width;
    const auto chosen =
        sample_distinct(count - flipped, total - tail_begin, rng);
    for (const auto off : chosen) {
      util::flip_bit(region.bytes, tail_begin + off);
    }
    flipped += chosen.size();
  }
  return flipped;
}

std::size_t BitFlipInjector::flip_clustered_bits(MemoryRegion& region,
                                                 std::size_t count,
                                                 double cluster_fraction,
                                                 util::Xoshiro256& rng) {
  const std::size_t n = region.bit_count();
  if (n == 0 || count == 0) return 0;
  cluster_fraction = std::clamp(cluster_fraction, 1.0e-3, 1.0);
  std::size_t span = std::max<std::size_t>(
      static_cast<std::size_t>(cluster_fraction * static_cast<double>(n)),
      std::min(count, n));
  span = std::min(span, n);
  const std::size_t start =
      span < n ? static_cast<std::size_t>(rng.below(n - span + 1)) : 0;
  const auto offsets = sample_distinct(std::min(count, span), span, rng);
  for (const auto off : offsets) {
    util::flip_bit(region.bytes, start + off);
  }
  return offsets.size();
}

std::size_t BitFlipInjector::flip_budget(std::span<MemoryRegion> regions,
                                         std::size_t count, AttackMode mode,
                                         std::size_t target_region,
                                         double cluster_fraction,
                                         util::Xoshiro256& rng) {
  if (regions.empty() || count == 0) return 0;
  auto flip_in = [&](MemoryRegion& region, std::size_t n) -> std::size_t {
    switch (mode) {
      case AttackMode::kClustered:
        return flip_clustered_bits(region, n, cluster_fraction, rng);
      case AttackMode::kTargeted:
        return flip_targeted_bits(region, n, rng);
      case AttackMode::kRandom:
      default:
        return flip_random_bits(region, n, rng);
    }
  };
  if (target_region < regions.size()) {
    return flip_in(regions[target_region], count);
  }
  const std::size_t total = total_bits(
      std::span<const MemoryRegion>(regions.data(), regions.size()));
  if (total == 0) return 0;
  std::vector<std::size_t> share(regions.size(), 0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    share[i] = count * regions[i].bit_count() / total;
    assigned += share[i];
  }
  for (std::size_t extra = assigned; extra < count; ++extra) {
    share[rng.below(regions.size())] += 1;
  }
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (share[i] != 0) flipped += flip_in(regions[i], share[i]);
  }
  return flipped;
}

FlipReport BitFlipInjector::inject(std::span<MemoryRegion> regions,
                                   double rate, AttackMode mode,
                                   util::Xoshiro256& rng) {
  FlipReport report;
  report.total_bits = total_bits(regions);

  // The budget is always rate × total stored bits, for every mode — what
  // differs is *which* bits the adversary picks.
  // Proportional split of the budget across regions; within a region a
  // targeted attacker spends its share on most-significant-bit tiers
  // first. For 1-bit hypervector regions every bit is an MSB, so targeted
  // degenerates to random — the holographic property.
  double assigned = 0.0;
  long long allocated = 0;
  for (auto& region : regions) {
    assigned += rate * static_cast<double>(region.bit_count());
    const auto count =
        static_cast<std::size_t>(std::llround(assigned) - allocated);
    allocated += static_cast<long long>(count);
    if (count == 0) continue;
    switch (mode) {
      case AttackMode::kRandom:
        report.flipped += flip_random_bits(region, count, rng);
        break;
      case AttackMode::kTargeted:
        report.flipped += flip_targeted_bits(region, count, rng);
        break;
      case AttackMode::kClustered:
        // Row-hammer-style locality: the flips land in a span ~2.5x the
        // budget, i.e. ~40% local flip density.
        report.flipped += flip_clustered_bits(
            region, count,
            2.5 * static_cast<double>(count) /
                static_cast<double>(region.bit_count()),
            rng);
        break;
    }
  }
  return report;
}

FlipReport BitFlipInjector::inject_bit_errors(
    std::span<MemoryRegion> regions, double bit_error_rate,
    util::Xoshiro256& rng) {
  FlipReport report;
  report.total_bits = total_bits(regions);
  for (auto& region : regions) {
    const auto count = static_cast<std::size_t>(std::llround(
        bit_error_rate * static_cast<double>(region.bit_count())));
    report.flipped += flip_random_bits(region, count, rng);
  }
  return report;
}

StreamAttacker::StreamAttacker(double total_rate, std::size_t steps_to_full,
                               std::uint64_t seed)
    : total_rate_(total_rate),
      steps_to_full_(std::max<std::size_t>(steps_to_full, 1)),
      rng_(seed) {}

FlipReport StreamAttacker::step(std::span<MemoryRegion> regions) {
  FlipReport report;
  report.total_bits = total_bits(regions);
  if (steps_done_ >= steps_to_full_ || report.total_bits == 0) return report;

  ++steps_done_;
  const double per_step = total_rate_ / static_cast<double>(steps_to_full_);
  carry_bits_ += per_step * static_cast<double>(report.total_bits);
  auto count = static_cast<std::size_t>(carry_bits_);
  carry_bits_ -= static_cast<double>(count);

  // Pick each flip as a uniform global bit position across the whole
  // attack surface, so small per-step budgets still spread over regions.
  for (std::size_t f = 0; f < count; ++f) {
    const auto global = static_cast<std::size_t>(rng_.below(report.total_bits));
    auto pos = global;
    for (auto& region : regions) {
      if (pos < region.bit_count()) {
        util::flip_bit(region.bytes, pos);
        ++report.flipped;
        ++gross_flips_;
        // A position drawn twice flips the bit back to its original
        // value; net corruption is the parity of flips per position.
        const auto [it, inserted] = net_flipped_.insert(global);
        if (!inserted) net_flipped_.erase(it);
        break;
      }
      pos -= region.bit_count();
    }
  }
  injected_rate_ = static_cast<double>(net_flipped_.size()) /
                   static_cast<double>(report.total_bits);
  return report;
}

}  // namespace robusthd::fault
