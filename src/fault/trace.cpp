#include "robusthd/fault/trace.hpp"

#include <cstring>
#include <stdexcept>

#include "robusthd/util/bitops.hpp"

namespace robusthd::fault {

FlipReport AttackTrace::record(std::span<MemoryRegion> regions, double rate,
                               AttackMode mode, util::Xoshiro256& rng) {
  // Snapshot, inject, diff.
  std::vector<std::vector<std::byte>> before;
  before.reserve(regions.size());
  for (const auto& region : regions) {
    before.emplace_back(region.bytes.begin(), region.bytes.end());
  }

  const auto report = BitFlipInjector::inject(regions, rate, mode, rng);

  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto now = std::span<const std::byte>(regions[r].bytes);
    const auto then = std::span<const std::byte>(before[r]);
    for (std::size_t bit = 0; bit < regions[r].bit_count(); ++bit) {
      if (util::get_bit(now, bit) != util::get_bit(then, bit)) {
        events_.push_back({static_cast<std::uint32_t>(r), bit});
      }
    }
  }
  return report;
}

void AttackTrace::replay(std::span<MemoryRegion> regions) const {
  for (const auto& event : events_) {
    if (event.region >= regions.size() ||
        event.bit >= regions[event.region].bit_count()) {
      throw std::out_of_range("robusthd: attack trace does not fit regions");
    }
    util::flip_bit(regions[event.region].bytes, event.bit);
  }
}

std::vector<std::byte> AttackTrace::serialize() const {
  std::vector<std::byte> blob(8 + events_.size() * 12);
  const std::uint64_t count = events_.size();
  std::memcpy(blob.data(), &count, 8);
  std::size_t offset = 8;
  for (const auto& event : events_) {
    std::memcpy(blob.data() + offset, &event.region, 4);
    std::memcpy(blob.data() + offset + 4, &event.bit, 8);
    offset += 12;
  }
  return blob;
}

AttackTrace AttackTrace::deserialize(std::span<const std::byte> blob) {
  if (blob.size() < 8) {
    throw std::runtime_error("robusthd: truncated attack trace");
  }
  std::uint64_t count = 0;
  std::memcpy(&count, blob.data(), 8);
  if (blob.size() < 8 + count * 12) {
    throw std::runtime_error("robusthd: truncated attack trace events");
  }
  AttackTrace trace;
  trace.events_.resize(count);
  std::size_t offset = 8;
  for (auto& event : trace.events_) {
    std::memcpy(&event.region, blob.data() + offset, 4);
    std::memcpy(&event.bit, blob.data() + offset + 4, 8);
    offset += 12;
  }
  return trace;
}

}  // namespace robusthd::fault
