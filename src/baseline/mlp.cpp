#include "robusthd/baseline/mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "robusthd/util/rng.hpp"

namespace robusthd::baseline {

namespace {

using util::Matrix;

/// Float training state for one layer.
struct FloatLayer {
  Matrix w;                // out×in
  std::vector<float> b;    // out
};

/// y = relu(x W^T + b) computed batch-wise; `pre` keeps pre-activations
/// when non-null (not needed for the last layer).
void forward_layer(const Matrix& x, const FloatLayer& layer, Matrix& y,
                   bool relu) {
  util::gemm_bt(x, layer.w, y);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto row = y.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] += layer.b[c];
      if (relu && row[c] < 0.0f) row[c] = 0.0f;
    }
  }
}

/// Softmax cross-entropy gradient in place: logits -> (softmax - onehot)/B.
void softmax_grad(Matrix& logits, std::span<const int> labels,
                  std::span<const std::size_t> batch_index) {
  const float inv_b = 1.0f / static_cast<float>(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    auto row = logits.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float sum = 0.0f;
    for (auto& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    for (auto& v : row) v /= sum;
    row[static_cast<std::size_t>(labels[batch_index[r]])] -= 1.0f;
    for (auto& v : row) v *= inv_b;
  }
}

}  // namespace

Mlp Mlp::train(const data::Dataset& train_data, const MlpConfig& config) {
  const std::size_t n = train_data.feature_count();
  const std::size_t k = train_data.num_classes;
  util::Xoshiro256 rng(config.seed);

  // Layer sizes: n -> hidden... -> k.
  std::vector<std::size_t> sizes{n};
  sizes.insert(sizes.end(), config.hidden.begin(), config.hidden.end());
  sizes.push_back(k);

  std::vector<FloatLayer> layers(sizes.size() - 1);
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const std::size_t in = sizes[l], out = sizes[l + 1];
    layers[l].w = Matrix(out, in);
    layers[l].b.assign(out, 0.0f);
    const double he = std::sqrt(2.0 / static_cast<double>(in));
    for (auto& v : layers[l].w.flat()) {
      v = static_cast<float>(rng.normal(0.0, he));
    }
  }

  std::vector<std::size_t> order(train_data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  float lr = config.learning_rate;
  const std::size_t bsz = std::max<std::size_t>(config.batch_size, 1);

  // Reusable batch buffers.
  std::vector<Matrix> acts(layers.size() + 1);   // acts[0] = input batch
  std::vector<Matrix> grads(layers.size());      // gradient wrt acts[l+1]
  Matrix dw;
  std::vector<std::size_t> batch_index(bsz);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    util::shuffle(std::span<std::size_t>(order), rng);
    for (std::size_t start = 0; start + bsz <= order.size(); start += bsz) {
      // Assemble the batch.
      acts[0] = Matrix(bsz, n);
      for (std::size_t r = 0; r < bsz; ++r) {
        batch_index[r] = order[start + r];
        const auto src = train_data.sample(batch_index[r]);
        std::copy(src.begin(), src.end(), acts[0].row(r).begin());
      }

      // Forward.
      for (std::size_t l = 0; l < layers.size(); ++l) {
        acts[l + 1] = Matrix(bsz, sizes[l + 1]);
        forward_layer(acts[l], layers[l], acts[l + 1],
                      /*relu=*/l + 1 < layers.size());
      }

      // Backward.
      softmax_grad(acts.back(), train_data.labels, batch_index);
      grads.back() = acts.back();
      for (std::size_t l = layers.size(); l-- > 0;) {
        // dW = grad^T × act_in, db = column sums of grad.
        dw = Matrix(sizes[l + 1], sizes[l]);
        util::gemm_at(grads[l], acts[l], dw);
        for (std::size_t r = 0; r < dw.rows(); ++r) {
          auto wrow = layers[l].w.row(r);
          const auto grow = dw.row(r);
          for (std::size_t c = 0; c < wrow.size(); ++c) {
            wrow[c] -= lr * grow[c];
          }
          float db = 0.0f;
          for (std::size_t b = 0; b < bsz; ++b) db += grads[l](b, r);
          layers[l].b[r] -= lr * db;
        }
        if (l > 0) {
          // Propagate: dact_in = grad × W, masked by ReLU.
          grads[l - 1] = Matrix(bsz, sizes[l]);
          util::gemm(grads[l], layers[l].w, grads[l - 1]);
          for (std::size_t b = 0; b < bsz; ++b) {
            auto grow = grads[l - 1].row(b);
            const auto arow = acts[l].row(b);
            for (std::size_t c = 0; c < grow.size(); ++c) {
              if (arow[c] <= 0.0f) grow[c] = 0.0f;
            }
          }
        }
      }
    }
    lr *= config.lr_decay;
  }

  // Deploy: quantise every layer.
  Mlp model;
  model.config_ = config;
  model.num_classes_ = k;
  model.layers_.reserve(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    Layer deployed;
    deployed.in = sizes[l];
    deployed.out = sizes[l + 1];
    deployed.weights = QuantizedTensor(layers[l].w.flat(), config.precision);
    deployed.bias = QuantizedTensor(layers[l].b, config.precision);
    model.layers_.push_back(std::move(deployed));
  }
  return model;
}

std::vector<float> Mlp::logits(std::span<const float> features) const {
  std::vector<float> cur(features.begin(), features.end());
  std::vector<float> next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    next.assign(layer.out, 0.0f);
    for (std::size_t r = 0; r < layer.out; ++r) {
      float acc = layer.bias.get(r);
      const std::size_t base = r * layer.in;
      for (std::size_t c = 0; c < layer.in; ++c) {
        acc += layer.weights.get(base + c) * cur[c];
      }
      // Saturating MAC: exploded weights give large-but-finite outputs.
      acc = saturate(acc, config_.activation_limit);
      next[r] = (l + 1 < layers_.size()) ? std::max(acc, 0.0f) : acc;
    }
    cur.swap(next);
  }
  return cur;
}

int Mlp::predict(std::span<const float> features) const {
  const auto out = logits(features);
  return static_cast<int>(
      std::max_element(out.begin(), out.end()) - out.begin());
}

std::vector<fault::MemoryRegion> Mlp::memory_regions() {
  std::vector<fault::MemoryRegion> regions;
  regions.reserve(layers_.size() * 2);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    regions.push_back(
        layers_[l].weights.region("mlp/w" + std::to_string(l)));
    regions.push_back(layers_[l].bias.region("mlp/b" + std::to_string(l)));
  }
  return regions;
}

std::unique_ptr<Classifier> Mlp::clone() const {
  return std::make_unique<Mlp>(*this);
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t total = 0;
  for (const auto& l : layers_) total += l.weights.size() + l.bias.size();
  return total;
}

}  // namespace robusthd::baseline
