#include "robusthd/baseline/adaboost.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "robusthd/util/rng.hpp"

namespace robusthd::baseline {

namespace {

/// Per-feature quantile bucketisation of the training matrix.
struct Buckets {
  std::size_t count = 0;                  // buckets per feature
  std::vector<std::uint8_t> index;        // samples × features
  std::vector<float> upper_edge;          // features × count: bucket upper value
};

Buckets bucketize(const data::Dataset& d, std::size_t buckets) {
  const std::size_t n = d.feature_count();
  const std::size_t s = d.size();
  Buckets out;
  out.count = buckets;
  out.index.resize(s * n);
  out.upper_edge.resize(n * buckets);

  std::vector<float> column(s);
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t i = 0; i < s; ++i) column[i] = d.features(i, f);
    std::vector<float> sorted = column;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t pos = (b + 1) * s / buckets;
      out.upper_edge[f * buckets + b] = sorted[std::min(pos > 0 ? pos - 1 : 0, s - 1)];
    }
    // Ensure the last bucket covers everything.
    out.upper_edge[f * buckets + buckets - 1] =
        std::numeric_limits<float>::max();
    for (std::size_t i = 0; i < s; ++i) {
      const float v = column[i];
      std::size_t b = 0;
      while (b + 1 < buckets && v > out.upper_edge[f * buckets + b]) ++b;
      out.index[i * n + f] = static_cast<std::uint8_t>(b);
    }
  }
  return out;
}

struct StumpChoice {
  std::size_t feature = 0;
  std::size_t split_bucket = 0;  // goes left if bucket <= split_bucket
  int left_class = 0;
  int right_class = 0;
  double error = 1.0;
};

}  // namespace

AdaBoost AdaBoost::train(const data::Dataset& d, const AdaBoostConfig& cfg) {
  const std::size_t n = d.feature_count();
  const std::size_t s = d.size();
  const std::size_t k = d.num_classes;
  const std::size_t buckets = std::max<std::size_t>(cfg.buckets, 2);
  assert(s > 0 && k >= 2);

  const Buckets bk = bucketize(d, buckets);

  std::vector<double> weight(s, 1.0 / static_cast<double>(s));
  std::vector<float> out_thresholds;
  std::vector<float> out_alphas;

  AdaBoost model;
  model.features_ = n;
  model.num_classes_ = k;

  // Per-round scratch: bucket × class weighted histogram for one feature.
  std::vector<double> hist(buckets * k);
  std::vector<double> left(k), total(k);

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    StumpChoice best;
    for (std::size_t f = 0; f < n; ++f) {
      std::fill(hist.begin(), hist.end(), 0.0);
      for (std::size_t i = 0; i < s; ++i) {
        const auto b = bk.index[i * n + f];
        hist[b * k + static_cast<std::size_t>(d.labels[i])] += weight[i];
      }
      std::fill(total.begin(), total.end(), 0.0);
      for (std::size_t b = 0; b < buckets; ++b) {
        for (std::size_t c = 0; c < k; ++c) total[c] += hist[b * k + c];
      }
      std::fill(left.begin(), left.end(), 0.0);
      for (std::size_t split = 0; split + 1 < buckets; ++split) {
        for (std::size_t c = 0; c < k; ++c) left[c] += hist[split * k + c];
        // Weighted majority on each side.
        std::size_t lc = 0, rc = 0;
        double lbest = -1.0, rbest = -1.0;
        for (std::size_t c = 0; c < k; ++c) {
          if (left[c] > lbest) {
            lbest = left[c];
            lc = c;
          }
          const double right = total[c] - left[c];
          if (right > rbest) {
            rbest = right;
            rc = c;
          }
        }
        const double err = 1.0 - lbest - rbest;  // weights sum to 1
        if (err < best.error) {
          best = {f, split, static_cast<int>(lc), static_cast<int>(rc), err};
        }
      }
    }

    // SAMME stage weight; stop if the stump is no better than guessing.
    const double guess = 1.0 - 1.0 / static_cast<double>(k);
    if (best.error >= guess) break;
    const double err = std::max(best.error, 1.0e-10);
    const double alpha =
        std::log((1.0 - err) / err) + std::log(static_cast<double>(k) - 1.0);

    model.feature_ids_.push_back(static_cast<std::int16_t>(best.feature));
    model.left_class_.push_back(static_cast<std::int8_t>(best.left_class));
    model.right_class_.push_back(static_cast<std::int8_t>(best.right_class));
    out_thresholds.push_back(
        bk.upper_edge[best.feature * buckets + best.split_bucket] ==
                std::numeric_limits<float>::max()
            ? 1.0f
            : bk.upper_edge[best.feature * buckets + best.split_bucket]);
    out_alphas.push_back(static_cast<float>(alpha));

    // Reweight: misclassified samples gain weight.
    double z = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      const bool go_left = bk.index[i * n + best.feature] <= best.split_bucket;
      const int vote = go_left ? best.left_class : best.right_class;
      if (vote != d.labels[i]) weight[i] *= std::exp(alpha);
      z += weight[i];
    }
    for (auto& w : weight) w /= z;
  }

  // Ordinary signed fixed-point storage, like the other baselines' weight
  // memories: the sign bit is what a worst-case attacker goes for.
  model.thresholds_ = QuantizedTensor(out_thresholds, cfg.precision);
  model.alphas_ = QuantizedTensor(out_alphas, cfg.precision);
  return model;
}

std::vector<float> AdaBoost::scores(std::span<const float> features) const {
  std::vector<float> out(num_classes_, 0.0f);
  const auto n = static_cast<std::int32_t>(features_);
  const auto k = static_cast<std::int32_t>(num_classes_);
  for (std::size_t t = 0; t < feature_ids_.size(); ++t) {
    // Wrap possibly-corrupted indices into valid range: attacked hardware
    // still fetches *some* feature and votes for *some* class.
    std::int32_t f = feature_ids_[t] % n;
    if (f < 0) f += n;
    const bool go_left = features[static_cast<std::size_t>(f)] <=
                         thresholds_.get(t);
    std::int32_t c = (go_left ? left_class_[t] : right_class_[t]) % k;
    if (c < 0) c += k;
    out[static_cast<std::size_t>(c)] += alphas_.get(t);
  }
  return out;
}

int AdaBoost::predict(std::span<const float> features) const {
  const auto s = scores(features);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<fault::MemoryRegion> AdaBoost::memory_regions() {
  // The attackable surface is the learned *continuous parameters* — stage
  // weights and split thresholds, the analogue of DNN/SVM weights. Feature
  // indices and leaf vote labels are the tree's topology (which feature a
  // stump is wired to, which leaf maps to which class), the analogue of a
  // DNN's layer wiring, and like that wiring they are not part of the
  // weight memory the paper's attacks flip.
  std::vector<fault::MemoryRegion> regions;
  regions.push_back(alphas_.region("ada/alphas"));  // most damage-sensitive
  regions.push_back(thresholds_.region("ada/thresholds"));
  return regions;
}

std::unique_ptr<Classifier> AdaBoost::clone() const {
  return std::make_unique<AdaBoost>(*this);
}

}  // namespace robusthd::baseline
