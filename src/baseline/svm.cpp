#include "robusthd/baseline/svm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "robusthd/util/rng.hpp"

namespace robusthd::baseline {

LinearSvm LinearSvm::train(const data::Dataset& train_data,
                           const SvmConfig& config) {
  const std::size_t n = train_data.feature_count();
  const std::size_t k = train_data.num_classes;
  util::Xoshiro256 rng(config.seed);

  std::vector<float> w(k * n, 0.0f);
  std::vector<float> b(k, 0.0f);
  std::vector<std::size_t> order(train_data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  float lr = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    util::shuffle(std::span<std::size_t>(order), rng);
    for (const auto idx : order) {
      const auto x = train_data.sample(idx);
      const auto y = train_data.labels[idx];
      // One-vs-rest hinge: class c has target +1 if c==y else -1;
      // update when margin < 1.
      for (std::size_t c = 0; c < k; ++c) {
        float score = b[c];
        const float* wc = w.data() + c * n;
        for (std::size_t j = 0; j < n; ++j) score += wc[j] * x[j];
        const float target = (static_cast<std::size_t>(y) == c) ? 1.0f : -1.0f;
        float* wm = w.data() + c * n;
        if (target * score < 1.0f) {
          for (std::size_t j = 0; j < n; ++j) {
            wm[j] += lr * (target * x[j] - config.l2 * wm[j]);
          }
          b[c] += lr * target;
        } else {
          for (std::size_t j = 0; j < n; ++j) {
            wm[j] -= lr * config.l2 * wm[j];
          }
        }
      }
    }
    lr *= 0.9f;
  }

  LinearSvm model;
  model.features_ = n;
  model.num_classes_ = k;
  model.weights_ = QuantizedTensor(w, config.precision);
  model.bias_ = QuantizedTensor(b, config.precision);
  return model;
}

std::vector<float> LinearSvm::scores(std::span<const float> features) const {
  std::vector<float> out(num_classes_, 0.0f);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    float acc = bias_.get(c);
    const std::size_t base = c * features_;
    for (std::size_t j = 0; j < features_; ++j) {
      acc += weights_.get(base + j) * features[j];
    }
    out[c] = saturate(acc, 1.0e6f);
  }
  return out;
}

int LinearSvm::predict(std::span<const float> features) const {
  const auto s = scores(features);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<fault::MemoryRegion> LinearSvm::memory_regions() {
  return {weights_.region("svm/w"), bias_.region("svm/b")};
}

std::unique_ptr<Classifier> LinearSvm::clone() const {
  return std::make_unique<LinearSvm>(*this);
}

}  // namespace robusthd::baseline
