#include "robusthd/baseline/fixedpoint.hpp"

#include <algorithm>
#include <cmath>

namespace robusthd::baseline {

namespace {

float max_abs(std::span<const float> values) noexcept {
  float m = 0.0f;
  for (const auto v : values) m = std::max(m, std::abs(v));
  return m;
}

template <typename Int>
std::vector<Int> quantize_to(std::span<const float> values, float scale) {
  std::vector<Int> out(values.size());
  const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
  constexpr float lo = static_cast<float>(std::numeric_limits<Int>::min() + 1);
  constexpr float hi = static_cast<float>(std::numeric_limits<Int>::max());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float q = std::clamp(std::round(values[i] * inv), lo, hi);
    out[i] = static_cast<Int>(q);
  }
  return out;
}

}  // namespace

QuantizedTensor::QuantizedTensor(std::span<const float> values,
                                 Precision precision, Signedness signedness)
    : precision_(precision), count_(values.size()) {
  // With kAuto, non-negative tensors quantise unsigned: the full code range
  // carries magnitude and there is no sign bit whose flip would negate the
  // value. The default is kSigned — ordinary weight memories use two's
  // complement regardless of the values they happen to hold.
  unsigned_ = signedness == Signedness::kAuto && !values.empty() &&
              std::all_of(values.begin(), values.end(),
                          [](float v) { return v >= 0.0f; });
  switch (precision_) {
    case Precision::kInt8:
      scale_ = max_abs(values) / (unsigned_ ? 255.0f : 127.0f);
      if (scale_ == 0.0f) scale_ = 1.0f;
      if (unsigned_) {
        q8_.resize(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          const float q =
              std::clamp(std::round(values[i] / scale_), 0.0f, 255.0f);
          q8_[i] = static_cast<std::int8_t>(static_cast<std::uint8_t>(q));
        }
      } else {
        q8_ = quantize_to<std::int8_t>(values, scale_);
      }
      break;
    case Precision::kInt16:
      scale_ = max_abs(values) / (unsigned_ ? 65535.0f : 32767.0f);
      if (scale_ == 0.0f) scale_ = 1.0f;
      if (unsigned_) {
        q16_.resize(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          const float q =
              std::clamp(std::round(values[i] / scale_), 0.0f, 65535.0f);
          q16_[i] = static_cast<std::int16_t>(static_cast<std::uint16_t>(q));
        }
      } else {
        q16_ = quantize_to<std::int16_t>(values, scale_);
      }
      break;
    case Precision::kFloat32:
      f32_.assign(values.begin(), values.end());
      scale_ = 1.0f;
      break;
  }
}

float QuantizedTensor::get(std::size_t i) const noexcept {
  switch (precision_) {
    case Precision::kInt8:
      return unsigned_ ? static_cast<float>(static_cast<std::uint8_t>(q8_[i])) *
                             scale_
                       : static_cast<float>(q8_[i]) * scale_;
    case Precision::kInt16:
      return unsigned_
                 ? static_cast<float>(static_cast<std::uint16_t>(q16_[i])) *
                       scale_
                 : static_cast<float>(q16_[i]) * scale_;
    case Precision::kFloat32:
      return f32_[i];
  }
  return 0.0f;
}

fault::MemoryRegion QuantizedTensor::region(std::string name) {
  std::span<std::byte> bytes;
  switch (precision_) {
    case Precision::kInt8:
      bytes = std::as_writable_bytes(std::span<std::int8_t>(q8_));
      break;
    case Precision::kInt16:
      bytes = std::as_writable_bytes(std::span<std::int16_t>(q16_));
      break;
    case Precision::kFloat32:
      bytes = std::as_writable_bytes(std::span<float>(f32_));
      break;
  }
  return fault::MemoryRegion{bytes, bits_of(precision_), std::move(name)};
}

float saturate(float value, float limit) noexcept {
  if (std::isnan(value)) return 0.0f;
  return std::clamp(value, -limit, limit);
}

}  // namespace robusthd::baseline
