#include "robusthd/baseline/classifier.hpp"

namespace robusthd::baseline {

double Classifier::evaluate(const data::Dataset& dataset) const {
  if (dataset.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    correct += (predict(dataset.sample(i)) == dataset.labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

}  // namespace robusthd::baseline
