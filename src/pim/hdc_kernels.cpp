#include "robusthd/pim/hdc_kernels.hpp"

#include <cassert>

#include "robusthd/pim/cost.hpp"

namespace robusthd::pim {

CrossbarHdcUnit::CrossbarHdcUnit(std::size_t dimension, std::size_t classes)
    : dim_(dimension),
      classes_(classes),
      query_col_(classes),
      diff_col_(classes + 1),
      scratch0_(classes + 2),
      scratch1_(classes + 3),
      scratch2_(classes + 4),
      xbar_(dimension, classes + 5) {
  all_rows_.resize(dimension);
  for (std::size_t r = 0; r < dimension; ++r) all_rows_[r] = r;
}

void CrossbarHdcUnit::load_class(std::size_t cls, const hv::BinVec& vector) {
  assert(cls < classes_);
  assert(vector.dimension() == dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    xbar_.write(d, cls, vector.get(d));
  }
}

hv::BinVec CrossbarHdcUnit::read_class(std::size_t cls) const {
  hv::BinVec out(dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    out.set(d, xbar_.read(d, cls));
  }
  return out;
}

std::vector<std::size_t> CrossbarHdcUnit::hamming_search(
    const hv::BinVec& query) {
  assert(query.dimension() == dim_);
  for (std::size_t d = 0; d < dim_; ++d) {
    xbar_.write(d, query_col_, query.get(d));
  }

  std::vector<std::size_t> distances(classes_, 0);
  for (std::size_t cls = 0; cls < classes_; ++cls) {
    // Row-parallel XOR of the query column with the class column: one
    // 5-NOR macro executed across all D rows at once.
    xbar_.op_xor(cls, query_col_, diff_col_, scratch0_, scratch1_, scratch2_,
                 all_rows_);
    // The cross-row popcount runs in the adder tree modelled by
    // cost_popcount(); functionally we read the diff column out.
    std::size_t distance = 0;
    for (std::size_t d = 0; d < dim_; ++d) {
      distance += xbar_.read(d, diff_col_);
    }
    distances[cls] = distance;
  }
  return distances;
}

std::uint64_t CrossbarHdcUnit::expected_nor_steps(
    std::size_t classes) noexcept {
  return classes * cost_xor(1).cycles;
}

}  // namespace robusthd::pim
