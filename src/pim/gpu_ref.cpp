#include "robusthd/pim/gpu_ref.hpp"

#include <algorithm>
#include <cmath>

namespace robusthd::pim {

namespace {

GpuCost combine(double compute_s, double bytes_touched, const GpuParams& gpu) {
  GpuCost out;
  const double mem_s = bytes_touched / (gpu.dram_bandwidth_gb_s * 1.0e9);
  const double t = std::max(compute_s, mem_s);  // roofline
  out.latency_us = t * 1.0e6;
  out.energy_uj = t * gpu.board_power_w * 1.0e6 +
                  bytes_touched * gpu.dram_energy_pj_per_byte * 1.0e-6;
  out.throughput_per_s = t > 0.0 ? 1.0 / t : 0.0;
  return out;
}

}  // namespace

GpuCost gpu_cost_dnn(const DnnWorkloadSpec& spec, const GpuParams& gpu) {
  const double macs = static_cast<double>(spec.mac_count());
  const double compute_s = macs / gpu.mac_per_s;
  // Every weight byte crosses DRAM once per inference at batch size 1
  // (throughput mode amortises activations, not weights).
  const double bytes =
      static_cast<double>(spec.parameter_count()) * spec.weight_bits / 8.0;
  return combine(compute_s, bytes, gpu);
}

double hdc_search_wordops(std::size_t dimension, std::size_t classes,
                          std::size_t batch) noexcept {
  const double words = static_cast<double>(dimension) / 64.0;
  // Similarity: XOR + popcount + reduce per (query, class) word.
  return static_cast<double>(batch) * static_cast<double>(classes) * words *
         3.0;
}

GpuCost gpu_cost_hdc(const HdcWorkloadSpec& spec, const GpuParams& gpu) {
  const double words = static_cast<double>(spec.dimension) / 64.0;
  double wordops = 0.0;
  double bytes = 0.0;
  if (spec.include_encoding) {
    // Per feature: one XOR pass + bundling adds over the packed words, and
    // the level/base hypervectors stream from memory.
    wordops += static_cast<double>(spec.features) * words * 10.0;
    bytes += static_cast<double>(spec.features) * words * 8.0 * 2.0;
  }
  wordops += hdc_search_wordops(spec.dimension, spec.classes);
  bytes += static_cast<double>(spec.classes) * words * 8.0;
  const double compute_s = wordops / gpu.wordop_per_s;
  return combine(compute_s, bytes, gpu);
}

}  // namespace robusthd::pim
