#include "robusthd/pim/cost.hpp"

namespace robusthd::pim {

OpCost cost_popcount(std::size_t bits) noexcept {
  // Balanced adder tree: level l reduces pairs of l-bit counts with
  // (l+1)-bit adders. ceil arithmetic keeps odd counts honest.
  OpCost total{};
  std::size_t counts = bits;
  std::size_t width = 1;
  while (counts > 1) {
    const std::size_t pairs = counts / 2;
    total += cost_add(width + 1) * pairs;
    counts = pairs + (counts & 1);
    ++width;
  }
  return total;
}

OpCost cost_hamming(std::size_t dimension) noexcept {
  return cost_xor(dimension) + cost_popcount(dimension);
}

PhysicalCost physical(const OpCost& op, const DeviceParams& device,
                      std::uint64_t row_parallelism) noexcept {
  PhysicalCost p;
  p.time_ns = static_cast<double>(op.cycles) * device.switch_delay_ns;
  p.total_switches = op.switches * row_parallelism;
  p.energy_pj = static_cast<double>(p.total_switches) *
                device.switch_energy_fj * 1.0e-3;
  return p;
}

}  // namespace robusthd::pim
