#include "robusthd/pim/crossbar.hpp"

#include <algorithm>
#include <cassert>

namespace robusthd::pim {

Crossbar::Crossbar(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), bits_(rows * cols, 0),
      writes_(rows * cols, 0) {}

bool Crossbar::read(std::size_t row, std::size_t col) const noexcept {
  return bits_[row * cols_ + col] != 0;
}

void Crossbar::write(std::size_t row, std::size_t col, bool value) noexcept {
  const std::size_t i = row * cols_ + col;
  bits_[i] = value ? 1 : 0;
  ++writes_[i];
  ++total_writes_;
}

void Crossbar::nor(std::span<const std::size_t> in_cols, std::size_t out_col,
                   std::span<const std::size_t> active_rows) {
  assert(!in_cols.empty());
  ++nor_steps_;
  for (const auto row : active_rows) {
    // Output is initialised to R_ON (logic 1) and RESET to 0 if any input
    // conducts; either way the cell experiences one switching event.
    bool any_one = false;
    for (const auto c : in_cols) any_one |= read(row, c);
    const std::size_t i = row * cols_ + out_col;
    bits_[i] = any_one ? 0 : 1;
    ++writes_[i];
    ++total_writes_;
  }
}

void Crossbar::op_not(std::size_t a_col, std::size_t out_col,
                      std::span<const std::size_t> rows) {
  const std::size_t in[] = {a_col};
  nor(in, out_col, rows);
}

void Crossbar::op_and(std::size_t a_col, std::size_t b_col,
                      std::size_t out_col, std::size_t scratch0,
                      std::size_t scratch1,
                      std::span<const std::size_t> rows) {
  op_not(a_col, scratch0, rows);
  op_not(b_col, scratch1, rows);
  const std::size_t in[] = {scratch0, scratch1};
  nor(in, out_col, rows);
}

void Crossbar::op_xor(std::size_t a_col, std::size_t b_col,
                      std::size_t out_col, std::size_t scratch0,
                      std::size_t scratch1, std::size_t scratch2,
                      std::span<const std::size_t> rows) {
  // 4-NOR XNOR followed by a NOT (5 NOR steps total).
  const std::size_t ab[] = {a_col, b_col};
  nor(ab, scratch0, rows);
  const std::size_t as0[] = {a_col, scratch0};
  nor(as0, scratch1, rows);
  const std::size_t bs0[] = {b_col, scratch0};
  nor(bs0, scratch2, rows);
  const std::size_t s12[] = {scratch1, scratch2};
  nor(s12, scratch0, rows);  // scratch0 now holds XNOR(a, b)
  op_not(scratch0, out_col, rows);
}

void Crossbar::full_adder(std::size_t a_col, std::size_t b_col,
                          std::size_t cin_col, std::size_t sum_col,
                          std::size_t cout_col,
                          std::span<const std::size_t> scratch,
                          std::span<const std::size_t> rows) {
  assert(scratch.size() >= 7);
  // 9-NOR full adder (Kvatinsky-style shared intermediates):
  //   n1 = NOR(a,b); n4 = XNOR(a,b) via n2,n3;
  //   n5 = NOR(n4,cin); sum = XNOR(n4,cin) via n6,n7;
  //   cout = NOR(n1,n5) = majority(a,b,cin).
  const std::size_t n1 = scratch[0], n2 = scratch[1], n3 = scratch[2],
                    n4 = scratch[3], n5 = scratch[4], n6 = scratch[5],
                    n7 = scratch[6];
  const std::size_t ab[] = {a_col, b_col};
  nor(ab, n1, rows);
  const std::size_t an1[] = {a_col, n1};
  nor(an1, n2, rows);
  const std::size_t bn1[] = {b_col, n1};
  nor(bn1, n3, rows);
  const std::size_t n23[] = {n2, n3};
  nor(n23, n4, rows);
  const std::size_t n4c[] = {n4, cin_col};
  nor(n4c, n5, rows);
  const std::size_t n45[] = {n4, n5};
  nor(n45, n6, rows);
  const std::size_t cn5[] = {cin_col, n5};
  nor(cn5, n7, rows);
  const std::size_t n67[] = {n6, n7};
  nor(n67, sum_col, rows);
  const std::size_t n15[] = {n1, n5};
  nor(n15, cout_col, rows);
}

void Crossbar::ripple_add(std::size_t a_base, std::size_t b_base,
                          std::size_t out_base, std::size_t carry_col,
                          std::span<const std::size_t> scratch,
                          std::size_t bits, std::span<const std::size_t> rows) {
  assert(scratch.size() >= 8);
  std::size_t cin = carry_col;
  std::size_t cout = scratch[7];
  for (const auto row : rows) write(row, cin, false);
  for (std::size_t i = 0; i < bits; ++i) {
    full_adder(a_base + i, b_base + i, cin, out_base + i, cout,
               scratch.first(7), rows);
    std::swap(cin, cout);
  }
}

std::uint64_t Crossbar::max_cell_writes() const noexcept {
  return writes_.empty() ? 0 : *std::max_element(writes_.begin(), writes_.end());
}

void Crossbar::reset_counters() noexcept {
  std::fill(writes_.begin(), writes_.end(), 0);
  nor_steps_ = 0;
  total_writes_ = 0;
}

}  // namespace robusthd::pim
