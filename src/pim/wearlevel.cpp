#include "robusthd/pim/wearlevel.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace robusthd::pim {

StartGapLeveler::StartGapLeveler(std::size_t lines,
                                 std::size_t gap_move_interval)
    : lines_(lines),
      interval_(std::max<std::size_t>(gap_move_interval, 1)),
      gap_(lines),  // the spare starts at the end
      wear_(lines + 1, 0) {
  assert(lines >= 1);
}

std::size_t StartGapLeveler::physical_of(std::size_t logical) const noexcept {
  assert(logical < lines_);
  std::size_t pa = (logical + start_) % lines_;
  if (pa >= gap_) ++pa;  // skip over the spare line
  return pa;
}

std::size_t StartGapLeveler::write(std::size_t logical) {
  const std::size_t pa = physical_of(logical);
  ++wear_[pa];
  if (++writes_since_move_ >= interval_) {
    writes_since_move_ = 0;
    move_gap();
  }
  return pa;
}

void StartGapLeveler::move_gap() {
  ++gap_moves_;
  if (gap_ == 0) {
    // The gap wraps to the top and the whole mapping rotates one step.
    gap_ = lines_;
    start_ = (start_ + 1) % lines_;
    // Data moves from the (new) gap's neighbour into position 0; in
    // Qureshi's scheme the wrap itself costs no copy because line 0's
    // content already migrated during the preceding N moves.
    return;
  }
  // Copy the neighbour's content into the empty gap line: one write.
  ++wear_[gap_];
  --gap_;
}

std::uint64_t StartGapLeveler::max_wear() const noexcept {
  return *std::max_element(wear_.begin(), wear_.end());
}

double StartGapLeveler::mean_wear() const noexcept {
  const auto total =
      std::accumulate(wear_.begin(), wear_.end(), std::uint64_t{0});
  return static_cast<double>(total) / static_cast<double>(wear_.size());
}

double StartGapLeveler::imbalance() const noexcept {
  const double mean = mean_wear();
  return mean > 0.0 ? static_cast<double>(max_wear()) / mean : 1.0;
}

}  // namespace robusthd::pim
