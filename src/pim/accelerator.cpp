#include "robusthd/pim/accelerator.hpp"

#include <algorithm>
#include <cmath>

namespace robusthd::pim {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Adder-tree reduction of `leaves` partial values of `start_width` bits:
/// log-depth sequential levels (each level's adds run in parallel across
/// rows/tiles), widths growing one bit per level.
OpCost tree_reduce(std::size_t leaves, std::size_t start_width) {
  OpCost total{};
  std::size_t level_values = leaves;
  std::size_t width = start_width;
  while (level_values > 1) {
    total.cycles += cost_add(width + 1).cycles;
    total.switches += cost_add(width + 1).switches * (level_values / 2);
    level_values = ceil_div(level_values, 2);
    ++width;
  }
  return total;
}

}  // namespace

InferenceCost DpimAccelerator::finalize(OpCost logical,
                                        std::uint64_t batch_parallel,
                                        std::uint64_t footprint_cells) const {
  InferenceCost out;
  out.cycles = logical.cycles;
  out.device_switches = static_cast<std::uint64_t>(
      static_cast<double>(logical.switches) * config_.activity_factor);
  out.latency_us =
      static_cast<double>(out.cycles) * config_.device.switch_delay_ns * 1e-3;
  out.energy_uj = static_cast<double>(out.device_switches) *
                  config_.device.switch_energy_fj * 1e-9;
  out.throughput_per_s =
      out.latency_us > 0.0
          ? static_cast<double>(std::max<std::uint64_t>(batch_parallel, 1)) /
                (out.latency_us * 1e-6)
          : 0.0;
  // Wear levelling rotates data and scratch columns across the workload's
  // provisioned region (footprint x over-provision, capped at the chip).
  const std::uint64_t chip_cells = static_cast<std::uint64_t>(config_.arrays) *
                                   config_.rows_per_array *
                                   config_.cols_per_array;
  out.wear_cells = std::min<std::uint64_t>(
      footprint_cells * std::max<std::size_t>(config_.wear_overprovision, 1),
      chip_cells);
  return out;
}

InferenceCost DpimAccelerator::cost_dnn(const DnnWorkloadSpec& spec) const {
  const unsigned b = spec.weight_bits;
  const std::size_t groups = std::max<std::size_t>(
      config_.dnn_inner_parallelism, 1);
  OpCost logical{};

  const std::uint64_t cells_per_array =
      static_cast<std::uint64_t>(config_.rows_per_array) *
      config_.cols_per_array;
  const std::uint64_t weight_bits_total =
      static_cast<std::uint64_t>(spec.parameter_count()) * b;
  const std::size_t weight_arrays = std::max<std::size_t>(
      1, ceil_div(weight_bits_total, cells_per_array));

  for (const auto& [in, out_n] : spec.layers) {
    // Neurons are row-parallel; each neuron's `in` MACs split across
    // `groups` tile column-groups running concurrently, then the partial
    // sums merge through a cross-tile adder tree.
    const OpCost mac = cost_multiply(b) + cost_add(2 * b + 8);
    const std::size_t chain = ceil_div(in, groups);
    const OpCost merge = tree_reduce(std::min(groups, in), 2 * b + 8);
    OpCost layer{};
    layer.cycles = mac.cycles * chain + merge.cycles;
    // Every MAC really executes (and writes) somewhere regardless of how
    // the work is split; merge adds a small extra.
    layer.switches = mac.switches * in * out_n + merge.switches * out_n;
    logical += layer;
  }

  const std::size_t batch_arrays =
      std::max<std::size_t>(1, config_.arrays / weight_arrays);
  return finalize(logical, batch_arrays, weight_arrays * cells_per_array);
}

InferenceCost DpimAccelerator::cost_hdc(const HdcWorkloadSpec& spec) const {
  OpCost logical{};
  const std::size_t total_rows = config_.arrays * config_.rows_per_array;
  const std::size_t dim_passes = ceil_div(spec.dimension, total_rows);

  const std::uint64_t cells_per_array =
      static_cast<std::uint64_t>(config_.rows_per_array) *
      config_.cols_per_array;
  // Footprint: class vectors + query/scratch columns, the item memory
  // (base + level hypervectors) and a 64-column streaming workspace for
  // the bound bits being bundled.
  std::uint64_t footprint_bits =
      static_cast<std::uint64_t>(spec.dimension) * (spec.classes + 8);
  if (spec.include_encoding) {
    footprint_bits += static_cast<std::uint64_t>(spec.dimension) *
                      (spec.features + 64 + 64);
  }

  if (spec.include_encoding) {
    // Dimension-major: each of the D dimensions is a row. Per row: n 1-bit
    // XOR bindings, a popcount over the n bound bits, and one majority
    // compare. Sequential along columns, parallel across the D rows.
    const auto n = spec.features;
    const auto cmp_width = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(n) + 1.0))) + 1;
    const OpCost per_row = cost_xor(1) * n + cost_popcount(n) +
                           cost_add(cmp_width);
    OpCost encode{};
    encode.cycles = per_row.cycles * dim_passes;
    encode.switches = per_row.switches * spec.dimension;
    logical += encode;
  }

  // Similarity search: per class one 1-bit XOR per dimension row, then a
  // log-depth adder tree across the D rows.
  const OpCost xors = cost_xor(1);
  const OpCost tree = tree_reduce(spec.dimension, 1);
  OpCost similarity{};
  similarity.cycles = (xors.cycles * dim_passes + tree.cycles) * spec.classes;
  similarity.switches =
      (xors.switches * spec.dimension + tree.switches) * spec.classes;
  logical += similarity;

  const std::size_t hdc_arrays = std::max<std::size_t>(
      1, ceil_div(footprint_bits, cells_per_array));
  const std::size_t batch_arrays =
      std::max<std::size_t>(1, config_.arrays / hdc_arrays);
  return finalize(logical, batch_arrays, hdc_arrays * cells_per_array);
}

}  // namespace robusthd::pim
