#include "robusthd/pim/endurance.hpp"

#include <cmath>
#include <limits>

#include "robusthd/util/rng.hpp"

namespace robusthd::pim {

namespace {

/// Standard normal CDF.
double phi(double z) noexcept { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Inverse standard normal CDF (Acklam-style rational approximation is
/// overkill here; bisection over phi is exact enough and obviously right).
double phi_inv(double p) noexcept {
  double lo = -10.0, hi = 10.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    (phi(mid) < p ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

LifetimeModel::LifetimeModel(const InferenceCost& cost,
                             const LifetimeConfig& config)
    : endurance_mu_(std::log(config.device.endurance_writes)),
      endurance_sigma_(config.device.endurance_sigma) {
  if (cost.wear_cells > 0) {
    const double switches_per_day = static_cast<double>(cost.device_switches) *
                                    config.inference_rate_per_s * 86400.0;
    writes_per_cell_per_day_ =
        switches_per_day / static_cast<double>(cost.wear_cells);
  }
}

double LifetimeModel::writes_per_cell(double days) const noexcept {
  return writes_per_cell_per_day_ * days;
}

double LifetimeModel::failed_fraction(double days) const noexcept {
  const double w = writes_per_cell(days);
  if (w <= 0.0) return 0.0;
  return phi((std::log(w) - endurance_mu_) / endurance_sigma_);
}

double LifetimeModel::days_until_failed_fraction(double fraction) const noexcept {
  if (writes_per_cell_per_day_ <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double z = phi_inv(fraction);
  const double w = std::exp(endurance_mu_ + endurance_sigma_ * z);
  return w / writes_per_cell_per_day_;
}

double simulate_failed_fraction(double writes_per_cell,
                                const DeviceParams& device, std::size_t cells,
                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const double mu = std::log(device.endurance_writes);
  std::size_t failed = 0;
  for (std::size_t i = 0; i < cells; ++i) {
    const double endurance = std::exp(rng.normal(mu, device.endurance_sigma));
    failed += (writes_per_cell > endurance);
  }
  return cells ? static_cast<double>(failed) / static_cast<double>(cells) : 0.0;
}

}  // namespace robusthd::pim
