#include "robusthd/serve/scrubber.hpp"

#include <cassert>
#include <utility>
#include <vector>

#include "robusthd/util/bitops.hpp"

namespace robusthd::serve {

Scrubber::Scrubber(ModelSnapshot& snapshot, const ScrubberConfig& config)
    : snapshot_(snapshot), config_(config), ring_(config.ring_capacity) {
  // Bind the working copy, the engine and the version marker to one
  // consistent read of the snapshot (a reload between separate reads
  // would leave them disagreeing).
  auto [current, version] = snapshot.acquire_versioned();
  working_ = *current;  // private copy: the live model
  seen_version_ = version;
  engine_.emplace(working_, config.recovery);
}

Scrubber::~Scrubber() { stop(); }

void Scrubber::set_persist_hook(PersistHook hook) {
  assert(!started_ && "persist hook must be installed before start()");
  persist_hook_ = std::move(hook);
}

void Scrubber::restore_engine_state(model::RecoveryEngineState state) {
  Command cmd;
  cmd.kind = Command::Kind::kRestoreState;
  cmd.engine_state = std::move(state);
  enqueue_command(std::move(cmd));
}

void Scrubber::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread(&Scrubber::thread_main, this);
}

void Scrubber::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void Scrubber::install_trust_gate(std::unique_ptr<TrustGate> gate) {
  assert(!started_ && "trust gate must be installed before start()");
  gate_ = std::move(gate);
}

bool Scrubber::offer(const hv::BinVec& query) {
  TrustedQuery entry{query, false};
  if (!ring_.push(std::move(entry))) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  offered_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
  return true;
}

Scrubber::OfferOutcome Scrubber::offer_trusted(const hv::BinVec& query,
                                               int predicted, double margin) {
  TrustGate::Verdict verdict;
  if (gate_) verdict = gate_->check(query, predicted, margin);
  if (!verdict.accept) return OfferOutcome::kGateRejected;
  TrustedQuery entry{query, verdict.suspect};
  if (!ring_.push(std::move(entry))) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return OfferOutcome::kRingFull;
  }
  offered_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
  return OfferOutcome::kAccepted;
}

void Scrubber::enqueue_command(Command cmd) {
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    commands_.push_back(std::move(cmd));
  }
  scheduled_commands_.fetch_add(1, std::memory_order_release);
  wake_cv_.notify_one();
}

void Scrubber::inject_faults(double rate, fault::AttackMode mode,
                             std::uint64_t seed) {
  Command cmd;
  cmd.kind = Command::Kind::kAttackRate;
  cmd.rate = rate;
  cmd.mode = mode;
  cmd.seed = seed;
  enqueue_command(std::move(cmd));
}

void Scrubber::inject_flips(std::size_t flips, fault::AttackMode mode,
                            std::size_t target_plane, double cluster_fraction,
                            std::uint64_t seed) {
  Command cmd;
  cmd.kind = Command::Kind::kAttackFlips;
  cmd.mode = mode;
  cmd.seed = seed;
  cmd.flips = flips;
  cmd.target_plane = target_plane;
  cmd.cluster_fraction = cluster_fraction;
  enqueue_command(std::move(cmd));
}

void Scrubber::prioritize_chunk(std::size_t cls, std::size_t chunk, bool on) {
  Command cmd;
  cmd.kind = Command::Kind::kPriority;
  cmd.cls = cls;
  cmd.chunk = chunk;
  cmd.on = on;
  enqueue_command(std::move(cmd));
}

void Scrubber::drain() {
  const std::uint64_t target = offered_.load(std::memory_order_acquire);
  const std::uint64_t cmd_target =
      scheduled_commands_.load(std::memory_order_acquire);
  while (done_.load(std::memory_order_acquire) < target ||
         done_commands_.load(std::memory_order_acquire) < cmd_target) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

ScrubberCounters Scrubber::counters() const noexcept {
  ScrubberCounters c;
  c.offered = offered_.load(std::memory_order_relaxed);
  c.trust_drops = drops_.load(std::memory_order_relaxed);
  c.processed = done_.load(std::memory_order_relaxed);
  c.repairs = repairs_.load(std::memory_order_relaxed);
  c.substituted_bits = substituted_bits_.load(std::memory_order_relaxed);
  c.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  c.snapshots_published = published_.load(std::memory_order_relaxed);
  c.resyncs = resyncs_.load(std::memory_order_relaxed);
  c.priority_marks = priority_marks_.load(std::memory_order_relaxed);
  c.suspect_substitutions =
      suspect_substitutions_.load(std::memory_order_relaxed);
  if (gate_) {
    const auto gate = gate_->counters();
    c.poisoned_offers = gate.poisoned_offers;
    c.gate_rejects = gate.gate_rejects;
  }
  return c;
}

void Scrubber::resync_if_stale() {
  if (snapshot_.version() == seen_version_) return;
  // Someone outside this thread published — a hot reload. Adopt the new
  // model and restart the engine: consensus buffers, similarity stats and
  // budgets all described the old weights.
  auto [current, version] = snapshot_.acquire_versioned();
  working_ = *current;
  seen_version_ = version;
  engine_.emplace(working_, config_.recovery);
  dirty_bits_ = 0;  // pending old-model repairs are meaningless now
  pending_ranges_.clear();  // ...and so is their journal trail
  resyncs_.fetch_add(1, std::memory_order_relaxed);
}

void Scrubber::note_repair(const model::ObserveResult& result) {
  if (!persist_hook_ ||
      result.repaired_class == model::ObserveResult::kNoRepair) {
    return;
  }
  // Bit range -> word range, the same resolution sync_arena_range used
  // to republish the repair into the arena.
  const std::size_t word_begin = result.repaired_begin / 64;
  const std::size_t word_end = util::words_for_bits(result.repaired_end);
  pending_ranges_.push_back(
      RepairedRange{result.repaired_class, 0, word_begin,
                    word_end - word_begin});
}

void Scrubber::emit_publication(std::span<const RepairedRange> ranges) {
  if (!persist_hook_) return;
  persist_hook_(seen_version_, working_, ranges, engine_->export_state());
}

void Scrubber::run_commands() {
  std::vector<Command> pending;
  {
    const std::lock_guard<std::mutex> lock(command_mutex_);
    pending.swap(commands_);
  }
  for (const auto& cmd : pending) {
    if (cmd.kind == Command::Kind::kRestoreState) {
      // Crash-recovery rehydration: the engine's budgets and watchdog
      // resume where the last closed epoch left them. A state whose
      // shape disagrees with the live model (a reload landed between
      // recovery and this command) is dropped — it described the old
      // weights.
      resync_if_stale();
      if (cmd.engine_state.class_repairs.size() == working_.num_classes()) {
        engine_->restore_state(cmd.engine_state);
      }
      done_commands_.fetch_add(1, std::memory_order_release);
      continue;
    }
    if (cmd.kind == Command::Kind::kPriority) {
      // Engine mutation only — no model bits change, so nothing publishes.
      // Marks aimed at a stale geometry (a reload swapped in a smaller
      // model before the command ran) are dropped; the sentinel re-asserts
      // its priorities every round anyway.
      resync_if_stale();
      if (cmd.cls < working_.num_classes() &&
          cmd.chunk < config_.recovery.chunks) {
        engine_->set_chunk_priority(cmd.cls, cmd.chunk, cmd.on);
        priority_marks_.fetch_add(1, std::memory_order_relaxed);
      }
      done_commands_.fetch_add(1, std::memory_order_release);
      continue;
    }
    for (;;) {
      resync_if_stale();
      util::Xoshiro256 rng(cmd.seed);
      auto regions = working_.memory_regions();
      std::size_t flipped = 0;
      if (cmd.kind == Command::Kind::kAttackRate) {
        flipped = fault::BitFlipInjector::inject(regions, cmd.rate, cmd.mode,
                                                 rng)
                      .flipped;
      } else {
        flipped = fault::BitFlipInjector::flip_budget(
            regions, cmd.flips, cmd.mode, cmd.target_plane,
            cmd.cluster_fraction, rng);
      }
      // The injector wrote through the BinVec regions, leaving the arena
      // mirror stale; rebuild it so the engine's own scoring and the
      // published copy both stay on the arena fast path.
      working_.sync_arena();
      // Publish immediately: serving workers must see the damage the same
      // way deployed hardware would — recovery races real traffic. The
      // publish is conditional: losing to a concurrent reload discards
      // this attempt (the resync above re-damages the *new* model).
      if (snapshot_.try_publish(working_, seen_version_)) {
        ++seen_version_;
        faults_injected_.fetch_add(flipped, std::memory_order_relaxed);
        published_.fetch_add(1, std::memory_order_relaxed);
        dirty_bits_ = 0;
        // Journal the damage as full-plane deltas: persistence is a
        // faithful record of the published model, and injected faults
        // are published state — a recovered server resumes *repairing*
        // them, exactly as the live one would have. Any repair ranges
        // pending from before the attack are subsumed by the full
        // planes.
        if (persist_hook_) {
          pending_ranges_.clear();
          const auto& model = std::as_const(working_);
          const std::size_t wpp = util::words_for_bits(model.dimension());
          for (std::size_t c = 0; c < model.num_classes(); ++c) {
            const auto planes = model.class_vector(c).planes.size();
            for (std::size_t p = 0; p < planes; ++p) {
              pending_ranges_.push_back(RepairedRange{c, p, 0, wpp});
            }
          }
          emit_publication(pending_ranges_);
          pending_ranges_.clear();
        }
        break;
      }
    }
    done_commands_.fetch_add(1, std::memory_order_release);
  }
}

void Scrubber::publish_if_dirty() {
  if (dirty_bits_ == 0) return;
  if (snapshot_.try_publish(working_, seen_version_)) {
    ++seen_version_;
    published_.fetch_add(1, std::memory_order_relaxed);
    // Readers can now see these repairs — journal them under the version
    // that carries them.
    emit_publication(pending_ranges_);
  }
  // On failure a reload won the race; the repairs applied to the old
  // weights are dropped and resync_if_stale() adopts the new model on
  // the next loop iteration — and their journal trail dies with them.
  pending_ranges_.clear();
  dirty_bits_ = 0;
}

void Scrubber::thread_main() {
  TrustedQuery entry;
  for (;;) {
    resync_if_stale();
    run_commands();

    bool worked = false;
    while (ring_.pop(entry)) {
      worked = true;
      // The full paper pipeline per trusted query: predict, re-gate the
      // confidence, chunk-level fault detection, probabilistic
      // substitution. The worker's trust decision was only a pre-filter;
      // the engine's own gates remain authoritative.
      const auto result = engine_->observe(entry.query);
      if (result.substituted_bits > 0) {
        repairs_.fetch_add(1, std::memory_order_relaxed);
        substituted_bits_.fetch_add(result.substituted_bits,
                                    std::memory_order_relaxed);
        dirty_bits_ += result.substituted_bits;
        if (entry.suspect) {
          // A gate-flagged query made it past the engine's own gates and
          // rewrote bits — in shadow mode, this is the measured damage of
          // a poisoning campaign.
          suspect_substitutions_.fetch_add(result.substituted_bits,
                                           std::memory_order_relaxed);
        }
      }
      note_repair(result);
      done_.fetch_add(1, std::memory_order_release);
    }

    // Repairs are published at ring-empty boundaries: batches of repairs
    // coalesce into one snapshot copy instead of one per substitution.
    // (This is also where a hot reload is adopted — resync_if_stale at
    // the top of the next iteration.)
    publish_if_dirty();

    if (stop_.load(std::memory_order_acquire)) {
      // Final drain: accept no new wakeups, but consume what is already
      // in the ring so stop() == "process everything offered, then halt".
      resync_if_stale();
      run_commands();
      while (ring_.pop(entry)) {
        const auto result = engine_->observe(entry.query);
        if (result.substituted_bits > 0) {
          repairs_.fetch_add(1, std::memory_order_relaxed);
          substituted_bits_.fetch_add(result.substituted_bits,
                                      std::memory_order_relaxed);
          dirty_bits_ += result.substituted_bits;
          if (entry.suspect) {
            suspect_substitutions_.fetch_add(result.substituted_bits,
                                             std::memory_order_relaxed);
          }
        }
        note_repair(result);
        done_.fetch_add(1, std::memory_order_release);
      }
      publish_if_dirty();
      return;
    }

    if (!worked) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      // Timed wait: wakeups are advisory (producers notify without the
      // lock), the timeout bounds any missed-notify window.
      wake_cv_.wait_for(lock, config_.idle_wait);
    }
  }
}

}  // namespace robusthd::serve
