#include "robusthd/serve/chaos.hpp"

#include <utility>

#include "robusthd/util/bitops.hpp"

namespace robusthd::serve {

ChaosAgent::ChaosAgent(ModelSnapshot& snapshot, Scrubber* scrubber,
                       const ChaosConfig& config, TargetProvider target)
    : snapshot_(snapshot),
      scrubber_(scrubber),
      config_(config),
      target_(std::move(target)),
      rng_(config.seed) {}

ChaosAgent::~ChaosAgent() { stop(); }

void ChaosAgent::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread(&ChaosAgent::thread_main, this);
}

void ChaosAgent::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void ChaosAgent::thread_main() {
  while (!stop_.load(std::memory_order_acquire)) {
    tick();
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait_for(lock, config_.period, [this] {
      return stop_.load(std::memory_order_acquire);
    });
  }
}

void ChaosAgent::tick() {
  const std::lock_guard<std::mutex> lock(tick_mutex_);
  if (ticks_.load(std::memory_order_relaxed) >= config_.steps_to_full) {
    return;  // campaign budget spent
  }

  if (total_bits_ == 0) {
    // The attack surface of the live model: every stored plane word,
    // padding included — the same surface memory_regions() exposes.
    const auto model = snapshot_.acquire();
    const std::size_t words = util::words_for_bits(model->dimension());
    std::size_t planes = 0;
    for (std::size_t c = 0; c < model->num_classes(); ++c) {
      planes += model->class_vector(c).planes.size();
    }
    total_bits_ = planes * words * 64;
    if (total_bits_ == 0) return;
  }

  // StreamAttacker-style budget: rate * total_bits flips spread evenly
  // over steps_to_full ticks, fractional remainders carried forward so
  // the cumulative schedule is exact.
  const double per_tick = config_.rate *
                          static_cast<double>(total_bits_) /
                          static_cast<double>(config_.steps_to_full);
  carry_bits_ += per_tick;
  auto flips = static_cast<std::size_t>(carry_bits_);
  carry_bits_ -= static_cast<double>(flips);
  ticks_.fetch_add(1, std::memory_order_release);
  if (flips == 0) return;

  // Targeted campaigns pick the plane of the currently most confident
  // class (per the sentinel); everything else spreads over the model.
  std::size_t target_plane = static_cast<std::size_t>(-1);
  if (config_.mode == fault::AttackMode::kTargeted && target_) {
    const std::size_t cls = target_();
    if (cls != static_cast<std::size_t>(-1)) {
      // Region order in memory_regions() is class-major, plane-minor;
      // aim at the class's plane 0 (binary models have exactly one).
      const auto model = snapshot_.acquire();
      if (cls < model->num_classes()) {
        std::size_t region = 0;
        for (std::size_t c = 0; c < cls; ++c) {
          region += model->class_vector(c).planes.size();
        }
        target_plane = region;
      }
    }
  }

  flips_scheduled_.fetch_add(flips, std::memory_order_relaxed);
  const std::uint64_t seed = rng_.next();

  if (scrubber_ != nullptr) {
    // Route through the scrub thread: mutation stays single-writer and
    // the recovery engine's consensus state survives the tick.
    scrubber_->inject_flips(flips, config_.mode, target_plane,
                            config_.cluster_fraction, seed);
    return;
  }

  // No scrubber: damage a private copy and publish conditionally, exactly
  // like a repair publication — a concurrent reload wins the race and the
  // tick re-damages the *new* model.
  for (;;) {
    auto [current, version] = snapshot_.acquire_versioned();
    model::HdcModel damaged = *current;
    util::Xoshiro256 rng(seed);
    auto regions = damaged.memory_regions();
    fault::BitFlipInjector::flip_budget(regions, flips, config_.mode,
                                        target_plane,
                                        config_.cluster_fraction, rng);
    if (snapshot_.try_publish(std::move(damaged), version)) {
      direct_publishes_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    publish_conflicts_.fetch_add(1, std::memory_order_relaxed);
  }
}

ChaosCounters ChaosAgent::counters() const noexcept {
  ChaosCounters c;
  c.ticks = ticks_.load(std::memory_order_relaxed);
  c.flips_scheduled = flips_scheduled_.load(std::memory_order_relaxed);
  c.direct_publishes = direct_publishes_.load(std::memory_order_relaxed);
  c.publish_conflicts = publish_conflicts_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace robusthd::serve
