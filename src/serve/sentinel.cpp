#include "robusthd/serve/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "robusthd/util/bitops.hpp"

namespace robusthd::serve {

QuarantineMask build_quarantine_mask(
    std::size_t dimension, const std::vector<bool>& excluded_chunks) {
  QuarantineMask mask;
  mask.dimension = dimension;
  mask.chunks = excluded_chunks;
  const std::size_t words = util::words_for_bits(dimension);
  mask.words.assign(words, ~std::uint64_t{0});
  // Clear the tail first so kept_dims counts real dimensions only.
  const std::size_t tail_bits = dimension % 64;
  if (words > 0 && tail_bits != 0) {
    mask.words[words - 1] = (std::uint64_t{1} << tail_bits) - 1;
  }
  const std::size_t m = excluded_chunks.size();
  std::size_t excluded_dims = 0;
  for (std::size_t c = 0; c < m; ++c) {
    if (!excluded_chunks[c]) continue;
    ++mask.excluded_chunks;
    // Same partition as RecoveryEngine::chunk_range.
    const std::size_t begin = c * dimension / m;
    const std::size_t end = (c + 1) * dimension / m;
    excluded_dims += end - begin;
    for (std::size_t i = begin; i < end; ++i) {
      mask.words[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }
  }
  mask.kept_dims = dimension - excluded_dims;
  return mask;
}

Sentinel::Sentinel(ModelSnapshot& snapshot, std::vector<hv::BinVec> canaries,
                   std::vector<int> canary_labels,
                   const SentinelConfig& config, SentinelHooks hooks)
    : snapshot_(snapshot),
      config_(config),
      hooks_(std::move(hooks)),
      canaries_(std::move(canaries)),
      labels_(std::move(canary_labels)) {
  if (canaries_.empty() || canaries_.size() != labels_.size()) {
    throw std::invalid_argument(
        "Sentinel requires a non-empty canary set with one label per canary");
  }
  if (config_.chunks == 0) {
    throw std::invalid_argument("Sentinel chunk count must be >= 1");
  }
  canary_ptrs_.resize(canaries_.size());
  for (std::size_t i = 0; i < canaries_.size(); ++i) {
    canary_ptrs_[i] = &canaries_[i];
  }
  const std::lock_guard<std::mutex> lock(state_mutex_);
  capture_reference_locked();
}

Sentinel::~Sentinel() { stop(); }

void Sentinel::start() {
  if (started_ || config_.period.count() == 0) return;
  started_ = true;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread(&Sentinel::thread_main, this);
}

void Sentinel::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void Sentinel::thread_main() {
  while (!stop_.load(std::memory_order_acquire)) {
    run_round();
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait_for(lock, config_.period, [this] {
      return stop_.load(std::memory_order_acquire);
    });
  }
}

void Sentinel::capture_reference_locked() {
  reference_ = *snapshot_.acquire();
  const std::size_t cells = reference_.num_classes() * config_.chunks;
  suspect_streak_.assign(cells, 0);
  healthy_streak_.assign(cells, 0);
  last_drift_.assign(cells, 0.0);
  last_class_accuracy_.assign(reference_.num_classes(), 0.0);
  below_floor_streak_ = 0;
  const bool had_quarantine =
      std::find(quarantined_.begin(), quarantined_.end(), true) !=
      quarantined_.end();
  quarantined_.assign(config_.chunks, false);
  mask_ = QuarantineMask{};
  quarantined_count_.store(0, std::memory_order_release);
  if (had_quarantine && hooks_.publish_quarantine) {
    hooks_.publish_quarantine(quarantined_);
  }
  rebases_.fetch_add(1, std::memory_order_relaxed);
}

double Sentinel::score_canaries_locked(const model::HdcModel& model,
                                       const QuarantineMask* mask,
                                       std::vector<double>* class_accuracy,
                                       std::vector<double>* class_win_sim) {
  if (mask != nullptr && mask->kept_dims > 0 &&
      mask->excluded_chunks > 0) {
    model.scores_batch_masked(canary_ptrs_, mask->words, mask->kept_dims,
                              score_ws_);
  } else {
    model.scores_batch(canary_ptrs_, score_ws_);
  }
  const std::size_t k = model.num_classes();
  std::vector<std::size_t> per_class_total(k, 0);
  std::vector<std::size_t> per_class_correct(k, 0);
  std::vector<double> win_sim_sum(k, 0.0);
  std::vector<std::size_t> win_sim_count(k, 0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < canaries_.size(); ++i) {
    const double* row = score_ws_.scores.data() + i * k;
    const auto predicted =
        static_cast<std::size_t>(std::max_element(row, row + k) - row);
    const auto label = static_cast<std::size_t>(labels_[i]);
    if (label < k) {
      ++per_class_total[label];
      if (predicted == label) {
        ++per_class_correct[label];
        ++correct;
      }
    }
    win_sim_sum[predicted] += row[predicted];
    ++win_sim_count[predicted];
  }
  if (class_accuracy != nullptr) {
    class_accuracy->assign(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
      if (per_class_total[c] > 0) {
        (*class_accuracy)[c] = static_cast<double>(per_class_correct[c]) /
                               static_cast<double>(per_class_total[c]);
      }
    }
  }
  if (class_win_sim != nullptr) {
    class_win_sim->assign(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
      if (win_sim_count[c] > 0) {
        (*class_win_sim)[c] =
            win_sim_sum[c] / static_cast<double>(win_sim_count[c]);
      }
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(canaries_.size());
}

void Sentinel::run_round() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  run_round_locked();
}

void Sentinel::run_round_locked() {
  if (rebase_requested_.exchange(false, std::memory_order_acq_rel)) {
    capture_reference_locked();
  }
  const auto model = snapshot_.acquire();
  if (model->dimension() != reference_.dimension() ||
      model->num_classes() != reference_.num_classes()) {
    // A reload changed the geometry before the rebase request landed:
    // adopt it now, measure next round.
    capture_reference_locked();
    return;
  }

  // ---- Canary replay ----------------------------------------------------
  std::vector<double> class_win_sim;
  last_raw_accuracy_ = score_canaries_locked(*model, nullptr,
                                             &last_class_accuracy_,
                                             &class_win_sim);
  const bool masked = std::find(quarantined_.begin(), quarantined_.end(),
                                true) != quarantined_.end();
  last_effective_accuracy_ =
      masked ? score_canaries_locked(*model, &mask_, nullptr, nullptr)
             : last_raw_accuracy_;
  if (!class_win_sim.empty()) {
    most_confident_.store(
        static_cast<std::size_t>(
            std::max_element(class_win_sim.begin(), class_win_sim.end()) -
            class_win_sim.begin()),
        std::memory_order_release);
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);

  // ---- Per-(class, chunk) drift vs the blessed reference ----------------
  const std::size_t k = reference_.num_classes();
  const std::size_t m = config_.chunks;
  const std::size_t dim = reference_.dimension();
  for (std::size_t cls = 0; cls < k; ++cls) {
    const auto& ref_planes = reference_.class_vector(cls).planes;
    const auto& live_planes = model->class_vector(cls).planes;
    const std::size_t planes = std::min(ref_planes.size(),
                                        live_planes.size());
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t begin = c * dim / m;
      const std::size_t end = (c + 1) * dim / m;
      const std::size_t width = end - begin;
      std::size_t drifted = 0;
      for (std::size_t p = 0; p < planes; ++p) {
        // plane_words streams the arena rows of both models when their
        // mirrors are live — same contiguous storage the scoring kernels
        // read, identical counts either way.
        drifted += hv::hamming_range(reference_.plane_words(cls, p),
                                     model->plane_words(cls, p), begin, end);
      }
      last_drift_[cls * m + c] =
          width == 0 || planes == 0
              ? 0.0
              : static_cast<double>(drifted) /
                    (static_cast<double>(width) *
                     static_cast<double>(planes));
    }
  }

  // ---- Hysteresis + rung (a): repair priority ---------------------------
  for (std::size_t cls = 0; cls < k; ++cls) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t cell = cls * m + c;
      const bool suspect = last_drift_[cell] > config_.chunk_drift_threshold;
      if (suspect) {
        ++suspect_streak_[cell];
        healthy_streak_[cell] = 0;
        // Re-asserted every round on purpose: the engine loses priorities
        // on a resync, and a repeated mark is idempotent.
        if (hooks_.prioritize) hooks_.prioritize(cls, c, true);
      } else {
        if (suspect_streak_[cell] > 0 && hooks_.prioritize) {
          hooks_.prioritize(cls, c, false);
        }
        suspect_streak_[cell] = 0;
        ++healthy_streak_[cell];
      }
    }
  }

  // ---- Rung (b): quarantine with cap and churn-free release -------------
  std::vector<bool> desired = quarantined_;
  for (std::size_t c = 0; c < m; ++c) {
    bool newly_bad = false;
    bool all_clean = true;
    for (std::size_t cls = 0; cls < k; ++cls) {
      if (suspect_streak_[cls * m + c] >= config_.bad_streak) {
        newly_bad = true;
      }
      if (healthy_streak_[cls * m + c] < config_.good_streak) {
        all_clean = false;
      }
    }
    if (newly_bad) desired[c] = true;
    if (desired[c] && all_clean) desired[c] = false;  // repairs won
  }
  // Cap: keep the worst chunks (by max drift over classes) and drop the
  // rest — past the cap the masked model is too blind to be "sane" and
  // the breaker is the right rung.
  const auto cap = static_cast<std::size_t>(
      config_.max_quarantine_fraction * static_cast<double>(m));
  std::vector<std::size_t> chosen;
  for (std::size_t c = 0; c < m; ++c) {
    if (desired[c]) chosen.push_back(c);
  }
  if (chosen.size() > cap) {
    auto max_drift = [&](std::size_t c) {
      double worst = 0.0;
      for (std::size_t cls = 0; cls < k; ++cls) {
        worst = std::max(worst, last_drift_[cls * m + c]);
      }
      return worst;
    };
    std::sort(chosen.begin(), chosen.end(),
              [&](std::size_t a, std::size_t b) {
                return max_drift(a) > max_drift(b);
              });
    for (std::size_t i = cap; i < chosen.size(); ++i) {
      desired[chosen[i]] = false;
    }
  }
  if (desired != quarantined_) {
    for (std::size_t c = 0; c < m; ++c) {
      if (desired[c] && !quarantined_[c]) {
        quarantine_events_.fetch_add(1, std::memory_order_relaxed);
      } else if (!desired[c] && quarantined_[c]) {
        release_events_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    quarantined_ = desired;
    mask_ = build_quarantine_mask(dim, quarantined_);
    quarantined_count_.store(mask_.excluded_chunks,
                             std::memory_order_release);
    if (hooks_.publish_quarantine) hooks_.publish_quarantine(quarantined_);
    // The published mask changes what clients see this round already.
    const bool now_masked = mask_.excluded_chunks > 0;
    last_effective_accuracy_ =
        now_masked ? score_canaries_locked(*model, &mask_, nullptr, nullptr)
                   : last_raw_accuracy_;
  }

  // ---- Rung (c): circuit breaker ----------------------------------------
  if (last_effective_accuracy_ < config_.breaker_floor) {
    ++below_floor_streak_;
  } else {
    below_floor_streak_ = 0;
    if (breaker_open_state_) {
      // Health recovered (a reload from a previous round, or the scrubber
      // healed the planes): close and resume serving.
      breaker_open_state_ = false;
      breaker_open_flag_.store(false, std::memory_order_release);
      if (hooks_.set_breaker) hooks_.set_breaker(false);
    }
  }
  if (!breaker_open_state_ &&
      below_floor_streak_ >= config_.breaker_window) {
    breaker_open_state_ = true;
    breaker_open_flag_.store(true, std::memory_order_release);
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.set_breaker) hooks_.set_breaker(true);

    // Bounded retry + exponential backoff reload of the last-good model.
    auto backoff = config_.breaker_backoff;
    for (std::size_t attempt = 0;
         attempt < config_.breaker_reload_retries && hooks_.attempt_reload;
         ++attempt) {
      reload_retries_.fetch_add(1, std::memory_order_relaxed);
      if (hooks_.attempt_reload()) {
        // The reload published a blessed model; adopt it as the new
        // reference and verify the canaries actually recovered.
        rebase_requested_.store(false, std::memory_order_release);
        capture_reference_locked();
        const auto fresh = snapshot_.acquire();
        if (fresh->dimension() == reference_.dimension() &&
            fresh->num_classes() == reference_.num_classes()) {
          last_raw_accuracy_ = score_canaries_locked(
              *fresh, nullptr, &last_class_accuracy_, nullptr);
          last_effective_accuracy_ = last_raw_accuracy_;
          if (last_raw_accuracy_ >= config_.breaker_floor) {
            breaker_open_state_ = false;
            breaker_open_flag_.store(false, std::memory_order_release);
            below_floor_streak_ = 0;
            if (hooks_.set_breaker) hooks_.set_breaker(false);
            break;
          }
        }
      }
      if (attempt + 1 < config_.breaker_reload_retries) {
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
      }
    }
    // If every retry failed the breaker stays open; later rounds keep
    // replaying canaries and close it the moment accuracy recovers.
  }
}

HealthReport Sentinel::report() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  HealthReport r;
  r.rounds = rounds_.load(std::memory_order_relaxed);
  r.raw_accuracy = last_raw_accuracy_;
  r.effective_accuracy = last_effective_accuracy_;
  r.class_accuracy = last_class_accuracy_;
  r.chunk_drift = last_drift_;
  const std::size_t k = reference_.num_classes();
  const std::size_t m = config_.chunks;
  r.verdicts.assign(k * m, ChunkHealth::kHealthy);
  for (std::size_t cls = 0; cls < k; ++cls) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t cell = cls * m + c;
      if (c < quarantined_.size() && quarantined_[c]) {
        r.verdicts[cell] = ChunkHealth::kQuarantined;
      } else if (suspect_streak_[cell] > 0) {
        r.verdicts[cell] = ChunkHealth::kSuspect;
      }
    }
  }
  r.quarantined_chunks = quarantined_count_.load(std::memory_order_relaxed);
  r.breaker_open = breaker_open_state_;
  return r;
}

SentinelCounters Sentinel::counters() const noexcept {
  SentinelCounters c;
  c.rounds = rounds_.load(std::memory_order_relaxed);
  c.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  c.reload_retries = reload_retries_.load(std::memory_order_relaxed);
  c.quarantine_events = quarantine_events_.load(std::memory_order_relaxed);
  c.release_events = release_events_.load(std::memory_order_relaxed);
  c.rebases = rebases_.load(std::memory_order_relaxed);
  return c;
}

double Sentinel::latest_accuracy() const noexcept {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return last_effective_accuracy_;
}

}  // namespace robusthd::serve
