#include "robusthd/serve/trust_gate.hpp"

#include <algorithm>
#include <cmath>

namespace robusthd::serve {

TrustGate::TrustGate(const TrustGateConfig& config, std::size_t num_classes,
                     std::size_t dimension,
                     std::span<const hv::BinVec> canaries,
                     std::span<const int> canary_labels)
    : config_(config),
      dim_(dimension),
      centroids_(num_classes),
      class_counts_(num_classes) {
  if (config_.margin_sigma > 0.0 && dimension > 0) {
    margin_floor_ = config_.margin_sigma * std::sqrt(2.0) * 0.5 /
                    std::sqrt(static_cast<double>(dimension));
  }

  // Bit-majority centroid per class over its canaries. The centroid is a
  // denoised exemplar of what the class's queries look like — for HDC
  // encodings the majority of a handful of members already sits close to
  // the class prototype, chunk by chunk.
  const std::size_t n = std::min(canaries.size(), canary_labels.size());
  std::vector<std::uint32_t> members(num_classes, 0);
  std::vector<std::vector<std::uint32_t>> ones(num_classes);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = canary_labels[i];
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) continue;
    if (canaries[i].dimension() != dimension) continue;
    auto& tally = ones[static_cast<std::size_t>(label)];
    if (tally.empty()) tally.assign(dimension, 0);
    for (std::size_t b = 0; b < dimension; ++b) {
      tally[b] += canaries[i].get(b) ? 1u : 0u;
    }
    ++members[static_cast<std::size_t>(label)];
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (members[c] == 0) continue;  // centroid stays empty -> check skipped
    hv::BinVec centroid(dimension);
    for (std::size_t b = 0; b < dimension; ++b) {
      if (2 * ones[c][b] > members[c]) centroid.set(b, true);
    }
    centroids_[c] = std::move(centroid);
  }
}

bool TrustGate::rate_admit(std::size_t cls) noexcept {
  const std::size_t window = config_.rate_window;
  if (window == 0 || class_counts_.empty()) return true;
  const auto total =
      window_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (total >= window) {
    auto expected = total;
    if (window_total_.compare_exchange_strong(expected, 0,
                                              std::memory_order_relaxed)) {
      for (auto& count : class_counts_) {
        count.store(0, std::memory_order_relaxed);
      }
    }
  }
  const auto fair = static_cast<std::size_t>(
      config_.fair_share_factor * static_cast<double>(window) /
      static_cast<double>(class_counts_.size()));
  const std::size_t cap = std::max(config_.min_class_share, fair);
  return class_counts_[cls].fetch_add(1, std::memory_order_relaxed) < cap;
}

bool TrustGate::canary_agrees(const hv::BinVec& query,
                              std::size_t cls) const noexcept {
  if (config_.alien_sigma <= 0.0 || config_.chunks == 0) return true;
  const auto& centroid = centroids_[cls];
  if (centroid.empty()) return true;
  const std::size_t m = std::min(config_.chunks, dim_);

  // First pass: per-chunk agreement, plus the query-wide sum for the
  // relative criterion. hamming_range over a chunk is a handful of word
  // XOR/popcounts, so two passes beat a heap allocation on the hot path.
  double sum = 0.0;
  const auto chunk_agreement = [&](std::size_t c, std::size_t& width) {
    const std::size_t begin = c * dim_ / m;
    const std::size_t end = (c + 1) * dim_ / m;
    width = end - begin;
    if (width == 0) return 1.0;
    const auto distance = hv::hamming_range(query, centroid, begin, end);
    return 1.0 - static_cast<double>(distance) / static_cast<double>(width);
  };
  std::size_t counted = 0;
  for (std::size_t c = 0; c < m; ++c) {
    std::size_t width = 0;
    const double agreement = chunk_agreement(c, width);
    if (width == 0) continue;
    sum += agreement;
    ++counted;
  }
  if (counted == 0) return true;

  std::size_t aliens = 0;
  for (std::size_t c = 0; c < m; ++c) {
    std::size_t width = 0;
    const double agreement = chunk_agreement(c, width);
    if (width == 0) continue;
    const double absolute_floor =
        0.5 + config_.alien_sigma * 0.5 / std::sqrt(static_cast<double>(width));
    bool alien = agreement < absolute_floor;
    if (!alien && config_.relative_gap > 0.0 && counted > 1) {
      // Mean of the *other* chunks, so the deficit under test does not
      // drag its own baseline down.
      const double others = (sum - agreement) / static_cast<double>(counted - 1);
      alien = agreement < others - config_.relative_gap;
    }
    if (alien && ++aliens >= config_.max_alien_chunks) {
      return false;
    }
  }
  return true;
}

TrustGate::Verdict TrustGate::check(const hv::BinVec& query, int predicted,
                                    double margin) noexcept {
  checked_.fetch_add(1, std::memory_order_relaxed);
  Verdict verdict;
  if (predicted < 0 ||
      static_cast<std::size_t>(predicted) >= centroids_.size()) {
    return verdict;  // malformed prediction: nothing to check against
  }
  const auto cls = static_cast<std::size_t>(predicted);

  bool ok = true;
  if (margin < margin_floor_) {
    margin_rejects_.fetch_add(1, std::memory_order_relaxed);
    ok = false;
  }
  if (!canary_agrees(query, cls)) {
    verdict.suspect = true;
    poisoned_offers_.fetch_add(1, std::memory_order_relaxed);
    if (config_.enforce) ok = false;
  }
  // Fair-share admission runs last and only for offers that would still
  // enter the ring — an enforced margin/canary reject must not consume
  // the class's window budget.
  if (ok || !config_.enforce) {
    if (!rate_admit(cls)) {
      rate_rejects_.fetch_add(1, std::memory_order_relaxed);
      ok = false;
    }
  }

  verdict.accept = config_.enforce ? ok : true;
  if (!verdict.accept) {
    gate_rejects_.fetch_add(1, std::memory_order_relaxed);
  }
  return verdict;
}

TrustGateCounters TrustGate::counters() const noexcept {
  TrustGateCounters counters;
  counters.checked = checked_.load(std::memory_order_relaxed);
  counters.margin_rejects = margin_rejects_.load(std::memory_order_relaxed);
  counters.rate_rejects = rate_rejects_.load(std::memory_order_relaxed);
  counters.poisoned_offers = poisoned_offers_.load(std::memory_order_relaxed);
  counters.gate_rejects = gate_rejects_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace robusthd::serve
