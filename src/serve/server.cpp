#include "robusthd/serve/server.hpp"

#include <cassert>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "robusthd/core/serialize.hpp"
#include "robusthd/model/confidence.hpp"
#include "robusthd/util/parallel.hpp"

namespace robusthd::serve {

namespace {

ServerConfig normalized(ServerConfig config) {
  if (config.worker_threads == 0) {
    config.worker_threads = util::hardware_threads();
  }
  if (config.queue_capacity == 0) config.queue_capacity = 1;
  if (config.max_batch == 0) config.max_batch = 1;
  return config;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

Server::Server(model::HdcModel model, const ServerConfig& config)
    : config_(normalized(config)),
      snapshot_(std::move(model)),
      queue_(config_.queue_capacity) {
  if (config_.enable_recovery) {
    if (snapshot_.acquire()->precision_bits() != 1) {
      throw std::invalid_argument(
          "serve::Server recovery requires a binary (1-bit) model; "
          "set ServerConfig::enable_recovery = false for multi-bit models");
    }
    scrubber_ = std::make_unique<Scrubber>(snapshot_, config_.scrubber);
    scrubber_->start();
  }
  workers_.start(config_.worker_threads,
                 [this](std::size_t w) { worker_main(w); });
}

Server::~Server() { shutdown(); }

std::future<Response> Server::submit(hv::BinVec query) {
  Request request{std::move(query), {}, false, std::promise<Response>(),
                  std::chrono::steady_clock::now()};
  auto future = request.promise.get_future();
  // push() only consumes the request on success; on failure the promise
  // is still ours to fail explicitly.
  if (!queue_.push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server is shut down")));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::optional<std::future<Response>> Server::try_submit(hv::BinVec query) {
  Request request{std::move(query), {}, false, std::promise<Response>(),
                  std::chrono::steady_clock::now()};
  auto future = request.promise.get_future();
  if (!queue_.try_push(request)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<Response> Server::submit_features(std::vector<float> features) {
  if (!config_.encoder) {
    throw std::logic_error(
        "serve::Server::submit_features requires ServerConfig::encoder");
  }
  Request request{hv::BinVec(), std::move(features), true,
                  std::promise<Response>(),
                  std::chrono::steady_clock::now()};
  auto future = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server is shut down")));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::vector<Response> Server::predict_all(
    std::span<const hv::BinVec> queries) {
  std::vector<std::future<Response>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(submit(q));
  std::vector<Response> responses;
  responses.reserve(queries.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

void Server::inject_faults(double rate, fault::AttackMode mode,
                           std::uint64_t seed) {
  if (scrubber_) {
    scrubber_->inject_faults(rate, mode, seed);
    return;
  }
  // No recovery thread to own the mutation: apply copy-on-write under a
  // lock (publication itself stays atomic for the readers).
  const std::lock_guard<std::mutex> lock(direct_fault_mutex_);
  model::HdcModel damaged = *snapshot_.acquire();
  util::Xoshiro256 rng(seed);
  auto regions = damaged.memory_regions();
  const auto report = fault::BitFlipInjector::inject(regions, rate, mode, rng);
  direct_faults_.fetch_add(report.flipped, std::memory_order_relaxed);
  snapshot_.publish(std::move(damaged));
}

std::uint64_t Server::reload(model::HdcModel model) {
  const auto current = snapshot_.acquire();
  if (model.dimension() != current->dimension()) {
    throw std::invalid_argument(
        "serve::Server::reload: model dimension mismatch (queued queries "
        "are encoded at the serving dimension)");
  }
  if (config_.enable_recovery && model.precision_bits() != 1) {
    throw std::invalid_argument(
        "serve::Server::reload: recovery requires a binary (1-bit) model");
  }
  // Publish through the same epoch path repairs use: in-flight batches
  // hold their snapshot pointer and finish on the old model; every batch
  // formed after this line scores the new one. The scrubber notices the
  // foreign version at its next ring-empty boundary and resyncs.
  const std::lock_guard<std::mutex> lock(direct_fault_mutex_);
  const auto version = snapshot_.publish(std::move(model));
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return version;
}

std::uint64_t Server::reload(const core::HdcClassifier& classifier) {
  return reload(classifier.model());
}

std::uint64_t Server::load_model(const std::string& path) {
  // Validation happens entirely before publication: a blob that fails the
  // RHD2 integrity checks throws out of core::load_model and the serving
  // model is never touched.
  try {
    return reload(core::load_model(path).model());
  } catch (const std::runtime_error&) {
    integrity_failures_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

void Server::drain() {
  while (completed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  if (scrubber_) scrubber_->drain();
}

void Server::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();     // wakes workers; pops drain accepted requests
  workers_.join();    // every accepted promise is now fulfilled
  if (scrubber_) scrubber_->stop();  // final ring drain, then halt
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.batches = batch_sizes_.batches();
  s.mean_batch = batch_sizes_.mean();
  s.queue_wait = queue_wait_.summarize();
  s.service = service_.summarize();
  s.end_to_end = end_to_end_.summarize();
  s.trusted = trusted_.load(std::memory_order_relaxed);
  s.scrub_dropped = scrub_dropped_.load(std::memory_order_relaxed);
  s.faults_injected = direct_faults_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.integrity_failures = integrity_failures_.load(std::memory_order_relaxed);
  if (scrubber_) {
    const auto c = scrubber_->counters();
    s.scrub_offered = c.offered;
    s.trust_drops = c.trust_drops;
    s.scrub_processed = c.processed;
    s.scrub_repairs = c.repairs;
    s.scrub_substituted_bits = c.substituted_bits;
    s.faults_injected += c.faults_injected;
    s.snapshots_published = c.snapshots_published;
    s.scrub_resyncs = c.resyncs;
  }
  s.model_version = snapshot_.version();
  return s;
}

void Server::worker_main(std::size_t) {
  Batcher<Request> batcher(queue_, config_.max_batch, config_.batch_linger);
  const model::ConfidenceConfig confidence =
      config_.scrubber.recovery.confidence;
  const double trust_threshold =
      config_.scrubber.recovery.confidence_threshold;

  // Per-worker cached snapshot: refreshed only when the published version
  // moves, so steady-state batches take no lock at all.
  std::shared_ptr<const model::HdcModel> model;
  std::uint64_t version = 0;

  // Per-worker reusable workspaces. Encoding and batch scoring run through
  // these, so after the first full-sized batch the hot path performs no
  // heap allocations per request (asserted below in debug builds).
  hv::EncodeWorkspace encode_ws;
  model::ScoreWorkspace score_ws;
  std::vector<const hv::BinVec*> query_ptrs;
#ifndef NDEBUG
  bool encode_warmed = false;
  std::pair<std::size_t, std::size_t> encode_sig{};
#endif

  std::vector<Request> batch;
  while (batcher.next_batch(batch)) {
    // One snapshot per batch: every query in the batch is scored against
    // the same immutable model, however the scrubber races us.
    snapshot_.refresh(model, version);
    batch_sizes_.record(batch.size());
    const auto dequeued = std::chrono::steady_clock::now();

    // Server-side encoding for feature-mode requests, through the worker's
    // persistent workspace (the encoder's bit-sliced counter is reused).
    [[maybe_unused]] bool encoded_any = false;
    for (auto& request : batch) {
      if (request.from_features) {
        config_.encoder->encode_into(request.features, request.query,
                                     encode_ws);
        encoded_any = true;
      }
    }
#ifndef NDEBUG
    if (encoded_any) {
      // Steady-state invariant: once warmed, encoding a request must not
      // grow the workspace — i.e. the encode path really is allocation-free.
      assert(!encode_warmed || encode_ws.capacity_signature() == encode_sig);
      encode_sig = encode_ws.capacity_signature();
      encode_warmed = true;
    }
#endif

    // Score the whole batch in one blocked pass over the class planes.
    const auto score_start = std::chrono::steady_clock::now();
    query_ptrs.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      query_ptrs[i] = &batch[i].query;
    }
    model->scores_batch(query_ptrs, score_ws);
    const std::size_t k = model->num_classes();

    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto& request = batch[i];
      queue_wait_.record(elapsed_ns(request.enqueued, dequeued));

      const std::span<const double> similarities(
          score_ws.scores.data() + i * k, k);
      const auto conf =
          model::assess(similarities, confidence, model->dimension());

      Response response;
      response.predicted = conf.predicted;
      response.confidence = conf.top_probability;
      response.model_version = version;
      if (scrubber_ && conf.top_probability >= trust_threshold) {
        // Pre-filter only: the engine re-runs its own (stricter) gates on
        // the scrub thread. A full ring drops the hint — serving latency
        // must not wait on recovery.
        response.trusted = true;
        trusted_.fetch_add(1, std::memory_order_relaxed);
        if (!scrubber_->offer(request.query)) {
          scrub_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
      }

      const auto end = std::chrono::steady_clock::now();
      // Service time is measured from the batch-score start: the batch is
      // the unit of work, so every request in it shares the scoring cost.
      service_.record(elapsed_ns(score_start, end));
      end_to_end_.record(elapsed_ns(request.enqueued, end));
      // Count before fulfilling: once a client sees its future ready,
      // stats().completed already includes it.
      completed_.fetch_add(1, std::memory_order_release);
      request.promise.set_value(response);
    }
  }
}

}  // namespace robusthd::serve
