#include "robusthd/serve/server.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <cassert>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "robusthd/core/serialize.hpp"
#include "robusthd/model/confidence.hpp"
#include "robusthd/util/parallel.hpp"

namespace robusthd::serve {

namespace {

ServerConfig normalized(ServerConfig config) {
  if (config.worker_threads == 0) {
    config.worker_threads = util::hardware_threads();
  }
  if (config.queue_capacity == 0) config.queue_capacity = 1;
  if (config.max_batch == 0) config.max_batch = 1;
  return config;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// Best-effort affinity: an out-of-range cpu id or a restricted cpuset
/// just leaves the thread unpinned.
void pin_current_thread(int cpu) noexcept {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

Server::Server(model::HdcModel model, const ServerConfig& config)
    : config_(normalized(config)),
      snapshot_(std::move(model)),
      queue_(config_.queue_capacity) {
  if (config_.enable_recovery) {
    if (snapshot_.acquire()->precision_bits() != 1) {
      throw std::invalid_argument(
          "serve::Server recovery requires a binary (1-bit) model; "
          "set ServerConfig::enable_recovery = false for multi-bit models");
    }
    scrubber_ = std::make_unique<Scrubber>(snapshot_, config_.scrubber);
    if (config_.scrubber.gate.enabled) {
      // Build the trust gate against the blessed (version-0) model and
      // the configured canary set; a zero chunk count inherits the
      // recovery engine's chunking so the agreement sweep lines up with
      // the repair sweep it protects.
      auto gate_config = config_.scrubber.gate;
      if (gate_config.chunks == 0) {
        gate_config.chunks = config_.scrubber.recovery.chunks;
      }
      const auto blessed = snapshot_.acquire();
      scrubber_->install_trust_gate(std::make_unique<TrustGate>(
          gate_config, blessed->num_classes(), blessed->dimension(),
          config_.canaries, config_.canary_labels));
    }
  }

  if (!config_.persist.dir.empty()) {
    // Write the serving model as an atomic base checkpoint and start the
    // WAL thread. This happens before any worker or the scrubber runs, so
    // the base is exactly snapshot version 0 — every later publication is
    // journaled as a delta above it.
    epoch_log_ = std::make_unique<persist::EpochLog>(
        config_.persist, core::serialize_model(*snapshot_.acquire(), {}),
        snapshot_.version());
    if (scrubber_) {
      // The hook runs on the scrub thread right after a successful
      // publication; it copies the rewritten words out of the (thread-
      // local) working model and hands them to the log thread. Serving
      // never waits on I/O.
      scrubber_->set_persist_hook(
          [this](std::uint64_t version, const model::HdcModel& published,
                 std::span<const RepairedRange> ranges,
                 const model::RecoveryEngineState& state) {
            std::vector<persist::PlaneWrite> writes;
            writes.reserve(ranges.size());
            for (const auto& r : ranges) {
              const auto words = published.class_vector(r.cls).planes[r.plane]
                                     .words();
              persist::PlaneWrite w;
              w.cls = static_cast<std::uint32_t>(r.cls);
              w.plane = static_cast<std::uint32_t>(r.plane);
              w.word_begin = r.word_begin;
              w.words.assign(
                  words.begin() + static_cast<std::ptrdiff_t>(r.word_begin),
                  words.begin() +
                      static_cast<std::ptrdiff_t>(r.word_begin + r.word_count));
              writes.push_back(std::move(w));
            }
            epoch_log_->append_publication(version, std::move(writes), state);
          });
    }
  }

  if (scrubber_) scrubber_->start();

  // The breaker's fallback: the model as constructed is blessed by
  // definition. Updated on every successful reload.
  last_good_ = *snapshot_.acquire();

  if (config_.sentinel.enabled) {
    if (config_.canaries.empty()) {
      throw std::invalid_argument(
          "serve::Server: sentinel.enabled requires a non-empty "
          "ServerConfig::canaries set");
    }
    SentinelHooks hooks;
    if (scrubber_) {
      // Rung (a): suspect chunks jump the scrubber's repair queue.
      hooks.prioritize = [this](std::size_t cls, std::size_t chunk, bool on) {
        scrubber_->prioritize_chunk(cls, chunk, on);
      };
    }
    hooks.publish_quarantine = [this](const std::vector<bool>& excluded) {
      apply_quarantine(excluded);
    };
    hooks.set_breaker = [this](bool open) {
      breaker_open_.store(open, std::memory_order_release);
    };
    hooks.attempt_reload = [this] { return publish_last_good(); };
    sentinel_ = std::make_unique<Sentinel>(
        snapshot_, config_.canaries, config_.canary_labels, config_.sentinel,
        std::move(hooks));
    if (config_.sentinel.period.count() > 0) sentinel_->start();
  }

  if (config_.chaos.enabled) {
    ChaosAgent::TargetProvider target;
    if (sentinel_) {
      target = [this] { return sentinel_->most_confident_class(); };
    }
    chaos_ = std::make_unique<ChaosAgent>(snapshot_, scrubber_.get(),
                                          config_.chaos, std::move(target));
    if (config_.chaos.period.count() > 0) chaos_->start();
  }

  workers_.start(config_.worker_threads,
                 [this](std::size_t w) { worker_main(w); });
}

Server::~Server() { shutdown(); }

std::future<Response> Server::submit(hv::BinVec query) {
  Request request{std::move(query), {}, false, std::promise<Response>(),
                  std::chrono::steady_clock::now()};
  auto future = request.promise.get_future();
  // push() only consumes the request on success; on failure the promise
  // is still ours to fail explicitly.
  if (!queue_.push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server is shut down")));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::optional<std::future<Response>> Server::try_submit(
    hv::BinVec query, std::chrono::steady_clock::time_point deadline) {
  Request request{std::move(query), {}, false, std::promise<Response>(),
                  std::chrono::steady_clock::now(), deadline};
  auto future = request.promise.get_future();
  if (!queue_.try_push(request)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<Response> Server::submit_features(std::vector<float> features) {
  if (!config_.encoder) {
    throw std::logic_error(
        "serve::Server::submit_features requires ServerConfig::encoder");
  }
  Request request{hv::BinVec(), std::move(features), true,
                  std::promise<Response>(),
                  std::chrono::steady_clock::now()};
  auto future = request.promise.get_future();
  if (!queue_.push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server is shut down")));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::vector<Response> Server::predict_all(
    std::span<const hv::BinVec> queries) {
  std::vector<std::future<Response>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) futures.push_back(submit(q));
  std::vector<Response> responses;
  responses.reserve(queries.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

void Server::inject_faults(double rate, fault::AttackMode mode,
                           std::uint64_t seed) {
  if (scrubber_) {
    scrubber_->inject_faults(rate, mode, seed);
    return;
  }
  // No recovery thread to own the mutation: apply copy-on-write under a
  // lock (publication itself stays atomic for the readers).
  const std::lock_guard<std::mutex> lock(direct_fault_mutex_);
  model::HdcModel damaged = *snapshot_.acquire();
  util::Xoshiro256 rng(seed);
  auto regions = damaged.memory_regions();
  const auto report = fault::BitFlipInjector::inject(regions, rate, mode, rng);
  direct_faults_.fetch_add(report.flipped, std::memory_order_relaxed);
  // Without a scrubber no hook journals this publication as deltas;
  // rotate the generation around the damaged model instead — published
  // state must be recoverable state, injected or not.
  std::vector<std::byte> blob;
  if (epoch_log_) blob = core::serialize_model(damaged, {});
  const auto version = snapshot_.publish(std::move(damaged));
  if (epoch_log_) epoch_log_->rotate_generation(std::move(blob), version);
}

std::uint64_t Server::reload(model::HdcModel model) {
  const auto current = snapshot_.acquire();
  if (model.dimension() != current->dimension()) {
    throw std::invalid_argument(
        "serve::Server::reload: model dimension mismatch (queued queries "
        "are encoded at the serving dimension)");
  }
  if (config_.enable_recovery && model.precision_bits() != 1) {
    throw std::invalid_argument(
        "serve::Server::reload: recovery requires a binary (1-bit) model");
  }
  // A reload is a blessed publication: it becomes the breaker's new
  // fallback and the sentinel's new drift reference.
  {
    const std::lock_guard<std::mutex> lock(last_good_mutex_);
    last_good_ = model;
  }
  // Publish through the same epoch path repairs use: in-flight batches
  // hold their snapshot pointer and finish on the old model; every batch
  // formed after this line scores the new one. The scrubber notices the
  // foreign version at its next ring-empty boundary and resyncs.
  std::vector<std::byte> blob;
  if (epoch_log_) blob = core::serialize_model(model, {});
  const std::lock_guard<std::mutex> lock(direct_fault_mutex_);
  const auto version = snapshot_.publish(std::move(model));
  // A reload rotates the WAL generation: the reloaded blob becomes the
  // new base checkpoint, and any queued repair deltas of the pre-reload
  // weights fall below the generation fence and are discarded — exactly
  // mirroring the scrubber's own discard of those repairs.
  if (epoch_log_) epoch_log_->rotate_generation(std::move(blob), version);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  // rebase() only sets a flag, so this is safe even when reload() is
  // reached from the sentinel's own breaker path (attempt_reload hook).
  if (sentinel_) sentinel_->rebase();
  return version;
}

std::uint64_t Server::reload(const core::HdcClassifier& classifier) {
  return reload(classifier.model());
}

std::uint64_t Server::load_model(const std::string& path) {
  // Validation happens entirely before publication: a blob that fails the
  // RHD2 integrity checks throws out of core::load_model and the serving
  // model is never touched.
  try {
    return reload(core::load_model(path).model());
  } catch (const std::runtime_error&) {
    integrity_failures_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

std::uint64_t Server::estimated_wait_ns() const {
  const std::size_t depth = queue_.depth();
  if (depth == 0) return 0;
  const double mean_batch_service = service_.mean_ns();
  const double mean_batch = batch_sizes_.mean();
  if (mean_batch_service <= 0.0) return 0;  // nothing measured yet
  // depth / mean_batch batches are ahead of a request admitted now, each
  // costing roughly one mean batch service time.
  return static_cast<std::uint64_t>(static_cast<double>(depth) *
                                    mean_batch_service /
                                    (mean_batch < 1.0 ? 1.0 : mean_batch));
}

void Server::drain() {
  while (completed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  if (scrubber_) scrubber_->drain();
}

void Server::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (chaos_) chaos_->stop();      // stop attacking first
  if (sentinel_) sentinel_->stop();  // then stop escalating
  queue_.close();     // wakes workers; pops drain accepted requests
  workers_.join();    // every accepted promise is now fulfilled
  if (scrubber_) scrubber_->stop();  // final ring drain, then halt
  // Last: the scrubber's final publications are already appended, so this
  // closes one last epoch over them — a graceful shutdown loses nothing.
  if (epoch_log_) epoch_log_->stop();
}

void Server::persist_barrier() {
  drain();
  if (epoch_log_) epoch_log_->close_epoch();
}

std::unique_ptr<Server> Server::recover(const std::string& dir,
                                        ServerConfig config) {
  auto rec = persist::recover_dir(dir);
  if (!rec) {
    throw std::runtime_error(
        "serve::Server::recover: no usable persisted state in '" + dir + "'");
  }
  config.persist.dir = dir;
  auto server = std::make_unique<Server>(std::move(rec->model), config);
  server->replay_stats_ = rec->stats;
  // Rehydrate the recovery engine's durable counters (budgets, watchdog)
  // on the scrub thread — a crash must not hand the attacker a fresh
  // substitution budget.
  if (rec->engine_state && server->scrubber_) {
    server->scrubber_->restore_engine_state(std::move(*rec->engine_state));
  }
  return server;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.batches = batch_sizes_.batches();
  s.mean_batch = batch_sizes_.mean();
  s.queue_wait = queue_wait_.summarize();
  s.service = service_.summarize();
  s.end_to_end = end_to_end_.summarize();
  s.trusted = trusted_.load(std::memory_order_relaxed);
  s.scrub_dropped = scrub_dropped_.load(std::memory_order_relaxed);
  s.faults_injected = direct_faults_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.integrity_failures = integrity_failures_.load(std::memory_order_relaxed);
  s.degraded_responses = degraded_.load(std::memory_order_relaxed);
  s.abstained_responses = abstained_.load(std::memory_order_relaxed);
  s.deadline_sheds = deadline_sheds_.load(std::memory_order_relaxed);
  // Subsystem counters are reported as deltas against the reset_stats()
  // baselines (the scrubber's own atomics back drain() and are never
  // zeroed in place).
  const std::lock_guard<std::mutex> baseline_lock(baseline_mutex_);
  if (scrubber_) {
    const auto c = scrubber_->counters();
    const auto& b = scrub_baseline_;
    s.scrub_offered = c.offered - b.offered;
    s.trust_drops = c.trust_drops - b.trust_drops;
    s.scrub_processed = c.processed - b.processed;
    s.scrub_repairs = c.repairs - b.repairs;
    s.scrub_substituted_bits = c.substituted_bits - b.substituted_bits;
    s.faults_injected += c.faults_injected - b.faults_injected;
    s.snapshots_published = c.snapshots_published - b.snapshots_published;
    s.scrub_resyncs = c.resyncs - b.resyncs;
    s.priority_marks = c.priority_marks - b.priority_marks;
    s.poisoned_offers = c.poisoned_offers - b.poisoned_offers;
    s.gate_rejects = c.gate_rejects - b.gate_rejects;
    s.suspect_substitutions =
        c.suspect_substitutions - b.suspect_substitutions;
  }
  if (chaos_) {
    const auto c = chaos_->counters();
    const auto& b = chaos_baseline_;
    s.chaos_ticks = c.ticks - b.ticks;
    s.chaos_flips = c.flips_scheduled - b.flips_scheduled;
  }
  if (sentinel_) {
    const auto c = sentinel_->counters();
    const auto& b = sentinel_baseline_;
    s.canary_runs = c.rounds - b.rounds;
    s.breaker_trips = c.breaker_trips - b.breaker_trips;
    s.reload_retries = c.reload_retries - b.reload_retries;
    s.canary_accuracy = sentinel_->latest_accuracy();
    s.quarantined_chunks = sentinel_->quarantined_count();
    s.breaker_open = sentinel_->breaker_open();
  }
  s.model_version = snapshot_.version();
  {
    const auto model = snapshot_.acquire();
    s.arena_bytes = model->arena().bytes();
    s.arena_hugepage = model->arena().hugepage_backed();
  }
  if (epoch_log_) {
    const auto p = epoch_log_->counters();
    s.epochs_closed = p.epochs_closed;
    s.wal_bytes = p.wal_bytes;
    s.wal_rotations = p.rotations;
    s.wal_compactions = p.compactions;
    s.persist_io_errors = p.io_errors;
  }
  s.replay_records = replay_stats_.replay_records;
  return s;
}

void Server::reset_stats() {
  submitted_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  trusted_.store(0, std::memory_order_relaxed);
  scrub_dropped_.store(0, std::memory_order_relaxed);
  direct_faults_.store(0, std::memory_order_relaxed);
  reloads_.store(0, std::memory_order_relaxed);
  integrity_failures_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  abstained_.store(0, std::memory_order_relaxed);
  deadline_sheds_.store(0, std::memory_order_relaxed);
  queue_wait_.reset();
  service_.reset();
  end_to_end_.reset();
  batch_sizes_.reset();
  const std::lock_guard<std::mutex> baseline_lock(baseline_mutex_);
  if (scrubber_) scrub_baseline_ = scrubber_->counters();
  if (chaos_) chaos_baseline_ = chaos_->counters();
  if (sentinel_) sentinel_baseline_ = sentinel_->counters();
}

void Server::apply_quarantine(const std::vector<bool>& excluded) {
  const auto model = snapshot_.acquire();
  auto mask = std::make_shared<const QuarantineMask>(
      build_quarantine_mask(model->dimension(), excluded));
  const bool any = mask->excluded_chunks > 0;
  {
    const std::lock_guard<std::mutex> lock(quarantine_mutex_);
    quarantine_ = any ? std::move(mask) : nullptr;
  }
  // Release pairs with the workers' acquire on the version check.
  quarantine_version_.fetch_add(1, std::memory_order_release);
}

bool Server::publish_last_good() {
  try {
    model::HdcModel fallback;
    {
      const std::lock_guard<std::mutex> lock(last_good_mutex_);
      fallback = last_good_;
    }
    reload(std::move(fallback));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void Server::worker_main(std::size_t worker_index) {
  if (!config_.cpu_affinity.empty()) {
    pin_current_thread(
        config_.cpu_affinity[worker_index % config_.cpu_affinity.size()]);
  }
  // Expired requests are shed at dequeue time, before they occupy a batch
  // slot: the client's budget is spent, so scoring would be pure waste.
  // The predicate owns the disposal (promise, latency records, counters)
  // so the batcher stays deadline-agnostic.
  Batcher<Request> batcher(
      queue_, config_.max_batch, config_.batch_linger,
      [this](Request& request) {
        if (request.deadline ==
            std::chrono::steady_clock::time_point::max()) {
          return false;
        }
        const auto now = std::chrono::steady_clock::now();
        if (now < request.deadline) return false;
        deadline_sheds_.fetch_add(1, std::memory_order_relaxed);
        queue_wait_.record(elapsed_ns(request.enqueued, now));
        end_to_end_.record(elapsed_ns(request.enqueued, now));
        Response response;
        response.expired = true;
        completed_.fetch_add(1, std::memory_order_release);
        request.promise.set_value(response);
        return true;
      });
  const model::ConfidenceConfig confidence =
      config_.scrubber.recovery.confidence;
  const double trust_threshold =
      config_.scrubber.recovery.confidence_threshold;

  // Per-worker cached snapshot: refreshed only when the published version
  // moves, so steady-state batches take no lock at all.
  std::shared_ptr<const model::HdcModel> model;
  std::uint64_t version = 0;

  // Per-worker cached quarantine mask, same epoch pattern. null means the
  // quarantine is empty and scoring takes the unmasked kernels.
  std::shared_ptr<const QuarantineMask> qmask;
  std::uint64_t qmask_version = 0;

  // Per-worker reusable workspaces. Encoding and batch scoring run through
  // these, so after the first full-sized batch the hot path performs no
  // heap allocations per request (asserted below in debug builds).
  hv::EncodeWorkspace encode_ws;
  model::ScoreWorkspace score_ws;
  std::vector<const hv::BinVec*> query_ptrs;
#ifndef NDEBUG
  bool encode_warmed = false;
  std::pair<std::size_t, std::size_t> encode_sig{};
#endif

  std::vector<Request> batch;
  while (batcher.next_batch(batch)) {
    // One snapshot per batch: every query in the batch is scored against
    // the same immutable model, however the scrubber races us.
    snapshot_.refresh(model, version);
    if (quarantine_version_.load(std::memory_order_acquire) !=
        qmask_version) {
      const std::lock_guard<std::mutex> lock(quarantine_mutex_);
      qmask = quarantine_;
      qmask_version = quarantine_version_.load(std::memory_order_relaxed);
    }
    batch_sizes_.record(batch.size());
    const auto dequeued = std::chrono::steady_clock::now();

    // Rung (c): breaker open — shed the whole batch with explicit
    // abstentions, no encoding, no scoring. Clients get an answer (not a
    // hang) and retry once the sentinel has republished the last-good
    // model.
    if (breaker_open_.load(std::memory_order_acquire)) {
      for (auto& request : batch) {
        queue_wait_.record(elapsed_ns(request.enqueued, dequeued));
        Response response;
        response.abstained = true;
        response.model_version = version;
        abstained_.fetch_add(1, std::memory_order_relaxed);
        const auto end = std::chrono::steady_clock::now();
        service_.record(elapsed_ns(dequeued, end));
        end_to_end_.record(elapsed_ns(request.enqueued, end));
        completed_.fetch_add(1, std::memory_order_release);
        request.promise.set_value(response);
      }
      continue;
    }

    // Server-side encoding for feature-mode requests, through the worker's
    // persistent workspace (the encoder's bit-sliced counter is reused).
    [[maybe_unused]] bool encoded_any = false;
    for (auto& request : batch) {
      if (request.from_features) {
        config_.encoder->encode_into(request.features, request.query,
                                     encode_ws);
        encoded_any = true;
      }
    }
#ifndef NDEBUG
    if (encoded_any) {
      // Steady-state invariant: once warmed, encoding a request must not
      // grow the workspace — i.e. the encode path really is allocation-free.
      assert(!encode_warmed || encode_ws.capacity_signature() == encode_sig);
      encode_sig = encode_ws.capacity_signature();
      encode_warmed = true;
    }
#endif

    // Score the whole batch in one blocked pass over the class planes.
    const auto score_start = std::chrono::steady_clock::now();
    query_ptrs.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      query_ptrs[i] = &batch[i].query;
    }
    // Rung (b): with a non-empty quarantine, score over the surviving
    // dimensions only (masked kernels) and flag the answers degraded. The
    // confidence model then sees kept_dims as the effective dimension.
    const bool degraded = qmask != nullptr;
    std::size_t effective_dim = model->dimension();
    if (degraded) {
      model->scores_batch_masked(query_ptrs, qmask->words, qmask->kept_dims,
                                 score_ws);
      effective_dim = qmask->kept_dims;
    } else {
      model->scores_batch(query_ptrs, score_ws);
    }
    const std::size_t k = model->num_classes();

    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto& request = batch[i];
      queue_wait_.record(elapsed_ns(request.enqueued, dequeued));

      const std::span<const double> similarities(
          score_ws.scores.data() + i * k, k);
      const auto conf = model::assess(similarities, confidence, effective_dim);

      Response response;
      response.predicted = conf.predicted;
      response.confidence = conf.top_probability;
      response.model_version = version;
      response.degraded = degraded;
      if (degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
      if (scrubber_ && conf.top_probability >= trust_threshold) {
        // Pre-filter only: the trust gate (margin floor, fair-share rate
        // limit, canary agreement) decides admission, and the engine
        // re-runs its own gates on the scrub thread. A full ring drops
        // the hint — serving latency must not wait on recovery. Gate
        // rejections are counted by the gate itself, not as ring drops.
        response.trusted = true;
        trusted_.fetch_add(1, std::memory_order_relaxed);
        const auto outcome = scrubber_->offer_trusted(
            request.query, conf.predicted, conf.margin);
        if (outcome == Scrubber::OfferOutcome::kRingFull) {
          scrub_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
      }

      const auto end = std::chrono::steady_clock::now();
      // Service time is measured from the batch-score start: the batch is
      // the unit of work, so every request in it shares the scoring cost.
      service_.record(elapsed_ns(score_start, end));
      end_to_end_.record(elapsed_ns(request.enqueued, end));
      // Count before fulfilling: once a client sees its future ready,
      // stats().completed already includes it.
      completed_.fetch_add(1, std::memory_order_release);
      request.promise.set_value(response);
    }
  }
}

}  // namespace robusthd::serve
