#include "robusthd/hv/binvec.hpp"

#include <bit>
#include <cassert>

namespace robusthd::hv {

BinVec BinVec::random(std::size_t dimension, util::Xoshiro256& rng) {
  BinVec v(dimension);
  rng.fill(v.words_);
  v.mask_tail();
  return v;
}

BinVec& BinVec::bind(const BinVec& other) noexcept {
  assert(dim_ == other.dim_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BinVec& BinVec::invert() noexcept {
  for (auto& w : words_) w = ~w;
  mask_tail();
  return *this;
}

BinVec BinVec::rotated(std::size_t amount) const {
  BinVec out(dim_);
  if (dim_ == 0) return out;
  amount %= dim_;
  if (amount == 0) return *this;
  // Straightforward bit copy; rotation is not on the inference hot path.
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::size_t j = (i + amount) % dim_;
    if (get(i)) out.set(j, true);
  }
  return out;
}

void BinVec::mask_tail() noexcept {
  const std::size_t tail = dim_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= util::low_mask(tail);
  }
}

std::size_t hamming(const BinVec& a, const BinVec& b) noexcept {
  assert(a.dimension() == b.dimension());
  return util::hamming(a.words(), b.words());
}

double similarity(const BinVec& a, const BinVec& b) noexcept {
  if (a.dimension() == 0) return 0.0;
  return 1.0 - static_cast<double>(hamming(a, b)) /
                   static_cast<double>(a.dimension());
}

BinVec bind(const BinVec& a, const BinVec& b) {
  BinVec out = a;
  out.bind(b);
  return out;
}

std::size_t hamming_range(const BinVec& a, const BinVec& b, std::size_t begin,
                          std::size_t end) noexcept {
  assert(a.dimension() == b.dimension());
  assert(begin <= end && end <= a.dimension());
  if (begin >= end) return 0;

  const auto aw = a.words();
  const auto bw = b.words();
  const std::size_t first_word = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;

  std::size_t total = 0;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    std::uint64_t x = aw[w] ^ bw[w];
    if (w == first_word) {
      const std::size_t skip = begin & 63;
      x &= ~util::low_mask(skip);
    }
    if (w == last_word) {
      const std::size_t keep = ((end - 1) & 63) + 1;
      x &= util::low_mask(keep);
    }
    total += static_cast<std::size_t>(std::popcount(x));
  }
  return total;
}

}  // namespace robusthd::hv
