#include "robusthd/hv/binvec.hpp"

#include <bit>
#include <cassert>

namespace robusthd::hv {

BinVec BinVec::random(std::size_t dimension, util::Xoshiro256& rng) {
  BinVec v(dimension);
  rng.fill(v.words_);
  v.mask_tail();
  return v;
}

BinVec& BinVec::bind(const BinVec& other) noexcept {
  assert(dim_ == other.dim_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BinVec& BinVec::invert() noexcept {
  for (auto& w : words_) w = ~w;
  mask_tail();
  return *this;
}

namespace {

/// OR-accumulates `src` shifted left by `shift` bit positions into `dst`
/// (big-endian-free funnel over the packed word array). Bits pushed past
/// the top of the array are dropped; bits pushed into the tail region of
/// the last word are cleaned up by the caller's mask_tail().
void or_shifted_left(std::span<std::uint64_t> dst,
                     std::span<const std::uint64_t> src,
                     std::size_t shift) noexcept {
  const std::size_t ws = shift >> 6;
  const std::size_t bs = shift & 63;
  for (std::size_t w = dst.size(); w-- > ws;) {
    std::uint64_t v = src[w - ws] << bs;
    if (bs != 0 && w > ws) v |= src[w - ws - 1] >> (64 - bs);
    dst[w] |= v;
  }
}

/// OR-accumulates `src` shifted right by `shift` bit positions into `dst`.
void or_shifted_right(std::span<std::uint64_t> dst,
                      std::span<const std::uint64_t> src,
                      std::size_t shift) noexcept {
  const std::size_t ws = shift >> 6;
  const std::size_t bs = shift & 63;
  for (std::size_t w = 0; w + ws < src.size(); ++w) {
    std::uint64_t v = src[w + ws] >> bs;
    if (bs != 0 && w + ws + 1 < src.size()) v |= src[w + ws + 1] << (64 - bs);
    dst[w] |= v;
  }
}

}  // namespace

BinVec BinVec::rotated(std::size_t amount) const {
  BinVec out(dim_);
  if (dim_ == 0) return out;
  amount %= dim_;
  if (amount == 0) return *this;
  // rot(v, s) over the D-bit field is (v << s) | (v >> (D - s)): the low
  // D - s bits shift up, the top s bits wrap to the bottom. Both halves are
  // word-level funnel shifts, so the whole rotation is O(D/64) — it sits on
  // the SequenceEncoder path, which makes it hot for streaming workloads.
  // The tail-bits-zero invariant on `words()` makes the wrapped half exact.
  or_shifted_left(out.mutable_words(), words(), amount);
  or_shifted_right(out.mutable_words(), words(), dim_ - amount);
  out.mask_tail();
  return out;
}

void BinVec::mask_tail() noexcept {
  const std::size_t tail = dim_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= util::low_mask(tail);
  }
}

std::size_t hamming(const BinVec& a, const BinVec& b) noexcept {
  assert(a.dimension() == b.dimension());
  return kernels::hamming(a.words().data(), b.words().data(),
                          a.words().size());
}

double similarity(const BinVec& a, const BinVec& b) noexcept {
  if (a.dimension() == 0) return 0.0;
  return 1.0 - static_cast<double>(hamming(a, b)) /
                   static_cast<double>(a.dimension());
}

BinVec bind(const BinVec& a, const BinVec& b) {
  BinVec out = a;
  out.bind(b);
  return out;
}

std::size_t hamming_range(const BinVec& a, const BinVec& b, std::size_t begin,
                          std::size_t end) noexcept {
  assert(a.dimension() == b.dimension());
  assert(begin <= end && end <= a.dimension());
  return hamming_range(a.words(), b.words(), begin, end);
}

std::size_t hamming_range(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b, std::size_t begin,
                          std::size_t end) noexcept {
  assert(begin <= end);
  if (begin >= end) return 0;
  assert(util::words_for_bits(end) <= a.size());
  assert(util::words_for_bits(end) <= b.size());

  // Resolve the bit range to words + edge masks; the masked kernel does
  // the rest at whatever ISA the dispatcher selected.
  const std::size_t first_word = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;
  const std::uint64_t first_mask = ~util::low_mask(begin & 63);
  const std::uint64_t last_mask = util::low_mask(((end - 1) & 63) + 1);
  return kernels::hamming_masked(a.data() + first_word, b.data() + first_word,
                                 last_word - first_word + 1, first_mask,
                                 last_mask);
}

}  // namespace robusthd::hv
