#include "robusthd/hv/itemmemory.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace robusthd::hv {

ItemMemory::ItemMemory(std::size_t dimension, std::size_t feature_count,
                       std::size_t level_count, std::uint64_t seed)
    : dim_(dimension) {
  assert(level_count >= 2);
  util::Xoshiro256 rng(seed);

  bases_.reserve(feature_count);
  for (std::size_t k = 0; k < feature_count; ++k) {
    bases_.push_back(BinVec::random(dim_, rng));
  }

  // Level chain: L_0 random; each next level flips a disjoint slice of a
  // random permutation of positions, so L_0 and L_last differ in ~D/2 bits
  // and Hamming distance grows linearly with level separation.
  levels_.reserve(level_count);
  levels_.push_back(BinVec::random(dim_, rng));
  std::vector<std::size_t> order(dim_);
  for (std::size_t i = 0; i < dim_; ++i) order[i] = i;
  util::shuffle(std::span<std::size_t>(order), rng);

  const std::size_t total_flips = dim_ / 2;
  for (std::size_t j = 1; j < level_count; ++j) {
    BinVec next = levels_.back();
    const std::size_t begin = (j - 1) * total_flips / (level_count - 1);
    const std::size_t end = j * total_flips / (level_count - 1);
    for (std::size_t t = begin; t < end; ++t) next.flip(order[t]);
    levels_.push_back(std::move(next));
  }
}

std::size_t ItemMemory::level_index(float value) const noexcept {
  const auto last = static_cast<float>(levels_.size() - 1);
  const float v = std::clamp(value, 0.0f, 1.0f) * last;
  return static_cast<std::size_t>(std::lround(v));
}

}  // namespace robusthd::hv
