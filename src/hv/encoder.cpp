#include "robusthd/hv/encoder.hpp"

#include <cassert>

namespace robusthd::hv {

RecordEncoder::RecordEncoder(std::size_t feature_count,
                             const EncoderConfig& config)
    : memory_(config.dimension, feature_count, config.levels, config.seed) {
  util::Xoshiro256 rng(config.seed ^ 0x71ebULL);
  tie_break_ = BinVec::random(config.dimension, rng);
}

BinVec RecordEncoder::encode(std::span<const float> features) const {
  // Per-thread workspace: repeated encodes on the same thread (encode_all
  // under parallel_for, trainer loops) reuse the counter's plane storage,
  // so even this convenience overload is allocation-free at steady state.
  thread_local EncodeWorkspace ws;
  BinVec out;
  encode_into(features, out, ws);
  return out;
}

void RecordEncoder::encode_into(std::span<const float> features, BinVec& out,
                                EncodeWorkspace& ws) const {
  assert(features.size() == memory_.feature_count());
  ws.counter.resize(memory_.dimension());
  for (std::size_t k = 0; k < features.size(); ++k) {
    const auto& level = memory_.level(memory_.level_index(features[k]));
    // Fused bind-then-ripple-add: L(f_k) XOR B_k goes straight into the
    // bit-sliced counters without materialising the bound vector.
    ws.counter.add_bound(level, memory_.base(k));
  }
  ws.counter.threshold_majority_into(out, &tie_break_);
}

}  // namespace robusthd::hv
