#include "robusthd/hv/encoder.hpp"

#include <cassert>

namespace robusthd::hv {

RecordEncoder::RecordEncoder(std::size_t feature_count,
                             const EncoderConfig& config)
    : memory_(config.dimension, feature_count, config.levels, config.seed) {
  util::Xoshiro256 rng(config.seed ^ 0x71ebULL);
  tie_break_ = BinVec::random(config.dimension, rng);
}

BinVec RecordEncoder::encode(std::span<const float> features) const {
  assert(features.size() == memory_.feature_count());
  BitSliceCounter acc(memory_.dimension());
  BinVec bound(memory_.dimension());
  for (std::size_t k = 0; k < features.size(); ++k) {
    const auto& level = memory_.level(memory_.level_index(features[k]));
    bound = level;
    bound.bind(memory_.base(k));
    acc.add(bound);
  }
  return acc.threshold_majority(&tie_break_);
}

}  // namespace robusthd::hv
