#include "robusthd/hv/encoder_base.hpp"

#include "robusthd/util/parallel.hpp"

namespace robusthd::hv {

std::vector<BinVec> Encoder::encode_all(const data::Dataset& dataset) const {
  // encode() is const and samples are independent; parallel by index keeps
  // the output order (and therefore every downstream result) identical to
  // the serial loop.
  std::vector<BinVec> out(dataset.size());
  util::parallel_for(dataset.size(), [&](std::size_t i) {
    out[i] = encode(dataset.sample(i));
  });
  return out;
}

}  // namespace robusthd::hv
