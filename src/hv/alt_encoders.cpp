#include "robusthd/hv/alt_encoders.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace robusthd::hv {

ThermometerEncoder::ThermometerEncoder(std::size_t feature_count,
                                       const Config& config)
    : dim_(config.dimension),
      levels_(std::max<std::size_t>(config.levels, 2)),
      features_(feature_count) {
  util::Xoshiro256 rng(config.seed);
  codes_.reserve(feature_count * levels_);
  std::vector<std::uint32_t> order(dim_);
  for (std::size_t k = 0; k < feature_count; ++k) {
    const auto base = BinVec::random(dim_, rng);
    auto level = BinVec::random(dim_, rng);
    for (std::size_t i = 0; i < dim_; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    util::shuffle(std::span<std::uint32_t>(order), rng);
    // Walk the chain: level j flips the next slice of this feature's
    // private order, so levels are strictly monotone in Hamming distance
    // and the extremes sit ~D/2 apart. Each stored code is pre-bound.
    const std::size_t total_flips = dim_ / 2;
    std::size_t flipped = 0;
    for (std::size_t j = 0; j < levels_; ++j) {
      const std::size_t target = j * total_flips / (levels_ - 1);
      for (; flipped < target; ++flipped) level.flip(order[flipped]);
      codes_.push_back(bind(level, base));
    }
  }
  tie_break_ = BinVec::random(dim_, rng);
}

BinVec ThermometerEncoder::encode(std::span<const float> features) const {
  assert(features.size() == features_);
  BitSliceCounter acc(dim_);
  const auto last = static_cast<float>(levels_ - 1);
  for (std::size_t k = 0; k < features.size(); ++k) {
    const float v = std::clamp(features[k], 0.0f, 1.0f) * last;
    const auto level = static_cast<std::size_t>(std::lround(v));
    acc.add(codes_[k * levels_ + level]);
  }
  return acc.threshold_majority(&tie_break_);
}

RandomProjectionEncoder::RandomProjectionEncoder(std::size_t feature_count,
                                                 const Config& config)
    : dim_(config.dimension),
      features_(feature_count),
      sparsity_(std::max<std::size_t>(config.sparsity, 1)) {
  util::Xoshiro256 rng(config.seed);
  taps_.resize(dim_ * sparsity_);
  signs_.resize(dim_ * sparsity_);
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    taps_[i] = static_cast<std::uint32_t>(rng.below(features_));
    signs_[i] = rng.bernoulli(0.5) ? 1 : -1;
  }
}

BinVec RandomProjectionEncoder::encode(
    std::span<const float> features) const {
  assert(features.size() == features_);
  BinVec out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    float acc = 0.0f;
    const std::size_t base = i * sparsity_;
    for (std::size_t j = 0; j < sparsity_; ++j) {
      // Centre the inputs so an all-mid-range sample projects to zero.
      acc += static_cast<float>(signs_[base + j]) *
             (features[taps_[base + j]] - 0.5f);
    }
    out.set(i, acc > 0.0f);
  }
  return out;
}

}  // namespace robusthd::hv
