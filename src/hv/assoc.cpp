#include "robusthd/hv/assoc.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace robusthd::hv {

std::size_t AssociativeMemory::insert(const BinVec& vector, int label) {
  assert(vector.dimension() == config_.dimension);

  if (config_.merge_radius > 0) {
    // Look for the nearest same-label slot within the merge radius.
    std::size_t best = slots_.size();
    std::size_t best_distance = config_.merge_radius + 1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].label != label) continue;
      const std::size_t d = hamming(slots_[i].vector, vector);
      if (d < best_distance) {
        best_distance = d;
        best = i;
      }
    }
    if (best < slots_.size()) {
      auto& slot = slots_[best];
      slot.counts.add(vector);
      ++slot.count;
      slot.vector = slot.counts.sign(&slot.vector);  // ties keep old bits
      return best;
    }
  }

  Slot slot(config_.dimension);
  slot.vector = vector;
  slot.counts.add(vector);
  slot.label = label;
  slot.count = 1;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

std::optional<AssocMatch> AssociativeMemory::nearest(
    const BinVec& query) const {
  if (slots_.empty()) return std::nullopt;
  AssocMatch best;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::size_t d = hamming(slots_[i].vector, query);
    if (d < best.distance) {
      best = {i, slots_[i].label, d};
    }
  }
  return best;
}

std::vector<AssocMatch> AssociativeMemory::top_k(const BinVec& query,
                                                 std::size_t k) const {
  std::vector<AssocMatch> matches;
  matches.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    matches.push_back({i, slots_[i].label, hamming(slots_[i].vector, query)});
  }
  std::sort(matches.begin(), matches.end(),
            [](const AssocMatch& a, const AssocMatch& b) {
              return a.distance < b.distance;
            });
  if (matches.size() > k) matches.resize(k);
  return matches;
}

int AssociativeMemory::predict(const BinVec& query, std::size_t k) const {
  const auto matches = top_k(query, std::max<std::size_t>(k, 1));
  if (matches.empty()) return -1;
  std::map<int, std::size_t> votes;
  for (const auto& m : matches) ++votes[m.label];
  int best_label = matches[0].label;  // nearest breaks ties
  std::size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace robusthd::hv
