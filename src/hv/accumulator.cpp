#include "robusthd/hv/accumulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "robusthd/util/stats.hpp"

namespace robusthd::hv {

BitSliceCounter::BitSliceCounter(std::size_t dimension)
    : dim_(dimension), words_(util::words_for_bits(dimension)) {}

void BitSliceCounter::add(const BinVec& bits) {
  assert(bits.dimension() == dim_);
  const auto in = bits.words();
  // Ripple-carry add of a 1-bit operand across all planes, word-parallel.
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t carry = in[w];
    for (std::size_t p = 0; p < planes_.size() && carry; ++p) {
      const std::uint64_t sum = planes_[p][w] ^ carry;
      carry &= planes_[p][w];
      planes_[p][w] = sum;
    }
    if (carry) {
      planes_.emplace_back(words_, 0);
      planes_.back()[w] = carry;
    }
  }
  ++added_;
}

std::uint32_t BitSliceCounter::count(std::size_t dim) const noexcept {
  std::uint32_t c = 0;
  const std::size_t word = dim >> 6;
  const std::size_t bit = dim & 63;
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    c |= static_cast<std::uint32_t>((planes_[p][word] >> bit) & 1ULL) << p;
  }
  return c;
}

BinVec BitSliceCounter::threshold_majority(const BinVec* tie_break) const {
  const std::uint32_t total = static_cast<std::uint32_t>(added_);
  BinVec out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const std::uint32_t c = count(i);
    if (2 * c > total) {
      out.set(i, true);
    } else if (2 * c == total && tie_break != nullptr) {
      out.set(i, tie_break->get(i));
    }
  }
  return out;
}

BinVec BitSliceCounter::threshold(std::uint32_t cut) const {
  BinVec out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) out.set(i, count(i) > cut);
  return out;
}

void BitSliceCounter::reset() {
  planes_.clear();
  added_ = 0;
}

void SignedAccumulator::add(const BinVec& bits, std::int32_t weight) {
  assert(bits.dimension() == counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += bits.get(i) ? weight : -weight;
  }
}

BinVec SignedAccumulator::sign(const BinVec* tie_break) const {
  BinVec out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      out.set(i, true);
    } else if (counts_[i] == 0 && tie_break != nullptr) {
      out.set(i, tie_break->get(i));
    }
  }
  return out;
}

std::vector<BinVec> SignedAccumulator::quantize_planes(unsigned bits) const {
  assert(bits >= 1 && bits <= 8);
  const std::size_t dim = counts_.size();
  std::vector<BinVec> planes(bits, BinVec(dim));

  if (bits == 1) {
    planes[0] = sign();
    return planes;
  }

  // Robust scale: 95th percentile of |count| so a few outlier dimensions do
  // not flatten everything else into the middle levels.
  std::vector<double> mags(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mags[i] = std::abs(static_cast<double>(counts_[i]));
  }
  double scale = util::percentile(std::move(mags), 95.0);
  if (scale <= 0.0) scale = 1.0;

  const auto levels = (1u << bits) - 1;  // top level index
  for (std::size_t i = 0; i < dim; ++i) {
    // Map count in [-scale, scale] to level in [0, levels]; level encodes
    // quantised confidence that the underlying bit is 1.
    const double x =
        std::clamp(static_cast<double>(counts_[i]) / scale, -1.0, 1.0);
    const auto level = static_cast<unsigned>(
        std::lround((x + 1.0) / 2.0 * static_cast<double>(levels)));
    for (unsigned p = 0; p < bits; ++p) {
      if ((level >> p) & 1u) planes[p].set(i, true);
    }
  }
  return planes;
}

}  // namespace robusthd::hv
