#include "robusthd/hv/accumulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "robusthd/util/stats.hpp"

namespace robusthd::hv {

BitSliceCounter::BitSliceCounter(std::size_t dimension)
    : dim_(dimension), words_(util::words_for_bits(dimension)) {}

namespace {

/// Ripple-carry add of the 1-bit operand `word` into the plane stack at
/// word index `w`, growing the stack only when the count overflows every
/// existing plane.
inline void ripple_add_word(std::vector<std::vector<std::uint64_t>>& planes,
                            std::size_t words, std::size_t w,
                            std::uint64_t carry) {
  for (std::size_t p = 0; p < planes.size() && carry; ++p) {
    const std::uint64_t sum = planes[p][w] ^ carry;
    carry &= planes[p][w];
    planes[p][w] = sum;
  }
  if (carry) {
    planes.emplace_back(words, 0);
    planes.back()[w] = carry;
  }
}

}  // namespace

void BitSliceCounter::add(const BinVec& bits) {
  assert(bits.dimension() == dim_);
  const auto in = bits.words();
  // Ripple-carry add of a 1-bit operand across all planes, word-parallel.
  for (std::size_t w = 0; w < words_; ++w) {
    ripple_add_word(planes_, words_, w, in[w]);
  }
  ++added_;
}

void BitSliceCounter::add_bound(const BinVec& a, const BinVec& b) {
  assert(a.dimension() == dim_ && b.dimension() == dim_);
  const auto aw = a.words();
  const auto bw = b.words();
  // Fused XOR-bind + bundle: the bound vector exists only as one word of
  // live register state per iteration.
  for (std::size_t w = 0; w < words_; ++w) {
    ripple_add_word(planes_, words_, w, aw[w] ^ bw[w]);
  }
  ++added_;
}

std::uint32_t BitSliceCounter::count(std::size_t dim) const noexcept {
  std::uint32_t c = 0;
  const std::size_t word = dim >> 6;
  const std::size_t bit = dim & 63;
  for (std::size_t p = 0; p < planes_.size(); ++p) {
    c |= static_cast<std::uint32_t>((planes_[p][word] >> bit) & 1ULL) << p;
  }
  return c;
}

namespace {

/// Bit-sliced comparison of every dimension's count against the constant
/// `cut` for one word column: `gt` gets a 1 where count > cut, `eq` where
/// count == cut. Planes at p >= plane_count are treated as zero so the
/// comparison is exact even when `cut` needs more bits than the stack
/// holds.
inline void compare_counts_word(
    const std::vector<std::vector<std::uint64_t>>& planes, std::size_t w,
    std::uint32_t cut, std::uint64_t& gt, std::uint64_t& eq) noexcept {
  gt = 0;
  eq = ~0ULL;
  const std::size_t cut_bits =
      cut == 0 ? 0 : static_cast<std::size_t>(std::bit_width(cut));
  const std::size_t top = std::max(planes.size(), cut_bits);
  for (std::size_t p = top; p-- > 0;) {
    const std::uint64_t plane = p < planes.size() ? planes[p][w] : 0;
    const std::uint64_t cbit = (cut >> p) & 1u ? ~0ULL : 0;
    gt |= eq & plane & ~cbit;
    eq &= ~(plane ^ cbit);
  }
}

}  // namespace

void BitSliceCounter::threshold_majority_into(BinVec& out,
                                              const BinVec* tie_break) const {
  if (out.dimension() != dim_) out = BinVec(dim_);
  const auto total = static_cast<std::uint32_t>(added_);
  // count*2 > total  <=>  count > floor(total/2)  (for odd totals the
  // strict inequality rounds the same way); ties (count*2 == total) only
  // exist when the total is even.
  const std::uint32_t cut = total / 2;
  const bool ties_possible = (total % 2) == 0;
  auto ow = out.mutable_words();
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t gt, eq;
    compare_counts_word(planes_, w, cut, gt, eq);
    std::uint64_t bits = gt;
    if (ties_possible && tie_break != nullptr) {
      bits |= eq & tie_break->words()[w];
    }
    ow[w] = bits;
  }
  out.mask_tail();
}

BinVec BitSliceCounter::threshold_majority(const BinVec* tie_break) const {
  BinVec out(dim_);
  threshold_majority_into(out, tie_break);
  return out;
}

BinVec BitSliceCounter::threshold(std::uint32_t cut) const {
  BinVec out(dim_);
  auto ow = out.mutable_words();
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t gt, eq;
    compare_counts_word(planes_, w, cut, gt, eq);
    ow[w] = gt;
  }
  out.mask_tail();
  return out;
}

void BitSliceCounter::reset() {
  // Zero in place: plane storage survives, so steady-state reuse through
  // EncodeWorkspace performs no allocations once the stack has grown to
  // its working depth (ceil(log2(bundle size)) planes).
  for (auto& plane : planes_) std::fill(plane.begin(), plane.end(), 0);
  added_ = 0;
}

void BitSliceCounter::resize(std::size_t dimension) {
  const std::size_t words = util::words_for_bits(dimension);
  if (words != words_) {
    planes_.clear();
    words_ = words;
  }
  dim_ = dimension;
  reset();
}

void SignedAccumulator::add(const BinVec& bits, std::int32_t weight) {
  assert(bits.dimension() == counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += bits.get(i) ? weight : -weight;
  }
}

BinVec SignedAccumulator::sign(const BinVec* tie_break) const {
  BinVec out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      out.set(i, true);
    } else if (counts_[i] == 0 && tie_break != nullptr) {
      out.set(i, tie_break->get(i));
    }
  }
  return out;
}

std::vector<BinVec> SignedAccumulator::quantize_planes(unsigned bits) const {
  assert(bits >= 1 && bits <= 8);
  const std::size_t dim = counts_.size();
  std::vector<BinVec> planes(bits, BinVec(dim));

  if (bits == 1) {
    planes[0] = sign();
    return planes;
  }

  // Robust scale: 95th percentile of |count| so a few outlier dimensions do
  // not flatten everything else into the middle levels.
  std::vector<double> mags(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mags[i] = std::abs(static_cast<double>(counts_[i]));
  }
  double scale = util::percentile(std::move(mags), 95.0);
  if (scale <= 0.0) scale = 1.0;

  const auto levels = (1u << bits) - 1;  // top level index
  for (std::size_t i = 0; i < dim; ++i) {
    // Map count in [-scale, scale] to level in [0, levels]; level encodes
    // quantised confidence that the underlying bit is 1.
    const double x =
        std::clamp(static_cast<double>(counts_[i]) / scale, -1.0, 1.0);
    const auto level = static_cast<unsigned>(
        std::lround((x + 1.0) / 2.0 * static_cast<double>(levels)));
    for (unsigned p = 0; p < bits; ++p) {
      if ((level >> p) & 1u) planes[p].set(i, true);
    }
  }
  return planes;
}

}  // namespace robusthd::hv
