#include "robusthd/hv/sequence.hpp"

#include <cassert>

namespace robusthd::hv {

SequenceEncoder::SequenceEncoder(std::size_t alphabet, const Config& config)
    : dim_(config.dimension), n_(std::max<std::size_t>(config.ngram, 1)) {
  util::Xoshiro256 rng(config.seed);
  symbols_.reserve(alphabet);
  for (std::size_t s = 0; s < alphabet; ++s) {
    symbols_.push_back(BinVec::random(dim_, rng));
  }
  // Pre-rotate every symbol by every in-gram position (rotation is the
  // slow op; n-gram assembly then reduces to XORs of cached vectors).
  rotated_.reserve(n_ * alphabet);
  for (std::size_t p = 0; p < n_; ++p) {
    const std::size_t amount = n_ - 1 - p;
    for (std::size_t s = 0; s < alphabet; ++s) {
      rotated_.push_back(symbols_[s].rotated(amount));
    }
  }
  tie_break_ = BinVec::random(dim_, rng);
}

BinVec SequenceEncoder::encode_ngram(
    std::span<const std::size_t> window) const {
  assert(window.size() == n_);
  BinVec gram = rotated_[0 * symbols_.size() + window[0]];
  for (std::size_t p = 1; p < n_; ++p) {
    gram.bind(rotated_[p * symbols_.size() + window[p]]);
  }
  return gram;
}

BinVec SequenceEncoder::encode(std::span<const std::size_t> sequence) const {
  if (sequence.empty()) return BinVec(dim_);
  if (sequence.size() < n_) {
    // Partial gram: bind what we have at the rightmost positions.
    BinVec gram(dim_);
    bool first = true;
    const std::size_t offset = n_ - sequence.size();
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      const auto& code = rotated_[(offset + i) * symbols_.size() + sequence[i]];
      if (first) {
        gram = code;
        first = false;
      } else {
        gram.bind(code);
      }
    }
    return gram;
  }
  BitSliceCounter acc(dim_);
  for (std::size_t t = 0; t + n_ <= sequence.size(); ++t) {
    acc.add(encode_ngram(sequence.subspan(t, n_)));
  }
  return acc.threshold_majority(&tie_break_);
}

}  // namespace robusthd::hv
