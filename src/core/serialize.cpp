#include "robusthd/core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace robusthd::core {

namespace {

constexpr std::uint32_t kMagic = 0x52484431;  // "RHD1"

/// Fixed-layout header (all little-endian on the platforms we target;
/// written/read with memcpy so alignment is never an issue).
struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = 1;
  std::uint64_t dimension = 0;
  std::uint64_t levels = 0;
  std::uint64_t encoder_seed = 0;
  std::uint64_t feature_count = 0;
  std::uint32_t precision_bits = 1;
  std::uint32_t num_classes = 0;
};

template <typename T>
void append(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_at(std::span<const std::byte> blob, std::size_t& offset) {
  if (offset + sizeof(T) > blob.size()) {
    throw std::runtime_error("robusthd: truncated model blob");
  }
  T value;
  std::memcpy(&value, blob.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::byte> serialize(const HdcClassifier& classifier) {
  const auto& model = classifier.model();
  const auto& encoder_config = classifier.encoder_config();

  Header header;
  header.dimension = encoder_config.dimension;
  header.levels = encoder_config.levels;
  header.encoder_seed = encoder_config.seed;
  header.feature_count = classifier.encoder().feature_count();
  header.precision_bits = model.precision_bits();
  header.num_classes = static_cast<std::uint32_t>(model.num_classes());

  std::vector<std::byte> out;
  append(out, header);
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    const auto& planes = model.class_vector(c).planes;
    for (const auto& plane : planes) {
      const auto words = plane.words();
      const auto* p = reinterpret_cast<const std::byte*>(words.data());
      out.insert(out.end(), p, p + words.size_bytes());
    }
  }
  return out;
}

HdcClassifier deserialize(std::span<const std::byte> blob) {
  std::size_t offset = 0;
  const auto header = read_at<Header>(blob, offset);
  if (header.magic != kMagic) {
    throw std::runtime_error("robusthd: not a RobustHD model blob");
  }
  if (header.version != 1) {
    throw std::runtime_error("robusthd: unsupported model version");
  }
  if (header.num_classes == 0 || header.dimension == 0 ||
      header.precision_bits == 0 || header.precision_bits > 8) {
    throw std::runtime_error("robusthd: malformed model header");
  }

  const std::size_t dim = header.dimension;
  const std::size_t word_bytes = util::words_for_bits(dim) * 8;

  std::vector<model::ClassVector> classes(header.num_classes);
  for (auto& cv : classes) {
    cv.planes.reserve(header.precision_bits);
    for (std::uint32_t p = 0; p < header.precision_bits; ++p) {
      hv::BinVec plane(dim);
      if (offset + word_bytes > blob.size()) {
        throw std::runtime_error("robusthd: truncated model planes");
      }
      std::memcpy(plane.mutable_words().data(), blob.data() + offset,
                  word_bytes);
      offset += word_bytes;
      plane.mask_tail();
      cv.planes.push_back(std::move(plane));
    }
  }

  hv::EncoderConfig encoder_config;
  encoder_config.dimension = dim;
  encoder_config.levels = header.levels;
  encoder_config.seed = header.encoder_seed;
  return HdcClassifier::assemble(
      encoder_config, header.feature_count,
      model::HdcModel::from_planes(std::move(classes),
                                   header.precision_bits));
}

void save_model(const HdcClassifier& classifier, const std::string& path) {
  const auto blob = serialize(classifier);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("robusthd: cannot open " + path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) throw std::runtime_error("robusthd: write failed: " + path);
}

HdcClassifier load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("robusthd: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::byte> blob(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("robusthd: read failed: " + path);
  return deserialize(blob);
}

}  // namespace robusthd::core
