#include "robusthd/core/serialize.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "robusthd/util/bitops.hpp"
#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/fsio.hpp"

namespace robusthd::core {

namespace {

constexpr std::uint32_t kMagicRhd1 = 0x52484431;  // "RHD1"
constexpr std::uint32_t kMagicRhd2 = 0x52484432;  // "RHD2"

/// Legacy fixed-layout header (48 bytes, no padding; all little-endian on
/// the platforms we target; written/read with memcpy so alignment is
/// never an issue).
struct HeaderV1 {
  std::uint32_t magic = kMagicRhd1;
  std::uint32_t version = kFormatRhd1;
  std::uint64_t dimension = 0;
  std::uint64_t levels = 0;
  std::uint64_t encoder_seed = 0;
  std::uint64_t feature_count = 0;
  std::uint32_t precision_bits = 1;
  std::uint32_t num_classes = 0;
};
static_assert(sizeof(HeaderV1) == 48, "HeaderV1 must be packed");

/// RHD2 header: the V1 fields plus explicit payload length and two
/// CRC32C sums. header_crc covers the 60 bytes preceding it, so a flip
/// anywhere in the header (shape fields *or* the payload CRC itself) is
/// caught before the payload is even looked at.
struct HeaderV2 {
  std::uint32_t magic = kMagicRhd2;
  std::uint32_t version = kFormatRhd2;
  std::uint64_t dimension = 0;
  std::uint64_t levels = 0;
  std::uint64_t encoder_seed = 0;
  std::uint64_t feature_count = 0;
  std::uint32_t precision_bits = 1;
  std::uint32_t num_classes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
};
static_assert(sizeof(HeaderV2) == 64, "HeaderV2 must be packed");
constexpr std::size_t kHeaderCrcCoverage =
    sizeof(HeaderV2) - sizeof(std::uint32_t);

template <typename T>
void append(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_at(std::span<const std::byte> blob, std::size_t& offset) {
  if (offset + sizeof(T) > blob.size()) {
    throw SerializeError(SerializeError::Code::kTruncated,
                         "robusthd: truncated model blob");
  }
  T value;
  std::memcpy(&value, blob.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

[[noreturn]] void reject(
    const char* what,
    SerializeError::Code code = SerializeError::Code::kMalformed) {
  throw SerializeError(code, std::string("robusthd: ") + what);
}

/// The shape fields shared by both header versions, after validation.
struct Shape {
  std::uint64_t dimension;
  std::uint64_t levels;
  std::uint64_t encoder_seed;
  std::uint64_t feature_count;
  std::uint32_t precision_bits;
  std::uint32_t num_classes;

  std::size_t plane_bytes() const noexcept {
    return util::words_for_bits(static_cast<std::size_t>(dimension)) * 8;
  }
  std::uint64_t payload_bytes() const noexcept {
    return static_cast<std::uint64_t>(num_classes) * precision_bits *
           plane_bytes();
  }
};

/// Every bound is checked before a single byte of payload is touched or a
/// single allocation sized from the header is made — a corrupted header
/// must fail here, not in operator new.
void validate_shape(const Shape& shape) {
  if (shape.num_classes == 0 || shape.dimension == 0 ||
      shape.precision_bits == 0 || shape.precision_bits > 8) {
    reject("malformed model header");
  }
  if (shape.dimension > kMaxDimension) {
    reject("model header dimension exceeds sanity bound");
  }
  if (shape.levels > kMaxLevels) {
    reject("model header levels exceeds sanity bound");
  }
  if (shape.feature_count > kMaxFeatureCount) {
    reject("model header feature count exceeds sanity bound");
  }
  if (shape.num_classes > kMaxClasses) {
    reject("model header class count exceeds sanity bound");
  }
}

Shape shape_of(const HeaderV1& h) {
  return {h.dimension, h.levels,          h.encoder_seed,
          h.feature_count, h.precision_bits, h.num_classes};
}

Shape shape_of(const HeaderV2& h) {
  return {h.dimension, h.levels,          h.encoder_seed,
          h.feature_count, h.precision_bits, h.num_classes};
}

/// Parses and fully validates a blob's header: magic/version dispatch,
/// sanity bounds, exact blob size (no trailing bytes), and — for RHD2 —
/// both CRCs. Returns the validated shape plus the payload offset.
struct ValidatedBlob {
  Shape shape;
  std::size_t payload_offset;
  std::uint32_t version;
};

/// Header-prefix validation shared by validate() and inspect_header():
/// magic/version dispatch, sanity bounds, and — for RHD2 — the header
/// CRC and header/shape payload-size consistency. Never reads a payload
/// byte, so it works on a bare header prefix read from a file.
ValidatedBlob validate_header(std::span<const std::byte> prefix) {
  std::size_t offset = 0;
  const auto magic = read_at<std::uint32_t>(prefix, offset);

  if (magic == kMagicRhd2) {
    if (prefix.size() < sizeof(HeaderV2)) {
      reject("truncated model blob", SerializeError::Code::kTruncated);
    }
    HeaderV2 header;
    std::memcpy(&header, prefix.data(), sizeof(header));
    if (header.version != kFormatRhd2) {
      reject("unsupported model version");
    }
    // Header CRC first: nothing else in the header is trustworthy until
    // it verifies.
    if (util::crc32c(prefix.data(), kHeaderCrcCoverage) != header.header_crc) {
      reject("model header failed integrity check (CRC32C mismatch)",
             SerializeError::Code::kIntegrity);
    }
    const Shape shape = shape_of(header);
    validate_shape(shape);
    if (header.payload_bytes != shape.payload_bytes()) {
      reject("model header payload size disagrees with model shape");
    }
    return {shape, sizeof(HeaderV2), kFormatRhd2};
  }

  if (magic == kMagicRhd1) {
    if (prefix.size() < sizeof(HeaderV1)) {
      reject("truncated model blob", SerializeError::Code::kTruncated);
    }
    HeaderV1 header;
    std::memcpy(&header, prefix.data(), sizeof(header));
    if (header.version != kFormatRhd1) {
      reject("unsupported model version");
    }
    const Shape shape = shape_of(header);
    validate_shape(shape);
    return {shape, sizeof(HeaderV1), kFormatRhd1};
  }

  reject("not a RobustHD model blob");
}

ValidatedBlob validate(std::span<const std::byte> blob) {
  const ValidatedBlob validated = validate_header(blob);
  const std::uint64_t payload_bytes = validated.shape.payload_bytes();
  // Size-exactness holds for both formats: a blob is header + payload and
  // nothing else.
  if (blob.size() != validated.payload_offset + payload_bytes) {
    reject(blob.size() < validated.payload_offset + payload_bytes
               ? "truncated model blob"
               : "trailing bytes after model payload",
           blob.size() < validated.payload_offset + payload_bytes
               ? SerializeError::Code::kTruncated
               : SerializeError::Code::kMalformed);
  }
  if (validated.version >= kFormatRhd2) {
    HeaderV2 header;
    std::memcpy(&header, blob.data(), sizeof(header));
    if (util::crc32c(blob.subspan(sizeof(HeaderV2))) != header.payload_crc) {
      reject("model payload failed integrity check (CRC32C mismatch)",
             SerializeError::Code::kIntegrity);
    }
  }
  return validated;
}

/// Appends every class plane's raw words (the payload both formats share).
void append_planes(std::vector<std::byte>& out, const model::HdcModel& model) {
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    for (const auto& plane : model.class_vector(c).planes) {
      const auto words = plane.words();
      const auto* p = reinterpret_cast<const std::byte*>(words.data());
      out.insert(out.end(), p, p + words.size_bytes());
    }
  }
}

/// Rebuilds the class planes from a validated blob's payload (the model
/// half of deserialize(), shared with deserialize_model()).
model::HdcModel planes_from_validated(std::span<const std::byte> blob,
                                      const ValidatedBlob& validated) {
  const Shape& shape = validated.shape;
  const auto dim = static_cast<std::size_t>(shape.dimension);
  const std::size_t plane_bytes = shape.plane_bytes();
  std::size_t offset = validated.payload_offset;

  std::vector<model::ClassVector> classes(shape.num_classes);
  for (auto& cv : classes) {
    cv.planes.reserve(shape.precision_bits);
    for (std::uint32_t p = 0; p < shape.precision_bits; ++p) {
      hv::BinVec plane(dim);
      std::memcpy(plane.mutable_words().data(), blob.data() + offset,
                  plane_bytes);
      offset += plane_bytes;
      plane.mask_tail();
      cv.planes.push_back(std::move(plane));
    }
  }
  return model::HdcModel::from_planes(std::move(classes),
                                      shape.precision_bits);
}

/// Serialises any model to an RHD2 blob, with the encoder fields caller-
/// supplied (serialize() passes the classifier's real values).
std::vector<std::byte> serialize_model_with(const model::HdcModel& model,
                                            std::uint64_t levels,
                                            std::uint64_t encoder_seed,
                                            std::uint64_t feature_count) {
  HeaderV2 header;
  header.dimension = model.dimension();
  header.levels = levels;
  header.encoder_seed = encoder_seed;
  header.feature_count = feature_count;
  header.precision_bits = model.precision_bits();
  header.num_classes = static_cast<std::uint32_t>(model.num_classes());

  std::vector<std::byte> out;
  out.resize(sizeof(HeaderV2));  // patched below once the CRCs are known
  append_planes(out, model);

  header.payload_bytes = out.size() - sizeof(HeaderV2);
  header.payload_crc =
      util::crc32c(std::span<const std::byte>(out).subspan(sizeof(HeaderV2)));
  header.header_crc = util::crc32c(&header, kHeaderCrcCoverage);
  std::memcpy(out.data(), &header, sizeof(header));
  return out;
}

BlobInfo info_of(const ValidatedBlob& validated) {
  BlobInfo info;
  info.version = validated.version;
  info.dimension = static_cast<std::size_t>(validated.shape.dimension);
  info.levels = static_cast<std::size_t>(validated.shape.levels);
  info.encoder_seed = validated.shape.encoder_seed;
  info.feature_count = static_cast<std::size_t>(validated.shape.feature_count);
  info.precision_bits = validated.shape.precision_bits;
  info.num_classes = validated.shape.num_classes;
  info.integrity_checked = validated.version >= kFormatRhd2;
  return info;
}

}  // namespace

std::vector<std::byte> serialize(const HdcClassifier& classifier) {
  const auto& encoder_config = classifier.encoder_config();
  return serialize_model_with(classifier.model(), encoder_config.levels,
                              encoder_config.seed,
                              classifier.encoder().feature_count());
}

std::vector<std::byte> serialize_model(const model::HdcModel& model,
                                       const ModelMeta& meta) {
  return serialize_model_with(model, meta.levels, meta.encoder_seed,
                              meta.feature_count);
}

std::vector<std::byte> serialize_rhd1(const HdcClassifier& classifier) {
  const auto& model = classifier.model();
  const auto& encoder_config = classifier.encoder_config();

  HeaderV1 header;
  header.dimension = encoder_config.dimension;
  header.levels = encoder_config.levels;
  header.encoder_seed = encoder_config.seed;
  header.feature_count = classifier.encoder().feature_count();
  header.precision_bits = model.precision_bits();
  header.num_classes = static_cast<std::uint32_t>(model.num_classes());

  std::vector<std::byte> out;
  append(out, header);
  append_planes(out, classifier.model());
  return out;
}

BlobInfo inspect(std::span<const std::byte> blob) {
  return info_of(validate(blob));
}

BlobInfo inspect_header(std::span<const std::byte> header_prefix) {
  return info_of(validate_header(header_prefix));
}

std::size_t expected_blob_bytes(const BlobInfo& info) {
  const std::size_t header_bytes =
      info.version >= kFormatRhd2 ? sizeof(HeaderV2) : sizeof(HeaderV1);
  const std::size_t plane_bytes =
      util::words_for_bits(info.dimension) * sizeof(std::uint64_t);
  return header_bytes + info.num_classes * info.precision_bits * plane_bytes;
}

HdcClassifier deserialize(std::span<const std::byte> blob) {
  const auto validated = validate(blob);
  const Shape& shape = validated.shape;

  hv::EncoderConfig encoder_config;
  encoder_config.dimension = static_cast<std::size_t>(shape.dimension);
  encoder_config.levels = static_cast<std::size_t>(shape.levels);
  encoder_config.seed = shape.encoder_seed;
  return HdcClassifier::assemble(
      encoder_config, static_cast<std::size_t>(shape.feature_count),
      planes_from_validated(blob, validated));
}

model::HdcModel deserialize_model(std::span<const std::byte> blob) {
  const auto validated = validate(blob);
  return planes_from_validated(blob, validated);
}

namespace {

/// Shared body of the two save_model overloads: atomic, durable replace.
void save_blob(const std::vector<std::byte>& blob, const std::string& path) {
  try {
    util::atomic_write_file(path, blob);
  } catch (const util::FsError& e) {
    throw SerializeError(SerializeError::Code::kIo, e.what());
  }
}

/// The validate-before-allocate file loader both load paths share: read
/// the header prefix, validate it, bound the allocation by what the
/// validated header promises, then read and fully validate the blob.
std::vector<std::byte> load_blob(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw SerializeError(SerializeError::Code::kIo,
                         "robusthd: cannot open " + path);
  }
  const std::streampos end = in.tellg();
  if (end == std::streampos(-1)) {
    throw SerializeError(SerializeError::Code::kEmpty,
                         "robusthd: cannot determine size of " + path);
  }
  const auto file_size = static_cast<std::uint64_t>(end);
  if (file_size == 0) {
    throw SerializeError(SerializeError::Code::kEmpty,
                         "robusthd: " + path + " is empty");
  }
  // Header first: nothing payload-sized is allocated until the header
  // verified (same policy as the wire path's validate-before-allocate).
  std::array<std::byte, sizeof(HeaderV2)> prefix{};
  const std::size_t prefix_bytes =
      static_cast<std::size_t>(std::min<std::uint64_t>(file_size,
                                                       prefix.size()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(prefix.data()),
          static_cast<std::streamsize>(prefix_bytes));
  if (!in) {
    throw SerializeError(SerializeError::Code::kIo,
                         "robusthd: read failed: " + path);
  }
  const BlobInfo info =
      inspect_header(std::span<const std::byte>(prefix.data(), prefix_bytes));
  const std::size_t expected = expected_blob_bytes(info);
  if (file_size != expected) {
    reject(file_size < expected ? "truncated model blob"
                                : "trailing bytes after model payload",
           file_size < expected ? SerializeError::Code::kTruncated
                                : SerializeError::Code::kMalformed);
  }
  std::vector<std::byte> blob(expected);
  std::memcpy(blob.data(), prefix.data(), prefix_bytes);
  in.read(reinterpret_cast<char*>(blob.data() + prefix_bytes),
          static_cast<std::streamsize>(expected - prefix_bytes));
  if (!in) {
    throw SerializeError(SerializeError::Code::kIo,
                         "robusthd: read failed: " + path);
  }
  return blob;
}

}  // namespace

void save_model(const HdcClassifier& classifier, const std::string& path) {
  save_blob(serialize(classifier), path);
}

void save_model(const model::HdcModel& model, const std::string& path,
                const ModelMeta& meta) {
  save_blob(serialize_model(model, meta), path);
}

HdcClassifier load_model(const std::string& path) {
  return deserialize(load_blob(path));
}

model::HdcModel load_model_planes(const std::string& path) {
  return deserialize_model(load_blob(path));
}

}  // namespace robusthd::core
