#include "robusthd/core/hdc_classifier.hpp"

namespace robusthd::core {

HdcClassifier HdcClassifier::train(const data::Dataset& train_data,
                                   const HdcClassifierConfig& config) {
  HdcClassifier out;
  out.encoder_config_ = config.encoder;
  out.encoder_ = std::make_shared<const hv::RecordEncoder>(
      train_data.feature_count(), config.encoder);
  const auto encoded = out.encoder_->encode_all(train_data);
  out.model_ = model::HdcModel::train(encoded, train_data.labels,
                                      train_data.num_classes, config.model);
  return out;
}

HdcClassifier HdcClassifier::assemble(const hv::EncoderConfig& encoder_config,
                                      std::size_t feature_count,
                                      model::HdcModel model) {
  HdcClassifier out;
  out.encoder_config_ = encoder_config;
  out.encoder_ =
      std::make_shared<const hv::RecordEncoder>(feature_count, encoder_config);
  out.model_ = std::move(model);
  return out;
}

int HdcClassifier::predict(std::span<const float> features) const {
  return model_.predict(encoder_->encode(features));
}

int HdcClassifier::predict_and_recover(std::span<const float> features) {
  const auto query = encoder_->encode(features);
  if (engine_ != nullptr) {
    return engine_->observe(query).predicted;
  }
  return model_.predict(query);
}

void HdcClassifier::enable_recovery(const model::RecoveryConfig& config) {
  engine_ = std::make_unique<model::RecoveryEngine>(model_, config);
}

std::vector<fault::MemoryRegion> HdcClassifier::memory_regions() {
  return model_.memory_regions();
}

std::unique_ptr<baseline::Classifier> HdcClassifier::clone() const {
  auto copy = std::make_unique<HdcClassifier>();
  copy->encoder_config_ = encoder_config_;
  copy->encoder_ = encoder_;  // item memory is immutable and shared
  copy->model_ = model_;
  // Recovery engines hold a reference to their model; clones start without
  // one and re-enable as needed.
  return copy;
}

}  // namespace robusthd::core
