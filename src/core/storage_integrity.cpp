#include "robusthd/core/storage_integrity.hpp"

#include <cmath>
#include <stdexcept>

#include "robusthd/core/serialize.hpp"
#include "robusthd/fault/injector.hpp"

namespace robusthd::core {

namespace {

/// One corrupted-copy trial: flip `flips` distinct bits, try to load.
void run_trial(IntegrityCell& cell, std::span<const std::byte> blob,
               std::size_t flips, util::Xoshiro256& rng) {
  ++cell.trials;
  std::vector<std::byte> copy(blob.begin(), blob.end());
  fault::MemoryRegion region{copy, 1, "blob"};
  const auto flipped = fault::BitFlipInjector::flip_random_bits(
      region, flips, rng);

  bool loaded = true;
  try {
    deserialize(copy);
  } catch (const std::runtime_error&) {
    loaded = false;
  }

  if (flipped == 0) {
    if (!loaded) {
      throw std::runtime_error(
          "storage_roundtrip: pristine blob failed to load — the input "
          "blob is invalid");
    }
    ++cell.loaded_clean;
    return;
  }
  ++cell.corrupted;
  if (!loaded) ++cell.detected;
}

}  // namespace

IntegrityCell storage_roundtrip(std::span<const std::byte> blob, double rate,
                                std::size_t trials, util::Xoshiro256& rng) {
  IntegrityCell cell;
  cell.flip_rate = rate;
  const auto flips = static_cast<std::size_t>(
      std::llround(rate * static_cast<double>(blob.size() * 8)));
  for (std::size_t t = 0; t < trials; ++t) {
    run_trial(cell, blob, flips, rng);
  }
  return cell;
}

IntegrityCell storage_single_bit(std::span<const std::byte> blob,
                                 std::size_t trials, util::Xoshiro256& rng) {
  IntegrityCell cell;
  cell.flip_rate =
      blob.empty() ? 0.0 : 1.0 / static_cast<double>(blob.size() * 8);
  for (std::size_t t = 0; t < trials; ++t) {
    run_trial(cell, blob, 1, rng);
  }
  return cell;
}

}  // namespace robusthd::core
