#include "robusthd/core/protected_model.hpp"

#include <cstring>

namespace robusthd::core {

EccProtectedModel::EccProtectedModel(model::HdcModel& model) : model_(model) {
  for (std::size_t c = 0; c < model_.num_classes(); ++c) {
    for (const auto& plane : model_.class_vector(c).planes) {
      const auto words = plane.words();
      planes_.emplace_back(std::as_bytes(words));
    }
  }
}

std::vector<fault::MemoryRegion> EccProtectedModel::memory_regions() {
  std::vector<fault::MemoryRegion> regions;
  regions.reserve(planes_.size() * 2);
  for (std::size_t i = 0; i < planes_.size(); ++i) {
    regions.push_back(fault::MemoryRegion{
        planes_[i].stored_data(), 1, "ecc/data" + std::to_string(i)});
    regions.push_back(fault::MemoryRegion{
        planes_[i].stored_checks(), 1, "ecc/check" + std::to_string(i)});
  }
  return regions;
}

std::vector<fault::ConstMemoryRegion> EccProtectedModel::memory_regions()
    const {
  std::vector<fault::ConstMemoryRegion> regions;
  regions.reserve(planes_.size() * 2);
  for (std::size_t i = 0; i < planes_.size(); ++i) {
    regions.push_back(fault::ConstMemoryRegion{
        planes_[i].stored_data(), 1, "ecc/data" + std::to_string(i)});
    regions.push_back(fault::ConstMemoryRegion{
        planes_[i].stored_checks(), 1, "ecc/check" + std::to_string(i)});
  }
  return regions;
}

mem::EccProtectedMemory::ScrubReport EccProtectedModel::scrub_and_refresh() {
  mem::EccProtectedMemory::ScrubReport total;
  std::size_t slot = 0;
  for (std::size_t c = 0; c < model_.num_classes(); ++c) {
    for (auto& plane : model_.class_vector(c).planes) {
      auto words = plane.mutable_words();
      auto bytes = std::as_writable_bytes(words);
      const auto report = planes_[slot].read_all(bytes);
      plane.mask_tail();
      total.clean += report.clean;
      total.corrected += report.corrected;
      total.uncorrectable += report.uncorrectable;
      ++slot;
    }
  }
  return total;
}

std::size_t EccProtectedModel::stored_bits() const noexcept {
  std::size_t bits = 0;
  for (const auto& p : planes_) {
    bits += p.word_count() * 64 + p.overhead_bits();
  }
  return bits;
}

}  // namespace robusthd::core
