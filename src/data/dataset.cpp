#include "robusthd/data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <array>
#include <limits>
#include <stdexcept>

namespace robusthd::data {

namespace {

// Table 2 of the paper, plus a per-dataset separability chosen so synthetic
// clean accuracies fall in realistic ranges (MNIST/FACE easy, PAMAP/PECAN
// harder).
const std::array<DatasetSpec, 6> kSpecs{{
    {"MNIST", 784, 10, 60000, 10000, "Handwritten Recognition", 1.6},
    {"UCIHAR", 561, 12, 6213, 1554, "Activity Recognition (Mobile)", 1.3},
    {"ISOLET", 617, 26, 6238, 1559, "Voice Recognition", 1.3},
    {"FACE", 608, 2, 522441, 2494, "Face Recognition", 1.8},
    {"PAMAP", 75, 5, 611142, 101582, "Activity Recognition (IMU)", 1.1},
    {"PECAN", 312, 3, 22290, 5574, "Urban Electricity Prediction", 0.9},
}};

}  // namespace

std::span<const DatasetSpec> paper_datasets() { return kSpecs; }

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const auto& s : kSpecs) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown dataset: " + name);
}

DatasetSpec scaled(const DatasetSpec& spec, std::size_t max_train,
                   std::size_t max_test) {
  DatasetSpec s = spec;
  s.train_size = std::min(s.train_size, max_train);
  s.test_size = std::min(s.test_size, max_test);
  return s;
}

void normalize_minmax(Split& split) {
  const std::size_t n = split.train.feature_count();
  if (n == 0 || split.train.size() == 0) return;
  // Robust per-feature range: 2nd..98th percentile of the training data, so
  // a handful of outliers cannot compress the useful dynamic range into a
  // sliver of the quantisation levels (outliers clamp to the edges).
  std::vector<float> lo(n), hi(n);
  std::vector<float> column(split.train.size());
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < column.size(); ++r) {
      column[r] = split.train.features(r, c);
    }
    std::sort(column.begin(), column.end());
    const auto last = static_cast<double>(column.size() - 1);
    lo[c] = column[static_cast<std::size_t>(std::llround(last * 0.02))];
    hi[c] = column[static_cast<std::size_t>(std::llround(last * 0.98))];
  }
  auto apply = [&](Dataset& d) {
    for (std::size_t r = 0; r < d.size(); ++r) {
      auto row = d.features.row(r);
      for (std::size_t c = 0; c < n; ++c) {
        const float range = hi[c] - lo[c];
        const float v = range > 0.0f ? (row[c] - lo[c]) / range : 0.5f;
        row[c] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  };
  apply(split.train);
  apply(split.test);
}

}  // namespace robusthd::data
