#include "robusthd/data/loader.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "robusthd/util/rng.hpp"

namespace robusthd::data {

namespace {

std::vector<std::string> split_fields(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, delimiter)) {
    // Trim surrounding whitespace.
    const auto begin = field.find_first_not_of(" \t\r");
    const auto end = field.find_last_not_of(" \t\r");
    fields.push_back(begin == std::string::npos
                         ? std::string{}
                         : field.substr(begin, end - begin + 1));
  }
  if (!line.empty() && line.back() == delimiter) fields.emplace_back();
  return fields;
}

float parse_float(const std::string& token, std::size_t line_number) {
  try {
    std::size_t consumed = 0;
    const float value = std::stof(token, &consumed);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("robusthd: non-numeric feature '" + token +
                             "' on line " + std::to_string(line_number));
  }
}

}  // namespace

Dataset parse_csv(const std::string& content, const CsvOptions& options) {
  std::istringstream stream(content);
  std::string line;
  std::size_t line_number = 0;

  std::vector<std::vector<float>> rows;
  std::vector<std::string> raw_labels;
  std::size_t width = 0;

  while (std::getline(stream, line)) {
    ++line_number;
    if (line_number == 1 && options.has_header) continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    const auto fields = split_fields(line, options.delimiter);
    if (fields.size() < 2) {
      throw std::runtime_error("robusthd: line " +
                               std::to_string(line_number) +
                               " has fewer than 2 fields");
    }
    if (width == 0) {
      width = fields.size();
    } else if (fields.size() != width) {
      throw std::runtime_error("robusthd: ragged CSV at line " +
                               std::to_string(line_number));
    }

    const int raw_index = options.label_column;
    const std::size_t label_index =
        raw_index >= 0 ? static_cast<std::size_t>(raw_index)
                       : fields.size() - static_cast<std::size_t>(-raw_index);
    if (label_index >= fields.size()) {
      throw std::runtime_error("robusthd: label column out of range");
    }

    std::vector<float> features;
    features.reserve(fields.size() - 1);
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i == label_index) continue;
      features.push_back(parse_float(fields[i], line_number));
    }
    rows.push_back(std::move(features));
    raw_labels.push_back(fields[label_index]);
  }

  if (rows.empty()) throw std::runtime_error("robusthd: empty CSV");

  // Dense label re-indexing in first-appearance order.
  std::map<std::string, int> label_ids;
  Dataset dataset;
  dataset.labels.reserve(rows.size());
  for (const auto& raw : raw_labels) {
    const auto [it, inserted] =
        label_ids.emplace(raw, static_cast<int>(label_ids.size()));
    dataset.labels.push_back(it->second);
    (void)inserted;
  }
  dataset.num_classes = label_ids.size();

  dataset.features = util::Matrix(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(),
              dataset.features.row(r).begin());
  }
  return dataset;
}

Dataset load_csv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("robusthd: cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return parse_csv(content.str(), options);
}

Split train_test_split(const Dataset& dataset, double train_fraction,
                       std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("train_fraction must be in (0, 1)");
  }
  std::vector<std::size_t> order(dataset.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  util::Xoshiro256 rng(seed);
  util::shuffle(std::span<std::size_t>(order), rng);

  const auto train_count = static_cast<std::size_t>(
      train_fraction * static_cast<double>(dataset.size()));

  Split split;
  auto fill = [&](Dataset& out, std::size_t begin, std::size_t end) {
    out.num_classes = dataset.num_classes;
    out.features = util::Matrix(end - begin, dataset.feature_count());
    out.labels.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const auto src = dataset.sample(order[i]);
      std::copy(src.begin(), src.end(),
                out.features.row(i - begin).begin());
      out.labels.push_back(dataset.labels[order[i]]);
    }
  };
  fill(split.train, 0, train_count);
  fill(split.test, train_count, dataset.size());
  return split;
}

}  // namespace robusthd::data
