#include "robusthd/data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace robusthd::data {

namespace {

/// Per-(cluster, feature) anchor index table for one class.
struct ClassModel {
  // clusters × features anchor indices.
  std::vector<std::vector<std::uint8_t>> clusters;
};

/// Fraction of informative features on which a secondary cluster deviates
/// from its class's base anchor pattern (intra-class multi-modality).
constexpr double kClusterDeviation = 0.15;

struct Generator {
  const DatasetSpec& spec;
  const SynthConfig& cfg;
  std::vector<ClassModel> models;
  std::vector<bool> shared;          ///< feature carries no class signal
  std::vector<std::uint8_t> shared_anchor;
  double confuser_fraction = 0.0;

  Generator(const DatasetSpec& s, const SynthConfig& c, util::Xoshiro256& rng)
      : spec(s), cfg(c) {
    const std::size_t n = spec.feature_count;
    const auto anchors = static_cast<std::uint8_t>(
        std::max<std::size_t>(cfg.anchor_count, 2));

    // The spec's separability scales task difficulty through the confuser
    // fraction: easier benchmarks (MNIST, FACE) have fewer boundary
    // samples, harder ones (PECAN, PAMAP) more.
    confuser_fraction = std::clamp(
        cfg.confuser_fraction * (2.0 - spec.separability), 0.02, 0.45);

    shared.resize(n);
    shared_anchor.resize(n);
    for (std::size_t f = 0; f < n; ++f) {
      shared[f] = rng.uniform() < cfg.shared_feature_fraction;
      shared_anchor[f] = static_cast<std::uint8_t>(rng.below(anchors));
    }

    models.resize(spec.num_classes);
    for (auto& m : models) {
      m.clusters.resize(std::max<std::size_t>(cfg.clusters_per_class, 1));
      // Base pattern for the class...
      auto& base = m.clusters[0];
      base.resize(n);
      for (std::size_t f = 0; f < n; ++f) {
        base[f] = shared[f] ? shared_anchor[f]
                            : static_cast<std::uint8_t>(rng.below(anchors));
      }
      // ...secondary clusters deviate on a slice of the informative dims.
      for (std::size_t k = 1; k < m.clusters.size(); ++k) {
        m.clusters[k] = base;
        for (std::size_t f = 0; f < n; ++f) {
          if (!shared[f] && rng.uniform() < kClusterDeviation) {
            m.clusters[k][f] =
                static_cast<std::uint8_t>(rng.below(anchors));
          }
        }
      }
    }
  }

  Dataset generate(std::size_t count, util::Xoshiro256& rng) const {
    Dataset d;
    d.num_classes = spec.num_classes;
    d.features = util::Matrix(count, spec.feature_count);
    d.labels.resize(count);

    const auto anchors = static_cast<double>(
        std::max<std::size_t>(cfg.anchor_count, 2));
    const double spacing = 1.0 / (anchors - 1.0);

    const double sigma = cfg.within_noise * spacing;
    for (std::size_t i = 0; i < count; ++i) {
      const int label = static_cast<int>(rng.below(spec.num_classes));
      d.labels[i] = label;
      const auto& cls = models[static_cast<std::size_t>(label)];
      const auto& pattern = cls.clusters[static_cast<std::size_t>(
          rng.below(cls.clusters.size()))];

      // Confusable samples blend toward a random other class's pattern.
      double blend = 0.0;
      const std::vector<std::uint8_t>* rival = nullptr;
      if (spec.num_classes > 1 && rng.bernoulli(confuser_fraction)) {
        std::size_t other = rng.below(spec.num_classes - 1);
        if (other >= static_cast<std::size_t>(label)) ++other;
        rival = &models[other].clusters[0];
        blend = rng.uniform(cfg.confuser_blend_lo, cfg.confuser_blend_hi);
      }

      auto row = d.features.row(i);
      for (std::size_t f = 0; f < spec.feature_count; ++f) {
        // Confusers take each feature wholesale from the rival pattern
        // with probability `blend`. Feature-wise mixing (rather than value
        // interpolation) moves the sample continuously between the two
        // classes in encoding space, creating the full gradation of margin
        // hardness real datasets have; value blends snap to one side
        // through the bundler's majority threshold.
        const bool steal = rival != nullptr && rng.uniform() < blend;
        const double anchor =
            static_cast<double>(steal ? (*rival)[f] : pattern[f]) * spacing;
        row[f] = static_cast<float>(anchor + rng.normal(0.0, sigma));
      }
    }
    return d;
  }
};

}  // namespace

Split make_synthetic(const DatasetSpec& spec, const SynthConfig& cfg) {
  util::Xoshiro256 rng(cfg.seed ^ std::hash<std::string>{}(spec.name));
  const Generator gen(spec, cfg, rng);

  Split split;
  split.train = gen.generate(spec.train_size, rng);
  split.test = gen.generate(spec.test_size, rng);
  normalize_minmax(split);
  return split;
}

Split make_synthetic(const DatasetSpec& spec, std::uint64_t seed) {
  SynthConfig cfg;
  cfg.seed = seed;
  return make_synthetic(spec, cfg);
}

}  // namespace robusthd::data
