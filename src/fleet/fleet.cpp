#include "robusthd/fleet/fleet.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace robusthd::fleet {

Fleet::Fleet(std::vector<model::HdcModel> models, FleetConfig config) {
  if (models.empty()) {
    throw std::invalid_argument("Fleet needs at least one model/shard");
  }
  if (config.shards.empty()) {
    config.shards.resize(models.size());
  }
  if (config.shards.size() != models.size()) {
    throw std::invalid_argument(
        "FleetConfig::shards must match models (one config per shard)");
  }
  dimension_ = models[0].dimension();
  std::vector<std::string> groups;
  groups.reserve(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (models[i].dimension() != dimension_) {
      throw std::invalid_argument(
          "all fleet shards must serve the same dimension");
    }
    groups.push_back(config.shards[i].model_id);
    if (!config.persist_dir.empty() &&
        config.shards[i].server.persist.dir.empty()) {
      config.shards[i].server.persist.dir =
          config.persist_dir + "/shard-" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<Shard>(i, std::move(models[i]),
                                              std::move(config.shards[i])));
  }
  router_ = std::make_unique<Router>(std::move(groups), config.router);
}

Fleet::~Fleet() { shutdown(); }

void Fleet::refresh_health() noexcept {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    router_->set_healthy(i, shards_[i]->healthy());
  }
}

Router::Decision Fleet::route(std::uint64_t tenant_id) noexcept {
  refresh_health();
  const auto d = router_->route_healthy(tenant_id);
  if (d.failover) failovers_.fetch_add(1, std::memory_order_relaxed);
  if (d.all_unhealthy) {
    shed_unrouteable_.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

std::future<serve::Response> Fleet::submit(std::uint64_t tenant_id,
                                           hv::BinVec query) {
  const auto d = route(tenant_id);
  return shards_[d.shard]->server().submit(std::move(query));
}

std::optional<Fleet::TrySubmitResult> Fleet::try_submit(
    std::uint64_t tenant_id, hv::BinVec query,
    std::chrono::steady_clock::time_point deadline, SubmitReject* reject) {
  if (reject) *reject = SubmitReject::kNone;
  const auto d = route(tenant_id);
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      deadline_sheds_.fetch_add(1, std::memory_order_relaxed);
      if (reject) *reject = SubmitReject::kDeadline;
      return std::nullopt;
    }
    // Queue-aware admission: refusing now costs the client one cheap
    // error frame; admitting a request the queue cannot serve in time
    // costs a queue slot, a dequeue, and a shed anyway.
    const auto wait = std::chrono::nanoseconds(
        shards_[d.shard]->server().estimated_wait_ns());
    if (now + wait >= deadline) {
      deadline_sheds_.fetch_add(1, std::memory_order_relaxed);
      if (reject) *reject = SubmitReject::kPredictedLate;
      return std::nullopt;
    }
  }
  auto future =
      shards_[d.shard]->server().try_submit(std::move(query), deadline);
  if (!future) {
    if (reject) *reject = SubmitReject::kQueueFull;
    return std::nullopt;
  }
  TrySubmitResult r;
  r.future = std::move(*future);
  r.shard = d.shard;
  r.failover = d.failover;
  return r;
}

FleetStats Fleet::stats() const {
  FleetStats out;
  out.failovers = failovers_.load(std::memory_order_relaxed);
  out.shed_unrouteable = shed_unrouteable_.load(std::memory_order_relaxed);
  out.deadline_sheds = deadline_sheds_.load(std::memory_order_relaxed);
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.shards.push_back(shard->stats());
    const auto& s = out.shards.back();
    out.completed += s.completed;
    out.rejected += s.rejected;
    out.scrub_repairs += s.scrub_repairs;
    out.scrub_substituted_bits += s.scrub_substituted_bits;
    out.degraded_responses += s.degraded_responses;
    out.abstained_responses += s.abstained_responses;
    out.deadline_sheds += s.deadline_sheds;
    out.breaker_trips += s.breaker_trips;
  }
  return out;
}

void Fleet::drain() {
  for (auto& shard : shards_) shard->server().drain();
}

void Fleet::shutdown() {
  for (auto& shard : shards_) shard->server().shutdown();
}

}  // namespace robusthd::fleet
