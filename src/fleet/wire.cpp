#include "robusthd/fleet/wire.hpp"

#include <bit>
#include <cstring>

#include "robusthd/util/bitops.hpp"
#include "robusthd/util/crc32c.hpp"

namespace robusthd::fleet::wire {

namespace {

// All wire integers are little-endian. The serialisation below memcpys
// native values, which is correct on every platform this repo targets
// (x86-64 / aarch64 Linux); a big-endian port would byte-swap here.
static_assert(std::endian::native == std::endian::little,
              "wire format assumes a little-endian host");

template <typename T>
void put(std::vector<std::byte>& out, T value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T get(std::span<const std::byte> bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

bool valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::kPredictRequest) &&
         t <= static_cast<std::uint8_t>(FrameType::kPong);
}

}  // namespace

const char* wire_error_name(WireError e) noexcept {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad magic";
    case WireError::kBadType: return "bad frame type";
    case WireError::kBadVersion: return "unsupported header version";
    case WireError::kOversizedPayload: return "oversized payload length";
    case WireError::kHeaderCrcMismatch: return "header CRC mismatch";
    case WireError::kPayloadCrcMismatch: return "payload CRC mismatch";
    case WireError::kBadPayload: return "malformed payload";
  }
  return "unknown";
}

void append_frame(std::vector<std::byte>& out, FrameType type,
                  std::uint8_t flags, std::uint64_t tenant_id,
                  std::uint64_t request_id,
                  std::span<const std::byte> payload,
                  std::uint64_t deadline_ms) {
  const std::size_t header_at = out.size();
  // A zero deadline encodes as a version-0 header — byte-identical to
  // what the pre-deadline encoder emitted, so legacy peers keep parsing
  // us and our compat tests can assert bit-identity.
  const std::uint16_t version = deadline_ms == 0 ? 0 : 1;
  put<std::uint32_t>(out, kMagic);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  put<std::uint8_t>(out, flags);
  put<std::uint16_t>(out, version);
  put<std::uint64_t>(out, tenant_id);
  put<std::uint64_t>(out, request_id);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  if (version >= 1) put<std::uint64_t>(out, deadline_ms);
  const std::uint32_t header_crc =
      util::crc32c(out.data() + header_at, out.size() - header_at);
  put<std::uint32_t>(out, header_crc);
  out.insert(out.end(), payload.begin(), payload.end());
  put<std::uint32_t>(out, util::crc32c(payload));
}

void append_predict_request(std::vector<std::byte>& out,
                            std::uint64_t tenant_id, std::uint64_t request_id,
                            const hv::BinVec& query,
                            std::uint64_t deadline_ms) {
  std::vector<std::byte> payload;
  payload.reserve(4 + query.word_count() * 8);
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(query.dimension()));
  const auto words = query.words();
  const auto* p = reinterpret_cast<const std::byte*>(words.data());
  payload.insert(payload.end(), p, p + words.size_bytes());
  append_frame(out, FrameType::kPredictRequest, 0, tenant_id, request_id,
               payload, deadline_ms);
}

void append_predict_response(std::vector<std::byte>& out,
                             std::uint64_t tenant_id, std::uint64_t request_id,
                             const PredictResult& result) {
  std::vector<std::byte> payload;
  payload.reserve(20);
  put<std::int32_t>(payload, result.predicted);
  put<std::uint64_t>(payload, std::bit_cast<std::uint64_t>(result.confidence));
  put<std::uint64_t>(payload, result.model_version);
  std::uint8_t flags = 0;
  if (result.trusted) flags |= kFlagTrusted;
  if (result.degraded) flags |= kFlagDegraded;
  if (result.abstained) flags |= kFlagAbstained;
  append_frame(out, FrameType::kPredictResponse, flags, tenant_id, request_id,
               payload);
}

void append_error(std::vector<std::byte>& out, std::uint64_t tenant_id,
                  std::uint64_t request_id, ErrorCode code,
                  std::string_view message) {
  std::vector<std::byte> payload;
  if (message.size() > 256) message = message.substr(0, 256);
  payload.reserve(2 + message.size());
  put<std::uint16_t>(payload, static_cast<std::uint16_t>(code));
  const auto* p = reinterpret_cast<const std::byte*>(message.data());
  payload.insert(payload.end(), p, p + message.size());
  append_frame(out, FrameType::kError, 0, tenant_id, request_id, payload);
}

bool parse_predict_request(std::span<const std::byte> payload,
                           hv::BinVec& query) {
  if (payload.size() < 4) return false;
  const auto dim = get<std::uint32_t>(payload, 0);
  if (dim == 0 || dim > kMaxDimension) return false;
  const std::size_t words = util::words_for_bits(dim);
  if (payload.size() != 4 + words * 8) return false;
  hv::BinVec parsed(dim);
  std::memcpy(parsed.mutable_words().data(), payload.data() + 4, words * 8);
  // Reject tail garbage instead of silently masking it: a peer that sets
  // bits past `dim` either disagrees with us about the dimension or is
  // probing — both are protocol errors.
  if (words > 0) {
    const std::uint64_t last = parsed.words()[words - 1];
    hv::BinVec masked = parsed;
    masked.mask_tail();
    if (masked.words()[words - 1] != last) return false;
  }
  query = std::move(parsed);
  return true;
}

std::optional<PredictResult> parse_predict_response(const Frame& frame) {
  if (frame.payload.size() != 20) return std::nullopt;
  PredictResult r;
  r.predicted = get<std::int32_t>(frame.payload, 0);
  r.confidence =
      std::bit_cast<double>(get<std::uint64_t>(frame.payload, 4));
  r.model_version = get<std::uint64_t>(frame.payload, 12);
  r.trusted = (frame.flags & kFlagTrusted) != 0;
  r.degraded = (frame.flags & kFlagDegraded) != 0;
  r.abstained = (frame.flags & kFlagAbstained) != 0;
  return r;
}

std::optional<ErrorInfo> parse_error(std::span<const std::byte> payload) {
  if (payload.size() < 2) return std::nullopt;
  ErrorInfo info;
  info.code = static_cast<ErrorCode>(get<std::uint16_t>(payload, 0));
  info.message.assign(reinterpret_cast<const char*>(payload.data()) + 2,
                      payload.size() - 2);
  return info;
}

void FrameReader::feed(std::span<const std::byte> bytes) {
  if (poisoned()) return;
  compact();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameReader::compact() {
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

std::optional<Frame> FrameReader::next() {
  if (poisoned()) return std::nullopt;
  compact();
  if (buffer_.size() < kHeaderSize) return std::nullopt;
  const std::span<const std::byte> head(buffer_.data(), kHeaderSize);

  // Validate everything the header claims before trusting payload_len.
  if (get<std::uint32_t>(head, 0) != kMagic) {
    error_ = WireError::kBadMagic;
    return std::nullopt;
  }
  const auto raw_type = get<std::uint8_t>(head, 4);
  if (!valid_type(raw_type)) {
    error_ = WireError::kBadType;
    return std::nullopt;
  }
  const auto version = get<std::uint16_t>(head, 6);
  if (version > kMaxWireVersion) {
    // Unknown version means unknown header length: we cannot even find
    // the CRC, let alone the next frame boundary. Poison, don't skip.
    error_ = WireError::kBadVersion;
    return std::nullopt;
  }
  const std::size_t header_size = version == 0 ? kHeaderSize : kHeaderSizeV1;
  if (buffer_.size() < header_size) return std::nullopt;  // need full header
  const auto payload_len = get<std::uint32_t>(head, 24);
  if (payload_len > max_payload_) {
    error_ = WireError::kOversizedPayload;
    return std::nullopt;
  }
  if (get<std::uint32_t>(std::span<const std::byte>(buffer_.data(),
                                                    header_size),
                         header_size - 4) !=
      util::crc32c(buffer_.data(), header_size - 4)) {
    error_ = WireError::kHeaderCrcMismatch;
    return std::nullopt;
  }

  const std::size_t total = header_size + payload_len + kTrailerSize;
  if (buffer_.size() < total) return std::nullopt;  // wait for the rest

  const std::span<const std::byte> payload(buffer_.data() + header_size,
                                           payload_len);
  if (get<std::uint32_t>(
          std::span<const std::byte>(buffer_.data(), total),
          header_size + payload_len) != util::crc32c(payload)) {
    error_ = WireError::kPayloadCrcMismatch;
    return std::nullopt;
  }

  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.flags = get<std::uint8_t>(head, 5);
  frame.tenant_id = get<std::uint64_t>(head, 8);
  frame.request_id = get<std::uint64_t>(head, 16);
  frame.deadline_ms = version == 0 ? 0 : get<std::uint64_t>(buffer_, 28);
  frame.payload = payload;
  consumed_ = total;  // released at the next feed()/next()/reset()
  return frame;
}

void FrameReader::reset() {
  buffer_.clear();
  consumed_ = 0;
  error_ = WireError::kNone;
}

}  // namespace robusthd::fleet::wire
