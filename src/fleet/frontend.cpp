#include "robusthd/fleet/frontend.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace robusthd::fleet {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// Per-connection state. Owned by exactly one loop thread.
struct Connection {
  explicit Connection(std::size_t max_payload) : reader(max_payload) {}

  int fd = -1;
  wire::FrameReader reader;
  std::vector<std::byte> out;  ///< unflushed bytes, [out_off, size)
  std::size_t out_off = 0;

  struct Pending {
    std::uint64_t tenant_id = 0;
    std::uint64_t request_id = 0;
    std::future<serve::Response> future;
  };
  /// Order-free: responses carry request_id, so ready entries are
  /// swap-popped wherever they sit.
  std::vector<Pending> pending;

  /// Last time the peer delivered bytes (idle-reaper clock).
  std::chrono::steady_clock::time_point last_activity;
  /// When the currently buffered partial frame started accumulating;
  /// max() = no partial frame (the read-deadline reaper's clock).
  std::chrono::steady_clock::time_point partial_since =
      std::chrono::steady_clock::time_point::max();

  std::size_t unflushed() const noexcept { return out.size() - out_off; }
};

struct Frontend::Loop {
  std::size_t shard = 0;
  int listen_fd = -1;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
};

Frontend::Frontend(Fleet& fleet, FrontendConfig config)
    : fleet_(fleet), config_(std::move(config)) {}

Frontend::~Frontend() { stop(); }

void Frontend::start() {
  if (started_) return;
  ports_.resize(fleet_.shard_count(), 0);
  loops_.clear();
  for (std::size_t i = 0; i < fleet_.shard_count(); ++i) {
    auto loop = std::make_unique<Loop>();
    loop->shard = i;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("fleet frontend: socket() failed");
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(
        config_.base_port == 0
            ? std::uint16_t{0}
            : static_cast<std::uint16_t>(config_.base_port + i));
    if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("fleet frontend: bad host " + config_.host);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, config_.backlog) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("fleet frontend: bind/listen: ") +
                               std::strerror(err));
    }
    socklen_t len = sizeof addr;
    (void)::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports_[i] = ntohs(addr.sin_port);
    set_nonblocking(fd);
    loop->listen_fd = fd;
    loops_.push_back(std::move(loop));
  }

  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    threads_.emplace_back([this, &loop] { loop_main(*loop); });
  }
  started_ = true;
}

void Frontend::stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& loop : loops_) {
    if (loop->listen_fd >= 0) ::close(loop->listen_fd);
    for (auto& [fd, conn] : loop->conns) ::close(fd);
    loop->conns.clear();
  }
  loops_.clear();
  started_ = false;
}

FrontendCounters Frontend::counters() const {
  FrontendCounters c;
  c.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  c.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.frames_in = frames_in_.load(std::memory_order_relaxed);
  c.frames_out = frames_out_.load(std::memory_order_relaxed);
  c.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  c.dimension_rejections =
      dimension_rejections_.load(std::memory_order_relaxed);
  c.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  c.deadline_sheds = deadline_sheds_.load(std::memory_order_relaxed);
  c.reaped_connections =
      reaped_connections_.load(std::memory_order_relaxed);
  return c;
}

void Frontend::loop_main(Loop& loop) {
  std::vector<pollfd> fds;
  std::vector<int> to_close;

  const auto close_conn = [&](int fd) { to_close.push_back(fd); };

  const auto handle_frame = [&](Connection& conn, const wire::Frame& frame) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    switch (frame.type) {
      case wire::FrameType::kPing:
        wire::append_frame(conn.out, wire::FrameType::kPong, 0,
                           frame.tenant_id, frame.request_id, {});
        frames_out_.fetch_add(1, std::memory_order_relaxed);
        return true;
      case wire::FrameType::kPredictRequest: {
        hv::BinVec query;
        if (!wire::parse_predict_request(frame.payload, query)) {
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          wire::append_error(conn.out, frame.tenant_id, frame.request_id,
                             wire::ErrorCode::kBadRequest,
                             "malformed predict payload");
          frames_out_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        if (query.dimension() != fleet_.dimension()) {
          dimension_rejections_.fetch_add(1, std::memory_order_relaxed);
          wire::append_error(conn.out, frame.tenant_id, frame.request_id,
                             wire::ErrorCode::kDimensionMismatch,
                             "query dimension != serving dimension");
          frames_out_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        // The wire deadline is relative (ms of remaining budget at send
        // time) — anchor it to our clock here. Clock skew costs only the
        // one-way network latency, which is already inside the budget.
        auto deadline = std::chrono::steady_clock::time_point::max();
        if (frame.deadline_ms != 0) {
          deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(frame.deadline_ms);
        }
        SubmitReject reject = SubmitReject::kNone;
        auto submitted = fleet_.try_submit(
            frame.tenant_id, std::move(query),
            config_.admission_control
                ? deadline
                : std::chrono::steady_clock::time_point::max(),
            &reject);
        if (!submitted) {
          if (reject == SubmitReject::kDeadline) {
            // The budget was spent before we could even enqueue —
            // retrying is futile and the error code says so.
            deadline_sheds_.fetch_add(1, std::memory_order_relaxed);
            wire::append_error(conn.out, frame.tenant_id, frame.request_id,
                               wire::ErrorCode::kDeadlineExceeded,
                               "deadline passed before enqueue");
          } else if (reject == SubmitReject::kPredictedLate) {
            // Early kBusy: the queue cannot serve it within the budget,
            // but another shard (or a later retry) still might.
            deadline_sheds_.fetch_add(1, std::memory_order_relaxed);
            busy_rejections_.fetch_add(1, std::memory_order_relaxed);
            wire::append_error(conn.out, frame.tenant_id, frame.request_id,
                               wire::ErrorCode::kBusy,
                               "estimated queue wait exceeds deadline");
          } else {
            busy_rejections_.fetch_add(1, std::memory_order_relaxed);
            wire::append_error(conn.out, frame.tenant_id, frame.request_id,
                               wire::ErrorCode::kBusy, "shard queue full");
          }
          frames_out_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        conn.pending.push_back({frame.tenant_id, frame.request_id,
                                std::move(submitted->future)});
        return true;
      }
      default:
        // Clients have no business sending responses/errors/pongs.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
  };

  const auto sweep_pending = [&](Connection& conn) {
    for (std::size_t i = 0; i < conn.pending.size();) {
      auto& p = conn.pending[i];
      if (p.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++i;
        continue;
      }
      try {
        const serve::Response r = p.future.get();
        if (r.expired) {
          // Shed in-queue by the server: nobody scored it, so there is
          // no prediction to frame — surface the spent budget instead.
          deadline_sheds_.fetch_add(1, std::memory_order_relaxed);
          wire::append_error(conn.out, p.tenant_id, p.request_id,
                             wire::ErrorCode::kDeadlineExceeded,
                             "deadline expired in queue");
        } else {
          wire::PredictResult result;
          result.predicted = r.predicted;
          result.confidence = r.confidence;
          result.model_version = r.model_version;
          result.trusted = r.trusted;
          result.degraded = r.degraded;
          result.abstained = r.abstained;
          wire::append_predict_response(conn.out, p.tenant_id, p.request_id,
                                        result);
        }
      } catch (const std::future_error&) {
        wire::append_error(conn.out, p.tenant_id, p.request_id,
                           wire::ErrorCode::kShuttingDown,
                           "request dropped in shutdown");
      }
      frames_out_.fetch_add(1, std::memory_order_relaxed);
      p = std::move(conn.pending.back());
      conn.pending.pop_back();
    }
  };

  const auto flush = [&](int fd, Connection& conn) -> bool {
    while (conn.unflushed() > 0) {
      const auto n = ::send(fd, conn.out.data() + conn.out_off,
                            conn.unflushed(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // peer gone
    }
    conn.out.clear();
    conn.out_off = 0;
    return true;
  };

  std::vector<std::byte> read_buf(64 * 1024);

  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    const bool room =
        loop.conns.size() < config_.max_connections_per_shard;
    fds.push_back({loop.listen_fd,
                   static_cast<short>(room ? POLLIN : 0), 0});
    std::future<serve::Response>* wait_on = nullptr;
    for (auto& [fd, conn] : loop.conns) {
      short events = POLLIN;
      if (conn->unflushed() > 0) events |= POLLOUT;
      if (!wait_on && !conn->pending.empty()) {
        wait_on = &conn->pending.front().future;
      }
      fds.push_back({fd, events, 0});
    }
    if (wait_on) {
      // A response is in flight: park on the future instead of the poll
      // timeout, so response latency tracks inference time (typically
      // tens of microseconds), not the millisecond poll tick. poll() with
      // timeout 0 then picks up any input that arrived meanwhile.
      (void)wait_on->wait_for(config_.poll_interval);
      (void)::poll(fds.data(), fds.size(), 0);
    } else {
      const auto timeout =
          static_cast<int>(config_.poll_interval.count() * 20);
      (void)::poll(fds.data(), fds.size(), timeout > 0 ? timeout : 1);
    }

    // Accept.
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(loop.listen_fd, nullptr, nullptr);
        if (cfd < 0) break;
        if (loop.conns.size() >= config_.max_connections_per_shard) {
          ::close(cfd);
          continue;
        }
        set_nonblocking(cfd);
        const int one = 1;
        (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto conn = std::make_unique<Connection>(config_.max_payload);
        conn->fd = cfd;
        conn->last_activity = std::chrono::steady_clock::now();
        loop.conns.emplace(cfd, std::move(conn));
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Read + parse.
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      Connection& conn = *it->second;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        close_conn(fd);
        continue;
      }
      if ((fds[i].revents & POLLIN) != 0) {
        bool closed = false;
        bool got_bytes = false;
        for (;;) {
          const auto n = ::recv(fd, read_buf.data(), read_buf.size(), 0);
          if (n > 0) {
            got_bytes = true;
            conn.reader.feed({read_buf.data(), static_cast<std::size_t>(n)});
            if (static_cast<std::size_t>(n) < read_buf.size()) break;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          closed = true;  // orderly shutdown or hard error
          break;
        }
        if (got_bytes) {
          conn.last_activity = std::chrono::steady_clock::now();
        }
        bool poisoned = false;
        while (auto frame = conn.reader.next()) {
          if (!handle_frame(conn, *frame)) {
            poisoned = true;
            break;
          }
        }
        if (conn.reader.poisoned()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          poisoned = true;
        }
        // Read-deadline bookkeeping: a partial frame starts the clock,
        // a drained buffer stops it.
        if (conn.reader.buffered() > 0) {
          if (conn.partial_since ==
              std::chrono::steady_clock::time_point::max()) {
            conn.partial_since = std::chrono::steady_clock::now();
          }
        } else {
          conn.partial_since = std::chrono::steady_clock::time_point::max();
        }
        if (poisoned || closed) {
          close_conn(fd);
          continue;
        }
      }
    }

    // Reap connections stuck mid-frame past the read deadline (slowloris
    // defense) and — when configured — connections idle with nothing in
    // flight. Both are hard closes: a peer that trickles bytes has no
    // claim on a graceful goodbye.
    if (config_.read_deadline.count() > 0 ||
        config_.idle_timeout.count() > 0) {
      const auto now = std::chrono::steady_clock::now();
      for (auto& [fd, conn] : loop.conns) {
        const bool stuck_mid_frame =
            config_.read_deadline.count() > 0 &&
            conn->partial_since !=
                std::chrono::steady_clock::time_point::max() &&
            now - conn->partial_since > config_.read_deadline;
        const bool idle =
            config_.idle_timeout.count() > 0 && conn->pending.empty() &&
            conn->unflushed() == 0 &&
            now - conn->last_activity > config_.idle_timeout;
        if (stuck_mid_frame || idle) {
          reaped_connections_.fetch_add(1, std::memory_order_relaxed);
          close_conn(fd);
        }
      }
    }

    // Complete + flush.
    for (auto& [fd, conn] : loop.conns) {
      sweep_pending(*conn);
      if (!flush(fd, *conn) || conn->unflushed() > config_.max_write_buffer) {
        close_conn(fd);
      }
    }

    for (const int fd : to_close) {
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      ::close(fd);
      loop.conns.erase(it);
      connections_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    to_close.clear();
  }
}

}  // namespace robusthd::fleet
