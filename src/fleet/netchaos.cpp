#include "robusthd/fleet/netchaos.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

#include "robusthd/util/rng.hpp"

namespace robusthd::fleet {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// One proxied connection: client <-> proxy <-> upstream. Owned by the
/// single loop thread; no locks needed.
struct NetChaos::Pipe {
  int client_fd = -1;
  int upstream_fd = -1;
  std::size_t upstream = 0;
  util::Xoshiro256 rng;

  struct Chunk {
    std::vector<std::byte> data;
    Clock::time_point due;  ///< deliver no earlier than this
  };
  std::deque<Chunk> to_upstream;
  std::deque<Chunk> to_client;
  /// Bytes of the front chunk already written (throttling splits
  /// chunks mid-frame on purpose).
  std::size_t off_to_upstream = 0;
  std::size_t off_to_client = 0;

  bool client_open = true;
  bool upstream_open = true;
  bool dead = false;
};

NetChaos::NetChaos(std::vector<Endpoint> upstreams, NetChaosConfig config)
    : upstreams_(std::move(upstreams)), config_(std::move(config)) {
  if (upstreams_.empty()) {
    throw std::invalid_argument("NetChaos needs at least one upstream");
  }
  blackholed_ = std::make_unique<std::atomic<bool>[]>(upstreams_.size());
  for (std::size_t i = 0; i < upstreams_.size(); ++i) {
    blackholed_[i].store(false, std::memory_order_relaxed);
  }
}

NetChaos::~NetChaos() { stop(); }

void NetChaos::start() {
  if (started_) return;
  ports_.assign(upstreams_.size(), 0);
  listen_fds_.assign(upstreams_.size(), -1);
  for (std::size_t i = 0; i < upstreams_.size(); ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("netchaos: socket() failed");
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // always ephemeral — this is a test harness
    if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("netchaos: bad host " + config_.host);
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, config_.backlog) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("netchaos: bind/listen: ") +
                               std::strerror(err));
    }
    socklen_t len = sizeof addr;
    (void)::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports_[i] = ntohs(addr.sin_port);
    set_nonblocking(fd);
    listen_fds_[i] = fd;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop_main(); });
  started_ = true;
}

void NetChaos::stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  for (auto& pipe : pipes_) {
    if (pipe->client_fd >= 0) ::close(pipe->client_fd);
    if (pipe->upstream_fd >= 0) ::close(pipe->upstream_fd);
  }
  pipes_.clear();
  for (int fd : listen_fds_) {
    if (fd >= 0) ::close(fd);
  }
  listen_fds_.clear();
  started_ = false;
}

std::vector<Endpoint> NetChaos::endpoints() const {
  std::vector<Endpoint> out;
  out.reserve(ports_.size());
  for (const auto port : ports_) out.push_back({config_.host, port});
  return out;
}

void NetChaos::set_blackholed(std::size_t upstream, bool blackholed) {
  blackholed_[upstream].store(blackholed, std::memory_order_relaxed);
}

bool NetChaos::blackholed(std::size_t upstream) const {
  return blackholed_[upstream].load(std::memory_order_relaxed);
}

NetChaosCounters NetChaos::counters() const {
  NetChaosCounters out;
  out.connections = connections_.load(std::memory_order_relaxed);
  out.resets_injected = resets_injected_.load(std::memory_order_relaxed);
  out.chunks_delayed = chunks_delayed_.load(std::memory_order_relaxed);
  out.chunks_dropped = chunks_dropped_.load(std::memory_order_relaxed);
  out.bits_flipped = bits_flipped_.load(std::memory_order_relaxed);
  out.throttled_writes = throttled_writes_.load(std::memory_order_relaxed);
  out.blackholed_chunks = blackholed_chunks_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return out;
}

void NetChaos::accept_pending(std::size_t upstream) {
  for (;;) {
    const int client_fd = ::accept(listen_fds_[upstream], nullptr, nullptr);
    if (client_fd < 0) return;  // EAGAIN / transient — next tick retries
    // Dial the real upstream. Blocking connect is fine: upstreams are
    // live local listeners (the partition fault is simulated at the
    // chunk level, not by refusing dials).
    const int up_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (up_fd < 0) {
      ::close(client_fd);
      return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(upstreams_[upstream].port);
    if (inet_pton(AF_INET, upstreams_[upstream].host.c_str(),
                  &addr.sin_addr) != 1 ||
        ::connect(up_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0) {
      ::close(up_fd);
      ::close(client_fd);
      continue;
    }
    set_nonblocking(client_fd);
    set_nonblocking(up_fd);
    const int one = 1;
    (void)::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    (void)::setsockopt(up_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto pipe = std::make_unique<Pipe>();
    pipe->client_fd = client_fd;
    pipe->upstream_fd = up_fd;
    pipe->upstream = upstream;
    // Per-connection deterministic stream: the schedule depends only on
    // (seed, accept order), not on wall-clock or fd numbers.
    pipe->rng = util::Xoshiro256(config_.seed ^
                                 util::SplitMix64(next_conn_index_++).next());
    pipes_.push_back(std::move(pipe));
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetChaos::inject_reset(Pipe& pipe) {
  // SO_LINGER{on, 0} turns close() into an abortive RST — the client
  // sees ECONNRESET mid-stream, exactly what a crashed middlebox or
  // yanked cable produces.
  if (pipe.client_fd >= 0) {
    linger lin{};
    lin.l_onoff = 1;
    lin.l_linger = 0;
    (void)::setsockopt(pipe.client_fd, SOL_SOCKET, SO_LINGER, &lin,
                       sizeof lin);
    ::close(pipe.client_fd);
    pipe.client_fd = -1;
  }
  if (pipe.upstream_fd >= 0) {
    ::close(pipe.upstream_fd);
    pipe.upstream_fd = -1;
  }
  resets_injected_.fetch_add(1, std::memory_order_relaxed);
  pipe.dead = true;
}

bool NetChaos::pump_read(Pipe& pipe, bool from_client) {
  const int fd = from_client ? pipe.client_fd : pipe.upstream_fd;
  if (fd < 0) return true;
  std::byte buf[64 * 1024];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      const auto size = static_cast<std::size_t>(n);
      (from_client ? bytes_in_ : bytes_out_)
          .fetch_add(size, std::memory_order_relaxed);
      // Fault pipeline, in severity order. Blackhole first: a
      // partitioned upstream swallows everything, both directions.
      if (blackholed_[pipe.upstream].load(std::memory_order_relaxed)) {
        blackholed_chunks_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (config_.reset_rate > 0.0 &&
          pipe.rng.bernoulli(config_.reset_rate)) {
        inject_reset(pipe);
        return false;
      }
      if (config_.drop_rate > 0.0 && pipe.rng.bernoulli(config_.drop_rate)) {
        chunks_dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Pipe::Chunk chunk;
      chunk.data.assign(buf, buf + size);
      if (config_.flip_rate > 0.0 && pipe.rng.bernoulli(config_.flip_rate)) {
        const auto bit = pipe.rng.below(size * 8);
        chunk.data[bit / 8] ^= std::byte{1} << (bit % 8);
        bits_flipped_.fetch_add(1, std::memory_order_relaxed);
      }
      auto due = Clock::now();
      if (config_.delay.count() > 0 &&
          pipe.rng.bernoulli(config_.delay_rate)) {
        auto extra = config_.delay;
        if (config_.delay_jitter.count() > 0) {
          extra += std::chrono::milliseconds(static_cast<std::int64_t>(
              pipe.rng.uniform() *
              static_cast<double>(config_.delay_jitter.count())));
        }
        due += extra;
        chunks_delayed_.fetch_add(1, std::memory_order_relaxed);
      }
      chunk.due = due;
      (from_client ? pipe.to_upstream : pipe.to_client)
          .push_back(std::move(chunk));
      continue;
    }
    if (n == 0) {
      if (from_client) return false;  // client hung up: tear down
      // Upstream finished: stop reading it, flush what is queued to the
      // client, then close (pump_write handles the drain).
      pipe.upstream_open = false;
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (from_client) return false;
    pipe.upstream_open = false;
    return true;
  }
}

bool NetChaos::pump_write(Pipe& pipe, bool to_client) {
  auto& queue = to_client ? pipe.to_client : pipe.to_upstream;
  auto& off = to_client ? pipe.off_to_client : pipe.off_to_upstream;
  const int fd = to_client ? pipe.client_fd : pipe.upstream_fd;
  if (fd < 0) {
    queue.clear();
    off = 0;
    return true;
  }
  std::size_t budget = config_.throttle_bytes > 0
                           ? config_.throttle_bytes
                           : std::numeric_limits<std::size_t>::max();
  const auto now = Clock::now();
  while (!queue.empty() && budget > 0) {
    auto& chunk = queue.front();
    if (chunk.due > now) break;  // still being "delayed"
    const std::size_t want = std::min(chunk.data.size() - off, budget);
    const auto n =
        ::send(fd, chunk.data.data() + off, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // peer reset underneath us
    }
    off += static_cast<std::size_t>(n);
    budget -= static_cast<std::size_t>(n);
    if (off == chunk.data.size()) {
      queue.pop_front();
      off = 0;
    } else if (budget == 0 && config_.throttle_bytes > 0) {
      // The throttle split this chunk mid-frame — the receiver now
      // holds a torn frame until the next tick tops it up.
      throttled_writes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return true;
}

void NetChaos::loop_main() {
  std::vector<pollfd> pfds;
  // Parallel tags: (kind, index). kind 0 = listener i, 1 = pipes_[i]
  // client side, 2 = pipes_[i] upstream side.
  std::vector<std::pair<int, std::size_t>> tags;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    tags.clear();
    for (std::size_t i = 0; i < listen_fds_.size(); ++i) {
      pfds.push_back({listen_fds_[i], POLLIN, 0});
      tags.emplace_back(0, i);
    }
    for (std::size_t i = 0; i < pipes_.size(); ++i) {
      Pipe& pipe = *pipes_[i];
      if (pipe.client_open && pipe.client_fd >= 0) {
        pfds.push_back({pipe.client_fd, POLLIN, 0});
        tags.emplace_back(1, i);
      }
      if (pipe.upstream_open && pipe.upstream_fd >= 0) {
        pfds.push_back({pipe.upstream_fd, POLLIN, 0});
        tags.emplace_back(2, i);
      }
    }
    const int timeout =
        static_cast<int>(config_.poll_interval.count() > 0
                             ? config_.poll_interval.count()
                             : 1);
    (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout);

    for (std::size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const auto [kind, idx] = tags[p];
      if (kind == 0) {
        accept_pending(idx);
        continue;
      }
      Pipe& pipe = *pipes_[idx];
      if (pipe.dead) continue;
      if (!pump_read(pipe, kind == 1)) pipe.dead = true;
    }

    // Writes are attempted every tick regardless of poll readiness —
    // that is also what paces throttled and delayed chunks out.
    for (auto& pipe_ptr : pipes_) {
      Pipe& pipe = *pipe_ptr;
      if (pipe.dead) continue;
      if (!pump_write(pipe, true) || !pump_write(pipe, false)) {
        pipe.dead = true;
        continue;
      }
      if (!pipe.upstream_open && pipe.to_client.empty()) {
        pipe.dead = true;  // upstream done and fully drained: polite FIN
      }
    }

    for (std::size_t i = 0; i < pipes_.size();) {
      if (!pipes_[i]->dead) {
        ++i;
        continue;
      }
      if (pipes_[i]->client_fd >= 0) ::close(pipes_[i]->client_fd);
      if (pipes_[i]->upstream_fd >= 0) ::close(pipes_[i]->upstream_fd);
      pipes_[i] = std::move(pipes_.back());
      pipes_.pop_back();
    }
  }
}

}  // namespace robusthd::fleet
