#include "robusthd/fleet/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "robusthd/util/rng.hpp"

namespace robusthd::fleet {

namespace {

std::uint64_t mix(std::uint64_t v) noexcept {
  return util::SplitMix64(v).next();
}

}  // namespace

Router::Router(std::vector<std::string> shard_groups,
               const RouterConfig& config)
    : groups_(std::move(shard_groups)) {
  if (groups_.empty()) {
    throw std::invalid_argument("Router needs at least one shard");
  }
  if (config.virtual_nodes == 0) {
    throw std::invalid_argument("Router needs virtual_nodes >= 1");
  }
  points_.reserve(groups_.size() * config.virtual_nodes);
  for (std::size_t shard = 0; shard < groups_.size(); ++shard) {
    for (std::size_t replica = 0; replica < config.virtual_nodes; ++replica) {
      // Two mix rounds decorrelate the (shard, replica) lattice; the
      // constant keeps shard point sets disjoint from tenant hashes.
      const std::uint64_t position =
          mix(mix(0x5148463146534844ULL + shard) + replica);
      points_.push_back(
          {position, static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Position ties (astronomically unlikely) break by shard id
              // so the ring order is still total and deterministic.
              return a.position != b.position ? a.position < b.position
                                              : a.shard < b.shard;
            });
  healthy_ = std::make_unique<std::atomic<bool>[]>(groups_.size());
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    healthy_[i].store(true, std::memory_order_relaxed);
  }
}

std::uint64_t Router::hash_tenant(std::uint64_t tenant_id) noexcept {
  return mix(tenant_id ^ 0x74656e616e744964ULL);
}

std::size_t Router::successor(std::uint64_t hash) const noexcept {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& p, std::uint64_t h) { return p.position < h; });
  return it == points_.end() ? 0
                             : static_cast<std::size_t>(it - points_.begin());
}

std::size_t Router::route(std::uint64_t tenant_id) const noexcept {
  return points_[successor(hash_tenant(tenant_id))].shard;
}

Router::Decision Router::route_healthy(
    std::uint64_t tenant_id) const noexcept {
  Decision d;
  const std::size_t start = successor(hash_tenant(tenant_id));
  d.primary = d.shard = points_[start].shard;
  if (healthy(d.primary)) return d;

  // Walk the ring past the primary's arc: the first healthy same-group
  // shard inherits the tenant. Bounded by the ring size; each tenant's
  // walk order is fixed by the ring, so redistribution spreads over the
  // surviving shards instead of dogpiling one.
  const std::string& want = groups_[d.primary];
  for (std::size_t step = 1; step < points_.size(); ++step) {
    const std::size_t shard =
        points_[(start + step) % points_.size()].shard;
    if (shard == d.primary || groups_[shard] != want) continue;
    if (healthy(shard)) {
      d.shard = shard;
      d.failover = true;
      return d;
    }
  }
  d.all_unhealthy = true;  // shard stays primary; its breaker sheds
  return d;
}

void Router::set_healthy(std::size_t shard, bool healthy) noexcept {
  healthy_[shard].store(healthy, std::memory_order_relaxed);
}

bool Router::healthy(std::size_t shard) const noexcept {
  return healthy_[shard].load(std::memory_order_relaxed);
}

}  // namespace robusthd::fleet
