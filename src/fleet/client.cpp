#include "robusthd/fleet/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace robusthd::fleet {

struct Client::Conn {
  int fd = -1;
  wire::FrameReader reader;
};

Client::Client(std::vector<Endpoint> endpoints,
               std::vector<std::string> groups, ClientConfig config)
    : endpoints_(std::move(endpoints)), config_(std::move(config)) {
  if (endpoints_.size() != groups.size()) {
    throw std::invalid_argument(
        "fleet::Client needs one group per endpoint");
  }
  router_ = std::make_unique<Router>(std::move(groups), config_.router);
  conns_.resize(endpoints_.size());
  unhealthy_until_.resize(endpoints_.size());
}

Client::~Client() {
  for (auto& conn : conns_) {
    if (conn && conn->fd >= 0) ::close(conn->fd);
  }
}

bool Client::ensure_connected(std::size_t shard) {
  auto& conn = conns_[shard];
  if (conn && conn->fd >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoints_[shard].port);
  if (inet_pton(AF_INET, endpoints_[shard].host.c_str(), &addr.sin_addr) !=
          1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (conn) ++counters_.reconnects;
  conn = std::make_unique<Conn>();
  conn->fd = fd;
  return true;
}

void Client::drop_connection(std::size_t shard) {
  auto& conn = conns_[shard];
  if (conn && conn->fd >= 0) ::close(conn->fd);
  if (conn) conn->fd = -1;
}

void Client::mark_unhealthy(std::size_t shard) {
  unhealthy_until_[shard] =
      std::chrono::steady_clock::now() + config_.unhealthy_cooldown;
  router_->set_healthy(shard, false);
}

Router::Decision Client::route(std::uint64_t tenant_id) {
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (!router_->healthy(i) && now >= unhealthy_until_[i]) {
      router_->set_healthy(i, true);  // cooldown over: probe it again
    }
  }
  return router_->route_healthy(tenant_id);
}

bool Client::send_all(std::size_t shard, const std::vector<std::byte>& bytes) {
  const int fd = conns_[shard]->fd;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<wire::Frame> Client::await_frame(
    std::size_t shard, std::uint64_t request_id,
    std::vector<std::byte>& storage) {
  Conn& conn = *conns_[shard];
  const auto deadline =
      std::chrono::steady_clock::now() + config_.response_timeout;
  std::byte buf[64 * 1024];
  for (;;) {
    // Drain already-buffered frames first.
    while (auto frame = conn.reader.next()) {
      if (frame->request_id != request_id) continue;  // stale/late answer
      if (frame->type != wire::FrameType::kPredictResponse &&
          frame->type != wire::FrameType::kError &&
          frame->type != wire::FrameType::kPong) {
        continue;
      }
      // Copy the payload out of the reader's buffer: the caller keeps
      // the frame past subsequent reader activity.
      storage.assign(frame->payload.begin(), frame->payload.end());
      wire::Frame owned = *frame;
      owned.payload = storage;
      return owned;
    }
    if (conn.reader.poisoned()) return std::nullopt;

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{conn.fd, POLLIN, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (rc < 0 && errno != EINTR) return std::nullopt;
    if (rc <= 0) continue;
    const auto n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return std::nullopt;  // peer closed or hard error
    }
    conn.reader.feed({buf, static_cast<std::size_t>(n)});
  }
}

FleetResponse Client::predict(std::uint64_t tenant_id,
                              const hv::BinVec& query) {
  ++counters_.requests;
  FleetResponse out;

  // Route; on connect failure mark the shard down and re-route once.
  auto decision = route(tenant_id);
  if (!ensure_connected(decision.shard)) {
    ++counters_.transport_errors;
    mark_unhealthy(decision.shard);
    decision = route(tenant_id);
    if (!ensure_connected(decision.shard)) {
      ++counters_.transport_errors;
      out.error_message = "connect failed";
      out.shard = decision.shard;
      return out;
    }
  }
  out.shard = decision.shard;
  out.failover = decision.failover;
  if (decision.failover) ++counters_.failovers;

  const std::uint64_t request_id = next_request_id_++;
  std::vector<std::byte> frame_bytes;
  wire::append_predict_request(frame_bytes, tenant_id, request_id, query);
  if (!send_all(decision.shard, frame_bytes)) {
    ++counters_.transport_errors;
    drop_connection(decision.shard);
    mark_unhealthy(decision.shard);
    out.error_message = "send failed";
    return out;
  }

  std::vector<std::byte> storage;
  const auto frame = await_frame(decision.shard, request_id, storage);
  if (!frame) {
    ++counters_.transport_errors;
    drop_connection(decision.shard);
    mark_unhealthy(decision.shard);
    out.error_message = "response timeout or connection lost";
    return out;
  }

  if (frame->type == wire::FrameType::kError) {
    ++counters_.server_errors;
    const auto info = wire::parse_error(frame->payload);
    out.error = info ? info->code : wire::ErrorCode::kNone;
    out.error_message = info ? info->message : "unparseable error frame";
    return out;
  }

  const auto result = wire::parse_predict_response(*frame);
  if (!result) {
    ++counters_.transport_errors;
    drop_connection(decision.shard);
    out.error_message = "malformed predict response";
    return out;
  }
  ++counters_.responses;
  out.ok = true;
  out.predicted = result->predicted;
  out.confidence = result->confidence;
  out.trusted = result->trusted;
  out.degraded = result->degraded;
  out.abstained = result->abstained;
  out.model_version = result->model_version;
  if (result->abstained) {
    // The shard's breaker is shedding: route around it until the
    // cooldown expires, then probe again.
    mark_unhealthy(decision.shard);
  }
  return out;
}

bool Client::ping(std::size_t shard) {
  if (!ensure_connected(shard)) return false;
  const std::uint64_t request_id = next_request_id_++;
  std::vector<std::byte> frame_bytes;
  wire::append_frame(frame_bytes, wire::FrameType::kPing, 0, 0, request_id,
                     {});
  if (!send_all(shard, frame_bytes)) {
    drop_connection(shard);
    return false;
  }
  std::vector<std::byte> storage;
  const auto frame = await_frame(shard, request_id, storage);
  return frame && frame->type == wire::FrameType::kPong;
}

}  // namespace robusthd::fleet
