#include "robusthd/fleet/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace robusthd::fleet {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) noexcept {
  const auto now = Clock::now();
  if (now >= deadline) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return static_cast<int>(std::min<long long>(ms, 1u << 30)) + 1;
}

}  // namespace

struct Client::Conn {
  int fd = -1;
  wire::FrameReader reader;
};

Client::Client(std::vector<Endpoint> endpoints,
               std::vector<std::string> groups, ClientConfig config)
    : endpoints_(std::move(endpoints)),
      config_(std::move(config)),
      jitter_rng_(config_.seed) {
  if (endpoints_.size() != groups.size()) {
    throw std::invalid_argument(
        "fleet::Client needs one group per endpoint");
  }
  router_ = std::make_unique<Router>(std::move(groups), config_.router);
  conns_.resize(endpoints_.size());
  unhealthy_until_.resize(endpoints_.size());
  // The bucket starts full: a client's very first requests may retry.
  retry_budget_ = config_.retry.budget_cap;
}

Client::~Client() {
  for (auto& conn : conns_) {
    if (conn && conn->fd >= 0) ::close(conn->fd);
  }
}

bool Client::ensure_connected(std::size_t shard) {
  auto& conn = conns_[shard];
  if (conn && conn->fd >= 0) return true;
  // Non-blocking connect: a blackholed endpoint (e.g. a partitioned
  // shard dropping SYNs) costs at most connect_timeout, not the
  // kernel's multi-minute SYN retry schedule. The socket stays
  // non-blocking for its lifetime; send_all/await_frame poll for
  // readiness.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoints_[shard].port);
  if (inet_pton(AF_INET, endpoints_[shard].host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    const auto deadline = Clock::now() + config_.connect_timeout;
    for (;;) {
      pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, remaining_ms(deadline));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) {
        ++counters_.connect_timeouts;
        ::close(fd);
        return false;
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return false;
    }
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (conn) ++counters_.reconnects;
  conn = std::make_unique<Conn>();
  conn->fd = fd;
  return true;
}

void Client::drop_connection(std::size_t shard) {
  auto& conn = conns_[shard];
  if (conn && conn->fd >= 0) ::close(conn->fd);
  if (conn) conn->fd = -1;
}

void Client::mark_unhealthy(std::size_t shard) {
  unhealthy_until_[shard] = Clock::now() + config_.unhealthy_cooldown;
  router_->set_healthy(shard, false);
}

Router::Decision Client::route(std::uint64_t tenant_id) {
  const auto now = Clock::now();
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (!router_->healthy(i) && now >= unhealthy_until_[i]) {
      router_->set_healthy(i, true);  // cooldown over: probe it again
    }
  }
  return router_->route_healthy(tenant_id);
}

bool Client::send_all(std::size_t shard, const std::vector<std::byte>& bytes) {
  const int fd = conns_[shard]->fd;
  const auto deadline = Clock::now() + config_.response_timeout;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking socket with a full send buffer: wait for
      // writability, bounded by the response timeout.
      const int ms = remaining_ms(deadline);
      if (ms <= 0) return false;
      pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, ms);
      if (rc < 0 && errno != EINTR) return false;
      continue;
    }
    return false;
  }
  return true;
}

std::optional<wire::Frame> Client::await_frame(
    std::size_t shard, std::uint64_t request_id,
    std::vector<std::byte>& storage, Clock::time_point deadline) {
  Conn& conn = *conns_[shard];
  std::byte buf[64 * 1024];
  for (;;) {
    // Drain already-buffered frames first.
    while (auto frame = conn.reader.next()) {
      if (frame->request_id != request_id) continue;  // stale/late answer
      if (frame->type != wire::FrameType::kPredictResponse &&
          frame->type != wire::FrameType::kError &&
          frame->type != wire::FrameType::kPong) {
        continue;
      }
      // Copy the payload out of the reader's buffer: the caller keeps
      // the frame past subsequent reader activity.
      storage.assign(frame->payload.begin(), frame->payload.end());
      wire::Frame owned = *frame;
      owned.payload = storage;
      return owned;
    }
    if (conn.reader.poisoned()) return std::nullopt;

    const int ms = remaining_ms(deadline);
    if (ms <= 0 || Clock::now() >= deadline) return std::nullopt;
    pollfd pfd{conn.fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, ms);
    if (rc < 0 && errno != EINTR) return std::nullopt;
    if (rc <= 0) continue;
    const auto n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return std::nullopt;  // peer closed or hard error
    }
    conn.reader.feed({buf, static_cast<std::size_t>(n)});
  }
}

std::optional<wire::Frame> Client::await_either(
    std::size_t shard_a, std::uint64_t id_a, std::size_t shard_b,
    std::uint64_t id_b, std::vector<std::byte>& storage,
    Clock::time_point deadline, std::size_t& winner) {
  std::byte buf[64 * 1024];
  const std::size_t shards[2] = {shard_a, shard_b};
  const std::uint64_t ids[2] = {id_a, id_b};
  bool alive[2] = {true, true};
  for (;;) {
    for (int leg = 0; leg < 2; ++leg) {
      if (!alive[leg]) continue;
      Conn& conn = *conns_[shards[leg]];
      while (auto frame = conn.reader.next()) {
        if (frame->request_id != ids[leg]) continue;
        if (frame->type != wire::FrameType::kPredictResponse &&
            frame->type != wire::FrameType::kError) {
          continue;
        }
        storage.assign(frame->payload.begin(), frame->payload.end());
        wire::Frame owned = *frame;
        owned.payload = storage;
        winner = shards[leg];
        return owned;
      }
      if (conn.reader.poisoned()) {
        ++counters_.transport_errors;
        drop_connection(shards[leg]);
        mark_unhealthy(shards[leg]);
        alive[leg] = false;
      }
    }
    if (!alive[0] && !alive[1]) return std::nullopt;

    const int ms = remaining_ms(deadline);
    if (ms <= 0 || Clock::now() >= deadline) return std::nullopt;
    pollfd pfds[2];
    int nfds = 0;
    int leg_of[2] = {-1, -1};
    for (int leg = 0; leg < 2; ++leg) {
      if (!alive[leg]) continue;
      pfds[nfds] = {conns_[shards[leg]]->fd, POLLIN, 0};
      leg_of[nfds] = leg;
      ++nfds;
    }
    const int rc = ::poll(pfds, static_cast<nfds_t>(nfds), ms);
    if (rc < 0 && errno != EINTR) return std::nullopt;
    if (rc <= 0) continue;
    for (int i = 0; i < nfds; ++i) {
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const int leg = leg_of[i];
      const auto n = ::recv(pfds[i].fd, buf, sizeof buf, 0);
      if (n > 0) {
        conns_[shards[leg]]->reader.feed(
            {buf, static_cast<std::size_t>(n)});
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      ++counters_.transport_errors;
      drop_connection(shards[leg]);
      mark_unhealthy(shards[leg]);
      alive[leg] = false;
    }
  }
}

std::optional<std::size_t> Client::hedge_target(std::size_t primary) const {
  const auto& group = router_->group(primary);
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i == primary) continue;
    if (router_->group(i) != group) continue;  // never cross model groups
    if (!router_->healthy(i)) continue;
    return i;
  }
  return std::nullopt;
}

std::optional<std::chrono::nanoseconds> Client::hedge_delay() const {
  if (!config_.hedge.enabled || endpoints_.size() < 2) return std::nullopt;
  if (config_.hedge.delay.count() > 0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        config_.hedge.delay);
  }
  // Derived mode: fire the hedge where the tail starts — at the observed
  // p99 — once the distribution has warmed up.
  const auto summary = latency_.summarize();
  if (summary.count < config_.hedge.min_samples) return std::nullopt;
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(summary.p99_ns) + 1);
}

void Client::fill_response(const wire::Frame& frame, std::size_t shard,
                           FleetResponse& out) {
  out.shard = shard;
  if (frame.type == wire::FrameType::kError) {
    ++counters_.server_errors;
    const auto info = wire::parse_error(frame.payload);
    out.error = info ? info->code : wire::ErrorCode::kNone;
    out.error_message = info ? info->message : "unparseable error frame";
    return;
  }
  const auto result = wire::parse_predict_response(frame);
  if (!result) {
    ++counters_.transport_errors;
    drop_connection(shard);
    out.error_message = "malformed predict response";
    return;
  }
  ++counters_.responses;
  out.ok = true;
  out.predicted = result->predicted;
  out.confidence = result->confidence;
  out.trusted = result->trusted;
  out.degraded = result->degraded;
  out.abstained = result->abstained;
  out.model_version = result->model_version;
  if (result->abstained) {
    // The shard's breaker is shedding: route around it until the
    // cooldown expires, then probe again.
    mark_unhealthy(shard);
  }
}

void Client::attempt_once(std::uint64_t tenant_id, const hv::BinVec& query,
                          Clock::time_point overall_deadline,
                          FleetResponse& out) {
  // Route; on connect failure mark the shard down and re-route once.
  auto decision = route(tenant_id);
  if (!ensure_connected(decision.shard)) {
    ++counters_.transport_errors;
    mark_unhealthy(decision.shard);
    decision = route(tenant_id);
    if (!ensure_connected(decision.shard)) {
      ++counters_.transport_errors;
      out.error_message = "connect failed";
      out.shard = decision.shard;
      return;
    }
  }
  out.shard = decision.shard;
  out.failover = decision.failover;
  if (decision.failover) ++counters_.failovers;

  const auto now = Clock::now();
  if (now >= overall_deadline) {
    // The budget went into backoffs/earlier attempts — don't even send.
    out.error = wire::ErrorCode::kDeadlineExceeded;
    out.error_message = "client budget exhausted";
    return;
  }
  // A per-attempt timeout bounds how long one shard may stall before the
  // retry loop fails over; the wire deadline reflects when *this*
  // attempt will be abandoned, so the server sheds exactly the work
  // nobody is waiting for.
  auto wait_deadline = overall_deadline;
  if (config_.retry.attempt_timeout.count() > 0) {
    wait_deadline =
        std::min(overall_deadline, now + config_.retry.attempt_timeout);
  }
  std::uint64_t deadline_ms = 0;
  if (config_.send_deadline) {
    deadline_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(wait_deadline -
                                                              now)
            .count());
    if (deadline_ms == 0) deadline_ms = 1;
  }

  const std::uint64_t request_id = next_request_id_++;
  std::vector<std::byte> frame_bytes;
  wire::append_predict_request(frame_bytes, tenant_id, request_id, query,
                               deadline_ms);
  if (!send_all(decision.shard, frame_bytes)) {
    ++counters_.transport_errors;
    drop_connection(decision.shard);
    mark_unhealthy(decision.shard);
    out.error_message = "send failed";
    return;
  }

  std::vector<std::byte> storage;

  // Hedge window: give the primary `hedge_delay` to answer before
  // firing a second attempt at a sibling shard.
  if (const auto delay = hedge_delay()) {
    const auto hedge_at = std::min(now + *delay, wait_deadline);
    if (hedge_at < wait_deadline) {
      const auto frame =
          await_frame(decision.shard, request_id, storage, hedge_at);
      if (frame) {
        fill_response(*frame, decision.shard, out);
        return;
      }
      const Conn& primary = *conns_[decision.shard];
      if (primary.reader.poisoned() || primary.fd < 0) {
        // Not a slow answer — a dead connection. Let the retry loop
        // handle it rather than hedging onto a half-broken attempt.
        ++counters_.transport_errors;
        drop_connection(decision.shard);
        mark_unhealthy(decision.shard);
        out.error_message = "response timeout or connection lost";
        return;
      }
      const auto target = hedge_target(decision.shard);
      if (target && ensure_connected(*target)) {
        const std::uint64_t hedge_id = next_request_id_++;
        std::uint64_t hedge_deadline_ms = 0;
        if (config_.send_deadline) {
          hedge_deadline_ms = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  wait_deadline - Clock::now())
                  .count());
          if (hedge_deadline_ms == 0) hedge_deadline_ms = 1;
        }
        std::vector<std::byte> hedge_bytes;
        wire::append_predict_request(hedge_bytes, tenant_id, hedge_id,
                                     query, hedge_deadline_ms);
        if (send_all(*target, hedge_bytes)) {
          ++counters_.hedged_requests;
          out.hedged = true;
          std::size_t winner = decision.shard;
          const auto won =
              await_either(decision.shard, request_id, *target, hedge_id,
                           storage, wait_deadline, winner);
          if (won) {
            if (winner != decision.shard) {
              ++counters_.hedge_wins;
              out.hedge_won = true;
              // The loser's eventual answer carries a request id no
              // future await matches — it is drained and skipped.
            }
            fill_response(*won, winner, out);
            return;
          }
          ++counters_.transport_errors;
          drop_connection(decision.shard);
          mark_unhealthy(decision.shard);
          out.error_message = "response timeout or connection lost";
          return;
        }
        ++counters_.transport_errors;
        drop_connection(*target);
        mark_unhealthy(*target);
        // Fall through to a plain wait on the primary.
      }
    }
  }

  const auto frame =
      await_frame(decision.shard, request_id, storage, wait_deadline);
  if (!frame) {
    ++counters_.transport_errors;
    drop_connection(decision.shard);
    mark_unhealthy(decision.shard);
    out.error_message = "response timeout or connection lost";
    return;
  }
  fill_response(*frame, decision.shard, out);
}

FleetResponse Client::predict(std::uint64_t tenant_id,
                              const hv::BinVec& query) {
  ++counters_.requests;
  retry_budget_ = std::min(config_.retry.budget_cap,
                           retry_budget_ + config_.retry.budget_per_request);
  const auto start = Clock::now();
  const auto overall_deadline = start + config_.response_timeout;
  const std::size_t max_attempts =
      std::max<std::size_t>(1, config_.retry.max_attempts);

  FleetResponse out;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Retry only on the bucket's dime, and only when a backoff still
      // fits inside the overall budget.
      if (retry_budget_ < 1.0) {
        ++counters_.retry_budget_exhausted;
        break;
      }
      const auto cap = std::min(
          config_.retry.max_backoff,
          config_.retry.initial_backoff *
              (1u << std::min<std::size_t>(attempt - 1, 20)));
      const auto backoff = std::chrono::nanoseconds(
          static_cast<std::int64_t>(jitter_rng_.uniform() *
                                    static_cast<double>(
                                        std::chrono::nanoseconds(cap)
                                            .count())));
      if (Clock::now() + backoff >= overall_deadline) break;
      retry_budget_ -= 1.0;
      ++counters_.retries;
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
    FleetResponse r;
    r.attempts = attempt + 1;
    attempt_once(tenant_id, query, overall_deadline, r);
    r.attempts = attempt + 1;
    out = std::move(r);
    if (out.ok) break;
    // Retryable: transport failures (no error frame), kBusy ("retry
    // later" by contract — wire.hpp), and kShuttingDown (another shard
    // may still be up). Everything else is terminal: kBadRequest and
    // kDimensionMismatch won't improve, kDeadlineExceeded means the
    // budget is spent.
    const bool retryable = out.error == wire::ErrorCode::kNone ||
                           out.error == wire::ErrorCode::kBusy ||
                           out.error == wire::ErrorCode::kShuttingDown;
    if (!retryable) break;
    if (Clock::now() >= overall_deadline) break;
  }
  if (out.ok) {
    latency_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count()));
  }
  return out;
}

bool Client::ping(std::size_t shard) {
  if (!ensure_connected(shard)) return false;
  const std::uint64_t request_id = next_request_id_++;
  std::vector<std::byte> frame_bytes;
  wire::append_frame(frame_bytes, wire::FrameType::kPing, 0, 0, request_id,
                     {});
  if (!send_all(shard, frame_bytes)) {
    drop_connection(shard);
    return false;
  }
  std::vector<std::byte> storage;
  const auto frame =
      await_frame(shard, request_id, storage,
                  Clock::now() + config_.response_timeout);
  return frame && frame->type == wire::FrameType::kPong;
}

}  // namespace robusthd::fleet
