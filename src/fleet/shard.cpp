#include "robusthd/fleet/shard.hpp"

#include <utility>

#include "robusthd/persist/recover.hpp"

namespace robusthd::fleet {

Shard::Shard(std::size_t index, model::HdcModel model, ShardConfig config)
    : index_(index), model_id_(std::move(config.model_id)) {
  if (!config.cpus.empty()) {
    config.server.cpu_affinity = config.cpus;
  }
  // A shard with durable state resumes it in preference to the seed
  // model: the WAL carries repairs the seed predates. Dimension safety
  // holds because a recovered dimension mismatch throws out of reload
  // semantics at the Fleet level (all shards are checked against shard 0
  // before construction) — a mismatched persist dir is a config error
  // and surfaces as the recover() exception.
  const std::string& dir = config.server.persist.dir;
  if (!dir.empty() && persist::has_state(dir)) {
    server_ = serve::Server::recover(dir, config.server);
  } else {
    server_ = std::make_unique<serve::Server>(std::move(model), config.server);
  }
}

ShardStats Shard::stats() const {
  const auto s = server_->stats();
  ShardStats out;
  out.completed = s.completed;
  out.rejected = s.rejected;
  out.scrub_repairs = s.scrub_repairs;
  out.scrub_substituted_bits = s.scrub_substituted_bits;
  out.faults_injected = s.faults_injected;
  out.quarantined_chunks = s.quarantined_chunks;
  out.degraded_responses = s.degraded_responses;
  out.abstained_responses = s.abstained_responses;
  out.deadline_sheds = s.deadline_sheds;
  out.breaker_trips = s.breaker_trips;
  out.breaker_open = s.breaker_open;
  out.canary_accuracy = s.canary_accuracy;
  out.model_version = s.model_version;
  out.p99_ms = s.end_to_end.p99_ns / 1e6;
  out.arena_bytes = s.arena_bytes;
  out.arena_hugepage = s.arena_hugepage;
  return out;
}

}  // namespace robusthd::fleet
