#include "robusthd/persist/recover.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "robusthd/persist/epoch_log.hpp"
#include "robusthd/persist/wal.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/fsio.hpp"

namespace robusthd::persist {

namespace {

/// Allocation bounds for reading our own files back. Both are far above
/// anything the writer produces (bases are bounded by the serialization
/// layer's shape limits, segments by PersistConfig::segment_bytes plus
/// one record) but still finite — a directory entry swapped for a huge
/// file fails the read, it does not drive a huge allocation.
constexpr std::size_t kMaxBaseBytes = std::size_t{1} << 30;
constexpr std::size_t kMaxSegmentBytes = std::size_t{1} << 28;

/// CRC32C over every plane's words in class-major, plane-minor order —
/// the same byte sequence the writer's shadow_crc() covers.
std::uint32_t model_state_crc(const model::HdcModel& model) noexcept {
  std::uint32_t crc = 0;
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    const auto& planes = model.class_vector(c).planes;
    for (const auto& plane : planes) {
      const auto words = plane.words();
      crc = util::crc32c(words.data(), words.size() * sizeof(std::uint64_t),
                         crc);
    }
  }
  return crc;
}

struct Replayer {
  Replayer(model::HdcModel& m, std::size_t wpp, ReplayStats& s)
      : model(m), words_per_plane(wpp), stats(s) {}

  model::HdcModel& model;
  std::size_t words_per_plane;
  ReplayStats& stats;
  std::uint64_t base_version = 0;
  std::uint64_t max_version = 0;

  // Records buffered since the last EpochClose — an open epoch. Nothing
  // in here touches the model until a close commits it.
  std::vector<PlaneDelta> pending_deltas;
  std::optional<model::RecoveryEngineState> pending_state;
  std::size_t pending_records = 0;

  std::optional<model::RecoveryEngineState> committed_state;
  std::optional<EpochClose> last_close;

  void apply_delta(const PlaneDelta& delta) {
    if (delta.model_version <= base_version) {
      // Raced a generation rotation on the write side; describes weights
      // that predate this base.
      ++stats.discarded_records;
      return;
    }
    const auto cls = static_cast<std::size_t>(delta.cls);
    const auto plane = static_cast<std::size_t>(delta.plane);
    if (cls >= model.num_classes() ||
        plane >= model.class_vector(cls).planes.size() ||
        delta.word_begin > words_per_plane ||
        delta.words.size() > words_per_plane - delta.word_begin) {
      ++stats.discarded_records;  // CRC-valid but out of shape: drop, go on
      return;
    }
    auto words = model.class_vector(cls).planes[plane].mutable_words();
    std::copy(delta.words.begin(), delta.words.end(),
              words.begin() + static_cast<std::ptrdiff_t>(delta.word_begin));
    max_version = std::max(max_version, delta.model_version);
    ++stats.replay_records;
  }

  void commit(const EpochClose& close) {
    for (const auto& delta : pending_deltas) apply_delta(delta);
    pending_deltas.clear();
    if (pending_state) {
      committed_state = std::move(pending_state);
      pending_state.reset();
      ++stats.replay_records;
    }
    pending_records = 0;
    last_close = close;
    ++stats.epochs_applied;
    ++stats.replay_records;  // the close itself
  }

  void discard_open_epoch() {
    stats.discarded_records += pending_records;
    pending_deltas.clear();
    pending_state.reset();
    pending_records = 0;
  }
};

}  // namespace

bool has_state(const std::string& dir) {
  for (const auto& name : util::list_dir(dir)) {
    std::uint64_t gen = 0;
    if (parse_base_file_name(name, gen)) return true;
  }
  return false;
}

std::optional<Recovered> recover_dir(const std::string& dir) {
  std::vector<std::uint64_t> bases;
  std::map<std::uint64_t, std::vector<std::uint64_t>> segments;
  for (const auto& name : util::list_dir(dir)) {
    std::uint64_t gen = 0, seq = 0;
    if (parse_base_file_name(name, gen)) {
      bases.push_back(gen);
    } else if (parse_segment_file_name(name, gen, seq)) {
      segments[gen].push_back(seq);
    }
  }
  std::sort(bases.rbegin(), bases.rend());

  for (const auto gen : bases) {
    Recovered rec;
    try {
      const auto blob =
          util::read_file(dir + "/" + base_file_name(gen), kMaxBaseBytes);
      rec.base_info = core::inspect(blob);
      rec.model = core::deserialize_model(blob);
    } catch (const std::runtime_error&) {
      continue;  // unusable base: fall back to the previous generation
    }
    rec.generation = gen;

    Replayer replayer{rec.model,
                      util::words_for_bits(rec.base_info.dimension),
                      rec.stats};
    auto seqs = segments[gen];
    std::sort(seqs.begin(), seqs.end());
    std::uint64_t expected_seq = 0;
    bool stopped = false;
    for (const auto seq : seqs) {
      if (stopped || seq != expected_seq++) break;  // gap: orphaned tail
      std::vector<std::byte> bytes;
      try {
        bytes = util::read_file(dir + "/" + segment_file_name(gen, seq),
                                kMaxSegmentBytes);
      } catch (const std::runtime_error&) {
        break;  // unreadable segment ends replay at the last commit
      }
      ++rec.stats.segments;
      rec.stats.wal_bytes += bytes.size();

      SegmentReader reader(bytes);
      RecordView record;
      bool prologue_seen = false;
      while (reader.next(record)) {
        if (!prologue_seen) {
          // Every segment must open by naming the base it extends.
          const auto ref = decode_base_ref(record.payload);
          if (record.type != RecordType::kBaseRef || !ref ||
              ref->generation != gen) {
            stopped = true;
            break;
          }
          replayer.base_version = ref->base_version;
          replayer.max_version =
              std::max(replayer.max_version, ref->base_version);
          prologue_seen = true;
          ++rec.stats.replay_records;
          continue;
        }
        switch (record.type) {
          case RecordType::kPlaneDelta: {
            auto delta = decode_plane_delta(record.payload);
            if (!delta) {
              stopped = true;  // framed correctly but unparseable: stop
              break;
            }
            replayer.pending_deltas.push_back(std::move(*delta));
            ++replayer.pending_records;
            break;
          }
          case RecordType::kRecoveryState: {
            auto state = decode_recovery_state(record.payload);
            if (!state) {
              stopped = true;
              break;
            }
            replayer.pending_state = std::move(*state);
            ++replayer.pending_records;
            break;
          }
          case RecordType::kEpochClose: {
            const auto close = decode_epoch_close(record.payload);
            if (!close) {
              stopped = true;
              break;
            }
            replayer.commit(*close);
            break;
          }
          default:
            // Unknown record type with a valid CRC: a future writer.
            // Conservative stop — we cannot know whether skipping it is
            // sound.
            stopped = true;
            break;
        }
        if (stopped) break;
      }
      if (reader.torn()) {
        rec.stats.torn_tail = true;
        stopped = true;
      }
    }
    // Whatever is still buffered belongs to an epoch that never closed
    // (the kill-9 window) — discarded by design.
    replayer.discard_open_epoch();

    if (replayer.last_close) {
      rec.stats.state_crc_ok =
          model_state_crc(rec.model) == replayer.last_close->state_crc;
    }
    rec.model.sync_arena();
    rec.model_version = replayer.max_version;
    rec.engine_state = std::move(replayer.committed_state);
    return rec;
  }
  return std::nullopt;
}

}  // namespace robusthd::persist
