#include "robusthd/persist/epoch_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "robusthd/model/hdc_model.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/crc32c.hpp"
#include "robusthd/util/fsio.hpp"

namespace robusthd::persist {

namespace {

std::string six_digits(std::uint64_t v) {
  std::string s = std::to_string(v);
  return s.size() >= 6 ? s : std::string(6 - s.size(), '0') + s;
}

/// "<prefix><digits><suffix>" -> digits, strictly. Anything else (a temp
/// file, a stray name) parses false and is ignored by the scanners.
bool parse_number_between(const std::string& name, const std::string& prefix,
                          const std::string& suffix, std::size_t& pos,
                          std::uint64_t& value) {
  if (name.size() < pos + prefix.size() ||
      name.compare(pos, prefix.size(), prefix) != 0) {
    return false;
  }
  pos += prefix.size();
  std::uint64_t v = 0;
  std::size_t digits = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(name[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0 || digits > 18) return false;
  if (!suffix.empty()) {
    if (name.compare(pos, std::string::npos, suffix) != 0) return false;
    pos = name.size();
  }
  value = v;
  return true;
}

}  // namespace

std::string base_file_name(std::uint64_t generation) {
  return "base-" + six_digits(generation) + ".rhd2";
}

std::string segment_file_name(std::uint64_t generation, std::uint64_t seq) {
  return "wal-" + six_digits(generation) + "-" + six_digits(seq) + ".log";
}

bool parse_base_file_name(const std::string& name, std::uint64_t& generation) {
  std::size_t pos = 0;
  return parse_number_between(name, "base-", ".rhd2", pos, generation);
}

bool parse_segment_file_name(const std::string& name,
                             std::uint64_t& generation, std::uint64_t& seq) {
  std::size_t pos = 0;
  return parse_number_between(name, "wal-", "", pos, generation) &&
         parse_number_between(name, "-", ".log", pos, seq);
}

EpochLog::EpochLog(PersistConfig config, std::vector<std::byte> base_blob,
                   std::uint64_t base_version)
    : config_(std::move(config)) {
  if (config_.epoch_period.count() <= 0) {
    config_.epoch_period = std::chrono::milliseconds(1);
  }
  util::make_dirs(config_.dir);
  // A fresh run always opens a new generation one past anything already
  // on disk: the previous run's files stay replayable until this boot
  // checkpoint is durable, then delete_older_generations() reclaims them.
  std::uint64_t next = 0;
  for (const auto& name : util::list_dir(config_.dir)) {
    std::uint64_t gen = 0, seq = 0;
    if (parse_base_file_name(name, gen) ||
        parse_segment_file_name(name, gen, seq)) {
      next = std::max(next, gen + 1);
    }
  }
  generation_ = next;
  begin_generation(std::move(base_blob), base_version);
  started_ = true;
  thread_ = std::thread(&EpochLog::thread_main, this);
}

EpochLog::~EpochLog() { stop(); }

void EpochLog::append_publication(
    std::uint64_t model_version, std::vector<PlaneWrite> writes,
    std::optional<model::RecoveryEngineState> engine_state) {
  if (failed_.load(std::memory_order_acquire)) return;  // log is dead
  Op op;
  op.kind = Op::Kind::kPublication;
  op.model_version = model_version;
  op.writes = std::move(writes);
  op.engine_state = std::move(engine_state);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ops_.push_back(std::move(op));
  }
  // No wakeup: publications ride the next epoch tick — that batching is
  // the entire point of epochs (one fsync per period, not per repair).
}

void EpochLog::rotate_generation(std::vector<std::byte> base_blob,
                                 std::uint64_t base_version) {
  if (failed_.load(std::memory_order_acquire)) return;
  Op op;
  op.kind = Op::Kind::kRotate;
  op.base_blob = std::move(base_blob);
  op.base_version = base_version;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ops_.push_back(std::move(op));
  }
  cv_.notify_one();
}

void EpochLog::close_epoch() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!started_) return;
  const std::uint64_t target = ++barriers_requested_;
  cv_.notify_one();
  barrier_cv_.wait(lock, [&] { return barriers_done_ >= target || stop_; });
}

void EpochLog::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  barrier_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
  }
  if (segment_fd_ >= 0) {
    ::close(segment_fd_);
    segment_fd_ = -1;
  }
}

PersistCounters EpochLog::counters() const noexcept {
  PersistCounters c;
  c.epochs_closed = epochs_closed_.load(std::memory_order_relaxed);
  c.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  c.deltas_appended = deltas_appended_.load(std::memory_order_relaxed);
  c.stale_discards = stale_discards_.load(std::memory_order_relaxed);
  c.rotations = rotations_.load(std::memory_order_relaxed);
  c.compactions = compactions_.load(std::memory_order_relaxed);
  c.segments_opened = segments_opened_.load(std::memory_order_relaxed);
  c.io_errors = io_errors_.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t EpochLog::generation() const noexcept {
  return generation_public_.load(std::memory_order_acquire);
}

void EpochLog::begin_generation(std::vector<std::byte> base_blob,
                                std::uint64_t base_version) {
  // Validate-then-seed: the blob was produced by core::serialize_model a
  // moment ago, but the inspection also hands us the shape and encoder
  // meta the shadow and compaction need.
  base_info_ = core::inspect(base_blob);
  meta_ = core::ModelMeta{base_info_.levels, base_info_.encoder_seed,
                          base_info_.feature_count};
  words_per_plane_ = util::words_for_bits(base_info_.dimension);
  const std::size_t rows = base_info_.num_classes * base_info_.precision_bits;
  const std::size_t header_bytes = base_info_.version == core::kFormatRhd2
                                       ? 64
                                       : 48;
  shadow_.assign(rows * words_per_plane_, 0);
  std::memcpy(shadow_.data(), base_blob.data() + header_bytes,
              shadow_.size() * sizeof(std::uint64_t));

  if (segment_fd_ >= 0) {
    ::close(segment_fd_);
    segment_fd_ = -1;
  }
  // The base must be durable (atomic_write_file fsyncs file + dir)
  // before any segment extends it — recovery picks the highest durable
  // base and only then looks for its WAL.
  util::atomic_write_file(config_.dir + "/" + base_file_name(generation_),
                          base_blob);
  base_version_ = base_version;
  max_applied_version_ = base_version;
  segment_seq_ = 0;
  record_seq_ = 0;
  epoch_ = 0;
  generation_wal_bytes_ = 0;
  dirty_ = false;
  open_segment();
  delete_older_generations();
  generation_public_.store(generation_, std::memory_order_release);
}

void EpochLog::open_segment() {
  const std::string path =
      config_.dir + "/" + segment_file_name(generation_, segment_seq_);
  segment_fd_ = ::open(path.c_str(),
                       O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC,
                       0644);
  if (segment_fd_ < 0) {
    throw util::FsError("robusthd: open(wal segment) failed for " + path);
  }
  segment_bytes_written_ = 0;
  // Segment prologue: every segment names the base it extends, so the
  // replayer can reject a segment that drifted from its generation.
  std::vector<std::byte> frame;
  std::vector<std::byte> payload;
  encode_base_ref(payload, BaseRef{generation_, base_version_});
  encode_record(frame, RecordType::kBaseRef, record_seq_++, payload);
  write_frames(frame);
  util::fsync_fd(segment_fd_);
  util::fsync_dir(config_.dir);
  segments_opened_.fetch_add(1, std::memory_order_relaxed);
}

void EpochLog::write_frames(std::span<const std::byte> frames) {
  util::write_fd(segment_fd_, frames);
  segment_bytes_written_ += frames.size();
  generation_wal_bytes_ += frames.size();
  wal_bytes_.fetch_add(frames.size(), std::memory_order_relaxed);
}

std::uint32_t EpochLog::shadow_crc() const noexcept {
  return util::crc32c(shadow_.data(),
                      shadow_.size() * sizeof(std::uint64_t));
}

void EpochLog::apply_to_shadow(const PlaneWrite& write) {
  const std::size_t row =
      static_cast<std::size_t>(write.cls) * base_info_.precision_bits +
      write.plane;
  if (write.cls >= base_info_.num_classes ||
      write.plane >= base_info_.precision_bits ||
      write.word_begin > words_per_plane_ ||
      write.words.size() > words_per_plane_ - write.word_begin) {
    return;  // out-of-shape write: never corrupt the shadow
  }
  std::memcpy(shadow_.data() + row * words_per_plane_ + write.word_begin,
              write.words.data(), write.words.size() * sizeof(std::uint64_t));
}

void EpochLog::close_epoch_on_thread() {
  if (!dirty_) return;
  std::vector<std::byte> frame;
  std::vector<std::byte> payload;
  encode_epoch_close(payload, EpochClose{++epoch_, shadow_crc()});
  encode_record(frame, RecordType::kEpochClose, record_seq_++, payload);
  write_frames(frame);
  // THE durability point: everything in this epoch is on stable storage
  // after this returns, and replay commits exactly up to this record.
  util::fsync_fd(segment_fd_);
  dirty_ = false;
  epochs_closed_.fetch_add(1, std::memory_order_relaxed);
  maybe_rotate_segment();
  maybe_compact();
}

void EpochLog::maybe_rotate_segment() {
  if (segment_bytes_written_ < config_.segment_bytes) return;
  ::close(segment_fd_);
  segment_fd_ = -1;
  ++segment_seq_;
  open_segment();
}

void EpochLog::maybe_compact() {
  if (generation_wal_bytes_ < config_.compact_bytes) return;
  // Fold every closed epoch into a fresh checkpoint: the shadow *is* the
  // post-replay model, so compaction is rebuild-serialize-rotate with no
  // WAL reading at all.
  std::vector<model::ClassVector> classes(base_info_.num_classes);
  std::size_t row = 0;
  for (auto& cls : classes) {
    for (unsigned p = 0; p < base_info_.precision_bits; ++p, ++row) {
      hv::BinVec plane(base_info_.dimension);
      std::memcpy(plane.mutable_words().data(),
                  shadow_.data() + row * words_per_plane_,
                  words_per_plane_ * sizeof(std::uint64_t));
      plane.mask_tail();
      cls.planes.push_back(std::move(plane));
    }
  }
  auto model = model::HdcModel::from_planes(std::move(classes),
                                            base_info_.precision_bits);
  auto blob = core::serialize_model(model, meta_);
  const auto carried_state = last_engine_state_;
  ++generation_;
  // Deltas folded so far all carry versions <= max_applied_version_; the
  // new generation fences exactly there, so nothing queued is lost and
  // nothing folded is replayed twice.
  begin_generation(std::move(blob), max_applied_version_);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  rotations_.fetch_add(1, std::memory_order_relaxed);
  // The engine's durable counters lived only in the old generation's WAL
  // (now deleted); re-persist them as the new generation's first epoch.
  if (carried_state) {
    std::vector<std::byte> frame;
    std::vector<std::byte> payload;
    encode_recovery_state(payload, *carried_state);
    encode_record(frame, RecordType::kRecoveryState, record_seq_++, payload);
    write_frames(frame);
    dirty_ = true;
    close_epoch_on_thread();
  }
}

void EpochLog::delete_older_generations() {
  bool removed = false;
  for (const auto& name : util::list_dir(config_.dir)) {
    std::uint64_t gen = 0, seq = 0;
    const bool is_state = parse_base_file_name(name, gen) ||
                          parse_segment_file_name(name, gen, seq);
    if (is_state && gen < generation_) {
      util::remove_file(config_.dir + "/" + name);
      removed = true;
    }
  }
  if (removed) util::fsync_dir(config_.dir);
}

void EpochLog::fail_log() noexcept {
  // Durability is dead; serving is not. Drop the fd, trip the flag, keep
  // draining (and discarding) so appenders and barriers never block.
  if (segment_fd_ >= 0) {
    ::close(segment_fd_);
    segment_fd_ = -1;
  }
  dirty_ = false;
  failed_.store(true, std::memory_order_release);
  io_errors_.fetch_add(1, std::memory_order_relaxed);
}

void EpochLog::thread_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Publications deliberately do NOT wake this wait: they accumulate
    // for up to one epoch_period and commit under a single fsync. Only
    // shutdown and explicit barriers force the epoch early.
    cv_.wait_for(lock, config_.epoch_period,
                 [&] { return stop_ || barriers_requested_ > barriers_done_; });
    // One drained batch == one epoch. Barriers and shutdown force the
    // drain early; plain publications wait out the period (batching).
    std::vector<Op> batch;
    batch.swap(ops_);
    const std::uint64_t barrier_target = barriers_requested_;
    const bool stopping = stop_;
    lock.unlock();

    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        std::vector<std::byte> frames;
        std::vector<std::byte> payload;
        for (auto& op : batch) {
          if (op.kind == Op::Kind::kRotate) {
            // Fence: commit what precedes the rotation, then switch.
            if (!frames.empty()) {
              write_frames(frames);
              frames.clear();
              dirty_ = true;
            }
            close_epoch_on_thread();
            ++generation_;
            begin_generation(std::move(op.base_blob), op.base_version);
            // A rotation is a reload: the scrubber restarts its engine
            // against the new weights, so the old counters must not leak
            // into the next generation.
            last_engine_state_.reset();
            rotations_.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (op.model_version <= base_version_) {
            // The publication raced a rotation and describes pre-rotation
            // weights; folding it into the new base would corrupt it.
            stale_discards_.fetch_add(op.writes.size(),
                                      std::memory_order_relaxed);
            continue;
          }
          for (auto& write : op.writes) {
            apply_to_shadow(write);
            payload.clear();
            encode_plane_delta(
                payload, PlaneDelta{op.model_version, write.cls, write.plane,
                                    write.word_begin, std::move(write.words)});
            encode_record(frames, RecordType::kPlaneDelta, record_seq_++,
                          payload);
            deltas_appended_.fetch_add(1, std::memory_order_relaxed);
          }
          max_applied_version_ =
              std::max(max_applied_version_, op.model_version);
          if (op.engine_state) {
            payload.clear();
            encode_recovery_state(payload, *op.engine_state);
            encode_record(frames, RecordType::kRecoveryState, record_seq_++,
                          payload);
            last_engine_state_ = std::move(op.engine_state);
          }
        }
        if (!frames.empty()) {
          write_frames(frames);
          dirty_ = true;
        }
        close_epoch_on_thread();
      } catch (const std::exception&) {
        fail_log();
      }
    }

    lock.lock();
    if (barriers_done_ < barrier_target) {
      barriers_done_ = barrier_target;
      barrier_cv_.notify_all();
    }
    if (stopping && ops_.empty()) {
      barrier_cv_.notify_all();
      return;
    }
  }
}

}  // namespace robusthd::persist
