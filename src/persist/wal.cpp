#include "robusthd/persist/wal.hpp"

#include <cstring>

#include "robusthd/util/crc32c.hpp"

namespace robusthd::persist {

namespace {

constexpr std::size_t kPad = 8;

std::size_t padded(std::size_t n) noexcept {
  return (n + (kPad - 1)) & ~(kPad - 1);
}

template <typename T>
void put(std::vector<std::byte>& out, T value) {
  const auto old = out.size();
  out.resize(old + sizeof(T));
  std::memcpy(out.data() + old, &value, sizeof(T));
}

/// Copies sizeof(T) bytes at `offset` out of `payload`; false when the
/// payload is too short. Every decoder reads through this, so a short or
/// lying payload can never run the cursor past the buffer.
template <typename T>
bool get(std::span<const std::byte> payload, std::size_t offset, T& value) {
  if (payload.size() < sizeof(T) || offset > payload.size() - sizeof(T)) {
    return false;
  }
  std::memcpy(&value, payload.data() + offset, sizeof(T));
  return true;
}

}  // namespace

void encode_record(std::vector<std::byte>& out, RecordType type,
                   std::uint64_t seq, std::span<const std::byte> payload) {
  const auto header_at = out.size();
  put<std::uint32_t>(out, kWalMagic);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(type));
  put<std::uint16_t>(out, 0);  // flags
  put<std::uint64_t>(out, seq);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(out, util::crc32c(payload));
  put<std::uint32_t>(out, 0);  // reserved
  put<std::uint32_t>(out,
                     util::crc32c(out.data() + header_at,
                                  kRecordHeaderBytes - sizeof(std::uint32_t)));
  out.insert(out.end(), payload.begin(), payload.end());
  out.resize(header_at + kRecordHeaderBytes + padded(payload.size()),
             std::byte{0});
}

void encode_base_ref(std::vector<std::byte>& out, const BaseRef& ref) {
  put<std::uint64_t>(out, ref.generation);
  put<std::uint64_t>(out, ref.base_version);
}

void encode_plane_delta(std::vector<std::byte>& out, const PlaneDelta& delta) {
  put<std::uint64_t>(out, delta.model_version);
  put<std::uint32_t>(out, delta.cls);
  put<std::uint32_t>(out, delta.plane);
  put<std::uint64_t>(out, delta.word_begin);
  const auto old = out.size();
  out.resize(old + delta.words.size() * sizeof(std::uint64_t));
  std::memcpy(out.data() + old, delta.words.data(),
              delta.words.size() * sizeof(std::uint64_t));
}

void encode_recovery_state(std::vector<std::byte>& out,
                           const model::RecoveryEngineState& state) {
  put<std::uint64_t>(out, state.total_updates);
  put<std::uint64_t>(out, state.total_substituted_bits);
  std::uint64_t health_bits = 0;
  static_assert(sizeof(health_bits) == sizeof(state.best_health));
  std::memcpy(&health_bits, &state.best_health, sizeof(health_bits));
  put<std::uint64_t>(out, health_bits);
  put<std::uint32_t>(out, state.frozen ? 1u : 0u);
  put<std::uint32_t>(out,
                     static_cast<std::uint32_t>(state.class_repairs.size()));
  for (const auto r : state.class_repairs) put<std::uint64_t>(out, r);
}

void encode_epoch_close(std::vector<std::byte>& out, const EpochClose& close) {
  put<std::uint64_t>(out, close.epoch);
  put<std::uint32_t>(out, close.state_crc);
  put<std::uint32_t>(out, 0);  // reserved
}

std::optional<BaseRef> decode_base_ref(std::span<const std::byte> payload) {
  BaseRef ref;
  if (payload.size() != 16) return std::nullopt;
  if (!get(payload, 0, ref.generation)) return std::nullopt;
  if (!get(payload, 8, ref.base_version)) return std::nullopt;
  return ref;
}

std::optional<PlaneDelta> decode_plane_delta(
    std::span<const std::byte> payload) {
  PlaneDelta delta;
  constexpr std::size_t kFixed = 24;
  if (payload.size() < kFixed) return std::nullopt;
  if ((payload.size() - kFixed) % sizeof(std::uint64_t) != 0) {
    return std::nullopt;
  }
  if (!get(payload, 0, delta.model_version)) return std::nullopt;
  if (!get(payload, 8, delta.cls)) return std::nullopt;
  if (!get(payload, 12, delta.plane)) return std::nullopt;
  if (!get(payload, 16, delta.word_begin)) return std::nullopt;
  const std::size_t words = (payload.size() - kFixed) / sizeof(std::uint64_t);
  delta.words.resize(words);
  std::memcpy(delta.words.data(), payload.data() + kFixed,
              words * sizeof(std::uint64_t));
  return delta;
}

std::optional<model::RecoveryEngineState> decode_recovery_state(
    std::span<const std::byte> payload) {
  model::RecoveryEngineState state;
  constexpr std::size_t kFixed = 32;
  if (payload.size() < kFixed) return std::nullopt;
  std::uint64_t health_bits = 0;
  std::uint32_t frozen = 0;
  std::uint32_t classes = 0;
  if (!get(payload, 0, state.total_updates)) return std::nullopt;
  if (!get(payload, 8, state.total_substituted_bits)) return std::nullopt;
  if (!get(payload, 16, health_bits)) return std::nullopt;
  if (!get(payload, 24, frozen)) return std::nullopt;
  if (!get(payload, 28, classes)) return std::nullopt;
  std::memcpy(&state.best_health, &health_bits, sizeof(state.best_health));
  state.frozen = frozen != 0;
  // The declared class count must match the payload exactly — a lying
  // count (even CRC-valid, i.e. a writer bug) cannot drive an oversized
  // allocation.
  if (payload.size() - kFixed !=
      static_cast<std::size_t>(classes) * sizeof(std::uint64_t)) {
    return std::nullopt;
  }
  state.class_repairs.resize(classes);
  std::memcpy(state.class_repairs.data(), payload.data() + kFixed,
              static_cast<std::size_t>(classes) * sizeof(std::uint64_t));
  return state;
}

std::optional<EpochClose> decode_epoch_close(
    std::span<const std::byte> payload) {
  EpochClose close;
  if (payload.size() != 16) return std::nullopt;
  std::uint32_t reserved = 0;
  if (!get(payload, 0, close.epoch)) return std::nullopt;
  if (!get(payload, 8, close.state_crc)) return std::nullopt;
  if (!get(payload, 12, reserved)) return std::nullopt;
  return close;
}

bool SegmentReader::next(RecordView& out) noexcept {
  if (done_) return false;
  if (offset_ == data_.size()) {  // clean end, nothing torn
    done_ = true;
    return false;
  }
  // Anything from here on that fails to parse is a tear: bytes exist
  // past the last good record but do not form one.
  if (data_.size() - offset_ < kRecordHeaderBytes) {
    torn_ = done_ = true;
    return false;
  }
  const std::byte* h = data_.data() + offset_;
  std::uint32_t magic = 0;
  std::uint16_t type = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
  std::memcpy(&magic, h, 4);
  std::memcpy(&type, h + 4, 2);
  std::memcpy(&seq, h + 8, 8);
  std::memcpy(&payload_bytes, h + 16, 4);
  std::memcpy(&payload_crc, h + 20, 4);
  std::memcpy(&header_crc, h + 28, 4);
  if (magic != kWalMagic ||
      header_crc != util::crc32c(h, kRecordHeaderBytes - 4) ||
      payload_bytes > kMaxRecordPayload) {
    torn_ = done_ = true;
    return false;
  }
  const std::size_t frame = kRecordHeaderBytes + padded(payload_bytes);
  if (data_.size() - offset_ < frame) {
    torn_ = done_ = true;
    return false;
  }
  const auto payload =
      data_.subspan(offset_ + kRecordHeaderBytes, payload_bytes);
  if (payload_crc != util::crc32c(payload)) {
    torn_ = done_ = true;
    return false;
  }
  out.type = static_cast<RecordType>(type);
  out.seq = seq;
  out.payload = payload;
  offset_ += frame;
  return true;
}

}  // namespace robusthd::persist
