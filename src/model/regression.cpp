#include "robusthd/model/regression.hpp"

#include <cassert>
#include <cmath>

#include "robusthd/util/rng.hpp"

namespace robusthd::model {

namespace {

/// Bipolar projection of query onto a float model vector.
double project(const hv::BinVec& query, std::span<const float> m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    acc += query.get(i) ? m[i] : -m[i];
  }
  return acc / static_cast<double>(m.size());
}

}  // namespace

HdcRegressor HdcRegressor::train(std::span<const hv::BinVec> encoded,
                                 std::span<const double> targets,
                                 const Config& config) {
  assert(!encoded.empty());
  assert(encoded.size() == targets.size());
  const std::size_t dim = encoded[0].dimension();

  // Centre the targets; the bias absorbs the mean so the hypervector only
  // carries the signal around it.
  double mean = 0.0;
  for (const auto y : targets) mean += y;
  mean /= static_cast<double>(targets.size());

  std::vector<float> m(dim, 0.0f);
  util::Xoshiro256 rng(config.seed);
  std::vector<std::size_t> order(encoded.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double lr = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    util::shuffle(std::span<std::size_t>(order), rng);
    for (const auto idx : order) {
      const auto& h = encoded[idx];
      const double err = (targets[idx] - mean) - project(h, m);
      const auto step = static_cast<float>(lr * err);
      for (std::size_t i = 0; i < dim; ++i) {
        m[i] += h.get(i) ? step : -step;
      }
    }
    lr *= 0.9;
  }

  HdcRegressor out;
  out.dimension_ = dim;
  out.bias_ = mean;
  out.weights_ = baseline::QuantizedTensor(m, config.precision);
  return out;
}

double HdcRegressor::predict(const hv::BinVec& query) const {
  assert(query.dimension() == dimension_);
  double acc = 0.0;
  for (std::size_t i = 0; i < dimension_; ++i) {
    const float w = weights_.get(i);
    acc += query.get(i) ? w : -w;
  }
  return bias_ + acc / static_cast<double>(dimension_);
}

double HdcRegressor::rmse(std::span<const hv::BinVec> queries,
                          std::span<const double> targets) const {
  assert(queries.size() == targets.size());
  if (queries.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double err = predict(queries[i]) - targets[i];
    sum += err * err;
  }
  return std::sqrt(sum / static_cast<double>(queries.size()));
}

std::vector<fault::MemoryRegion> HdcRegressor::memory_regions() {
  return {weights_.region("reghd/m")};
}

}  // namespace robusthd::model
