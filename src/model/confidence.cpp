#include "robusthd/model/confidence.hpp"

#include <algorithm>
#include <cmath>

#include "robusthd/util/stats.hpp"

namespace robusthd::model {

Confidence assess(std::span<const double> similarities,
                  const ConfidenceConfig& config, std::size_t dimension) {
  Confidence c;
  if (similarities.empty()) return c;

  double top = -1.0, second = -1.0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < similarities.size(); ++i) {
    const double s = similarities[i];
    if (s > top) {
      second = top;
      top = s;
      best = i;
    } else if (s > second) {
      second = s;
    }
  }
  c.predicted = static_cast<int>(best);
  c.margin = similarities.size() > 1 ? top - second : top;

  if (similarities.size() == 1) {
    c.top_probability = 1.0;
    return c;
  }

  if (similarities.size() == 2 && dimension > 0) {
    // Two classes: the cross-class spread is just the margin, so z-scores
    // degenerate to ±1. Scale the margin by the Hamming noise floor
    // (similarity fluctuations are ~1/(2·sqrt(D))) and squash.
    const double noise = 0.5 / std::sqrt(static_cast<double>(dimension));
    const double z = c.margin / (noise * 2.0) / config.temperature;
    c.top_probability = 1.0 / (1.0 + std::exp(-z));
    return c;
  }

  // Standardise across classes, then softmax at the configured temperature.
  util::RunningStats stats;
  for (const auto s : similarities) stats.add(s);
  const double sd = stats.stddev() > 1e-12 ? stats.stddev() : 1e-12;
  std::vector<double> z(similarities.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = (similarities[i] - stats.mean()) / sd;
  }
  const auto probs = util::softmax(z, config.temperature);
  c.top_probability = probs[best];
  return c;
}

}  // namespace robusthd::model
