#include "robusthd/model/recovery.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace robusthd::model {

RecoveryEngine::RecoveryEngine(HdcModel& model, const RecoveryConfig& config)
    : model_(model), config_(config), rng_(config.seed) {
  if (model_.precision_bits() != 1) {
    throw std::invalid_argument(
        "RecoveryEngine requires a binary (1-bit) HDC model");
  }
  if (config_.chunks == 0 || config_.chunks > model_.dimension()) {
    throw std::invalid_argument("chunk count must be in [1, D]");
  }
  votes_.resize(model_.num_classes() * config_.chunks);
  priority_.assign(model_.num_classes() * config_.chunks, 0);
  class_repairs_.assign(model_.num_classes(), 0);
  sim_stats_.resize(model_.num_classes());
}

void RecoveryEngine::set_chunk_priority(std::size_t cls, std::size_t chunk,
                                        bool on) {
  if (cls >= model_.num_classes() || chunk >= config_.chunks) {
    throw std::out_of_range("set_chunk_priority: (class, chunk) out of range");
  }
  priority_[cls * config_.chunks + chunk] = on ? 1 : 0;
}

bool RecoveryEngine::chunk_priority(std::size_t cls,
                                    std::size_t chunk) const noexcept {
  return priority_[cls * config_.chunks + chunk] != 0;
}

void RecoveryEngine::clear_priorities() noexcept {
  std::fill(priority_.begin(), priority_.end(), 0);
}

RecoveryEngineState RecoveryEngine::export_state() const {
  RecoveryEngineState s;
  s.total_updates = total_updates_;
  s.total_substituted_bits = total_substituted_bits_;
  s.best_health = best_health_;
  s.frozen = frozen_;
  s.class_repairs.assign(class_repairs_.begin(), class_repairs_.end());
  return s;
}

void RecoveryEngine::restore_state(const RecoveryEngineState& state) {
  if (state.class_repairs.size() != class_repairs_.size()) {
    throw std::invalid_argument(
        "restore_state: class_repairs length does not match the model");
  }
  total_updates_ = static_cast<std::size_t>(state.total_updates);
  total_substituted_bits_ =
      static_cast<std::size_t>(state.total_substituted_bits);
  best_health_ = state.best_health;
  frozen_ = state.frozen;
  for (std::size_t i = 0; i < class_repairs_.size(); ++i) {
    class_repairs_[i] = static_cast<std::size_t>(state.class_repairs[i]);
  }
}

std::size_t RecoveryEngine::substitute(hv::BinVec& plane,
                                       const hv::BinVec& bits,
                                       std::size_t begin, std::size_t end) {
  std::size_t changed = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (rng_.bernoulli(config_.substitution_prob) &&
        plane.get(i) != bits.get(i)) {
      plane.set(i, bits.get(i));
      ++changed;
    }
  }
  return changed;
}

std::pair<std::size_t, std::size_t> RecoveryEngine::chunk_range(
    std::size_t c) const {
  const std::size_t d = model_.dimension();
  const std::size_t m = config_.chunks;
  return {c * d / m, (c + 1) * d / m};
}

void RecoveryEngine::track_similarity(std::size_t cls,
                                      double win_sim) noexcept {
  auto& stats = sim_stats_[cls];
  ++stats.observed;
  // EMA with a burn-in: the first observations initialise the estimate.
  const double alpha =
      stats.observed < 20 ? 1.0 / static_cast<double>(stats.observed) : 0.05;
  const double delta = win_sim - stats.mean;
  stats.mean += alpha * delta;
  stats.var = (1.0 - alpha) * (stats.var + alpha * delta * delta);
}

bool RecoveryEngine::absolute_gate_passes(std::size_t cls,
                                          double win_sim) const noexcept {
  if (config_.absolute_gate_sigma < -90.0) return true;  // disabled
  const auto& stats = sim_stats_[cls];
  if (stats.observed < 10) return false;  // not enough evidence yet
  const double sd = std::sqrt(std::max(stats.var, 1.0e-12));
  return win_sim >= stats.mean - config_.absolute_gate_sigma * sd;
}

ObserveResult RecoveryEngine::observe(const hv::BinVec& query) {
  ObserveResult result;

  const auto similarities = model_.scores(query);
  const auto conf =
      assess(similarities, config_.confidence, model_.dimension());
  result.predicted = conf.predicted;
  result.confidence = conf.top_probability;

  const double win_sim =
      similarities[static_cast<std::size_t>(conf.predicted)];
  const auto predicted_class = static_cast<std::size_t>(conf.predicted);
  const bool absolute_ok = absolute_gate_passes(predicted_class, win_sim);
  track_similarity(predicted_class, win_sim);
  const double margin_noise =
      std::sqrt(2.0) * 0.5 / std::sqrt(static_cast<double>(model_.dimension()));
  const bool margin_ok =
      conf.margin >= config_.margin_gate_sigma * margin_noise;
  if (conf.top_probability < config_.confidence_threshold || !absolute_ok ||
      !margin_ok) {
    return result;
  }
  result.trusted = true;

  const auto winner = static_cast<std::size_t>(conf.predicted);
  // plane_for_repair keeps the arena mirror live through the (common)
  // no-repair exit paths below; when a substitution does land, the touched
  // bit range is propagated explicitly via sync_arena_range.
  auto& class_plane = model_.plane_for_repair(winner, 0);

  // Health watchdog: repairs must never make the model worse. Track the
  // population mean of per-class winning similarities; a sustained drop
  // below the best level seen since repairs started freezes the engine.
  if (frozen_) return result;
  if (config_.watchdog_sigma > 0.0 && total_substituted_bits_ > 0) {
    double mean_sum = 0.0, sd_sum = 0.0;
    std::size_t tracked = 0;
    for (const auto& stats : sim_stats_) {
      if (stats.observed >= 10) {
        mean_sum += stats.mean;
        sd_sum += std::sqrt(std::max(stats.var, 1.0e-12));
        ++tracked;
      }
    }
    if (tracked > 0) {
      const double health = mean_sum / static_cast<double>(tracked);
      const double sd = sd_sum / static_cast<double>(tracked);
      best_health_ = std::max(best_health_, health);
      if (health < best_health_ - config_.watchdog_sigma * sd) {
        frozen_ = true;
        return result;
      }
    }
  }

  // Global budget: once the engine has rewritten its share of the model,
  // it goes quiescent (a bounded repair, not an open-ended learner).
  const double model_bits =
      static_cast<double>(model_.dimension()) *
      static_cast<double>(model_.num_classes());
  if (static_cast<double>(total_substituted_bits_) >=
      config_.max_total_substitution_fraction * model_bits) {
    return result;
  }

  // Balanced repair: do not let this class run ahead of the others.
  const bool repair_allowed =
      config_.repair_balance_slack == 0 ||
      class_repairs_[winner] <=
          *std::min_element(class_repairs_.begin(), class_repairs_.end()) +
              config_.repair_balance_slack;

  long worst_chunk = -1;
  double worst_deficit = 0.0;
  // All chunk-level scores come from one call into the SIMD-dispatched
  // masked-Hamming kernels, reusing this engine's row buffer.
  model_.chunk_scores_all(query, config_.chunks, chunk_scores_buf_);
  const std::size_t k = model_.num_classes();
  for (std::size_t c = 0; c < config_.chunks; ++c) {
    const auto [begin, end] = chunk_range(c);
    const double* local = chunk_scores_buf_.data() + c * k;
    const auto local_winner = static_cast<std::size_t>(
        std::max_element(local, local + k) - local);

    // Two fault signals, both measured against the chunk-level Hamming
    // noise floor (sigma ~ sqrt(d)/2 bits over d bits):
    //  * contradiction — a rival class wins this chunk by a significant
    //    margin (the paper's "mismatched chunk");
    //  * self-inconsistency — the trusted class scores significantly below
    //    its own *global* similarity inside this chunk. The global score
    //    is the mean of the chunk scores, so this flags exactly the chunks
    //    that drag the prediction down, even when no rival overtakes them
    //    locally. Without it, classes whose damage never flips a local
    //    argmax are never repaired, and partially-repaired neighbours
    //    steal their boundary queries.
    const auto d = static_cast<double>(end - begin);
    const double noise_sim = 0.5 / std::sqrt(d);
    const double threshold = config_.chunk_significance * noise_sim;
    const bool contradiction =
        local_winner != winner &&
        local[local_winner] - local[winner] >= threshold;
    const bool self_inconsistent =
        win_sim - local[winner] >= threshold;
    if (!contradiction && !self_inconsistent) continue;  // healthy chunk

    // Faulty chunk: accumulate the flag; repairs themselves are applied
    // one chunk per query below (gradualism — a single query must never
    // rewrite a large slice of a class vector in one step, or the repaired
    // class transiently outscores the still-damaged ones and steals their
    // queries before they can heal).
    ++result.faulty_chunks;
    auto& votes = votes_[winner * config_.chunks + c];
    // Sentinel-prioritized chunks: external evidence of damage already
    // exists, so the consensus requirement drops to a single flagger and
    // the per-chunk budget is doubled.
    const bool prioritized = priority_[winner * config_.chunks + c] != 0;
    if (config_.max_updates_per_chunk != 0 &&
        votes.updates_done >= (prioritized ? 2 * config_.max_updates_per_chunk
                                           : config_.max_updates_per_chunk)) {
      continue;
    }
    if (!prioritized && config_.consensus_flags > 1) {
      votes.snapshots.push_back(query);
      if (votes.snapshots.size() > config_.consensus_flags) {
        votes.snapshots.erase(votes.snapshots.begin());
      }
      if (votes.snapshots.size() < config_.consensus_flags) continue;
    }
    if (!repair_allowed) continue;

    // Remember the most suspicious repair-ready chunk for this query.
    const double deficit =
        std::max(win_sim - local[winner],
                 local[local_winner] - local[winner]);
    if (deficit > worst_deficit) {
      worst_deficit = deficit;
      worst_chunk = static_cast<long>(c);
    }
  }

  // Apply at most one repair per observed query: the worst flagged chunk.
  if (worst_chunk >= 0) {
    const auto c = static_cast<std::size_t>(worst_chunk);
    const auto [begin, end] = chunk_range(c);
    auto& votes = votes_[winner * config_.chunks + c];
    ++votes.updates_done;
    ++class_repairs_[winner];
    // Only applied repairs count: chunks flagged but gated out (budget,
    // consensus, balance) are detection events, not repair activity, and
    // the watchdog's consumers read total_updates() as the latter.
    ++total_updates_;
    if (priority_[winner * config_.chunks + c] != 0 ||
        config_.consensus_flags <= 1) {
      // Single-query substitution (priority chunks bypass consensus; any
      // part-filled consensus buffer is stale once the fast path fires).
      votes.snapshots.clear();
      result.substituted_bits += substitute(class_plane, query, begin, end);
    } else {
      // Bitwise majority of the buffered flaggers over this chunk.
      hv::BinVec majority(model_.dimension());
      for (std::size_t i = begin; i < end; ++i) {
        std::size_t ones = 0;
        for (const auto& s : votes.snapshots) ones += s.get(i);
        majority.set(i, 2 * ones > votes.snapshots.size());
      }
      votes.snapshots.clear();
      result.substituted_bits += substitute(class_plane, majority, begin, end);
    }
    if (result.substituted_bits > 0) {
      // One-chunk republish into the arena mirror: scoring stays on the
      // fast path across in-service repairs.
      model_.sync_arena_range(winner, 0, begin, end);
      result.repaired_class = winner;
      result.repaired_begin = begin;
      result.repaired_end = end;
    }
  }

  total_substituted_bits_ += result.substituted_bits;
  return result;
}

}  // namespace robusthd::model
