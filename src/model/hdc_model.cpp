#include "robusthd/model/hdc_model.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <string_view>

#include "robusthd/kernels/kernels.hpp"
#include "robusthd/util/parallel.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::model {

namespace {

/// Layout toggle backing store. Function-local static so the env lookup
/// happens on first use regardless of static-init order.
std::atomic<int>& layout_flag() {
  static std::atomic<int> flag{[] {
    if (const char* v = std::getenv("ROBUSTHD_LAYOUT")) {
      if (std::string_view(v) == "rowmajor") {
        return static_cast<int>(ScoringLayout::kRowMajor);
      }
    }
    return static_cast<int>(ScoringLayout::kArena);
  }()};
  return flag;
}

}  // namespace

void set_scoring_layout(ScoringLayout layout) noexcept {
  layout_flag().store(static_cast<int>(layout), std::memory_order_relaxed);
}

ScoringLayout scoring_layout() noexcept {
  return static_cast<ScoringLayout>(
      layout_flag().load(std::memory_order_relaxed));
}

namespace {

/// Nearest and second-nearest class by Hamming distance against binary
/// (sign) snapshots of the accumulators — keeps retraining word-parallel
/// instead of per-dimension.
struct NearestTwo {
  int best = 0;
  int second = -1;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  std::size_t second_distance = std::numeric_limits<std::size_t>::max();
};

/// Scans a distance row produced by the matrix kernel; tie-breaking
/// (lowest index wins) matches the historical per-pair loop exactly.
NearestTwo nearest_two(const std::uint32_t* distances, std::size_t classes) {
  NearestTwo out;
  for (std::size_t c = 0; c < classes; ++c) {
    const std::size_t d = distances[c];
    if (d < out.best_distance) {
      out.second_distance = out.best_distance;
      out.second = out.best;
      out.best_distance = d;
      out.best = static_cast<int>(c);
    } else if (d < out.second_distance) {
      out.second_distance = d;
      out.second = static_cast<int>(c);
    }
  }
  return out;
}

}  // namespace

HdcModel::HdcModel(const HdcModel& other)
    : dim_(other.dim_),
      precision_bits_(other.precision_bits_),
      classes_(other.classes_),
      arena_(other.arena_valid_ ? other.arena_ : mem::PlaneArena()),
      arena_valid_(other.arena_valid_) {
  if (!arena_valid_) sync_arena();
}

HdcModel& HdcModel::operator=(const HdcModel& other) {
  if (this == &other) return *this;
  dim_ = other.dim_;
  precision_bits_ = other.precision_bits_;
  classes_ = other.classes_;
  if (other.arena_valid_) {
    // Geometry-matching assignments (scrubber resync, snapshot republish)
    // reuse the existing allocation: one memcpy, no mmap churn.
    arena_ = other.arena_;
    arena_valid_ = true;
  } else {
    arena_valid_ = false;
    sync_arena();
  }
  return *this;
}

void HdcModel::sync_arena() {
  arena_valid_ = false;
  const std::size_t ppc = classes_.empty() ? 0 : classes_[0].planes.size();
  if (dim_ == 0 || ppc == 0) {
    arena_ = mem::PlaneArena();
    return;
  }
  for (const auto& cls : classes_) {
    if (cls.planes.size() != ppc) {
      arena_ = mem::PlaneArena();
      return;
    }
    for (const auto& plane : cls.planes) {
      if (plane.dimension() != dim_) {
        arena_ = mem::PlaneArena();
        return;
      }
    }
  }
  const std::size_t rows = classes_.size() * ppc;
  if (arena_.num_planes() != rows || arena_.dimension() != dim_) {
    arena_ = mem::PlaneArena(rows, dim_);
  }
  std::size_t row = 0;
  for (const auto& cls : classes_) {
    for (const auto& plane : cls.planes) arena_.store_plane(row++, plane);
  }
  arena_valid_ = true;
}

void HdcModel::sync_arena_range(std::size_t cls, std::size_t plane,
                                std::size_t bit_begin, std::size_t bit_end) {
  if (!arena_valid_) {
    sync_arena();
    return;
  }
  if (bit_begin >= bit_end) return;
  assert(bit_end <= dim_);
  const std::size_t row = cls * classes_[0].planes.size() + plane;
  const std::size_t word_begin = bit_begin >> 6;
  const std::size_t word_end = ((bit_end - 1) >> 6) + 1;
  arena_.store_words(row, word_begin, word_end,
                     classes_[cls].planes[plane].words().data());
}

std::span<const std::uint64_t> HdcModel::plane_words(
    std::size_t cls, std::size_t plane) const noexcept {
  if (use_arena()) {
    const std::size_t row = cls * classes_[0].planes.size() + plane;
    return {arena_.plane(row), arena_.words()};
  }
  return classes_[cls].planes[plane].words();
}

HdcModel HdcModel::train(std::span<const hv::BinVec> encoded,
                         std::span<const int> labels,
                         std::size_t num_classes, const HdcConfig& config) {
  assert(!encoded.empty());
  assert(encoded.size() == labels.size());

  HdcModel model;
  model.dim_ = encoded[0].dimension();
  model.precision_bits_ = std::max(config.precision_bits, 1u);

  // Pass 1: bundle every training hypervector into its class accumulator.
  std::vector<hv::SignedAccumulator> accs(num_classes,
                                          hv::SignedAccumulator(model.dim_));
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    accs[static_cast<std::size_t>(labels[i])].add(encoded[i]);
  }

  // Perceptron-style retraining: on a mistake, reinforce the true class and
  // weaken the predicted one (standard HDC practice; improves the single-
  // pass model substantially on harder tasks). Predictions run against
  // binary sign snapshots so each epoch is word-parallel; only the two
  // accumulators touched by a mistake have their snapshots refreshed.
  std::vector<hv::BinVec> signs;
  signs.reserve(num_classes);
  for (const auto& acc : accs) signs.push_back(acc.sign());

  // The epoch loop scores each sample against every sign snapshot through
  // the 1 x k distance-matrix kernel; sign refreshes reallocate the word
  // storage, so the pointer table entry is refreshed alongside.
  std::vector<const std::uint64_t*> sign_ptrs(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    sign_ptrs[c] = signs[c].words().data();
  }
  std::vector<std::uint32_t> distances(num_classes);
  const std::size_t words = util::words_for_bits(model.dim_);

  const auto min_margin = static_cast<std::size_t>(
      config.retrain_margin * static_cast<double>(model.dim_));
  for (std::size_t epoch = 0; epoch < config.retrain_epochs; ++epoch) {
    std::size_t updates = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      const int truth = labels[i];
      const std::uint64_t* query = encoded[i].words().data();
      kernels::hamming_matrix(&query, 1, sign_ptrs.data(), num_classes,
                              words, distances.data());
      const auto nearest = nearest_two(distances.data(), num_classes);
      const bool wrong = nearest.best != truth;
      const bool thin_margin =
          !wrong && nearest.second_distance - nearest.best_distance <
                        min_margin;
      if (wrong || thin_margin) {
        const auto t = static_cast<std::size_t>(truth);
        const int rival = wrong ? nearest.best : nearest.second;
        accs[t].add(encoded[i], +1);
        signs[t] = accs[t].sign();
        sign_ptrs[t] = signs[t].words().data();
        if (rival >= 0) {
          const auto g = static_cast<std::size_t>(rival);
          accs[g].add(encoded[i], -1);
          signs[g] = accs[g].sign();
          sign_ptrs[g] = signs[g].words().data();
        }
        ++updates;
      }
    }
    if (updates == 0) break;
  }

  model.classes_.reserve(num_classes);
  for (auto& acc : accs) {
    ClassVector cv;
    cv.planes = acc.quantize_planes(model.precision_bits_);
    model.classes_.push_back(std::move(cv));
  }
  model.sync_arena();
  return model;
}

HdcModel HdcModel::from_accumulators(
    std::span<const hv::SignedAccumulator> accumulators,
    unsigned precision_bits) {
  assert(!accumulators.empty());
  HdcModel model;
  model.dim_ = accumulators[0].dimension();
  model.precision_bits_ = std::max(precision_bits, 1u);
  model.classes_.reserve(accumulators.size());
  for (const auto& acc : accumulators) {
    ClassVector cv;
    cv.planes = acc.quantize_planes(model.precision_bits_);
    model.classes_.push_back(std::move(cv));
  }
  model.sync_arena();
  return model;
}

HdcModel HdcModel::from_planes(std::vector<ClassVector> classes,
                               unsigned precision_bits) {
  assert(!classes.empty() && !classes[0].planes.empty());
  HdcModel model;
  model.dim_ = classes[0].planes[0].dimension();
  model.precision_bits_ = std::max(precision_bits, 1u);
  model.classes_ = std::move(classes);
  model.sync_arena();
  return model;
}

std::vector<double> HdcModel::scores(const hv::BinVec& query) const {
  return chunk_scores(query, 0, dim_);
}

void HdcModel::chunk_scores_into(const hv::BinVec& query, std::size_t begin,
                                 std::size_t end, double* out) const {
  const std::size_t width = end - begin;
  if (width == 0) {
    std::fill(out, out + classes_.size(), 0.0);
    return;
  }
  const double denom = static_cast<double>(width) *
                       static_cast<double>((1u << precision_bits_) - 1);
  // plane_words() serves the arena row when the mirror is live, so the
  // chunk sweep streams the same contiguous storage as batched scoring;
  // the span-level hamming_range is bit-identical on either storage.
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    double score = 0.0;
    for (std::size_t p = 0; p < classes_[c].planes.size(); ++p) {
      const std::size_t matches =
          width - hv::hamming_range(query.words(), plane_words(c, p), begin,
                                    end);
      score += static_cast<double>(1u << p) * static_cast<double>(matches);
    }
    out[c] = score / denom;
  }
}

std::vector<double> HdcModel::chunk_scores(const hv::BinVec& query,
                                           std::size_t begin,
                                           std::size_t end) const {
  std::vector<double> out(classes_.size(), 0.0);
  chunk_scores_into(query, begin, end, out.data());
  return out;
}

void HdcModel::chunk_scores_all(const hv::BinVec& query, std::size_t chunks,
                                std::vector<double>& out) const {
  out.resize(chunks * classes_.size());
  for (std::size_t c = 0; c < chunks; ++c) {
    // Same partition as RecoveryEngine::chunk_range.
    const std::size_t begin = c * dim_ / chunks;
    const std::size_t end = (c + 1) * dim_ / chunks;
    chunk_scores_into(query, begin, end, out.data() + c * classes_.size());
  }
}

void HdcModel::scores_batch(std::span<const hv::BinVec* const> queries,
                            ScoreWorkspace& ws) const {
  const std::size_t k = classes_.size();
  const std::size_t q = queries.size();
  ws.scores.resize(q * k);
  if (q == 0 || k == 0) return;

  const std::size_t planes_per_class = classes_[0].planes.size();
  const std::size_t total_planes = k * planes_per_class;
  ws.query_ptrs.resize(q);
  for (std::size_t i = 0; i < q; ++i) {
    ws.query_ptrs[i] = queries[i]->words().data();
  }
  ws.distances.resize(q * total_planes);

  if (use_arena()) {
    // Arena fast path: one tiled pass over the contiguous mirror (row
    // c * planes + p == pointer-table slot c * planes + p, so the distance
    // matrix is laid out identically to the row-major path below).
    kernels::hamming_matrix_arena(ws.query_ptrs.data(), q, arena_.view(),
                                  ws.distances.data());
  } else {
    // Flatten the stored model into one plane-pointer table (plane-major
    // per class, matching the p-ascending weight accumulation below).
    ws.plane_ptrs.clear();
    for (const auto& cls : classes_) {
      if (cls.planes.size() != planes_per_class) {
        // Ragged plane counts (hand-built models): take the exact
        // per-query path rather than a padded matrix.
        for (std::size_t i = 0; i < q; ++i) {
          chunk_scores_into(*queries[i], 0, dim_, ws.scores.data() + i * k);
        }
        return;
      }
      for (const auto& plane : cls.planes) {
        ws.plane_ptrs.push_back(plane.words().data());
      }
    }
    // One blocked pass over the model scores the whole batch.
    kernels::hamming_matrix(ws.query_ptrs.data(), q, ws.plane_ptrs.data(),
                            total_planes, util::words_for_bits(dim_),
                            ws.distances.data());
  }

  // Plane-weighted combination — operation order matches chunk_scores_into
  // exactly, so the scores are bit-identical to the per-query path.
  const double denom = static_cast<double>(dim_) *
                       static_cast<double>((1u << precision_bits_) - 1);
  for (std::size_t i = 0; i < q; ++i) {
    const std::uint32_t* row = ws.distances.data() + i * total_planes;
    double* out = ws.scores.data() + i * k;
    for (std::size_t c = 0; c < k; ++c) {
      double score = 0.0;
      for (std::size_t p = 0; p < planes_per_class; ++p) {
        const std::size_t matches = dim_ - row[c * planes_per_class + p];
        score += static_cast<double>(1u << p) * static_cast<double>(matches);
      }
      out[c] = score / denom;
    }
  }
}

void HdcModel::scores_batch_masked(std::span<const hv::BinVec* const> queries,
                                   std::span<const std::uint64_t> mask,
                                   std::size_t kept_dims,
                                   ScoreWorkspace& ws) const {
  const std::size_t k = classes_.size();
  const std::size_t q = queries.size();
  const std::size_t words = util::words_for_bits(dim_);
  ws.scores.resize(q * k);
  if (q == 0 || k == 0) return;
  if (kept_dims == 0) {
    std::fill(ws.scores.begin(), ws.scores.end(), 0.0);
    return;
  }

  const std::size_t planes_per_class = classes_[0].planes.size();
  const bool arena_path = use_arena();
  ws.plane_ptrs.clear();
  bool ragged = false;
  if (!arena_path) {
    for (const auto& cls : classes_) {
      if (cls.planes.size() != planes_per_class) {
        ragged = true;
        break;
      }
      for (const auto& plane : cls.planes) {
        ws.plane_ptrs.push_back(plane.words().data());
      }
    }
  }
  const double denom = static_cast<double>(kept_dims) *
                       static_cast<double>((1u << precision_bits_) - 1);
  if (ragged) {
    // Ragged plane counts (hand-built models): exact per-pair path through
    // the same masked kernel, one cell at a time.
    for (std::size_t i = 0; i < q; ++i) {
      const std::uint64_t* qw = queries[i]->words().data();
      double* out = ws.scores.data() + i * k;
      for (std::size_t c = 0; c < k; ++c) {
        double score = 0.0;
        for (std::size_t p = 0; p < classes_[c].planes.size(); ++p) {
          const std::uint64_t* pw = classes_[c].planes[p].words().data();
          std::uint32_t d = 0;
          kernels::ops().hamming_matrix_masked(&qw, 1, &pw, 1, words,
                                               mask.data(), &d);
          const std::size_t matches = kept_dims - d;
          score += static_cast<double>(1u << p) * static_cast<double>(matches);
        }
        out[c] = score / denom;
      }
    }
    return;
  }
  const std::size_t total_planes = k * planes_per_class;

  ws.query_ptrs.resize(q);
  for (std::size_t i = 0; i < q; ++i) {
    ws.query_ptrs[i] = queries[i]->words().data();
  }

  ws.distances.resize(q * total_planes);
  if (arena_path) {
    // Arena fast path: tiled masked pass over the contiguous mirror —
    // quarantine-masked scoring keeps the layout win.
    kernels::hamming_matrix_arena_masked(ws.query_ptrs.data(), q,
                                         arena_.view(), mask.data(),
                                         ws.distances.data());
  } else {
    kernels::hamming_matrix_masked(ws.query_ptrs.data(), q,
                                   ws.plane_ptrs.data(), total_planes, words,
                                   mask.data(), ws.distances.data());
  }

  // Same combination as scores_batch with kept_dims substituted for dim_:
  // identical float operation order, so an all-ones mask reproduces the
  // unmasked scores bit-for-bit.
  for (std::size_t i = 0; i < q; ++i) {
    const std::uint32_t* row = ws.distances.data() + i * total_planes;
    double* out = ws.scores.data() + i * k;
    for (std::size_t c = 0; c < k; ++c) {
      double score = 0.0;
      for (std::size_t p = 0; p < planes_per_class; ++p) {
        const std::size_t matches = kept_dims - row[c * planes_per_class + p];
        score += static_cast<double>(1u << p) * static_cast<double>(matches);
      }
      out[c] = score / denom;
    }
  }
}

int HdcModel::predict(const hv::BinVec& query) const {
  const auto s = scores(query);
  return static_cast<int>(
      std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<int> HdcModel::predict_batch(std::span<const hv::BinVec> queries,
                                         std::size_t max_threads) const {
  std::vector<int> out(queries.size());
  const std::size_t k = classes_.size();
  // Queries are scored in blocks through the distance-matrix kernel; the
  // block argmax matches predict()'s max_element (first maximum wins), so
  // results stay bit-identical to the serial per-query loop regardless of
  // block size or thread count.
  // The arena path scores much larger blocks: the tile loop lives inside
  // the kernel, so one call streams each plane tile from memory once for
  // the whole block instead of once per 32 queries.
  const std::size_t kBlock = use_arena() ? 256 : 32;
  const std::size_t blocks = (queries.size() + kBlock - 1) / kBlock;
  util::parallel_for(
      blocks,
      [&](std::size_t b) {
        thread_local ScoreWorkspace ws;
        const std::size_t begin = b * kBlock;
        const std::size_t end = std::min(begin + kBlock, queries.size());
        thread_local std::vector<const hv::BinVec*> block_queries;
        block_queries.resize(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          block_queries[i - begin] = &queries[i];
        }
        scores_batch(block_queries, ws);
        for (std::size_t i = begin; i < end; ++i) {
          const double* row = ws.scores.data() + (i - begin) * k;
          out[i] = static_cast<int>(std::max_element(row, row + k) - row);
        }
      },
      max_threads);
  return out;
}

double HdcModel::evaluate(std::span<const hv::BinVec> queries,
                          std::span<const int> labels) const {
  if (queries.empty()) return 0.0;
  const auto predicted = predict_batch(queries);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    correct += (predicted[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(queries.size());
}

std::vector<fault::MemoryRegion> HdcModel::memory_regions() {
  // The regions hand out writable views of the BinVec planes — any fault
  // campaign through them leaves the arena mirror stale, so drop it until
  // the owner resyncs (the scrubber does so before republishing).
  arena_valid_ = false;
  std::vector<fault::MemoryRegion> regions;
  regions.reserve(classes_.size() * precision_bits_);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (std::size_t p = 0; p < classes_[c].planes.size(); ++p) {
      auto words = classes_[c].planes[p].mutable_words();
      regions.push_back(fault::MemoryRegion{
          std::as_writable_bytes(words), 1,
          "class" + std::to_string(c) + "/plane" + std::to_string(p)});
    }
  }
  return regions;
}

}  // namespace robusthd::model
