#include "robusthd/model/hdc_model.hpp"

#include <algorithm>
#include <cassert>

#include "robusthd/util/parallel.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::model {

namespace {

/// Nearest and second-nearest class by Hamming distance against binary
/// (sign) snapshots of the accumulators — keeps retraining word-parallel
/// instead of per-dimension.
struct NearestTwo {
  int best = 0;
  int second = -1;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  std::size_t second_distance = std::numeric_limits<std::size_t>::max();
};

NearestTwo predict_with_signs(const std::vector<hv::BinVec>& signs,
                              const hv::BinVec& query) {
  NearestTwo out;
  for (std::size_t c = 0; c < signs.size(); ++c) {
    const std::size_t d = hv::hamming(query, signs[c]);
    if (d < out.best_distance) {
      out.second_distance = out.best_distance;
      out.second = out.best;
      out.best_distance = d;
      out.best = static_cast<int>(c);
    } else if (d < out.second_distance) {
      out.second_distance = d;
      out.second = static_cast<int>(c);
    }
  }
  return out;
}

}  // namespace

HdcModel HdcModel::train(std::span<const hv::BinVec> encoded,
                         std::span<const int> labels,
                         std::size_t num_classes, const HdcConfig& config) {
  assert(!encoded.empty());
  assert(encoded.size() == labels.size());

  HdcModel model;
  model.dim_ = encoded[0].dimension();
  model.precision_bits_ = std::max(config.precision_bits, 1u);

  // Pass 1: bundle every training hypervector into its class accumulator.
  std::vector<hv::SignedAccumulator> accs(num_classes,
                                          hv::SignedAccumulator(model.dim_));
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    accs[static_cast<std::size_t>(labels[i])].add(encoded[i]);
  }

  // Perceptron-style retraining: on a mistake, reinforce the true class and
  // weaken the predicted one (standard HDC practice; improves the single-
  // pass model substantially on harder tasks). Predictions run against
  // binary sign snapshots so each epoch is word-parallel; only the two
  // accumulators touched by a mistake have their snapshots refreshed.
  std::vector<hv::BinVec> signs;
  signs.reserve(num_classes);
  for (const auto& acc : accs) signs.push_back(acc.sign());

  const auto min_margin = static_cast<std::size_t>(
      config.retrain_margin * static_cast<double>(model.dim_));
  for (std::size_t epoch = 0; epoch < config.retrain_epochs; ++epoch) {
    std::size_t updates = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      const int truth = labels[i];
      const auto nearest = predict_with_signs(signs, encoded[i]);
      const bool wrong = nearest.best != truth;
      const bool thin_margin =
          !wrong && nearest.second_distance - nearest.best_distance <
                        min_margin;
      if (wrong || thin_margin) {
        const auto t = static_cast<std::size_t>(truth);
        const int rival = wrong ? nearest.best : nearest.second;
        accs[t].add(encoded[i], +1);
        signs[t] = accs[t].sign();
        if (rival >= 0) {
          const auto g = static_cast<std::size_t>(rival);
          accs[g].add(encoded[i], -1);
          signs[g] = accs[g].sign();
        }
        ++updates;
      }
    }
    if (updates == 0) break;
  }

  model.classes_.reserve(num_classes);
  for (auto& acc : accs) {
    ClassVector cv;
    cv.planes = acc.quantize_planes(model.precision_bits_);
    model.classes_.push_back(std::move(cv));
  }
  return model;
}

HdcModel HdcModel::from_accumulators(
    std::span<const hv::SignedAccumulator> accumulators,
    unsigned precision_bits) {
  assert(!accumulators.empty());
  HdcModel model;
  model.dim_ = accumulators[0].dimension();
  model.precision_bits_ = std::max(precision_bits, 1u);
  model.classes_.reserve(accumulators.size());
  for (const auto& acc : accumulators) {
    ClassVector cv;
    cv.planes = acc.quantize_planes(model.precision_bits_);
    model.classes_.push_back(std::move(cv));
  }
  return model;
}

HdcModel HdcModel::from_planes(std::vector<ClassVector> classes,
                               unsigned precision_bits) {
  assert(!classes.empty() && !classes[0].planes.empty());
  HdcModel model;
  model.dim_ = classes[0].planes[0].dimension();
  model.precision_bits_ = std::max(precision_bits, 1u);
  model.classes_ = std::move(classes);
  return model;
}

std::vector<double> HdcModel::scores(const hv::BinVec& query) const {
  return chunk_scores(query, 0, dim_);
}

std::vector<double> HdcModel::chunk_scores(const hv::BinVec& query,
                                           std::size_t begin,
                                           std::size_t end) const {
  std::vector<double> out(classes_.size(), 0.0);
  const std::size_t width = end - begin;
  if (width == 0) return out;
  const double denom = static_cast<double>(width) *
                       static_cast<double>((1u << precision_bits_) - 1);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    double score = 0.0;
    for (std::size_t p = 0; p < classes_[c].planes.size(); ++p) {
      const std::size_t matches =
          width - hv::hamming_range(query, classes_[c].planes[p], begin, end);
      score += static_cast<double>(1u << p) * static_cast<double>(matches);
    }
    out[c] = score / denom;
  }
  return out;
}

int HdcModel::predict(const hv::BinVec& query) const {
  const auto s = scores(query);
  return static_cast<int>(
      std::max_element(s.begin(), s.end()) - s.begin());
}

std::vector<int> HdcModel::predict_batch(std::span<const hv::BinVec> queries,
                                         std::size_t max_threads) const {
  std::vector<int> out(queries.size());
  // Templated parallel_for: the per-query lambda is invoked directly
  // (no std::function dispatch on the scoring hot path).
  util::parallel_for(
      queries.size(), [&](std::size_t i) { out[i] = predict(queries[i]); },
      max_threads);
  return out;
}

double HdcModel::evaluate(std::span<const hv::BinVec> queries,
                          std::span<const int> labels) const {
  if (queries.empty()) return 0.0;
  const auto predicted = predict_batch(queries);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    correct += (predicted[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(queries.size());
}

std::vector<fault::MemoryRegion> HdcModel::memory_regions() {
  std::vector<fault::MemoryRegion> regions;
  regions.reserve(classes_.size() * precision_bits_);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (std::size_t p = 0; p < classes_[c].planes.size(); ++p) {
      auto words = classes_[c].planes[p].mutable_words();
      regions.push_back(fault::MemoryRegion{
          std::as_writable_bytes(words), 1,
          "class" + std::to_string(c) + "/plane" + std::to_string(p)});
    }
  }
  return regions;
}

}  // namespace robusthd::model
