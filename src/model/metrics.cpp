#include "robusthd/model/metrics.hpp"

#include <sstream>

#include "robusthd/util/table.hpp"

namespace robusthd::model {

ClassificationReport classification_report(
    const util::ConfusionMatrix& cm) {
  ClassificationReport report;
  const std::size_t k = cm.num_classes();
  report.per_class.resize(k);

  for (std::size_t c = 0; c < k; ++c) {
    std::size_t true_positive = cm.at(c, c);
    std::size_t predicted_c = 0, actual_c = 0;
    for (std::size_t other = 0; other < k; ++other) {
      predicted_c += cm.at(other, c);
      actual_c += cm.at(c, other);
    }
    auto& m = report.per_class[c];
    m.support = actual_c;
    m.precision = predicted_c
                      ? static_cast<double>(true_positive) /
                            static_cast<double>(predicted_c)
                      : 0.0;
    m.recall = actual_c ? static_cast<double>(true_positive) /
                              static_cast<double>(actual_c)
                        : 0.0;
    m.f1 = (m.precision + m.recall) > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    report.macro_precision += m.precision;
    report.macro_recall += m.recall;
    report.macro_f1 += m.f1;
  }
  if (k > 0) {
    report.macro_precision /= static_cast<double>(k);
    report.macro_recall /= static_cast<double>(k);
    report.macro_f1 /= static_cast<double>(k);
  }
  report.accuracy = cm.accuracy();
  return report;
}

ClassificationReport classification_report(std::span<const int> predicted,
                                           std::span<const int> expected,
                                           std::size_t num_classes) {
  util::ConfusionMatrix cm(num_classes);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    cm.add(expected[i], predicted[i]);
  }
  return classification_report(cm);
}

std::string ClassificationReport::to_string() const {
  util::TextTable table({"class", "precision", "recall", "f1", "support"});
  for (std::size_t c = 0; c < per_class.size(); ++c) {
    const auto& m = per_class[c];
    table.add_row({std::to_string(c), util::fixed(m.precision, 3),
                   util::fixed(m.recall, 3), util::fixed(m.f1, 3),
                   std::to_string(m.support)});
  }
  table.add_row({"macro", util::fixed(macro_precision, 3),
                 util::fixed(macro_recall, 3), util::fixed(macro_f1, 3),
                 ""});
  std::ostringstream os;
  table.print(os);
  os << "accuracy: " << util::fixed(accuracy * 100.0, 2) << "%\n";
  return os.str();
}

}  // namespace robusthd::model
