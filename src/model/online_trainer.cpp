#include "robusthd/model/online_trainer.hpp"

#include <cassert>
#include <cmath>

namespace robusthd::model {

OnlineTrainer::OnlineTrainer(std::size_t dimension, std::size_t num_classes,
                             const Config& config)
    : config_(config),
      accumulators_(num_classes, hv::SignedAccumulator(dimension)),
      signs_(num_classes, hv::BinVec(dimension)) {}

OnlineTrainer::Nearest OnlineTrainer::nearest(const hv::BinVec& query) const {
  Nearest best;
  best.similarity = -1.0;
  for (std::size_t c = 0; c < signs_.size(); ++c) {
    const double s = hv::similarity(query, signs_[c]);
    if (s > best.similarity) {
      best.similarity = s;
      best.cls = static_cast<int>(c);
    }
  }
  return best;
}

int OnlineTrainer::observe(const hv::BinVec& encoded, int label) {
  assert(label >= 0 &&
         static_cast<std::size_t>(label) < accumulators_.size());
  ++observed_;

  const auto guess = nearest(encoded);
  const auto target = static_cast<std::size_t>(label);

  // OnlineHD rule: reinforcement proportional to how *unfamiliar* the
  // sample is to its own class; a wrong prediction also pushes the
  // impostor away by how familiar it wrongly looked.
  const double own_similarity = hv::similarity(encoded, signs_[target]);
  const int reinforce = static_cast<int>(std::lround(
      (1.0 - own_similarity) * config_.weight_resolution));
  if (reinforce > 0) {
    accumulators_[target].add(encoded, reinforce);
    signs_[target] = accumulators_[target].sign();
  }

  if (guess.cls != label) {
    ++mistakes_;
    // OnlineHD's repel weight is the *unfamiliarity* of the wrongly
    // winning class, (1 - similarity): a class that barely won is pushed
    // away gently, and repeated offenders converge instead of oscillating.
    const auto wrong = static_cast<std::size_t>(guess.cls);
    const int repel = static_cast<int>(std::lround(
        (1.0 - guess.similarity) * config_.weight_resolution));
    if (repel > 0) {
      accumulators_[wrong].add(encoded, -repel);
      signs_[wrong] = accumulators_[wrong].sign();
    }
  }
  return guess.cls;
}

HdcModel OnlineTrainer::deploy() const {
  return HdcModel::from_accumulators(accumulators_, config_.precision_bits);
}

}  // namespace robusthd::model
