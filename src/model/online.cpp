#include "robusthd/model/online.hpp"

namespace robusthd::model {

StreamResult run_recovery_stream(HdcModel& model, RecoveryEngine& engine,
                                 std::span<const hv::BinVec> stream,
                                 fault::StreamAttacker* attacker,
                                 std::span<const hv::BinVec> eval_queries,
                                 std::span<const int> eval_labels,
                                 double clean_accuracy,
                                 const StreamConfig& config) {
  StreamResult result;
  const double target = clean_accuracy - config.recover_epsilon;

  auto evaluate_now = [&](std::size_t seen) {
    const double acc = model.evaluate(eval_queries, eval_labels);
    result.trace.push_back({seen, acc});
    if (acc >= target &&
        result.samples_to_recover ==
            std::numeric_limits<std::size_t>::max()) {
      result.samples_to_recover = seen;
    }
    return acc;
  };

  evaluate_now(0);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (attacker != nullptr) {
      auto regions = model.memory_regions();
      attacker->step(regions);
    }
    const auto obs = engine.observe(stream[i]);
    result.trusted_queries += obs.trusted;
    if ((i + 1) % config.eval_every == 0) evaluate_now(i + 1);
  }

  result.final_accuracy = evaluate_now(stream.size());
  result.model_updates = engine.total_updates();
  result.substituted_bits = engine.total_substituted_bits();
  return result;
}

}  // namespace robusthd::model
