// Online learning: the OnlineHD-style single-pass trainer learning a
// stream, plus the sequence encoder classifying symbol streams — the
// streaming half of the library that complements the (also streaming)
// recovery engine.

#include <cstdio>

#include "robusthd/robusthd.hpp"

using namespace robusthd;

int main() {
  // ---- Part 1: single-pass learning on a paper benchmark ----
  const auto spec = data::scaled(data::dataset_by_name("ISOLET"), 2000, 500);
  const auto split = data::make_synthetic(spec);
  hv::RecordEncoder encoder(split.train.feature_count(), {});
  const auto train = encoder.encode_all(split.train);
  const auto test = encoder.encode_all(split.test);

  model::OnlineTrainer trainer(encoder.dimension(), split.train.num_classes);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    correct += trainer.observe(train[i], split.train.labels[i]) ==
               split.train.labels[i];
    if ((i + 1) % 500 == 0) {
      std::printf("seen %5zu samples: prequential accuracy %.1f%%\n", i + 1,
                  100.0 * static_cast<double>(correct) /
                      static_cast<double>(i + 1));
    }
  }
  const auto online_model = trainer.deploy();
  std::printf("single-pass online model: test accuracy %.2f%% "
              "(%zu mistakes during the stream)\n\n",
              online_model.evaluate(test, split.test.labels) * 100.0,
              trainer.mistakes());

  // ---- Part 2: sequences — classify symbol streams by their n-grams ----
  hv::SequenceEncoder::Config seq_config;
  seq_config.dimension = 8192;
  seq_config.ngram = 3;
  hv::SequenceEncoder sequences(10, seq_config);
  util::Xoshiro256 rng(42);

  // Three "dialects": ascending runs, descending runs, repeated pairs.
  auto sample = [&](int dialect) {
    std::vector<std::size_t> seq;
    std::size_t s = rng.below(10);
    for (int t = 0; t < 30; ++t) {
      seq.push_back(s);
      if (dialect == 0) s = (s + 1) % 10;
      if (dialect == 1) s = (s + 9) % 10;
      if (dialect == 2 && t % 2 == 1) s = rng.below(10);
    }
    return seq;
  };

  hv::AssociativeMemory memory({.dimension = 8192, .merge_radius = 0});
  for (int d = 0; d < 3; ++d) {
    for (int i = 0; i < 8; ++i) {
      memory.insert(sequences.encode(sample(d)), d);
    }
  }
  int sequence_correct = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    const int dialect = i % 3;
    sequence_correct +=
        memory.predict(sequences.encode(sample(dialect)), 3) == dialect;
  }
  std::printf("sequence dialect classification: %d/%d with 3-gram encoding\n",
              sequence_correct, trials);
  return 0;
}
