// Attack comparison: trains all four learners (RobustHD plus the DNN, SVM
// and AdaBoost baselines) on the same synthetic benchmark and subjects each
// to identical random and targeted bit-flip attacks — a command-line
// re-enactment of the paper's Table 3 on one dataset.
//
// Usage: attack_comparison [dataset] [rate]   (default UCIHAR 0.10)

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "robusthd/robusthd.hpp"

using namespace robusthd;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "UCIHAR";
  const double rate = argc > 2 ? std::atof(argv[2]) : 0.10;

  const auto spec = data::scaled(data::dataset_by_name(name), 2000, 600);
  const auto split = data::make_synthetic(spec);
  std::printf("dataset %s, attack rate %.0f%%\n\n", spec.name.c_str(),
              rate * 100.0);

  std::vector<std::unique_ptr<baseline::Classifier>> models;
  models.push_back(std::make_unique<baseline::Mlp>(
      baseline::Mlp::train(split.train, {})));
  models.push_back(std::make_unique<baseline::LinearSvm>(
      baseline::LinearSvm::train(split.train, {})));
  models.push_back(std::make_unique<baseline::AdaBoost>(
      baseline::AdaBoost::train(split.train, {})));
  models.push_back(std::make_unique<core::HdcClassifier>(
      core::HdcClassifier::train(split.train, {})));

  std::printf("%-10s %8s %14s %16s\n", "model", "clean", "random loss",
              "targeted loss");
  for (const auto& model : models) {
    const double clean = model->evaluate(split.test);
    double losses[2] = {0.0, 0.0};
    const fault::AttackMode modes[2] = {fault::AttackMode::kRandom,
                                        fault::AttackMode::kTargeted};
    for (int m = 0; m < 2; ++m) {
      util::RunningStats loss;
      for (int r = 0; r < 3; ++r) {
        auto victim = model->clone();
        util::Xoshiro256 rng(11 + 31 * r);
        auto regions = victim->memory_regions();
        fault::BitFlipInjector::inject(regions, rate, modes[m], rng);
        loss.add(util::quality_loss(clean, victim->evaluate(split.test)));
      }
      losses[m] = loss.mean();
    }
    std::printf("%-10s %7.2f%% %13.2f%% %15.2f%%\n", model->name().c_str(),
                clean * 100.0, losses[0] * 100.0, losses[1] * 100.0);
  }

  std::printf("\nThe binary holographic representation is why RobustHD's\n"
              "targeted column equals its random column: there is no most-\n"
              "significant bit to aim at.\n");
  return 0;
}
