// PIM deployment study: what happens when you put a learning model on a
// digital processing-in-memory accelerator built from real, wearable NVM?
// Walks the Section 5/6.5 pipeline: per-inference cost on the DPIM, the
// write pressure it causes, and the accelerator's useful lifetime for a
// DNN versus RobustHD — plus the DRAM-refresh-relaxation story (§6.6).
//
// Usage: pim_deployment [inference_rate_per_s]   (default 17)

#include <cstdio>
#include <cstdlib>

#include "robusthd/robusthd.hpp"

using namespace robusthd;

int main(int argc, char** argv) {
  pim::LifetimeConfig service;
  if (argc > 1) service.inference_rate_per_s = std::atof(argv[1]);

  pim::DpimAccelerator accelerator;
  pim::DnnWorkloadSpec dnn;
  dnn.layers = {{561, 512}, {512, 512}, {512, 12}};
  pim::HdcWorkloadSpec hdc{10000, 12, 561, true};

  const auto dnn_cost = accelerator.cost_dnn(dnn);
  const auto hdc_cost = accelerator.cost_hdc(hdc);
  const auto dnn_gpu = pim::gpu_cost_dnn(dnn);

  std::printf("== per-inference cost on the DPIM (28nm VTEAM memristor) ==\n");
  std::printf("%-8s %12s %12s %16s\n", "model", "latency", "energy",
              "device switches");
  std::printf("%-8s %10.1fus %10.2fuJ %16llu\n", "DNN", dnn_cost.latency_us,
              dnn_cost.energy_uj,
              static_cast<unsigned long long>(dnn_cost.device_switches));
  std::printf("%-8s %10.1fus %10.2fuJ %16llu\n", "RobustHD",
              hdc_cost.latency_us, hdc_cost.energy_uj,
              static_cast<unsigned long long>(hdc_cost.device_switches));
  std::printf("(GPU reference: DNN at %.1fus, %.1fuJ per inference)\n\n",
              dnn_gpu.latency_us, dnn_gpu.energy_uj);

  std::printf("== lifetime at %.0f inferences/s, 1e9-endurance NVM ==\n",
              service.inference_rate_per_s);
  pim::LifetimeModel dnn_life(dnn_cost, service);
  pim::LifetimeModel hdc_life(hdc_cost, service);
  for (const double f : {0.001, 0.01, 0.05}) {
    std::printf("time until %.1f%% of cells fail:  DNN %6.2f yr | RobustHD "
                "%6.2f yr\n",
                f * 100.0, dnn_life.days_until_failed_fraction(f) / 365.25,
                hdc_life.days_until_failed_fraction(f) / 365.25);
  }
  std::printf("The DNN needs cells nearly error-free (an int8 weight dies\n"
              "with its MSB); RobustHD still classifies at several %% of\n"
              "stuck bits, so its *useful* lifetime is years longer than\n"
              "the raw wear ratio suggests (see bench/fig4a_lifetime).\n\n");

  std::printf("== DRAM refresh relaxation (storing the model in DRAM) ==\n");
  const mem::DramParams dram = mem::DramParams::ddr4();
  std::printf("%12s %8s %13s %18s\n", "refresh(ms)", "BER", "energy gain",
              "SECDED residual");
  for (const double ber : {0.0, 0.02, 0.04, 0.06}) {
    const double interval = ber == 0.0
                                ? dram.base_refresh_ms
                                : mem::interval_for_error_rate(ber, dram);
    std::printf("%12.0f %7.1f%% %12.1f%% %17.3f%%\n", interval, ber * 100.0,
                mem::energy_efficiency_gain(interval, dram) * 100.0,
                mem::residual_bit_error_rate(ber) * 100.0);
  }
  std::printf("A binary HDC model tolerates the BER column outright (see\n"
              "bench/fig4b), so the energy-gain column is free — and the\n"
              "residual column shows ECC could not have rescued a\n"
              "conventional model anyway.\n");
  return 0;
}
