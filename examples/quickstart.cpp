// Quickstart: train a RobustHD classifier, attack its memory, watch it
// shrug, then let the adaptive recovery repair the damage.
//
// Usage: quickstart [dataset] (default UCIHAR; see data::paper_datasets()).

#include <cstdio>
#include <string>

#include "robusthd/robusthd.hpp"
#include "robusthd/util/timer.hpp"

using namespace robusthd;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "UCIHAR";

  // 1. Data: synthetic equivalent of the requested paper benchmark,
  //    downscaled so the demo runs in seconds.
  const auto spec = data::scaled(data::dataset_by_name(name), 2000, 600);
  auto split = data::make_synthetic(spec);
  std::printf("dataset %s: %zu train / %zu test, %zu features, %zu classes\n",
              spec.name.c_str(), split.train.size(), split.test.size(),
              split.train.feature_count(), split.train.num_classes);

  // 2. Train the HDC classifier (D = 10k binary hypervectors).
  util::Timer timer;
  core::HdcClassifierConfig config;
  auto clf = core::HdcClassifier::train(split.train, config);
  const auto encoded_test = clf.encoder().encode_all(split.test);
  const double clean =
      clf.model().evaluate(encoded_test, split.test.labels);
  std::printf("trained in %.1fs, clean accuracy %.2f%%\n", timer.seconds(),
              clean * 100.0);

  // 3. Attack: a row-hammer-style clustered flip of 15% of the stored
  //    model bits (uniform random flips barely dent a binary HDC model —
  //    try AttackMode::kRandom to see the holographic robustness itself).
  util::Xoshiro256 rng(1);
  auto regions = clf.memory_regions();
  const auto report = fault::BitFlipInjector::inject(
      regions, 0.15, fault::AttackMode::kClustered, rng);
  const double attacked =
      clf.model().evaluate(encoded_test, split.test.labels);
  std::printf("after flipping %zu bits (%.1f%% of model, clustered): "
              "accuracy %.2f%% (quality loss %.2f%%)\n",
              report.flipped, report.rate() * 100.0, attacked * 100.0,
              (clean - attacked) * 100.0);

  // 4. Recovery: stream unlabeled queries; RobustHD detects faulty chunks
  //    via self-confidence and regenerates them by bit substitution.
  model::RecoveryConfig recovery;
  recovery.seed = 9;
  clf.enable_recovery(recovery);
  std::size_t streamed = 0;
  for (int pass = 0; pass < 10; ++pass) {
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      clf.predict_and_recover(split.test.sample(i));
      ++streamed;
    }
  }
  const double recovered =
      clf.model().evaluate(encoded_test, split.test.labels);
  std::printf("after %zu unlabeled queries (%zu model updates): accuracy "
              "%.2f%% (quality loss %.2f%%)\n",
              streamed, clf.recovery_engine()->total_updates(),
              recovered * 100.0, (clean - recovered) * 100.0);
  return 0;
}
