// Concurrent self-healing service: multiple client threads submit queries
// to a serve::Server while an attacker damages the live model and the
// background scrubber repairs it from trusted traffic — the deployment
// story of the paper's runtime, in ~80 lines.
//
// Usage: concurrent_service [dataset] [workers]  (default UCIHAR 4)

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "robusthd/robusthd.hpp"

using namespace robusthd;

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "UCIHAR";
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4;

  // Train a compact model on the synthetic benchmark.
  const auto spec = data::scaled(data::dataset_by_name(dataset), 2000, 600);
  const auto split = data::make_synthetic(spec);
  core::HdcClassifierConfig train_config;
  train_config.encoder.dimension = 4000;
  auto clf = core::HdcClassifier::train(split.train, train_config);
  const auto queries = clf.encoder().encode_all(split.test);
  const auto& labels = split.test.labels;
  std::printf("trained %s: clean accuracy %.2f%%\n", dataset.c_str(),
              clf.evaluate(split.test) * 100.0);

  // Stand the model up behind the concurrent runtime. Workers score
  // immutable snapshots; the scrubber owns all mutation.
  serve::ServerConfig config;
  config.worker_threads = workers;
  config.max_batch = 16;
  serve::Server server(clf.model(), config);

  auto accuracy = [&] {
    const auto responses = server.predict_all(queries);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (responses[i].predicted == labels[i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(queries.size());
  };

  // Damage the live model mid-service.
  server.inject_faults(0.15, fault::AttackMode::kClustered, 0xbadd);
  server.drain();
  std::printf("after attack: accuracy %.2f%% (model version %zu)\n",
              accuracy() * 100.0,
              static_cast<std::size_t>(server.stats().model_version));

  // Four client threads hammer the server; every pass feeds the scrubber
  // more trusted queries, so accuracy recovers while traffic flows.
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &queries, c] {
      for (int pass = 0; pass < 5; ++pass) {
        for (std::size_t i = static_cast<std::size_t>(c);
             i < queries.size(); i += 4) {
          server.submit(queries[i]).get();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();

  const auto stats = server.stats();
  std::printf("after %zu served queries: accuracy %.2f%%\n",
              static_cast<std::size_t>(stats.completed), accuracy() * 100.0);
  std::printf("scrubber: %zu trusted, %zu processed, %zu repairs "
              "(%zu bits), %zu snapshots published\n",
              static_cast<std::size_t>(stats.trusted),
              static_cast<std::size_t>(stats.scrub_processed),
              static_cast<std::size_t>(stats.scrub_repairs),
              static_cast<std::size_t>(stats.scrub_substituted_bits),
              static_cast<std::size_t>(stats.snapshots_published));
  std::printf("latency p50 %.3f ms, p99 %.3f ms at %zu workers\n",
              stats.end_to_end.p50_ns / 1e6, stats.end_to_end.p99_ns / 1e6,
              workers);
  server.shutdown();
  return 0;
}
