// Self-healing inference service: a RobustHD model serves an unlabeled
// query stream while an attacker keeps flipping bits underneath it.
// Prints the live accuracy trace with and without the recovery engine —
// the runtime framework of Section 4 in action.
//
// Usage: self_healing_stream [dataset] [total_rate]  (default UCIHAR 0.15)

#include <cstdio>
#include <string>

#include "robusthd/robusthd.hpp"

using namespace robusthd;

namespace {

/// Serves `passes` epochs of the test set while dripping a clustered
/// attack; returns the accuracy trace.
std::vector<double> serve_stream(model::HdcModel model,  // by value: own victim
                          std::span<const hv::BinVec> queries,
                          std::span<const int> labels, double rate,
                          bool with_recovery) {
  std::vector<double> trace;
  const int passes = 10;
  fault::StreamAttacker attacker(rate,
                                 queries.size() * static_cast<std::size_t>(passes),
                                 0xbadd);
  std::unique_ptr<model::RecoveryEngine> engine;
  if (with_recovery) {
    engine = std::make_unique<model::RecoveryEngine>(model, model::RecoveryConfig{});
  }
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto& q : queries) {
      auto regions = model.memory_regions();
      attacker.step(regions);
      if (engine) {
        engine->observe(q);
      }
    }
    trace.push_back(model.evaluate(queries, labels));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "UCIHAR";
  const double rate = argc > 2 ? std::atof(argv[2]) : 0.15;

  const auto spec = data::scaled(data::dataset_by_name(name), 2000, 600);
  const auto split = data::make_synthetic(spec);
  auto clf = core::HdcClassifier::train(split.train, {});
  const auto queries = clf.encoder().encode_all(split.test);
  const double clean = clf.model().evaluate(queries, split.test.labels);

  std::printf("dataset %s, clean accuracy %.2f%%, attacker flips %.0f%% of\n"
              "the model's bits spread over the stream\n\n",
              spec.name.c_str(), clean * 100.0, rate * 100.0);

  const auto without =
      serve_stream(clf.model(), queries, split.test.labels, rate, false);
  const auto with = serve_stream(clf.model(), queries, split.test.labels, rate, true);

  std::printf("%6s %18s %18s\n", "pass", "without recovery", "with recovery");
  for (std::size_t i = 0; i < without.size(); ++i) {
    std::printf("%6zu %17.2f%% %17.2f%%\n", i + 1, without[i] * 100.0,
                with[i] * 100.0);
  }
  std::printf("\nfinal quality loss: %.2f%% -> %.2f%%\n",
              (clean - without.back()) * 100.0,
              (clean - with.back()) * 100.0);
  return 0;
}
