#pragma once
// Classification metrics beyond plain accuracy: per-class precision /
// recall / F1 and macro averages, built from a confusion matrix. Useful
// when fault injection degrades classes unevenly (partial repair, targeted
// attacks) — accuracy alone hides which classes were sacrificed.

#include <string>
#include <vector>

#include "robusthd/util/stats.hpp"

namespace robusthd::model {

/// Per-class metrics.
struct ClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t support = 0;  ///< true samples of this class
};

/// Full classification report.
struct ClassificationReport {
  std::vector<ClassMetrics> per_class;
  double accuracy = 0.0;
  double macro_precision = 0.0;
  double macro_recall = 0.0;
  double macro_f1 = 0.0;

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Builds a report from parallel label arrays.
ClassificationReport classification_report(std::span<const int> predicted,
                                           std::span<const int> expected,
                                           std::size_t num_classes);

/// Builds a report from an already-filled confusion matrix.
ClassificationReport classification_report(const util::ConfusionMatrix& cm);

}  // namespace robusthd::model
