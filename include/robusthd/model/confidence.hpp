#pragma once
// Prediction-confidence block (Section 4.1).
//
// Class similarities pass through a temperature-scaled softmax; the top
// probability is the prediction's confidence. Because it is a softmax over
// *all* classes, it captures both how similar the query is to the winner
// and what the winner's margin over the runners-up is — exactly the two
// properties the paper asks of the confidence metric.

#include <span>
#include <vector>

namespace robusthd::model {

/// Confidence settings.
///
/// Raw Hamming similarities concentrate tightly (all classes sit within a
/// few percent of each other in high dimension), so the similarity vector
/// is standardised (z-scored across classes) before the softmax; the
/// temperature is then in units of the cross-class spread. For binary
/// (k=2) problems the spread itself is degenerate, so the margin is scaled
/// by the Hamming noise floor sqrt(D) instead — pass `dimension` to
/// assess() to enable that path.
struct ConfidenceConfig {
  double temperature = 0.5;
};

/// Result of the confidence block for one query.
struct Confidence {
  int predicted = -1;       ///< argmax class
  double top_probability = 0.0;  ///< softmax mass of the winner
  double margin = 0.0;      ///< winner similarity minus runner-up similarity
};

/// Computes the confidence of a similarity-score vector. `dimension` (the
/// hypervector D behind the similarities) activates the noise-floor
/// scaling used for two-class problems; 0 falls back to z-score-only.
Confidence assess(std::span<const double> similarities,
                  const ConfidenceConfig& config = {},
                  std::size_t dimension = 0);

}  // namespace robusthd::model
