#pragma once
// The RobustHD adaptive self-recovery framework (Section 4, Figure 1).
//
// For every unlabeled inference query:
//   1. Predict and compute confidence (softmax over class similarities).
//   2. If confidence >= T_C, trust the prediction as a pseudo-label.
//   3. Split the D dimensions into m chunks; re-run the prediction inside
//      each chunk as if it were a tiny HDC model. Chunks whose local winner
//      differs from the trusted global prediction are flagged faulty.
//   4. Probabilistic substitution: inside each faulty chunk, every bit of
//      the predicted class hypervector is overwritten by the corresponding
//      query bit with probability p (no arithmetic — pure partial cloning).
//
// Nothing here ever touches a golden copy of the model or any labels: the
// recovery signal is entirely self-generated, as required by the paper's
// threat model in which *all* memory is attackable.

#include <cstdint>
#include <vector>

#include "robusthd/model/confidence.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::model {

/// Recovery hyper-parameters (Figure 3 sweeps T_C and p).
struct RecoveryConfig {
  double confidence_threshold = 0.88;  ///< T_C
  std::size_t chunks = 20;             ///< m (chunk size d = D/m)
  double substitution_prob = 0.30;     ///< p, the substitution rate S
  /// A chunk is flagged faulty only when the local winner beats the trusted
  /// class by more than this many Hamming noise floors (sigma ≈ sqrt(d)/2
  /// bits over a d-bit chunk). Without it, the argmax of a short chunk is
  /// nearly a coin flip and healthy chunks get rewritten.
  double chunk_significance = 1.5;
  /// Consensus buffering: a flagged chunk is only rewritten once this many
  /// distinct trusted queries (all predicting the same class) have flagged
  /// it, and the substituted bits are their bitwise majority. With
  /// per-query bit correctness q, a 3-way majority has correctness
  /// q³+3q²(1-q) — e.g. 0.91 → 0.978 — which turns marginal teachers into
  /// reliable ones. 1 reproduces the paper's literal single-query
  /// substitution.
  std::size_t consensus_flags = 3;
  /// Repair budget: each (class, chunk) pair is substituted at most this
  /// many times. Recovery is a bounded repair of injected damage, not an
  /// open-ended online learner; the budget prevents repeated rewrites from
  /// compounding into model drift under sustained marginal teachers.
  /// 0 disables the budget.
  std::size_t max_updates_per_chunk = 4;
  /// Health watchdog: the engine tracks the per-class winning-similarity
  /// level; if the population mean drops this many tracked standard
  /// deviations below its best value since repairs started, the engine
  /// freezes permanently. Healthy repair only ever raises similarities, so
  /// a sustained drop means the model is being damaged faster than healed
  /// (extreme attacks where pseudo-labels themselves go bad). Set <= 0 to
  /// disable.
  double watchdog_sigma = 3.0;
  /// Global repair budget: the engine stops substituting once the total
  /// number of *changed* bits reaches this fraction of the model's bits.
  /// Repairing x% damage changes ~x% of the bits, so the budget comfortably
  /// covers the error rates the detector can actually localise while
  /// hard-bounding the worst case under extreme damage (where trusted
  /// pseudo-labels themselves become unreliable).
  double max_total_substitution_fraction = 0.08;
  /// Balanced repair: a class may run at most this many substitutions
  /// ahead of the least-repaired class. Repairing one class's vector
  /// raises its similarities relative to still-damaged classes and lets it
  /// steal their boundary queries; keeping repairs in lockstep keeps the
  /// decision field level while the model heals. 0 disables.
  std::size_t repair_balance_slack = 1;
  /// Margin half of the confidence gate: the winning similarity must beat
  /// the runner-up by this many Hamming noise floors (sigma of a
  /// similarity *difference* is ~sqrt(2)/(2 sqrt(D))). Softmax top
  /// probability saturates a few sigma out, so this is the discriminating
  /// part of the gate for well-separated models.
  double margin_gate_sigma = 4.0;
  /// Absolute-similarity half of the confidence gate (the paper's
  /// confidence reflects *both* how similar a query is to the winning class
  /// and its margin). A query is trusted only if its winning similarity is
  /// at least the running mean minus this many running standard deviations;
  /// atypical queries (outliers) would otherwise clone unrepresentative
  /// bits into the model. Set very negative to disable.
  double absolute_gate_sigma = 0.0;
  ConfidenceConfig confidence{};
  std::uint64_t seed = 0x4ec0;
};

/// What happened for one observed query.
struct ObserveResult {
  int predicted = -1;
  double confidence = 0.0;
  bool trusted = false;          ///< confidence cleared T_C
  std::size_t faulty_chunks = 0; ///< chunks flagged and substituted
  std::size_t substituted_bits = 0;
  /// When substituted_bits > 0, the single repair this query applied:
  /// class `repaired_class`, bits [repaired_begin, repaired_end) of its
  /// plane 0 (the engine repairs at most one chunk per query). The
  /// serving layer turns this into a WAL plane-range delta. npos when no
  /// repair landed.
  static constexpr std::size_t kNoRepair = static_cast<std::size_t>(-1);
  std::size_t repaired_class = kNoRepair;
  std::size_t repaired_begin = 0;
  std::size_t repaired_end = 0;
};

/// The durable slice of a RecoveryEngine: the budgets and watchdog state
/// that must survive a restart so a recovered server does not treat a
/// half-spent repair budget as fresh. Consensus vote buffers and the
/// similarity EMAs are deliberately *not* here — they are advisory
/// warm-up state that rebuilds within a few dozen queries, and carrying
/// stale similarity statistics across a restart would poison the
/// absolute gate against the recovered (possibly repaired) model.
struct RecoveryEngineState {
  std::uint64_t total_updates = 0;
  std::uint64_t total_substituted_bits = 0;
  double best_health = -1.0;
  bool frozen = false;
  std::vector<std::uint64_t> class_repairs;  ///< per-class repair counts
};

/// Stateful runtime recovery engine bound to one (mutable) HdcModel.
///
/// Only 1-bit models are recoverable: the substitution operator clones
/// query *bits* into the class hypervector, which is meaningful precisely
/// because the deployed model is binary (Section 3.2's design choice).
class RecoveryEngine {
 public:
  RecoveryEngine(HdcModel& model, const RecoveryConfig& config);

  /// Processes one unlabeled query: predicts, and if the prediction is
  /// trusted, detects and regenerates faulty chunks in place.
  ObserveResult observe(const hv::BinVec& query);

  /// Chunk boundaries [begin, end) for chunk index c.
  std::pair<std::size_t, std::size_t> chunk_range(std::size_t c) const;

  /// Marks one (class, chunk) pair as repair-prioritized — the serving
  /// sentinel's first rung on the degradation ladder. A prioritized chunk
  /// skips consensus buffering (a single trusted flagger substitutes
  /// immediately, as in the paper's literal single-query recovery) and its
  /// per-chunk update budget is doubled, so external evidence of damage
  /// turns into repairs ahead of the slower consensus machinery. The flag
  /// is advisory: every other gate (T_C, margin, watchdog, global budget,
  /// balance) still applies.
  void set_chunk_priority(std::size_t cls, std::size_t chunk, bool on);
  bool chunk_priority(std::size_t cls, std::size_t chunk) const noexcept;
  void clear_priorities() noexcept;

  const RecoveryConfig& config() const noexcept { return config_; }
  /// Number of chunk repairs actually applied (one per query at most).
  /// Chunks merely *flagged* faulty but gated out by budget/consensus/
  /// balance do not count — this is repair activity, not detection.
  std::size_t total_updates() const noexcept { return total_updates_; }
  std::size_t total_substituted_bits() const noexcept {
    return total_substituted_bits_;
  }

  /// Snapshot of the durable counters (persisted in WAL RecoveryState
  /// records so budgets and the watchdog survive a kill-9).
  RecoveryEngineState export_state() const;

  /// Rehydrates the durable counters from a recovered snapshot. A state
  /// whose class_repairs length disagrees with the bound model's class
  /// count is rejected (throws std::invalid_argument) — it belongs to a
  /// different model shape.
  void restore_state(const RecoveryEngineState& state);

 private:
  /// Exponential moving estimate of the winning-similarity distribution,
  /// kept *per predicted class* (classes have different baseline
  /// similarity levels; a global estimate would permanently exclude the
  /// lower-similarity classes from repair). Adapts as attacks depress
  /// similarities, so the gate tracks "typical for the current model
  /// state" rather than a fixed constant.
  void track_similarity(std::size_t cls, double win_sim) noexcept;
  bool absolute_gate_passes(std::size_t cls, double win_sim) const noexcept;

  struct SimStats {
    std::size_t observed = 0;
    double mean = 0.0;
    double var = 0.0;
  };

  /// Per-(class, chunk) consensus buffer of query snapshots.
  struct ChunkVotes {
    std::vector<hv::BinVec> snapshots;
    std::size_t updates_done = 0;
  };

  /// Applies the probabilistic substitution of `bits` into the class plane
  /// over [begin, end); returns the number of bits that actually changed.
  std::size_t substitute(hv::BinVec& plane, const hv::BinVec& bits,
                         std::size_t begin, std::size_t end);

  HdcModel& model_;
  RecoveryConfig config_;
  util::Xoshiro256 rng_;
  std::vector<ChunkVotes> votes_;  ///< classes × chunks
  std::vector<char> priority_;     ///< classes × chunks repair-priority flags
  std::vector<std::size_t> class_repairs_;  ///< substitutions per class
  std::size_t total_updates_ = 0;
  std::size_t total_substituted_bits_ = 0;
  std::vector<SimStats> sim_stats_;  ///< per class
  std::vector<double> chunk_scores_buf_;  ///< reused chunks × classes rows
  double best_health_ = -1.0;  ///< best population win-sim mean seen
  bool frozen_ = false;        ///< watchdog tripped

 public:
  /// True when the health watchdog has permanently halted repairs.
  bool frozen() const noexcept { return frozen_; }
};

}  // namespace robusthd::model
