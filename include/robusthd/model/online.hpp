#pragma once
// Online inference-stream driver.
//
// Reproduces the runtime setting of Sections 4 and 6.4: a trained model is
// attacked (one-shot, and optionally continuously while serving), then
// serves a stream of unlabeled queries through the RecoveryEngine. The
// driver periodically measures held-out accuracy so benches can report both
// the final quality loss (Table 4) and the number of samples needed to
// recover (Figure 3).

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "robusthd/fault/injector.hpp"
#include "robusthd/model/recovery.hpp"

namespace robusthd::model {

/// Stream-driver settings.
struct StreamConfig {
  std::size_t eval_every = 100;  ///< held-out evaluation cadence (queries)
  /// Accuracy within this of the clean accuracy counts as "recovered".
  double recover_epsilon = 0.005;
};

/// One point of the accuracy-over-time trace.
struct StreamPoint {
  std::size_t queries_seen = 0;
  double accuracy = 0.0;
};

/// Everything a bench needs from one stream run.
struct StreamResult {
  std::vector<StreamPoint> trace;
  double final_accuracy = 0.0;
  std::size_t model_updates = 0;
  std::size_t substituted_bits = 0;
  std::size_t trusted_queries = 0;
  /// First queries_seen at which accuracy reached clean - epsilon;
  /// SIZE_MAX when the stream ended before recovery.
  std::size_t samples_to_recover = std::numeric_limits<std::size_t>::max();
};

/// Runs `stream` through the engine. If `attacker` is non-null its step()
/// is called once per observed query, modelling faults that keep
/// accumulating while the model serves (the scenario recovery must outrun).
StreamResult run_recovery_stream(HdcModel& model, RecoveryEngine& engine,
                                 std::span<const hv::BinVec> stream,
                                 fault::StreamAttacker* attacker,
                                 std::span<const hv::BinVec> eval_queries,
                                 std::span<const int> eval_labels,
                                 double clean_accuracy,
                                 const StreamConfig& config = {});

}  // namespace robusthd::model
