#pragma once
// Hyperdimensional regression (the RegHD extension).
//
// The paper's companion work [8] (RegHD, DAC'21) carries the robustness
// argument to regression: a single real-valued model hypervector m is
// trained so that the bipolar projection of an encoded query onto m
// predicts the target. We implement the single-model variant with a
// quantised deployment, so the same fault injector that attacks the
// classifiers can attack the regressor — PECAN ("urban electricity
// prediction") is naturally a regression task, and this module closes that
// loop.
//
//   prediction(H) = Σ_i (H_i ? +m_i : -m_i) / D
//   training:      m_i += lr · (y − prediction) · (H_i ? +1 : −1)

#include <cstdint>
#include <span>
#include <vector>

#include "robusthd/baseline/fixedpoint.hpp"
#include "robusthd/fault/memory.hpp"
#include "robusthd/hv/binvec.hpp"

namespace robusthd::model {

/// Trained hyperdimensional regressor over pre-encoded hypervectors.
class HdcRegressor {
 public:
  struct Config {
    std::size_t epochs = 20;
    double learning_rate = 0.2;
    baseline::Precision precision = baseline::Precision::kInt8;
    std::uint64_t seed = 0x4e6;
  };

  /// Trains on encoded inputs and real targets, then deploys the model
  /// hypervector at the configured precision.
  static HdcRegressor train(std::span<const hv::BinVec> encoded,
                            std::span<const double> targets,
                            const Config& config);
  static HdcRegressor train(std::span<const hv::BinVec> encoded,
                            std::span<const double> targets) {
    return train(encoded, targets, Config{});
  }

  std::size_t dimension() const noexcept { return dimension_; }

  /// Predicted target for one encoded query.
  double predict(const hv::BinVec& query) const;

  /// Root-mean-square error over a test set.
  double rmse(std::span<const hv::BinVec> queries,
              std::span<const double> targets) const;

  /// The deployed (quantised) model hypervector — the attack surface.
  std::vector<fault::MemoryRegion> memory_regions();

 private:
  std::size_t dimension_ = 0;
  double bias_ = 0.0;
  baseline::QuantizedTensor weights_;  ///< m, quantised
};

}  // namespace robusthd::model
