#pragma once
// The hyperdimensional classifier (Section 3).
//
// Training bundles encoded hypervectors per class into signed accumulators,
// optionally refines them with perceptron-style retraining, and deploys a
// quantised model: one binary plane for the standard 1-bit model, or
// multiple weighted planes for the higher-precision variants of Table 1.
// Inference is plane-weighted Hamming similarity; for the 1-bit model this
// is exactly the paper's Hamming-distance check.

#include <cstdint>
#include <span>
#include <vector>

#include "robusthd/fault/memory.hpp"
#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/mem/plane_arena.hpp"

namespace robusthd::model {

/// Which physical layout the hot scoring paths read the model from.
/// kArena (the default) routes batched scoring, masked scoring and the
/// chunk sweep through the model's contiguous tiled mem::PlaneArena
/// mirror whenever it is in sync; kRowMajor forces the historical
/// per-BinVec pointer-table path. Results are bit-identical either way —
/// the toggle exists for A/B benchmarking (bench --layout / serve-bench
/// --layout) and as an escape hatch.
enum class ScoringLayout { kArena, kRowMajor };

/// Process-wide layout toggle (atomic; relaxed). Reads the
/// ROBUSTHD_LAYOUT env var ("rowmajor"/"arena") on first use.
void set_scoring_layout(ScoringLayout layout) noexcept;
ScoringLayout scoring_layout() noexcept;

/// Reusable buffers for the blocked batch-scoring path (one per thread;
/// capacities persist across batches, so steady-state scoring performs no
/// allocations).
struct ScoreWorkspace {
  std::vector<const std::uint64_t*> plane_ptrs;  ///< flattened class planes
  std::vector<const std::uint64_t*> query_ptrs;
  std::vector<std::uint32_t> distances;  ///< q x (k * planes) row-major
  std::vector<double> scores;            ///< q x k row-major
};

/// Training hyper-parameters.
struct HdcConfig {
  unsigned precision_bits = 1;     ///< deployed model precision (Table 1)
  std::size_t retrain_epochs = 10; ///< perceptron refinement passes
  /// Margin-aware retraining: also update on *correct* predictions whose
  /// Hamming margin to the runner-up is below this fraction of D. Wider
  /// margins are what buy bit-flip robustness, so this knob directly
  /// trades training time for fault tolerance.
  double retrain_margin = 0.005;
  std::uint64_t seed = 0xcafe;
};

/// One class hypervector, stored as weighted binary planes
/// (plane p carries weight 2^p; 1-bit models have a single plane).
struct ClassVector {
  std::vector<hv::BinVec> planes;
};

/// Trained HDC model: k class hypervectors over dimension D.
class HdcModel {
 public:
  HdcModel() = default;
  ~HdcModel() = default;
  /// Copying re-establishes the arena mirror when the source's is stale,
  /// so every snapshot published by value scores through the arena.
  HdcModel(const HdcModel& other);
  HdcModel& operator=(const HdcModel& other);
  HdcModel(HdcModel&&) noexcept = default;
  HdcModel& operator=(HdcModel&&) noexcept = default;

  /// Single-pass bundling + retraining over pre-encoded training data.
  static HdcModel train(std::span<const hv::BinVec> encoded,
                        std::span<const int> labels, std::size_t num_classes,
                        const HdcConfig& config = {});

  /// Deploys a model directly from per-class accumulators (used by the
  /// online trainer and by anything that builds its own bundles).
  static HdcModel from_accumulators(
      std::span<const hv::SignedAccumulator> accumulators,
      unsigned precision_bits = 1);

  /// Rebuilds a model from deployed class planes (deserialisation).
  static HdcModel from_planes(std::vector<ClassVector> classes,
                              unsigned precision_bits);

  std::size_t num_classes() const noexcept { return classes_.size(); }
  std::size_t dimension() const noexcept { return dim_; }
  unsigned precision_bits() const noexcept { return precision_bits_; }

  const ClassVector& class_vector(std::size_t cls) const noexcept {
    return classes_[cls];
  }
  /// Mutable class access invalidates the arena mirror (the caller may
  /// rewrite plane bits); scoring falls back to the row-major path until
  /// sync_arena() re-establishes coherence.
  ClassVector& class_vector(std::size_t cls) noexcept {
    arena_valid_ = false;
    return classes_[cls];
  }

  /// Mutable access to one plane *without* invalidating the arena — for
  /// the recovery engine's repair path, which substitutes a bit range and
  /// then republishes exactly that range via sync_arena_range(). The
  /// caller owns coherence: mutate, then sync the touched range.
  hv::BinVec& plane_for_repair(std::size_t cls, std::size_t plane) noexcept {
    return classes_[cls].planes[plane];
  }

  /// Read-only packed words of one class plane — the arena row when the
  /// mirror is live (so chunk diffs stream the same contiguous storage the
  /// scoring kernels do), the BinVec storage otherwise. Content is
  /// identical either way.
  std::span<const std::uint64_t> plane_words(std::size_t cls,
                                             std::size_t plane) const noexcept;

  /// Rebuilds the arena mirror from the stored class planes. Ragged
  /// hand-built models (unequal plane counts) stay arena-less and score
  /// through the row-major path.
  void sync_arena();

  /// Propagates the bit range [bit_begin, bit_end) of one plane into the
  /// arena — the one-chunk republish primitive behind in-service repair.
  /// Falls back to a full sync when the mirror is stale.
  void sync_arena_range(std::size_t cls, std::size_t plane,
                        std::size_t bit_begin, std::size_t bit_end);

  /// True when the arena mirror matches the stored planes bit-for-bit.
  bool arena_valid() const noexcept { return arena_valid_; }
  /// The arena itself (geometry/diagnostics: bytes, tile width, hugepage
  /// backing). Empty until the first sync_arena().
  const mem::PlaneArena& arena() const noexcept { return arena_; }

  /// Normalised similarity score per class, each in [0, 1]
  /// (1-bit: 1 - hamming/D).
  std::vector<double> scores(const hv::BinVec& query) const;

  /// Batched scores: one blocked pass over the stored class planes
  /// (kernels::hamming_matrix) scores every query against every class.
  /// Results land in ws.scores (row q holds scores(*queries[q])), bit-
  /// identical to the per-query path. The plane-weighted multi-precision
  /// models run through the same kernel — every plane is one more row of
  /// the distance matrix.
  void scores_batch(std::span<const hv::BinVec* const> queries,
                    ScoreWorkspace& ws) const;

  /// scores_batch restricted to the dimensions whose bits are set in
  /// `mask` — the quarantine path of the serving runtime's degradation
  /// ladder (exclude-the-unreliable-segment scoring, in the spirit of
  /// TCAM segment masking). `mask` must hold words_for_bits(dimension())
  /// words with every bit at position >= dimension() clear; `kept_dims`
  /// is its popcount and becomes the normalisation denominator, so the
  /// surviving dimensions are rescaled to the same [0, 1] range and the
  /// scores stay comparable across classes. With an all-ones mask
  /// (kept_dims == dimension()) the result is bit-identical to
  /// scores_batch.
  void scores_batch_masked(std::span<const hv::BinVec* const> queries,
                           std::span<const std::uint64_t> mask,
                           std::size_t kept_dims, ScoreWorkspace& ws) const;

  /// Per-class similarity restricted to the dimensions [begin, end) — the
  /// "treat each chunk as a separate HDC model" primitive of Section 4.2.
  std::vector<double> chunk_scores(const hv::BinVec& query, std::size_t begin,
                                   std::size_t end) const;

  /// All `chunks` equal ranges at once: row c of `out` (k doubles) holds
  /// chunk_scores(query, begin_c, end_c). One call, one output buffer —
  /// the RecoveryEngine's per-observation chunk sweep without per-chunk
  /// vector churn.
  void chunk_scores_all(const hv::BinVec& query, std::size_t chunks,
                        std::vector<double>& out) const;

  /// argmax of scores().
  int predict(const hv::BinVec& query) const;

  /// Batched inference: predictions for every query, deterministically
  /// parallel over the batch (scores() is const and queries are
  /// independent, so results are bit-identical to the serial loop
  /// regardless of thread count). `max_threads` as in util::parallel_for;
  /// 1 forces the serial path. This is the const entry point the serving
  /// runtime scores model snapshots through.
  std::vector<int> predict_batch(std::span<const hv::BinVec> queries,
                                 std::size_t max_threads = 0) const;

  /// Accuracy over a pre-encoded test set.
  double evaluate(std::span<const hv::BinVec> queries,
                  std::span<const int> labels) const;

  /// The stored representation, one region per class plane (value_bits == 1:
  /// every bit is an equally weighted coordinate of a hypervector plane, so
  /// a targeted attacker has no better-than-random bit to pick).
  std::vector<fault::MemoryRegion> memory_regions();

 private:
  /// Shared scoring core: writes classes() doubles at `out`.
  void chunk_scores_into(const hv::BinVec& query, std::size_t begin,
                         std::size_t end, double* out) const;

  /// True when the hot paths should read the arena mirror: it is in sync
  /// and the process-wide layout toggle selects it.
  bool use_arena() const noexcept {
    return arena_valid_ && scoring_layout() == ScoringLayout::kArena;
  }

  std::size_t dim_ = 0;
  unsigned precision_bits_ = 1;
  std::vector<ClassVector> classes_;
  /// Contiguous tiled mirror of classes_ (row c * precision + p holds
  /// class c, plane p). The BinVec planes stay authoritative — fault
  /// injection, serialisation and recovery all mutate them — and the
  /// arena tracks them under the arena_valid_ flag.
  mem::PlaneArena arena_;
  bool arena_valid_ = false;
};

}  // namespace robusthd::model
