#pragma once
// OnlineHD-style single-pass trainer.
//
// The paper's reference [10] (OnlineHD) trains hyperdimensional models in
// one pass with similarity-weighted updates: a sample that the current
// model already classifies confidently contributes little; a marginal or
// misclassified sample contributes strongly, and the mispredicted class is
// pushed away. This trainer provides that mode for streaming settings
// where the multi-epoch retraining of HdcModel::train is unaffordable,
// and is the natural companion of the recovery engine (both consume a
// stream, one labelled, one not).

#include <cstdint>
#include <vector>

#include "robusthd/hv/accumulator.hpp"
#include "robusthd/model/hdc_model.hpp"

namespace robusthd::model {

/// Streaming trainer over pre-encoded hypervectors.
class OnlineTrainer {
 public:
  struct Config {
    /// Update magnitudes are (1 - similarity) scaled into integer counter
    /// steps of this resolution.
    int weight_resolution = 8;
    unsigned precision_bits = 1;
  };

  OnlineTrainer(std::size_t dimension, std::size_t num_classes,
                const Config& config);
  OnlineTrainer(std::size_t dimension, std::size_t num_classes)
      : OnlineTrainer(dimension, num_classes, Config{}) {}

  std::size_t observed() const noexcept { return observed_; }
  std::size_t mistakes() const noexcept { return mistakes_; }

  /// Consumes one labelled sample; returns the model's prediction *before*
  /// the update (prequential evaluation comes for free).
  int observe(const hv::BinVec& encoded, int label);

  /// Deploys the current accumulators as a quantised model.
  HdcModel deploy() const;

 private:
  /// Nearest class of the current binary snapshots plus its similarity.
  struct Nearest {
    int cls = 0;
    double similarity = 0.0;
  };
  Nearest nearest(const hv::BinVec& query) const;

  Config config_;
  std::vector<hv::SignedAccumulator> accumulators_;
  std::vector<hv::BinVec> signs_;  ///< binary snapshots for fast predicts
  std::size_t observed_ = 0;
  std::size_t mistakes_ = 0;
};

}  // namespace robusthd::model
