#pragma once
// robusthd::kernels — runtime-dispatched SIMD similarity kernels.
//
// Binary HDC inference is bit-parallel by construction: every hot loop in
// this repo reduces to XOR + popcount over packed 64-bit words. This layer
// provides those loops as ISA-specialised kernels selected once per process
// (CPUID + OS state), so `hv`, `model`, `serve` and the recovery engine all
// run the fastest code the host can execute while staying bit-identical to
// the portable scalar reference:
//
//   * popcount        — set bits over a word span
//   * hamming         — popcount(a XOR b)
//   * hamming_masked  — Hamming over a word range with first/last-word
//                       masks (the chunked-detector primitive)
//   * hamming_matrix  — blocked queries x planes distance matrix: a batch
//                       of queries is scored in one pass over the stored
//                       class planes instead of Q*K independent scans
//
// Variants: portable scalar (the reference all others are tested against),
// AVX2 (Harley–Seal carry-save popcount), AVX-512 (VPOPCNTDQ). Dispatch
// honours two environment overrides, read once at first use:
//
//   ROBUSTHD_FORCE_SCALAR=1       force the scalar reference
//   ROBUSTHD_ISA=scalar|avx2|avx512   cap the selected ISA
//
// The layer depends on nothing above <cstdint>; hv::BinVec and the model
// layers call into it, never the other way around.

#include <cstddef>
#include <cstdint>

namespace robusthd::kernels {

/// Instruction-set tiers, ordered by preference.
enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable ISA name ("scalar", "avx2", "avx512").
const char* isa_name(Isa isa) noexcept;

/// A set of stored planes in one contiguous allocation with a known,
/// constant stride — the arena-native view the mem::PlaneArena exposes.
/// Plane p occupies words [base + p*stride_words, base + p*stride_words +
/// words); the padding words up to stride_words are zero and never read.
/// tile_words is the word width of one cache tile: the arena kernels walk
/// the word dimension tile-by-tile across *all* planes, so a tile of the
/// whole plane set stays L2-resident across the query blocks instead of
/// every plane being streamed from DRAM once per block. tile_words == 0
/// means "untiled" (one tile spanning all words); integer popcount partial
/// sums make any tile split bit-identical to the untiled traversal.
struct PlaneSet {
  const std::uint64_t* base = nullptr;
  std::size_t planes = 0;
  std::size_t stride_words = 0;  ///< allocation stride, multiple of 8
  std::size_t words = 0;         ///< live words per plane (<= stride_words)
  std::size_t tile_words = 0;    ///< tile width in words; 0 = untiled

  const std::uint64_t* plane(std::size_t p) const noexcept {
    return base + p * stride_words;
  }
};

/// One resolved kernel table. All function pointers are non-null.
struct Ops {
  /// Total set bits over words[0, n).
  std::size_t (*popcount)(const std::uint64_t* words, std::size_t n);

  /// popcount(a XOR b) over n words.
  std::size_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n);

  /// Hamming over n >= 1 words where word 0 is ANDed with `first_mask`,
  /// word n-1 with `last_mask` (both masks apply when n == 1), and interior
  /// words are taken whole — the bit-range [begin, end) primitive after the
  /// caller resolves word offsets.
  std::size_t (*hamming_masked)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n, std::uint64_t first_mask,
                                std::uint64_t last_mask);

  /// Blocked distance matrix: out[q * num_planes + p] =
  /// hamming(queries[q], planes[p], words). Queries are tiled so each
  /// stored plane is streamed once per query block rather than once per
  /// query — the batched associative-search kernel.
  void (*hamming_matrix)(const std::uint64_t* const* queries,
                         std::size_t num_queries,
                         const std::uint64_t* const* planes,
                         std::size_t num_planes, std::size_t words,
                         std::uint32_t* out);

  /// hamming_matrix with an arbitrary per-word mask applied to both
  /// operands: out[q * num_planes + p] = popcount((queries[q] XOR
  /// planes[p]) AND mask) over `words` words. This is the quarantine
  /// primitive of the serving runtime's graceful-degradation ladder:
  /// excluded dimension ranges (e.g. chunks a health sentinel flagged bad)
  /// are zeroed in `mask`, so the associative search simply never reads
  /// them — TCAM-style segment exclusion on the batched kernel. A mask of
  /// all ones is bit-identical to hamming_matrix.
  void (*hamming_matrix_masked)(const std::uint64_t* const* queries,
                                std::size_t num_queries,
                                const std::uint64_t* const* planes,
                                std::size_t num_planes, std::size_t words,
                                const std::uint64_t* mask,
                                std::uint32_t* out);

  /// hamming_matrix over an arena PlaneSet: same output contract
  /// (out[q * planes.planes + p]), but plane rows are reached by stride
  /// arithmetic instead of a pointer-table gather, the word dimension is
  /// walked in L2-resident tiles across all planes, and the next tile of
  /// each plane row is software-prefetched while the current one is being
  /// consumed. Bit-identical to hamming_matrix on the same plane contents
  /// for every tile size.
  void (*hamming_matrix_arena)(const std::uint64_t* const* queries,
                               std::size_t num_queries, const PlaneSet& planes,
                               std::uint32_t* out);

  /// Masked variant of hamming_matrix_arena: `mask` holds planes.words
  /// words ANDed into every XOR (the quarantine primitive). Bit-identical
  /// to hamming_matrix_masked on the same plane contents.
  void (*hamming_matrix_arena_masked)(const std::uint64_t* const* queries,
                                      std::size_t num_queries,
                                      const PlaneSet& planes,
                                      const std::uint64_t* mask,
                                      std::uint32_t* out);
};

/// The kernel table for the ISA selected at first use. Thread-safe; the
/// selection is made exactly once per process.
const Ops& ops() noexcept;

/// The ISA behind ops().
Isa active_isa() noexcept;

/// True when hardware + OS can execute `isa` (kScalar is always true).
bool isa_supported(Isa isa) noexcept;

/// Kernel table for a specific ISA, or nullptr when the host cannot run
/// it (or it was compiled out). The equivalence tests iterate every tier
/// against the scalar reference through this.
const Ops* ops_for(Isa isa) noexcept;

// ---- Convenience wrappers over the active table -------------------------

inline std::size_t popcount(const std::uint64_t* words, std::size_t n) {
  return ops().popcount(words, n);
}

inline std::size_t hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  return ops().hamming(a, b, n);
}

inline std::size_t hamming_masked(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t n,
                                  std::uint64_t first_mask,
                                  std::uint64_t last_mask) {
  return ops().hamming_masked(a, b, n, first_mask, last_mask);
}

inline void hamming_matrix(const std::uint64_t* const* queries,
                           std::size_t num_queries,
                           const std::uint64_t* const* planes,
                           std::size_t num_planes, std::size_t words,
                           std::uint32_t* out) {
  ops().hamming_matrix(queries, num_queries, planes, num_planes, words, out);
}

inline void hamming_matrix_masked(const std::uint64_t* const* queries,
                                  std::size_t num_queries,
                                  const std::uint64_t* const* planes,
                                  std::size_t num_planes, std::size_t words,
                                  const std::uint64_t* mask,
                                  std::uint32_t* out) {
  ops().hamming_matrix_masked(queries, num_queries, planes, num_planes, words,
                              mask, out);
}

inline void hamming_matrix_arena(const std::uint64_t* const* queries,
                                 std::size_t num_queries,
                                 const PlaneSet& planes, std::uint32_t* out) {
  ops().hamming_matrix_arena(queries, num_queries, planes, out);
}

inline void hamming_matrix_arena_masked(const std::uint64_t* const* queries,
                                        std::size_t num_queries,
                                        const PlaneSet& planes,
                                        const std::uint64_t* mask,
                                        std::uint32_t* out) {
  ops().hamming_matrix_arena_masked(queries, num_queries, planes, mask, out);
}

}  // namespace robusthd::kernels
