#pragma once
// robusthd::fleet::Router — consistent-hash tenant→shard assignment with
// per-shard health awareness.
//
// Each shard contributes `virtual_nodes` points to a hash ring; a tenant
// lands on the shard owning the first ring point at or after the
// tenant's hash. Properties the fleet relies on (fleet_router_test):
//
//  - Deterministic: the ring is built from SplitMix64 of (shard,
//    replica) only — no time, no RNG state — so every Router instance
//    with the same shard list (server-side Fleet, client-side Client,
//    a Router rebuilt after restart) routes every tenant identically.
//  - Stable under growth: adding shard N+1 only claims the ring arcs
//    its new points land in, so ~1/(N+1) of tenants move and nobody
//    else does — the consistent-hashing contract.
//  - Health-aware: a shard whose circuit breaker is open is routed
//    around by walking the ring to the next healthy shard *in the same
//    model group* (a failover to a shard serving a different model
//    would silently change every answer). When the whole group is
//    unhealthy the primary is returned anyway and the shard's own
//    breaker surfaces `abstained` — shedding stays explicit, never a
//    wrong-model answer. Recovery releases cleanly: health flags are
//    the only mutable state, so flipping a shard back to healthy
//    restores the exact pre-failure assignment.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace robusthd::fleet {

struct RouterConfig {
  /// Ring points per shard. More points → smoother tenant balance and
  /// finer-grained redistribution on failure, at O(N·V log N·V) build
  /// cost. 64 keeps per-shard load within a few percent of uniform.
  std::size_t virtual_nodes = 64;
};

class Router {
 public:
  /// `shard_groups[i]` is shard i's model group (model id): failover is
  /// confined to shards with an equal group string.
  Router(std::vector<std::string> shard_groups, const RouterConfig& config = {});

  std::size_t shard_count() const noexcept { return groups_.size(); }
  const std::string& group(std::size_t shard) const { return groups_[shard]; }

  /// Primary assignment, health-blind. Deterministic and stable.
  std::size_t route(std::uint64_t tenant_id) const noexcept;

  struct Decision {
    std::size_t shard = 0;  ///< where to send the request
    std::size_t primary = 0;
    /// True when `shard != primary` because the primary was unhealthy.
    bool failover = false;
    /// True when every same-group shard (primary included) is unhealthy;
    /// `shard` is the primary and the caller should expect shedding.
    bool all_unhealthy = false;
  };

  /// Health-aware assignment: the primary when it is healthy, otherwise
  /// the next healthy same-group shard along the ring.
  Decision route_healthy(std::uint64_t tenant_id) const noexcept;

  /// Marks a shard (un)healthy. Thread-safe, relaxed — routing is
  /// advisory and a stale read only costs one extra shed/failover hop.
  void set_healthy(std::size_t shard, bool healthy) noexcept;
  bool healthy(std::size_t shard) const noexcept;

  /// The tenant hash — exposed so tests can reason about ring geometry.
  static std::uint64_t hash_tenant(std::uint64_t tenant_id) noexcept;

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };

  /// Index into points_ of the first point at or after `hash` (wrapping).
  std::size_t successor(std::uint64_t hash) const noexcept;

  std::vector<std::string> groups_;
  std::vector<Point> points_;  ///< sorted by position
  std::unique_ptr<std::atomic<bool>[]> healthy_;
};

}  // namespace robusthd::fleet
