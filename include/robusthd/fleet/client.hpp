#pragma once
// robusthd::fleet::Client — blocking client with client-side routing.
//
// The client holds the same consistent-hash Router the fleet builds
// (same shard list, same groups), so it sends each tenant's traffic to
// the tenant's primary shard endpoint — locality, not correctness: any
// frontend port accepts any tenant and the server side re-routes around
// unhealthy shards regardless.
//
// Client-side health: an `abstained` response or a connection failure
// marks the shard unhealthy for `unhealthy_cooldown`, after which it is
// probed again. While marked, the router fails the tenant over to the
// next same-group shard — so a breaker that opened on the server
// surfaces here once, and subsequent requests route around it without
// paying a round trip into the shedding shard.
//
// One Client is one set of sockets and is NOT thread-safe; give each
// load-generator thread its own (they are cheap: one fd per shard,
// connected lazily).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "robusthd/fleet/router.hpp"
#include "robusthd/fleet/wire.hpp"
#include "robusthd/hv/binvec.hpp"

namespace robusthd::fleet {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

struct ClientConfig {
  RouterConfig router;
  /// Wait bound for one response on a connection.
  std::chrono::milliseconds response_timeout{5000};
  /// How long a shard stays marked unhealthy before it is probed again.
  std::chrono::milliseconds unhealthy_cooldown{250};
};

/// Outcome of one Client::predict round trip.
struct FleetResponse {
  /// True when a predict response arrived (even an `abstained` one);
  /// false on a server error frame or a transport failure.
  bool ok = false;
  wire::ErrorCode error = wire::ErrorCode::kNone;  ///< server error frames
  std::string error_message;  ///< server error text or transport reason

  std::int32_t predicted = -1;
  double confidence = 0.0;
  bool trusted = false;
  bool degraded = false;
  bool abstained = false;
  std::uint64_t model_version = 0;
  std::size_t shard = 0;      ///< endpoint the answer came from
  bool failover = false;      ///< routed around the tenant's primary
};

class Client {
 public:
  /// `endpoints[i]` serves shard i; `groups[i]` is its model group (as
  /// in Router). The two must be the fleet's actual layout for routing
  /// to agree with the server side.
  Client(std::vector<Endpoint> endpoints, std::vector<std::string> groups,
         ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Blocking round trip for one tenant query. Never throws on
  /// transport trouble — inspect FleetResponse::ok.
  FleetResponse predict(std::uint64_t tenant_id, const hv::BinVec& query);

  /// Round trip a ping on shard `shard`'s connection.
  bool ping(std::size_t shard);

  const Router& router() const noexcept { return *router_; }

  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t server_errors = 0;     ///< error frames received
    std::uint64_t transport_errors = 0;  ///< connect/send/recv/timeouts
    std::uint64_t failovers = 0;
    std::uint64_t reconnects = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

 private:
  struct Conn;

  bool ensure_connected(std::size_t shard);
  void drop_connection(std::size_t shard);
  void mark_unhealthy(std::size_t shard);
  /// Re-arms shards whose cooldown expired, then routes.
  Router::Decision route(std::uint64_t tenant_id);
  /// Sends `bytes` fully on shard's socket. False on failure.
  bool send_all(std::size_t shard, const std::vector<std::byte>& bytes);
  /// Reads until a frame for `request_id` (predict response or error)
  /// arrives on shard's connection, or the timeout/transport fails.
  std::optional<wire::Frame> await_frame(std::size_t shard,
                                         std::uint64_t request_id,
                                         std::vector<std::byte>& storage);

  std::vector<Endpoint> endpoints_;
  std::unique_ptr<Router> router_;
  ClientConfig config_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<std::chrono::steady_clock::time_point> unhealthy_until_;
  std::uint64_t next_request_id_ = 1;
  Counters counters_;
};

}  // namespace robusthd::fleet
