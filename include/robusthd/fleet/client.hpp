#pragma once
// robusthd::fleet::Client — blocking client with client-side routing.
//
// The client holds the same consistent-hash Router the fleet builds
// (same shard list, same groups), so it sends each tenant's traffic to
// the tenant's primary shard endpoint — locality, not correctness: any
// frontend port accepts any tenant and the server side re-routes around
// unhealthy shards regardless.
//
// Client-side health: an `abstained` response or a connection failure
// marks the shard unhealthy for `unhealthy_cooldown`, after which it is
// probed again. While marked, the router fails the tenant over to the
// next same-group shard — so a breaker that opened on the server
// surfaces here once, and subsequent requests route around it without
// paying a round trip into the shedding shard.
//
// One Client is one set of sockets and is NOT thread-safe; give each
// load-generator thread its own (they are cheap: one fd per shard,
// connected lazily).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "robusthd/fleet/router.hpp"
#include "robusthd/fleet/wire.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/serve/stats.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::fleet {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Capped exponential backoff with full jitter, metered by a token
/// bucket so retries cannot amplify an outage: every predict() earns
/// `budget_per_request` tokens (capped), every retry spends one. At 0.1
/// per request the fleet absorbs at most ~10% retry amplification in
/// steady state — when more than one request in ten needs a retry, the
/// bucket empties and the client sheds instead of hammering.
struct RetryPolicy {
  /// Total tries per predict() (1 = no retries).
  std::size_t max_attempts = 3;
  /// Backoff before retry k is uniform(0, min(max_backoff,
  /// initial_backoff << (k-1))) — "full jitter", so synchronized client
  /// herds decorrelate instead of retrying in lockstep.
  std::chrono::milliseconds initial_backoff{2};
  std::chrono::milliseconds max_backoff{50};
  double budget_per_request = 0.1;
  double budget_cap = 10.0;
  /// Per-attempt response wait; 0 = the remaining overall budget. With
  /// retries enabled, a stalled shard should burn one attempt's slice
  /// and fail over — not the whole predict budget.
  std::chrono::milliseconds attempt_timeout{0};
};

/// Hedged requests: when the primary's answer has not arrived after the
/// hedge delay, fire the same query at a different healthy shard of the
/// same model group and take whichever answers first. The loser is
/// abandoned client-side (its late answer is recognised by request id
/// and skipped). Hedging spends no retry budget — it bounds tail
/// latency rather than recovering from failure.
struct HedgeConfig {
  bool enabled = false;
  /// Fixed hedge delay; 0 derives it from the client's own observed
  /// latency (fires at ~p99, the classic tail-at-scale setting).
  std::chrono::milliseconds delay{0};
  /// With a derived delay, hedge only after this many completed
  /// requests have been observed (a cold histogram would hedge wildly).
  std::uint64_t min_samples = 32;
};

struct ClientConfig {
  RouterConfig router;
  /// Wait bound for one response on a connection. Doubles as the total
  /// per-predict budget: retries and hedges all fit inside it, and it is
  /// the deadline stamped on the wire (see send_deadline).
  std::chrono::milliseconds response_timeout{5000};
  /// How long a shard stays marked unhealthy before it is probed again.
  std::chrono::milliseconds unhealthy_cooldown{250};
  /// Bound on a blocking connect. A blackholed endpoint costs this much
  /// once, then the cooldown/failover machinery routes around it.
  std::chrono::milliseconds connect_timeout{1000};
  RetryPolicy retry;
  HedgeConfig hedge;
  /// Stamp the remaining budget into each request frame (version-1
  /// header) so the server can shed work nobody is waiting for. False
  /// emits legacy version-0 frames, byte-identical to older clients.
  bool send_deadline = true;
  /// Seed for the backoff jitter (deterministic tests).
  std::uint64_t seed = 0x5eedc11e;
};

/// Outcome of one Client::predict round trip.
struct FleetResponse {
  /// True when a predict response arrived (even an `abstained` one);
  /// false on a server error frame or a transport failure.
  bool ok = false;
  wire::ErrorCode error = wire::ErrorCode::kNone;  ///< server error frames
  std::string error_message;  ///< server error text or transport reason

  std::int32_t predicted = -1;
  double confidence = 0.0;
  bool trusted = false;
  bool degraded = false;
  bool abstained = false;
  std::uint64_t model_version = 0;
  std::size_t shard = 0;      ///< endpoint the answer came from
  bool failover = false;      ///< routed around the tenant's primary
  std::size_t attempts = 1;   ///< tries this answer took (1 = first shot)
  bool hedged = false;        ///< a hedge was fired for this request
  bool hedge_won = false;     ///< ...and the hedge's answer came first
};

class Client {
 public:
  /// `endpoints[i]` serves shard i; `groups[i]` is its model group (as
  /// in Router). The two must be the fleet's actual layout for routing
  /// to agree with the server side.
  Client(std::vector<Endpoint> endpoints, std::vector<std::string> groups,
         ClientConfig config = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Blocking round trip for one tenant query. Never throws on
  /// transport trouble — inspect FleetResponse::ok.
  FleetResponse predict(std::uint64_t tenant_id, const hv::BinVec& query);

  /// Round trip a ping on shard `shard`'s connection.
  bool ping(std::size_t shard);

  const Router& router() const noexcept { return *router_; }

  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t server_errors = 0;     ///< error frames received
    std::uint64_t transport_errors = 0;  ///< connect/send/recv/timeouts
    std::uint64_t failovers = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t retries = 0;           ///< extra attempts beyond the first
    /// Retries the token bucket refused — the backstop against retry
    /// storms amplifying an outage.
    std::uint64_t retry_budget_exhausted = 0;
    std::uint64_t hedged_requests = 0;   ///< hedges actually fired
    std::uint64_t hedge_wins = 0;        ///< hedge answered first
    std::uint64_t connect_timeouts = 0;  ///< non-blocking connects expired
  };
  const Counters& counters() const noexcept { return counters_; }

  /// Client-observed end-to-end latency (successful predicts only) —
  /// the distribution the derived hedge delay reads its p99 from.
  const serve::LatencyHistogram& latency() const noexcept {
    return latency_;
  }

 private:
  struct Conn;

  bool ensure_connected(std::size_t shard);
  void drop_connection(std::size_t shard);
  void mark_unhealthy(std::size_t shard);
  /// Re-arms shards whose cooldown expired, then routes.
  Router::Decision route(std::uint64_t tenant_id);
  /// Sends `bytes` fully on shard's (non-blocking) socket, waiting for
  /// writability as needed. False on failure.
  bool send_all(std::size_t shard, const std::vector<std::byte>& bytes);
  /// Reads until a frame for `request_id` (predict response or error)
  /// arrives on shard's connection, the absolute `deadline` passes, or
  /// transport fails.
  std::optional<wire::Frame> await_frame(
      std::size_t shard, std::uint64_t request_id,
      std::vector<std::byte>& storage,
      std::chrono::steady_clock::time_point deadline);
  /// Hedged wait: polls two shards' connections for two request ids;
  /// the first matching frame wins. Returns the winning shard index via
  /// `winner`. nullopt when both legs fail or the deadline passes.
  std::optional<wire::Frame> await_either(
      std::size_t shard_a, std::uint64_t id_a, std::size_t shard_b,
      std::uint64_t id_b, std::vector<std::byte>& storage,
      std::chrono::steady_clock::time_point deadline, std::size_t& winner);
  /// One routed send + (possibly hedged) wait. Fills `out`.
  void attempt_once(std::uint64_t tenant_id, const hv::BinVec& query,
                    std::chrono::steady_clock::time_point overall_deadline,
                    FleetResponse& out);
  /// Picks a healthy same-group shard != `primary` for a hedge.
  std::optional<std::size_t> hedge_target(std::size_t primary) const;
  /// The effective hedge delay, or nullopt when hedging should not fire
  /// (disabled, or the derived distribution is still cold).
  std::optional<std::chrono::nanoseconds> hedge_delay() const;
  /// Consumes a frame into `out` (error frame or predict response).
  void fill_response(const wire::Frame& frame, std::size_t shard,
                     FleetResponse& out);

  std::vector<Endpoint> endpoints_;
  std::unique_ptr<Router> router_;
  ClientConfig config_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<std::chrono::steady_clock::time_point> unhealthy_until_;
  std::uint64_t next_request_id_ = 1;
  Counters counters_;
  double retry_budget_ = 0.0;  ///< token bucket, starts full (see ctor)
  util::Xoshiro256 jitter_rng_;
  serve::LatencyHistogram latency_;
};

}  // namespace robusthd::fleet
