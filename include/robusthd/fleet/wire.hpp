#pragma once
// robusthd::fleet wire protocol — length-prefixed binary frames over TCP.
//
// Framing follows the RHD2 storage format's philosophy (docs/fleet.md,
// docs/serialization.md): every field a peer could lie about is bounded
// and CRC-checked *before* it is trusted, and in particular before any
// allocation it implies. A frame is:
//
//   [header][payload_len payload bytes][u32 payload CRC32C]
//
//   header (little-endian):
//     u32 magic        'RHF1' (0x31464852)
//     u8  type         FrameType
//     u8  flags        response bits: trusted/degraded/abstained
//     u16 version      0 = legacy 32-byte header, 1 = 40-byte header
//     u64 tenant_id
//     u64 request_id   echoed verbatim in the matching response
//     u32 payload_len  <= kMaxPayload, exact length checked per type
//     u64 deadline_ms  version >= 1 only: relative time budget, 0 = none
//     u32 header_crc   CRC32C of every header byte above it
//
// The version field occupies the bytes that were "reserved, must be
// zero" before deadlines existed, so every legacy frame is a valid
// version-0 frame bit for bit — old peers' frames are still accepted,
// and a frame encoded without a deadline is byte-identical to what the
// legacy encoder produced. Version 1 widens the header by a u64
// relative deadline (milliseconds of budget remaining at send time;
// relative, so peers need no clock sync). Versions above
// kMaxWireVersion are a protocol error, not a skip: a reader that
// cannot parse a header cannot find the next frame boundary.
//
// The payload CRC is always present (CRC of zero bytes for an empty
// payload), so the total frame size is header + payload_len + 4 and a
// reader never special-cases. A frame that fails any check is a protocol error:
// the connection is poisoned and must be closed — there is no resync
// scan, because a peer that framed one message wrong cannot be trusted
// to frame the next one right.
//
// Numeric payload fields are little-endian; doubles travel as their IEEE
// bit pattern in a u64, so a response is bit-identical to the in-process
// serve::Response it was built from (fleet_test asserts this end to end).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "robusthd/hv/binvec.hpp"

namespace robusthd::fleet::wire {

inline constexpr std::uint32_t kMagic = 0x31464852u;  // "RHF1"
/// Legacy (version 0) header — the pre-deadline layout.
inline constexpr std::size_t kHeaderSize = 32;
/// Version 1 header: legacy layout + u64 deadline_ms before the CRC.
inline constexpr std::size_t kHeaderSizeV1 = 40;
/// Highest header version this build parses.
inline constexpr std::uint16_t kMaxWireVersion = 1;
inline constexpr std::size_t kTrailerSize = 4;  // payload CRC32C
/// Hard bound on payload_len — checked before any allocation. Generous
/// for hypervectors (a D=1M query is ~125 KiB) yet small enough that a
/// hostile length prefix cannot blow up a reader.
inline constexpr std::size_t kMaxPayload = 1u << 20;
/// Hard bound on the query dimension a predict request may carry.
inline constexpr std::size_t kMaxDimension = 1u << 20;

enum class FrameType : std::uint8_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
};

/// Response flag bits (header `flags`; request frames must send 0).
inline constexpr std::uint8_t kFlagTrusted = 0x01;
inline constexpr std::uint8_t kFlagDegraded = 0x02;
inline constexpr std::uint8_t kFlagAbstained = 0x04;

/// Error payload codes (u16).
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kBusy = 1,               ///< shard queue full — retry later
  kDimensionMismatch = 2,  ///< query dimension != serving model dimension
  kBadRequest = 3,         ///< semantically invalid payload
  kShuttingDown = 4,
  /// The request's deadline cannot be met (already past, or the queue's
  /// estimated wait exceeds the remaining budget). Retrying immediately
  /// is futile — the budget is spent.
  kDeadlineExceeded = 5,
};

/// A decoded frame. `payload` views the reader's buffer — copy out what
/// must outlive the next feed()/clear().
struct Frame {
  FrameType type = FrameType::kPing;
  std::uint8_t flags = 0;
  std::uint64_t tenant_id = 0;
  std::uint64_t request_id = 0;
  /// Relative deadline carried by a version-1 header; 0 = none (every
  /// version-0 frame reads as 0).
  std::uint64_t deadline_ms = 0;
  std::span<const std::byte> payload;
};

/// Why a reader rejected its input stream.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadType,
  kBadVersion,  ///< header version above kMaxWireVersion
  kOversizedPayload,
  kHeaderCrcMismatch,
  kPayloadCrcMismatch,
  kBadPayload,  ///< type-specific payload validation failed
};

const char* wire_error_name(WireError e) noexcept;

// ------------------------------------------------------------ encoding --

/// Appends a complete frame (header + payload + payload CRC) to `out`.
/// deadline_ms == 0 emits a version-0 header byte-identical to the
/// legacy encoder; a nonzero deadline emits a version-1 header.
void append_frame(std::vector<std::byte>& out, FrameType type,
                  std::uint8_t flags, std::uint64_t tenant_id,
                  std::uint64_t request_id,
                  std::span<const std::byte> payload,
                  std::uint64_t deadline_ms = 0);

/// Predict request payload: u32 dimension + packed query words.
void append_predict_request(std::vector<std::byte>& out,
                            std::uint64_t tenant_id, std::uint64_t request_id,
                            const hv::BinVec& query,
                            std::uint64_t deadline_ms = 0);

/// Predict response payload: i32 predicted, u64 confidence bits,
/// u64 model_version. Flags carry trusted/degraded/abstained.
struct PredictResult {
  std::int32_t predicted = -1;
  double confidence = 0.0;
  std::uint64_t model_version = 0;
  bool trusted = false;
  bool degraded = false;
  bool abstained = false;
};

void append_predict_response(std::vector<std::byte>& out,
                             std::uint64_t tenant_id, std::uint64_t request_id,
                             const PredictResult& result);

/// Error payload: u16 code + bounded utf-8 message.
void append_error(std::vector<std::byte>& out, std::uint64_t tenant_id,
                  std::uint64_t request_id, ErrorCode code,
                  std::string_view message);

// ------------------------------------------------------------ decoding --

/// Parses a predict-request payload into `query`. Returns false (leaving
/// `query` unspecified) when the payload is malformed: bad length, zero
/// or oversized dimension, or nonzero bits beyond `dimension` in the
/// last word (a hostile peer must not be able to break the BinVec tail
/// invariant the kernels rely on).
bool parse_predict_request(std::span<const std::byte> payload,
                           hv::BinVec& query);

/// Parses a predict-response payload. Returns nullopt on bad length.
std::optional<PredictResult> parse_predict_response(const Frame& frame);

struct ErrorInfo {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

std::optional<ErrorInfo> parse_error(std::span<const std::byte> payload);

/// Incremental frame parser for one connection. Feed bytes as they
/// arrive; poll next() for complete frames. The reader validates the
/// header (magic, type, version, length bound, header CRC) before it
/// waits for — let alone allocates for — the payload, so a hostile
/// length prefix costs at most kHeaderSizeV1 buffered bytes.
///
/// After any error the reader is poisoned: next() keeps returning
/// nullopt and error() reports the reason; the owner must close the
/// connection. reset() re-arms it (used by tests and by clients that
/// reconnect).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes from the socket. No-op once poisoned.
  void feed(std::span<const std::byte> bytes);

  /// Returns the next complete, CRC-valid frame, or nullopt when more
  /// bytes are needed (or the stream is poisoned). The frame's payload
  /// span stays valid until the following next()/feed()/reset() call.
  std::optional<Frame> next();

  WireError error() const noexcept { return error_; }
  bool poisoned() const noexcept { return error_ != WireError::kNone; }

  /// Bytes currently buffered (tests assert the bound holds).
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

  void reset();

 private:
  void compact();

  std::size_t max_payload_;
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already surfaced
  WireError error_ = WireError::kNone;
};

}  // namespace robusthd::fleet::wire
