#pragma once
// robusthd::fleet::NetChaos — an in-process fault-injecting TCP proxy.
//
// The memory-chaos tooling (fault::Injector, bench/chaos_soak) attacks
// the model's storage; NetChaos attacks the wire between a Client and a
// Frontend. It sits as a transparent TCP proxy — one listener per
// upstream endpoint, clients connect to the proxy's ports instead —
// and perturbs traffic under a deterministic seeded schedule:
//
//   * added latency: every forwarded chunk is held `delay` (+ uniform
//     jitter) before delivery, for a `delay_rate` fraction of chunks —
//     the knob hedged requests are measured against;
//   * connection resets: with `reset_rate` per chunk, the client-side
//     socket is closed with SO_LINGER{1,0} so the peer sees a hard RST
//     mid-stream, not a polite FIN;
//   * silent drops: with `drop_rate` per chunk the bytes vanish — the
//     connection stays open and simply goes quiet (torn frames park in
//     the peer's FrameReader until its read deadline fires);
//   * blackholes: set_blackholed(i) partitions upstream i — every chunk
//     in either direction is swallowed while connections stay
//     established, the classic gray-failure partition;
//   * throttled writes: with `throttle_bytes` > 0 at most that many
//     bytes are forwarded per loop tick per direction, splitting frames
//     at arbitrary byte boundaries (1 = byte-at-a-time slowloris);
//   * payload corruption: with `flip_rate` per chunk one random bit is
//     flipped in flight — the wire CRCs must catch every one
//     (counters().bits_flipped vs the peers' protocol_errors).
//
// Determinism: every accepted connection gets its own Xoshiro256 stream
// derived from (seed, connection index), so a run's fault schedule
// replays exactly for a fixed seed regardless of poll timing.
//
// One loop thread serves all pipes. Fault knobs are fixed at
// construction; only the blackhole flags may be toggled while running
// (they are atomic). Not a general-purpose proxy: IPv4 only, meant for
// 127.0.0.1 test fleets.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "robusthd/fleet/client.hpp"  // Endpoint

namespace robusthd::fleet {

struct NetChaosConfig {
  std::string host = "127.0.0.1";
  /// Seed for the per-connection fault schedules.
  std::uint64_t seed = 0xc4a05c4a05ULL;
  /// Fixed latency added to each selected chunk (0 = no delay fault).
  std::chrono::milliseconds delay{0};
  /// Uniform extra latency in [0, delay_jitter) on top of `delay`.
  std::chrono::milliseconds delay_jitter{0};
  /// Fraction of chunks the delay applies to (tail shaping: 0.1 delays
  /// only one chunk in ten — an injected p90+ tail).
  double delay_rate = 1.0;
  /// Per-chunk probability of injecting a hard RST to the client.
  double reset_rate = 0.0;
  /// Per-chunk probability the bytes are silently dropped.
  double drop_rate = 0.0;
  /// Per-chunk probability of flipping one random bit in flight.
  double flip_rate = 0.0;
  /// Max bytes forwarded per direction per loop tick; 0 = unthrottled.
  std::size_t throttle_bytes = 0;
  /// Loop poll cadence; also the pacing quantum for throttled writes.
  std::chrono::milliseconds poll_interval{1};
  int backlog = 64;
};

struct NetChaosCounters {
  std::uint64_t connections = 0;        ///< client connections accepted
  std::uint64_t resets_injected = 0;    ///< RSTs fired at clients
  std::uint64_t chunks_delayed = 0;
  std::uint64_t chunks_dropped = 0;
  std::uint64_t bits_flipped = 0;
  std::uint64_t throttled_writes = 0;   ///< partial writes forced by throttle
  std::uint64_t blackholed_chunks = 0;  ///< swallowed by a partition
  std::uint64_t bytes_in = 0;           ///< received from clients
  std::uint64_t bytes_out = 0;          ///< received from upstreams
};

class NetChaos {
 public:
  /// `upstreams[i]` is the real endpoint proxied by listener i (for a
  /// fleet: the Frontend's host + ports()[i]).
  explicit NetChaos(std::vector<Endpoint> upstreams,
                    NetChaosConfig config = {});
  ~NetChaos();

  NetChaos(const NetChaos&) = delete;
  NetChaos& operator=(const NetChaos&) = delete;

  /// Binds one listener per upstream (ephemeral ports — read them back
  /// via ports()) and starts the loop thread. Throws on bind failure.
  void start();

  /// Closes listeners and every pipe, joins the loop. Idempotent.
  void stop();

  /// Proxy-side port per upstream (after start()); point the client's
  /// Endpoint list here.
  std::vector<std::uint16_t> ports() const { return ports_; }

  /// Convenience: the proxied endpoint list a Client can consume.
  std::vector<Endpoint> endpoints() const;

  /// Partition upstream i: swallow all traffic both ways while keeping
  /// connections established. Safe to toggle while running.
  void set_blackholed(std::size_t upstream, bool blackholed);
  bool blackholed(std::size_t upstream) const;

  NetChaosCounters counters() const;

 private:
  struct Pipe;

  void loop_main();
  void accept_pending(std::size_t upstream);
  /// Reads one side of a pipe; returns false when the pipe must die.
  bool pump_read(Pipe& pipe, bool from_client);
  /// Flushes due chunks; returns false when the pipe must die.
  bool pump_write(Pipe& pipe, bool to_client);
  void inject_reset(Pipe& pipe);

  std::vector<Endpoint> upstreams_;
  NetChaosConfig config_;
  std::vector<std::uint16_t> ports_;
  std::vector<int> listen_fds_;
  std::vector<std::unique_ptr<Pipe>> pipes_;
  std::unique_ptr<std::atomic<bool>[]> blackholed_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::uint64_t next_conn_index_ = 0;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> resets_injected_{0};
  std::atomic<std::uint64_t> chunks_delayed_{0};
  std::atomic<std::uint64_t> chunks_dropped_{0};
  std::atomic<std::uint64_t> bits_flipped_{0};
  std::atomic<std::uint64_t> throttled_writes_{0};
  std::atomic<std::uint64_t> blackholed_chunks_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace robusthd::fleet
