#pragma once
// robusthd::fleet::Fleet — N independently self-healing shards behind
// one consistent-hash router.
//
// The fleet is the in-process core of the networked service: it owns
// the shards, keeps the router's health flags synced with each shard's
// circuit breaker, and routes tenant submissions. The TCP front end
// (fleet/frontend.hpp) and the CLI are thin adapters over this class,
// and because routing + scoring are deterministic, a fleet submission
// for tenant T is bit-identical to submitting the same query directly
// to a serve::Server holding T's model (fleet_test asserts this).
//
// Failure semantics, end to end:
//  - shard healthy            → normal response (possibly `degraded`
//    while the shard's sentinel has chunks quarantined — rung (b));
//  - shard breaker open       → the router fails the tenant over to the
//    next healthy shard in the same model group;
//  - whole group breaker-open → the request still goes to the primary,
//    whose breaker answers `abstained` (rung (c)) — load-shedding stays
//    visible to the client rather than silently dropping traffic.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "robusthd/fleet/router.hpp"
#include "robusthd/fleet/shard.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/serve/server.hpp"

namespace robusthd::fleet {

struct FleetConfig {
  /// One entry per shard. Shards sharing a model_id must be given equal
  /// models (the constructor cannot verify bit-equality cheaply and
  /// trusts the caller — the bench and CLI clone one trained model).
  std::vector<ShardConfig> shards;
  RouterConfig router;
  /// Fleet-wide persistence root: shard i journals into
  /// `<persist_dir>/shard-<i>` and recovers from it on restart (each
  /// shard is its own durability domain — a crash replays per shard,
  /// never cross-shard). Empty (default) disables persistence. A
  /// per-shard ShardConfig::server.persist.dir, when set, wins.
  std::string persist_dir;
};

/// Aggregate + per-shard counters (Fleet::stats()).
struct FleetStats {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t scrub_substituted_bits = 0;
  std::uint64_t degraded_responses = 0;
  std::uint64_t abstained_responses = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t failovers = 0;      ///< requests routed around a shard
  std::uint64_t shed_unrouteable = 0;  ///< whole model group unhealthy
  /// Deadline-driven sheds: admission-time (the budget was already spent
  /// or the estimated queue wait exceeded it) plus in-queue expiries
  /// counted by the shards' servers.
  std::uint64_t deadline_sheds = 0;
  std::vector<ShardStats> shards;
};

/// Why try_submit returned nullopt (out-parameter; callers that don't
/// care pass nothing).
enum class SubmitReject : std::uint8_t {
  kNone = 0,
  kQueueFull,      ///< target shard's queue rejected the push
  kDeadline,       ///< the propagated deadline had already passed
  kPredictedLate,  ///< estimated queue wait exceeds the remaining budget
};

class Fleet {
 public:
  /// `models[i]` becomes shard i's serving model; models.size() must
  /// equal config.shards.size() (or 1 shard per model with an empty
  /// config, every knob defaulted).
  Fleet(std::vector<model::HdcModel> models, FleetConfig config = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  Shard& shard(std::size_t i) noexcept { return *shards_[i]; }
  const Shard& shard(std::size_t i) const noexcept { return *shards_[i]; }
  Router& router() noexcept { return *router_; }
  const Router& router() const noexcept { return *router_; }

  /// Dimension every shard serves at (shard 0's model — the constructor
  /// rejects mixed dimensions, since queries route by tenant, not size).
  std::size_t dimension() const noexcept { return dimension_; }

  /// Syncs router health flags from the shards' breaker gauges. Called
  /// internally on every routing decision (a handful of relaxed loads);
  /// public so tests and pollers can force a sync.
  void refresh_health() noexcept;

  /// Routes and submits; blocks while the target shard's queue is full
  /// (closed-loop backpressure, like serve::Server::submit).
  std::future<serve::Response> submit(std::uint64_t tenant_id,
                                      hv::BinVec query);

  struct TrySubmitResult {
    std::future<serve::Response> future;
    std::size_t shard = 0;
    bool failover = false;
  };

  /// Non-blocking admission; nullopt when the target shard's queue is
  /// full (counted into FleetStats::rejected via the shard) or — with a
  /// finite `deadline` — when the request cannot make it: the deadline
  /// has passed, or the routed shard's estimated queue wait exceeds the
  /// remaining budget (queue-aware admission; both counted as
  /// deadline_sheds). `reject`, when non-null, reports which.
  std::optional<TrySubmitResult> try_submit(
      std::uint64_t tenant_id, hv::BinVec query,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max(),
      SubmitReject* reject = nullptr);

  /// The health-aware routing decision for a tenant (no submission).
  Router::Decision route(std::uint64_t tenant_id) noexcept;

  FleetStats stats() const;

  void drain();
  void shutdown();

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Router> router_;
  std::size_t dimension_ = 0;
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> shed_unrouteable_{0};
  std::atomic<std::uint64_t> deadline_sheds_{0};  ///< admission-time sheds
};

}  // namespace robusthd::fleet
