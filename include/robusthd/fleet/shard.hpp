#pragma once
// robusthd::fleet::Shard — one self-healing serving cell.
//
// A shard is a serve::Server (worker pool + scrubber + sentinel +
// optional chaos agent) plus the fleet-level identity the router needs:
// a stable index, a model group id (failover is confined to shards in
// the same group, i.e. serving the same model), and an optional core
// set the shard's worker threads are pinned to. Every shard scrubs and
// quarantines independently — damage to one tenant's shard never stalls
// or degrades another shard's traffic, which is the whole point of
// partitioning the associative memory.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "robusthd/model/hdc_model.hpp"
#include "robusthd/serve/server.hpp"

namespace robusthd::fleet {

struct ShardConfig {
  /// Tuning for the shard's serve::Server (workers, queue, scrubber,
  /// sentinel, canaries...). ShardConfig::cpus, when non-empty, is
  /// copied over server.cpu_affinity.
  serve::ServerConfig server;
  /// Model group id. Shards with equal ids serve the same model and can
  /// take over each other's tenants.
  std::string model_id = "default";
  /// Core ids for this shard's workers (NUMA/core pinning knob).
  std::vector<int> cpus;
};

/// Per-shard counter snapshot surfaced into FleetStats.
struct ShardStats {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t scrub_substituted_bits = 0;
  std::uint64_t faults_injected = 0;
  std::size_t quarantined_chunks = 0;
  std::uint64_t degraded_responses = 0;
  std::uint64_t abstained_responses = 0;
  std::uint64_t deadline_sheds = 0;  ///< expired in-queue, shed unscored
  std::uint64_t breaker_trips = 0;
  bool breaker_open = false;
  double canary_accuracy = 0.0;
  std::uint64_t model_version = 0;
  double p99_ms = 0.0;  ///< shard-local end-to-end p99
  /// Plane-arena footprint of this shard's live snapshot (0 == arena-less)
  /// and whether the kernel granted the hugepage request — the per-shard
  /// NUMA/THP placement signal.
  std::size_t arena_bytes = 0;
  bool arena_hugepage = false;
};

class Shard {
 public:
  /// When config.server.persist.dir names a directory that already holds
  /// persisted state, the shard recovers from it (replacing `model`, which
  /// only seeded the first run); otherwise `model` is served fresh and —
  /// with a non-empty dir — becomes the new base checkpoint.
  Shard(std::size_t index, model::HdcModel model, ShardConfig config);

  std::size_t index() const noexcept { return index_; }
  const std::string& model_id() const noexcept { return model_id_; }

  serve::Server& server() noexcept { return *server_; }
  const serve::Server& server() const noexcept { return *server_; }

  /// Router health probe: false while the shard's breaker is open.
  bool healthy() const noexcept { return !server_->breaker_open(); }

  ShardStats stats() const;

 private:
  std::size_t index_;
  std::string model_id_;
  std::unique_ptr<serve::Server> server_;
};

}  // namespace robusthd::fleet
