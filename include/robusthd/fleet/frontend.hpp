#pragma once
// robusthd::fleet::Frontend — the fleet's TCP face.
//
// One listener + one poll(2) event loop thread per shard: shard i's
// endpoint is ports()[i]. A connection may still talk about any tenant
// — every predict request is routed through Fleet::try_submit (so
// server-side failover and breaker shedding apply no matter which port
// the client picked); connecting to the tenant's primary port is a
// locality optimisation the client-side router makes, not a
// correctness requirement.
//
// The loop never blocks on inference: a predict request becomes a
// (request_id, future) entry in the connection's pending set, and each
// poll iteration sweeps ready futures into the write buffer. All reads
// and writes for a connection happen on its shard's loop thread, so
// per-connection state needs no locks; only counters are atomic.
//
// Framing violations (bad magic/CRC/length — see fleet/wire.hpp) poison
// the connection and it is closed without a reply; semantically invalid
// but well-framed requests (wrong dimension, unparseable payload, full
// queue) get an error frame and the connection lives on.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "robusthd/fleet/fleet.hpp"
#include "robusthd/fleet/wire.hpp"

namespace robusthd::fleet {

struct FrontendConfig {
  std::string host = "127.0.0.1";
  /// First port; shard i listens on base_port + i. 0 = ephemeral ports
  /// (read the actual ones back via ports()).
  std::uint16_t base_port = 0;
  int backlog = 64;
  std::size_t max_connections_per_shard = 128;
  std::size_t max_payload = wire::kMaxPayload;
  /// A connection whose unflushed output exceeds this is dropped — a
  /// peer that stops reading cannot pin server memory.
  std::size_t max_write_buffer = 8u << 20;
  /// poll() timeout while responses are pending (the future-sweep
  /// cadence); idle loops wait 20x longer.
  std::chrono::milliseconds poll_interval{1};
  /// Slowloris defense: a connection holding a *partial* frame (header
  /// or payload bytes buffered, frame incomplete) longer than this is
  /// reaped. A peer trickling one byte per poll tick cannot pin a
  /// connection slot indefinitely. 0 disables.
  std::chrono::milliseconds read_deadline{2000};
  /// Reap connections with no traffic and nothing in flight for this
  /// long. 0 (default) disables — benches hold idle connections open.
  std::chrono::milliseconds idle_timeout{0};
  /// Queue-aware admission: consult the routed shard's estimated queue
  /// wait against a request's propagated deadline and refuse early
  /// (kBusy) instead of enqueueing work that will expire in the queue.
  bool admission_control = true;
};

struct FrontendCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t protocol_errors = 0;  ///< poisoned framing → closed
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t busy_rejections = 0;       ///< kBusy error frames
  std::uint64_t dimension_rejections = 0;  ///< kDimensionMismatch frames
  std::uint64_t bad_requests = 0;          ///< kBadRequest frames
  /// Requests shed over deadlines (admission refusals + in-queue
  /// expiries surfaced to this frontend's clients).
  std::uint64_t deadline_sheds = 0;
  /// Connections closed by the read-deadline / idle reaper.
  std::uint64_t reaped_connections = 0;
};

class Frontend {
 public:
  /// The fleet must outlive the frontend.
  explicit Frontend(Fleet& fleet, FrontendConfig config = {});
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Binds every listener (throws std::runtime_error on bind failure)
  /// and starts the loop threads. ports() is valid once this returns.
  void start();

  /// Closes listeners and every connection, joins the loops. Idempotent.
  void stop();

  /// Actual listening port per shard (after start()).
  std::vector<std::uint16_t> ports() const { return ports_; }

  FrontendCounters counters() const;

 private:
  struct Loop;  // one per shard; definition in frontend.cpp

  Fleet& fleet_;
  FrontendConfig config_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  bool started_ = false;

  // Shared counters (all loops record into these).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> dimension_rejections_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> deadline_sheds_{0};
  std::atomic<std::uint64_t> reaped_connections_{0};

  void loop_main(Loop& loop);
  friend struct Loop;
};

}  // namespace robusthd::fleet
