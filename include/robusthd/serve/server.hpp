#pragma once
// robusthd::serve::Server — concurrent batched inference with in-service
// self-recovery.
//
//   clients --submit()--> [bounded MPMC queue] --> batcher --> workers
//                                                               |
//                        futures <--(promise results)-----------+--trusted queries--> [lock-free ring]
//                                                                                          |
//                                   workers <--acquire()-- [model snapshots] <--publish()--scrubber thread
//
// The serving path is read-only: workers score immutable model snapshots
// and never touch the stored planes. The repair path is single-writer:
// the scrubber replays trusted queries through the paper's RecoveryEngine
// on a private working copy and publishes repaired snapshots. The two
// meet only at the version-gated snapshot pointer, so inference latency is
// independent of recovery activity — the paper's "repair while serving"
// claim, made concrete.
//
// Determinism: scoring is pure, so for a fixed model snapshot the
// server's predictions are bit-identical to calling HdcModel::predict
// serially — batching, worker count and scheduling cannot change a
// result (serve_test asserts this).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include <string>

#include "robusthd/fault/injector.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/hv/encoder_base.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/persist/epoch_log.hpp"
#include "robusthd/persist/recover.hpp"
#include "robusthd/serve/batcher.hpp"
#include "robusthd/serve/chaos.hpp"
#include "robusthd/serve/model_snapshot.hpp"
#include "robusthd/serve/request_queue.hpp"
#include "robusthd/serve/scrubber.hpp"
#include "robusthd/serve/sentinel.hpp"
#include "robusthd/serve/stats.hpp"
#include "robusthd/serve/worker_pool.hpp"

namespace robusthd::core {
class HdcClassifier;
}

namespace robusthd::serve {

/// Server tuning knobs (docs/serving.md discusses the trade-offs).
struct ServerConfig {
  std::size_t worker_threads = 4;    ///< 0 = hardware_threads()
  std::size_t queue_capacity = 1024; ///< admission bound (backpressure)
  std::size_t max_batch = 32;        ///< coalescing bound
  /// How long a worker holds an underfull batch open (0 = never).
  std::chrono::microseconds batch_linger{0};
  /// Run the background scrubber. Requires a 1-bit model.
  bool enable_recovery = true;
  ScrubberConfig scrubber{};
  /// Optional server-side encoder: enables submit_features(), with the
  /// encoding done on the worker threads through per-worker reusable
  /// workspaces (zero allocations per request at steady state).
  std::shared_ptr<const hv::Encoder> encoder;
  /// Live-fire chaos campaign against the serving model (off by default;
  /// docs/resilience.md). Only sane together with the sentinel or a bench
  /// that measures the damage it causes.
  ChaosConfig chaos{};
  /// Plane health sentinel driving the graceful-degradation ladder.
  /// Requires a non-empty canary set below when enabled.
  SentinelConfig sentinel{};
  /// Held-out labeled canaries the sentinel replays each round. Never
  /// served to clients; encode them with the same encoder as the model.
  std::vector<hv::BinVec> canaries;
  std::vector<int> canary_labels;  ///< one label per canary
  /// CPU ids to pin the worker threads to (worker i takes
  /// cpu_affinity[i % size]). Empty = no pinning. A fleet shard passes
  /// its core set here so shards keep cache-warm planes and stay out of
  /// each other's way; ids beyond the machine are ignored (pinning is a
  /// hint, never a failure).
  std::vector<int> cpu_affinity;
  /// Epoch-based crash durability (docs/serialization.md, "Durability &
  /// crash recovery"). A non-empty dir writes an atomic base checkpoint
  /// at construction and journals every snapshot publication into a
  /// fsync-committed WAL; Server::recover(dir) replays it after a crash.
  /// Empty dir (the default) disables the layer entirely.
  persist::PersistConfig persist{};
};

/// What a client gets back for one query.
struct Response {
  int predicted = -1;
  double confidence = 0.0;
  /// Confidence cleared the recovery gate — the query was forwarded to
  /// the scrubber as a pseudo-labeled repair hint.
  bool trusted = false;
  /// Snapshot publication count the scoring model carried (telemetry:
  /// lets a client correlate answers with repair activity).
  std::uint64_t model_version = 0;
  /// Scored with quarantined chunks masked out (rung (b) of the
  /// degradation ladder): the answer is best-effort over the surviving
  /// dimensions.
  bool degraded = false;
  /// The circuit breaker was open (rung (c)): no scoring happened and
  /// `predicted` is -1 — the client should retry or fail over.
  bool abstained = false;
  /// The request's propagated deadline expired before a worker reached
  /// it: no scoring happened, `predicted` is -1, and retrying is futile —
  /// the budget is spent (the caller should surface kDeadlineExceeded).
  bool expired = false;
};

class Server {
 public:
  /// Takes ownership of the model (it becomes snapshot version 0).
  /// Throws std::invalid_argument when recovery is enabled on a
  /// multi-bit model (the substitution operator is binary-only).
  explicit Server(model::HdcModel model, const ServerConfig& config = {});
  ~Server();

  /// Crash recovery: rebuilds the serving model from a persist directory
  /// (base checkpoint + closed WAL epochs, torn tail discarded), starts a
  /// server on it with persistence re-enabled into the same directory
  /// (a fresh generation — the replayed one is never appended to), and
  /// rehydrates the scrubber's recovery-engine counters when the log
  /// carried them. Throws std::runtime_error when `dir` holds no usable
  /// state; replay_stats() reports what was applied and what was torn.
  static std::unique_ptr<Server> recover(const std::string& dir,
                                         ServerConfig config = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues a query; blocks while the queue is full (backpressure).
  /// The future is fulfilled by a worker; after shutdown() it carries a
  /// broken-promise error only if the server never accepted the request.
  std::future<Response> submit(hv::BinVec query);

  /// Non-blocking admission; returns nullopt when the queue is full or
  /// the server is shutting down (the rejection is counted). A finite
  /// `deadline` travels with the request: a worker that dequeues it past
  /// the deadline sheds it with Response::expired instead of scoring
  /// (counted as ServerStats::deadline_sheds).
  std::optional<std::future<Response>> try_submit(
      hv::BinVec query,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  /// Enqueues a raw (normalised) feature vector; a worker encodes it with
  /// ServerConfig::encoder before scoring. Throws std::logic_error when no
  /// encoder was configured.
  std::future<Response> submit_features(std::vector<float> features);

  /// Convenience: submits the whole span and waits for every response,
  /// preserving order.
  std::vector<Response> predict_all(std::span<const hv::BinVec> queries);

  /// Schedules bit flips on the live model (executed on the recovery
  /// thread when the scrubber runs, otherwise applied synchronously) and
  /// publishes the damaged snapshot — the fault-injection hook for
  /// benches and tests.
  void inject_faults(double rate, fault::AttackMode mode, std::uint64_t seed);

  /// Hot model reload: publishes `model` as a fresh snapshot without
  /// stopping the server. In-flight batches finish on the model they
  /// acquired; batches formed after the publish score the new one — no
  /// batch ever mixes planes from two versions (one snapshot pointer per
  /// batch). The scrubber adopts the new model at its next ring-empty
  /// boundary; repairs of pre-reload weights racing the reload are
  /// discarded, never merged. Returns the published snapshot version.
  /// Throws std::invalid_argument when the dimension differs from the
  /// serving model (queued queries are already encoded at D) or when
  /// recovery is enabled and the model is not 1-bit.
  std::uint64_t reload(model::HdcModel model);

  /// Reload from a trained classifier (copies its model). The encoder
  /// configured at construction keeps serving submit_features() — ship a
  /// model trained with the same encoder config.
  std::uint64_t reload(const core::HdcClassifier& classifier);

  /// Reload from an RHD2/RHD1 model file: the blob is integrity-checked
  /// by core::load_model before anything is published; a blob that fails
  /// validation counts into ServerStats::integrity_failures and the
  /// serving model is left untouched.
  std::uint64_t load_model(const std::string& path);

  /// Blocks until every accepted request has been answered and the
  /// scrubber has caught up with everything offered so far.
  void drain();

  /// Durability barrier: drain(), then block until everything the
  /// scrubber published so far sits on stable storage under a closed WAL
  /// epoch. No-op without persistence. Returns immediately once the
  /// epoch log has tripped its failed flag (check stats().persist_io_errors).
  void persist_barrier();

  /// What Server::recover replayed; all-zero for a fresh server.
  const persist::ReplayStats& replay_stats() const noexcept {
    return replay_stats_;
  }

  /// Graceful shutdown: stop admitting, drain the queue, join workers,
  /// drain + stop the scrubber. Idempotent; the destructor calls it.
  void shutdown();

  ServerStats stats() const;

  /// Instantaneous circuit-breaker gauge, cheap enough to consult per
  /// request (one relaxed load) — the fleet router's health probe.
  bool breaker_open() const noexcept {
    return breaker_open_.load(std::memory_order_relaxed);
  }

  /// Rough estimate of how long a request admitted now would wait before
  /// scoring: queued depth × mean batch service time ÷ mean batch size.
  /// Cheap (a queue-depth read plus a few relaxed loads) so the frontend
  /// can consult it per request for queue-aware admission; returns 0 with
  /// an empty queue or before any batch has been measured.
  std::uint64_t estimated_wait_ns() const;

  /// Re-zeroes the cumulative counters and latency histograms so a bench
  /// can measure phases (baseline vs chaos) independently. Call while the
  /// server is quiesced (drain() first): resetting races in-flight
  /// recording and could transiently confuse drain()'s submitted/completed
  /// comparison otherwise. Gauges (queue depth, model version, quarantine,
  /// breaker state) are preserved.
  void reset_stats();

  /// The model snapshot workers are currently scoring against.
  std::shared_ptr<const model::HdcModel> current_model() const {
    return snapshot_.acquire();
  }

  /// The health sentinel, or nullptr when ServerConfig::sentinel.enabled
  /// is false. Exposed so tests and benches can drive run_round()
  /// deterministically (period == 0) and read HealthReport directly.
  Sentinel* sentinel() noexcept { return sentinel_.get(); }
  const Sentinel* sentinel() const noexcept { return sentinel_.get(); }

  /// The chaos agent, or nullptr when ServerConfig::chaos.enabled is
  /// false. Exposed for deterministic tick() driving.
  ChaosAgent* chaos_agent() noexcept { return chaos_.get(); }
  const ChaosAgent* chaos_agent() const noexcept { return chaos_.get(); }

  const ServerConfig& config() const noexcept { return config_; }

 private:
  struct Request {
    hv::BinVec query;
    /// Raw features for server-side encoding; empty when `query` arrived
    /// pre-encoded (`from_features` disambiguates zero-feature models).
    std::vector<float> features;
    bool from_features = false;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute shed deadline; max() = none (the overwhelmingly common
    /// case pays one comparison per dequeue).
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  void worker_main(std::size_t worker_index);
  /// Rebuilds and epoch-publishes the worker-side quarantine mask from the
  /// sentinel's excluded set (rung (b) hook).
  void apply_quarantine(const std::vector<bool>& excluded);
  /// Rung (c) hook: republishes the last-good model. Returns true when a
  /// fresh snapshot was published.
  bool publish_last_good();

  ServerConfig config_;
  ModelSnapshot snapshot_;
  RequestQueue<Request> queue_;
  /// WAL durability layer; null when persist.dir is empty. Declared
  /// before scrubber_: the scrubber's persist hook writes into it, so it
  /// must outlive the scrub thread on every destruction path.
  ///
  /// Lock order (all leaf-free paths): direct_fault_mutex_ is taken
  /// before the snapshot publication it guards; the epoch log's internal
  /// mutex is innermost (rotate_generation is called with
  /// direct_fault_mutex_ held and takes only the log's own lock);
  /// last_good_mutex_ is a leaf — nothing is acquired under it. Recovery
  /// replay (Server::recover) runs before any of these mutexes exist to
  /// contend, and publish_last_good copies under last_good_mutex_ then
  /// *releases it* before reload() re-enters the ordered chain.
  std::unique_ptr<persist::EpochLog> epoch_log_;
  persist::ReplayStats replay_stats_{};
  std::unique_ptr<Scrubber> scrubber_;  ///< null when recovery disabled
  std::unique_ptr<Sentinel> sentinel_;  ///< null when sentinel disabled
  std::unique_ptr<ChaosAgent> chaos_;   ///< null when chaos disabled
  WorkerPool workers_;
  bool shut_down_ = false;

  std::mutex direct_fault_mutex_;  ///< serialises no-scrubber inject_faults

  /// Last blessed model (construction / successful reload): the breaker's
  /// fallback. Guarded by last_good_mutex_ (cold path only).
  std::mutex last_good_mutex_;
  model::HdcModel last_good_;

  /// Quarantine mask, epoch-published to workers: workers re-read the
  /// shared_ptr only when quarantine_version_ moves (same pattern as
  /// ModelSnapshot::refresh). null == empty quarantine (fast full-kernel
  /// path).
  mutable std::mutex quarantine_mutex_;
  std::shared_ptr<const QuarantineMask> quarantine_;
  std::atomic<std::uint64_t> quarantine_version_{0};
  std::atomic<bool> breaker_open_{false};

  // Counters (relaxed; monotone).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> trusted_{0};
  std::atomic<std::uint64_t> scrub_dropped_{0};
  std::atomic<std::uint64_t> direct_faults_{0};  ///< no-scrubber injections
  std::atomic<std::uint64_t> reloads_{0};        ///< successful hot reloads
  std::atomic<std::uint64_t> integrity_failures_{0};  ///< rejected blobs
  std::atomic<std::uint64_t> degraded_{0};   ///< masked-scoring responses
  std::atomic<std::uint64_t> abstained_{0};  ///< breaker-shed responses
  std::atomic<std::uint64_t> deadline_sheds_{0};  ///< expired before scoring
  LatencyHistogram queue_wait_;
  LatencyHistogram service_;
  LatencyHistogram end_to_end_;
  BatchSizeDistribution batch_sizes_;

  /// reset_stats() baselines for counters owned by the subsystems (the
  /// scrubber's offered/done atomics back drain() and must never be
  /// zeroed; chaos/sentinel counters are baselined for symmetry). stats()
  /// reports deltas against these. Guarded by baseline_mutex_.
  mutable std::mutex baseline_mutex_;
  ScrubberCounters scrub_baseline_{};
  ChaosCounters chaos_baseline_{};
  SentinelCounters sentinel_baseline_{};
};

}  // namespace robusthd::serve
