#pragma once
// In-service chaos injection: the live-fire half of the resilience layer.
//
// Offline experiments (bench/table4_recovery) attack a model copy in a
// quiet loop; nothing there proves the *serving* stack survives faults
// that accumulate while batches are in flight, repairs race traffic, and
// snapshots publish concurrently. The ChaosAgent closes that gap: a
// background thread (off by default, ServerConfig::chaos) that drives the
// fault layer against the live published model under a StreamAttacker-
// style rate budget — rate * total_bits flips spread over steps_to_full
// ticks with fractional carry, so the cumulative damage matches the
// offline experiments' attack schedule and the soak gate can compare the
// two directly.
//
// Campaign shapes mirror fault::AttackMode: random (uniform over the
// stored planes), clustered (contiguous spans — row-hammer locality), and
// targeted. For binary planes a bit-level target degenerates to random
// (the holographic representation has no preferable bits — the paper's
// point), so targeting means choosing *which plane*: the agent asks a
// TargetProvider (wired to Sentinel::most_confident_class) for the class
// whose plane currently carries the most confident predictions, the
// adversarial-HDC attack model of Yang & Ren.
//
// Torn-plane safety: the agent never mutates the published model. With a
// scrubber present, ticks are routed through Scrubber::inject_flips and
// execute on the scrub thread against its working copy (single-writer
// mutation, version-conditional publish, and — critically — the recovery
// engine's consensus state survives, where any other writer would force a
// resync every tick). Without a scrubber, the agent damages a private
// copy and publishes via try_publish, retrying on version conflicts.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "robusthd/fault/injector.hpp"
#include "robusthd/serve/model_snapshot.hpp"
#include "robusthd/serve/scrubber.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::serve {

/// Chaos campaign parameters.
struct ChaosConfig {
  bool enabled = false;
  /// Total injected fraction of the model's stored bits: the campaign
  /// budget, spent evenly over steps_to_full ticks and then exhausted
  /// (matching fault::StreamAttacker's schedule).
  double rate = 0.10;
  std::size_t steps_to_full = 200;
  /// Tick period for the background thread.
  std::chrono::microseconds period{2000};
  fault::AttackMode mode = fault::AttackMode::kRandom;
  /// Span fraction for clustered campaigns (see flip_clustered_bits).
  double cluster_fraction = 0.02;
  std::uint64_t seed = 0xc4a05;
};

/// Counters exported into ServerStats.
struct ChaosCounters {
  std::uint64_t ticks = 0;           ///< attack ticks executed
  std::uint64_t flips_scheduled = 0; ///< total flip budget dispatched
  std::uint64_t direct_publishes = 0;  ///< scrubber-less publications
  std::uint64_t publish_conflicts = 0; ///< try_publish losses (retried)
};

/// The chaos thread. Lifecycle: construct, start(), stop() (or
/// destruction). tick() is public so tests and benches can drive the
/// campaign deterministically without the thread.
class ChaosAgent {
 public:
  /// Returns the class index whose plane a targeted campaign should hit,
  /// or npos to spread the budget over the whole model.
  using TargetProvider = std::function<std::size_t()>;

  ChaosAgent(ModelSnapshot& snapshot, Scrubber* scrubber,
             const ChaosConfig& config, TargetProvider target = {});
  ~ChaosAgent();

  ChaosAgent(const ChaosAgent&) = delete;
  ChaosAgent& operator=(const ChaosAgent&) = delete;

  void start();
  void stop();

  /// One attack tick: computes this tick's share of the flip budget
  /// (fractional carry included) and dispatches it. No-op once the
  /// campaign budget is exhausted. Thread-safe against the background
  /// thread (internal mutex); not meant to be hammered from many threads.
  void tick();

  /// True once all steps_to_full ticks have run (budget exhausted).
  bool campaign_done() const noexcept {
    return ticks_.load(std::memory_order_acquire) >= config_.steps_to_full;
  }

  ChaosCounters counters() const noexcept;

 private:
  void thread_main();

  ModelSnapshot& snapshot_;
  Scrubber* scrubber_;  ///< may be null (direct-publish mode)
  const ChaosConfig config_;
  const TargetProvider target_;

  std::mutex tick_mutex_;
  util::Xoshiro256 rng_;
  double carry_bits_ = 0.0;
  std::size_t total_bits_ = 0;  ///< lazily measured from the snapshot

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> flips_scheduled_{0};
  std::atomic<std::uint64_t> direct_publishes_{0};
  std::atomic<std::uint64_t> publish_conflicts_{0};

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace robusthd::serve
