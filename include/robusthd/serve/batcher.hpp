#pragma once
// Batch coalescing over the request queue.
//
// Scoring a query is a handful of word-parallel Hamming kernels; the
// bookkeeping around it (snapshot acquisition, promise fulfilment,
// stats) amortises much better over a batch. The batcher is the policy
// layer: block for the first request, then greedily absorb whatever else
// is already queued (up to max_batch), optionally lingering a bounded
// time to let a batch fill under light load.
//
// Latency/throughput knobs:
//  * max_batch — upper bound on coalescing (per-request latency under
//    load is ~batch service time, so keep it modest);
//  * linger — how long to hold an underfull batch open. Zero (default)
//    never waits beyond the first blocking pop: idle-load latency stays
//    at one queue hop, batches form naturally once the queue backs up.

#include <chrono>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "robusthd/serve/request_queue.hpp"

namespace robusthd::serve {

template <typename T>
class Batcher {
 public:
  /// Inspects a popped request before it joins a batch; returning true
  /// drops it (the predicate owns its disposal — fulfilling the promise,
  /// counting the shed). The deadline-propagation path uses this to skip
  /// work whose client has already given up, without the batcher knowing
  /// what a deadline is.
  using DropPredicate = std::function<bool(T&)>;

  Batcher(RequestQueue<T>& queue, std::size_t max_batch,
          std::chrono::nanoseconds linger = std::chrono::nanoseconds::zero(),
          DropPredicate drop = nullptr)
      : queue_(queue),
        max_batch_(max_batch == 0 ? 1 : max_batch),
        linger_(linger),
        drop_(std::move(drop)) {}

  std::size_t max_batch() const noexcept { return max_batch_; }

  /// Fills `out` with 1..max_batch requests. Blocks until at least one
  /// request is available. Returns false — with `out` empty — only when
  /// the queue is closed and fully drained (the worker's exit signal).
  /// Dropped requests never occupy a batch slot: an expired backlog is
  /// burned through at pop speed, not at scoring speed.
  bool next_batch(std::vector<T>& out) {
    out.clear();
    while (out.empty()) {
      auto first = queue_.pop();
      if (!first) return false;
      if (drop_ && drop_(*first)) continue;
      out.push_back(std::move(*first));
    }

    const auto deadline = std::chrono::steady_clock::now() + linger_;
    while (out.size() < max_batch_) {
      auto next = queue_.try_pop();
      if (!next && linger_ > std::chrono::nanoseconds::zero()) {
        const auto now = std::chrono::steady_clock::now();
        if (now < deadline) next = queue_.pop_for(deadline - now);
      }
      if (!next) break;
      if (drop_ && drop_(*next)) continue;
      out.push_back(std::move(*next));
    }
    return true;
  }

 private:
  RequestQueue<T>& queue_;
  const std::size_t max_batch_;
  const std::chrono::nanoseconds linger_;
  const DropPredicate drop_;
};

}  // namespace robusthd::serve
