#pragma once
// Plane health sentinel: the detection half of the serving runtime's
// graceful-degradation ladder.
//
// The paper's recovery loop is self-referential — trusted predictions
// repair the model that produced them — which works until damage depresses
// confidence enough that repairs starve. The sentinel supplies the missing
// *external* health signal without labels from production traffic: a small
// held-out canary set (queries with known labels, never served to clients)
// is replayed against the live snapshot on a period, and the stored planes
// are diffed chunk-by-chunk against a reference copy captured at the last
// *blessed* publication (construction or hot reload — scrubber repairs and
// chaos ticks deliberately do not move the reference, or drift would be
// defined away).
//
// Each round produces a per-(class, chunk) verdict with hysteresis, and
// verdicts escalate down the ladder:
//
//   healthy --(drift > threshold)--> suspect
//       rung (a): the chunk is repair-prioritized in the scrubber's engine
//   suspect --(bad_streak rounds)--> quarantined
//       rung (b): the chunk joins the quarantine set; workers score with
//       the masked-range kernel excluding it (Response::degraded), in the
//       spirit of TCAM segment exclusion (Thomann et al.)
//   quarantined --(good_streak clean rounds)--> healthy again (repairs won)
//
//   canary accuracy < breaker_floor for breaker_window rounds
//       rung (c): circuit breaker trips — workers shed load with
//       Response::abstained while the sentinel reloads the last-good model
//       with bounded retries + exponential backoff, then re-arms.
//
// Threading: period > 0 runs a background thread; period == 0 disables it
// and tests drive run_round() manually for deterministic verdicts. All
// state is guarded by one mutex, so manual calls, the thread, and report()
// readers compose safely.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "robusthd/hv/binvec.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/serve/model_snapshot.hpp"

namespace robusthd::serve {

/// Packed dimension mask excluding quarantined chunks: bit i set means
/// dimension i participates in scoring. Built once per quarantine change
/// and published epoch-style to the workers (never mutated after build).
struct QuarantineMask {
  /// 64-byte-aligned so the masked SIMD kernels stream it without split
  /// loads, matching the arena rows it is applied against.
  util::AlignedU64Vec words;  ///< words_for_bits(dimension)
  std::size_t dimension = 0;
  std::size_t kept_dims = 0;         ///< popcount(words)
  std::vector<bool> chunks;          ///< chunks[c] == true -> excluded
  std::size_t excluded_chunks = 0;
};

/// Builds the packed mask for `excluded_chunks` over the same chunk
/// partition the recovery engine uses (chunk c covers
/// [c*D/m, (c+1)*D/m)). Bits at positions >= dimension stay clear.
QuarantineMask build_quarantine_mask(std::size_t dimension,
                                     const std::vector<bool>& excluded_chunks);

/// Sentinel tuning. Defaults are sized for the repo's synthetic worlds
/// (thousands of dimensions, tens of chunks); see docs/resilience.md for
/// the tuning discussion.
struct SentinelConfig {
  bool enabled = false;
  /// Round period for the background thread; 0 disables the thread (tests
  /// call run_round() manually).
  std::chrono::milliseconds period{25};
  /// Chunk partition for drift measurement and quarantine. Should match
  /// the recovery engine's RecoveryConfig::chunks so rung (a) priorities
  /// land on the chunks the engine actually repairs.
  std::size_t chunks = 20;
  /// A (class, chunk) pair is suspect when the fraction of its reference
  /// bits that differ in the live plane exceeds this. Random canary noise
  /// contributes 0 here (drift is measured on the stored planes, not on
  /// predictions), so the threshold is purely "how much damage before we
  /// react" — calibrate against the per-chunk repair capacity.
  double chunk_drift_threshold = 0.08;
  /// Hysteresis: consecutive suspect rounds before a chunk is quarantined,
  /// and consecutive clean rounds before it is released.
  std::size_t bad_streak = 2;
  std::size_t good_streak = 3;
  /// Quarantine is capped at this fraction of the chunks — beyond it the
  /// masked model has lost so many dimensions that degraded answers stop
  /// being "sane" and the breaker is the right rung.
  double max_quarantine_fraction = 0.5;
  /// Circuit breaker: trips when effective canary accuracy (masked, i.e.
  /// what clients actually experience) stays below this floor for
  /// breaker_window consecutive rounds.
  double breaker_floor = 0.55;
  std::size_t breaker_window = 3;
  /// Reload attempts after a trip, with exponential backoff between them
  /// (breaker_backoff, doubled per attempt).
  std::size_t breaker_reload_retries = 4;
  std::chrono::milliseconds breaker_backoff{5};
};

/// Health verdict for one (class, chunk) pair.
enum class ChunkHealth : std::uint8_t { kHealthy, kSuspect, kQuarantined };

/// Point-in-time health view returned by Sentinel::report().
struct HealthReport {
  std::uint64_t rounds = 0;
  double raw_accuracy = 0.0;        ///< full-model canary accuracy
  double effective_accuracy = 0.0;  ///< masked accuracy (client view)
  std::vector<double> class_accuracy;    ///< per class, raw
  std::vector<double> chunk_drift;       ///< classes x chunks, fraction
  std::vector<ChunkHealth> verdicts;     ///< classes x chunks
  std::size_t quarantined_chunks = 0;
  bool breaker_open = false;
};

/// Counters exported into ServerStats.
struct SentinelCounters {
  std::uint64_t rounds = 0;  ///< canary replays completed
  std::uint64_t breaker_trips = 0;
  std::uint64_t reload_retries = 0;  ///< last-good reload attempts
  std::uint64_t quarantine_events = 0;
  std::uint64_t release_events = 0;
  std::uint64_t rebases = 0;  ///< reference re-captures adopted
};

/// Escalation hooks: how verdicts reach the rest of the server. Every hook
/// is optional; missing hooks turn the corresponding rung into a no-op
/// (detection still runs and shows up in report()). Hooks are invoked on
/// the sentinel's round thread with the round lock held — they must not
/// call back into Sentinel methods that take the lock (rebase() is safe:
/// it only sets a flag).
struct SentinelHooks {
  /// Rung (a): (class, chunk) repair-priority change.
  std::function<void(std::size_t cls, std::size_t chunk, bool on)> prioritize;
  /// Rung (b): the quarantine set changed; `excluded[c]` == true means
  /// chunk c must be excluded from scoring.
  std::function<void(const std::vector<bool>& excluded)> publish_quarantine;
  /// Rung (c): breaker state change (true == open, shed load).
  std::function<void(bool open)> set_breaker;
  /// Rung (c): attempt to publish a last-good model. Returns true when a
  /// fresh model was published (the sentinel then rebases onto it).
  std::function<bool()> attempt_reload;
};

/// The health monitor. Lifecycle: construct (captures the reference from
/// the snapshot), start() if periodic, rebase() after every blessed
/// publication, stop() (or destruction) to halt.
class Sentinel {
 public:
  Sentinel(ModelSnapshot& snapshot, std::vector<hv::BinVec> canaries,
           std::vector<int> canary_labels, const SentinelConfig& config,
           SentinelHooks hooks);
  ~Sentinel();

  Sentinel(const Sentinel&) = delete;
  Sentinel& operator=(const Sentinel&) = delete;

  void start();
  void stop();

  /// One detection + escalation round: replay canaries, diff planes
  /// against the reference, update hysteresis, fire hooks. Thread-safe
  /// with respect to the background thread and report().
  void run_round();

  /// Requests a reference re-capture from the current snapshot before the
  /// next round (non-blocking — safe to call from hooks and from
  /// Server::reload). Re-capturing also clears hysteresis, quarantine and
  /// the breaker window: verdicts against the old reference are void.
  void rebase() noexcept { rebase_requested_.store(true, std::memory_order_release); }

  HealthReport report() const;
  SentinelCounters counters() const noexcept;

  /// The class whose canaries currently score with the highest mean
  /// winning similarity — the ChaosAgent's target for the
  /// highest-confidence-plane campaign. npos before the first round.
  std::size_t most_confident_class() const noexcept {
    return most_confident_.load(std::memory_order_acquire);
  }

  bool breaker_open() const noexcept {
    return breaker_open_flag_.load(std::memory_order_acquire);
  }
  std::size_t quarantined_count() const noexcept {
    return quarantined_count_.load(std::memory_order_acquire);
  }
  /// Latest effective (client-view) canary accuracy.
  double latest_accuracy() const noexcept;

 private:
  void thread_main();
  /// Captures the current snapshot as the new reference and resets all
  /// verdict state. Caller holds state_mutex_.
  void capture_reference_locked();
  /// Scores the canaries against `model`, optionally masked; fills
  /// per-class tallies. Returns overall accuracy. Caller holds state_mutex_.
  double score_canaries_locked(const model::HdcModel& model,
                               const QuarantineMask* mask,
                               std::vector<double>* class_accuracy,
                               std::vector<double>* class_win_sim);
  void run_round_locked();

  ModelSnapshot& snapshot_;
  const SentinelConfig config_;
  const SentinelHooks hooks_;
  const std::vector<hv::BinVec> canaries_;
  const std::vector<int> labels_;

  mutable std::mutex state_mutex_;
  model::HdcModel reference_;  ///< last blessed model (also breaker fallback)
  std::vector<std::uint32_t> suspect_streak_;  ///< classes x chunks
  std::vector<std::uint32_t> healthy_streak_;  ///< classes x chunks
  std::vector<bool> quarantined_;              ///< per chunk
  QuarantineMask mask_;                        ///< current mask (own copy)
  std::vector<double> last_drift_;             ///< classes x chunks
  std::vector<double> last_class_accuracy_;
  double last_raw_accuracy_ = 0.0;
  double last_effective_accuracy_ = 0.0;
  std::size_t below_floor_streak_ = 0;
  bool breaker_open_state_ = false;
  model::ScoreWorkspace score_ws_;
  std::vector<const hv::BinVec*> canary_ptrs_;

  std::atomic<bool> rebase_requested_{false};
  std::atomic<std::size_t> most_confident_{static_cast<std::size_t>(-1)};
  std::atomic<bool> breaker_open_flag_{false};
  std::atomic<std::size_t> quarantined_count_{0};

  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<std::uint64_t> reload_retries_{0};
  std::atomic<std::uint64_t> quarantine_events_{0};
  std::atomic<std::uint64_t> release_events_{0};
  std::atomic<std::uint64_t> rebases_{0};

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace robusthd::serve
