#pragma once
// Background self-recovery: the paper's runtime repair loop as a service
// component.
//
// Serving workers never mutate the model — they append trusted
// high-confidence queries to a bounded lock-free MPMC ring and move on
// (a full ring drops the hint: recovery pressure is advisory, inference
// latency is not). A dedicated scrubber thread drains the ring, replays
// the queries through a model::RecoveryEngine bound to its *private*
// working copy of the model, and publishes an immutable snapshot through
// ModelSnapshot whenever repairs changed stored bits. Fault injection is
// funneled through the same thread (as a command), so every mutation of
// the live model is serialised on the scrubber — the one-writer half of
// the snapshot protocol.
//
// Hot reload (Server::reload) is the one sanctioned second writer: it
// publishes a fresh model directly through ModelSnapshot. The scrubber
// tolerates it by tracking which version it last published or adopted —
// its own publications are *conditional* on that version (try_publish),
// so a repair of pre-reload weights can never clobber a reloaded model;
// at the next ring-empty boundary it notices the foreign version, adopts
// the new snapshot as its working copy, and restarts the engine.
//
// Because the engine re-runs the full predict → gate → detect → substitute
// pipeline on each drained query, a single-producer in-order stream
// reproduces model::RecoveryEngine's offline behaviour bit for bit — the
// serve-time recovery path and the paper's experiment loop are the same
// code, just decoupled by the ring.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "robusthd/fault/injector.hpp"
#include "robusthd/hv/binvec.hpp"
#include "robusthd/model/recovery.hpp"
#include "robusthd/serve/model_snapshot.hpp"
#include "robusthd/serve/trust_gate.hpp"

namespace robusthd::serve {

/// A ring entry: the trusted query plus the trust gate's taint tag.
/// `suspect` rides along in shadow mode (TrustGateConfig::enforce off), so
/// the scrubber can attribute any substitutions the query causes to
/// suspect_substitutions — the poisoning measurement channel.
struct TrustedQuery {
  hv::BinVec query;
  bool suspect = false;
};

/// Bounded lock-free MPMC ring (Vyukov sequence-number scheme). Producers
/// are the serving workers; the consumer is the scrubber thread. push()
/// fails (rather than blocks) when full — callers treat entries as
/// droppable hints.
class TrustRing {
 public:
  explicit TrustRing(std::size_t capacity)
      : cells_(round_up_pow2(capacity)), mask_(cells_.size() - 1) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  TrustRing(const TrustRing&) = delete;
  TrustRing& operator=(const TrustRing&) = delete;

  std::size_t capacity() const noexcept { return cells_.size(); }

  bool push(TrustedQuery&& value) noexcept {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  bool pop(TrustedQuery& out) noexcept {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate (racy) emptiness — monitoring only.
  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    TrustedQuery value;
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<Cell> cells_;
  const std::size_t mask_;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers claim here
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer claims here
};

/// Scrubber tuning.
struct ScrubberConfig {
  model::RecoveryConfig recovery{};
  std::size_t ring_capacity = 1024;
  /// Consumer poll interval when the ring is idle.
  std::chrono::microseconds idle_wait{500};
  /// Admission control for repair evidence (inert unless gate.enabled).
  /// Server builds the TrustGate from this — including the per-class
  /// canary centroids — and installs it before the scrubber starts.
  TrustGateConfig gate{};
};

/// Counters exported into ServerStats.
struct ScrubberCounters {
  std::uint64_t offered = 0;    ///< queries accepted into the ring
  std::uint64_t trust_drops = 0;///< offers rejected — ring full, hint lost
  std::uint64_t processed = 0;  ///< queries replayed through the engine
  std::uint64_t repairs = 0;
  std::uint64_t substituted_bits = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t snapshots_published = 0;
  /// Times the scrub thread adopted an externally published snapshot
  /// (Server::reload) as its new working copy, resetting the engine.
  std::uint64_t resyncs = 0;
  /// Repair-priority changes applied to the engine (sentinel escalations).
  std::uint64_t priority_marks = 0;
  /// Trust-gate telemetry (zero when no gate is installed).
  std::uint64_t poisoned_offers = 0;  ///< offers flagged suspect by the gate
  std::uint64_t gate_rejects = 0;     ///< offers rejected by the gate
  /// Bits substituted by queries the gate had flagged suspect — in shadow
  /// mode, the measured wrong-bit poisoning of the recovery engine.
  std::uint64_t suspect_substitutions = 0;
};

/// One contiguous span of plane words rewritten since the last snapshot
/// publication — `sync_arena_range` granularity, in words. What the
/// persistence layer journals as a WAL plane delta.
struct RepairedRange {
  std::size_t cls = 0;
  std::size_t plane = 0;
  std::size_t word_begin = 0;
  std::size_t word_count = 0;
};

/// The background recovery thread. Lifecycle: construct, start(), offer()
/// from any thread, stop() (or destruction) to halt after a final drain.
class Scrubber {
 public:
  /// Persistence hook, invoked on the scrub thread immediately after a
  /// *successful* snapshot publication: `version` is the version just
  /// published, `model` the published content (the scrubber's working
  /// copy — same thread, safe to read), `ranges` the word ranges that
  /// changed since the previous publication, and `state` the engine's
  /// durable counters at publish time. Publications that lose the race
  /// to a reload are never reported (their repairs were discarded, so
  /// journaling them would persist state no reader ever saw).
  using PersistHook = std::function<void(
      std::uint64_t version, const model::HdcModel& model,
      std::span<const RepairedRange> ranges,
      const model::RecoveryEngineState& state)>;

  Scrubber(ModelSnapshot& snapshot, const ScrubberConfig& config);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  void start();
  /// Drains outstanding work, then joins the thread. Idempotent.
  void stop();

  /// Installs the persistence hook. Must be called before start() — the
  /// hook is read from the scrub thread without synchronisation.
  void set_persist_hook(PersistHook hook);

  /// Schedules a rehydration of the recovery engine's durable counters
  /// (crash recovery: budgets and the watchdog must not reset to zero on
  /// restart). Executed on the scrub thread; a state whose shape does not
  /// match the live model is dropped.
  void restore_engine_state(model::RecoveryEngineState state);

  /// Installs the trust gate the gated offer path consults. Must be
  /// called before start() — the pointer is read from worker threads
  /// without synchronisation after that. Null (the default) means
  /// offer_trusted admits everything, exactly like offer().
  void install_trust_gate(std::unique_ptr<TrustGate> gate);
  /// The installed gate, or nullptr.
  const TrustGate* trust_gate() const noexcept { return gate_.get(); }

  /// Hands a trusted query to the recovery loop. Returns false when the
  /// ring is full — the hint is dropped, recorded in trust_drops, and
  /// callers must never retry (recovery pressure is advisory).
  bool offer(const hv::BinVec& query);

  /// Why a gated offer did not enter the ring.
  enum class OfferOutcome {
    kAccepted,
    kGateRejected,  ///< trust gate refused the query (enforce mode)
    kRingFull,      ///< admission passed but the ring was full
  };

  /// The gated offer path: consults the installed TrustGate with the
  /// worker's confidence verdict before pushing. Gate rejections are NOT
  /// ring-full drops — callers should only count kRingFull into their
  /// drop telemetry. Without an installed gate this is offer() with a
  /// three-way result.
  OfferOutcome offer_trusted(const hv::BinVec& query, int predicted,
                             double margin);

  /// Schedules a bit-flip attack on the live model, executed *on the
  /// scrubber thread* (mutation stays single-writer) and followed by a
  /// snapshot publication so serving workers immediately see the damage.
  void inject_faults(double rate, fault::AttackMode mode, std::uint64_t seed);

  /// Schedules an exact-budget attack: `flips` bit flips against the live
  /// model, executed on the scrub thread and published like inject_faults.
  /// `target_plane` < the number of stored plane regions confines the
  /// budget to that plane (the ChaosAgent's targeted campaign — for 1-bit
  /// planes, *which* plane is the only meaningful targeting); npos spreads
  /// it over the whole model proportionally to region size. The
  /// ChaosAgent's per-tick primitive: routing chaos through the scrubber
  /// keeps the engine's consensus state alive (a try_publish from any
  /// other thread would force a resync and restart it every tick).
  void inject_flips(std::size_t flips, fault::AttackMode mode,
                    std::size_t target_plane, double cluster_fraction,
                    std::uint64_t seed);

  /// Schedules a repair-priority change on the recovery engine (the
  /// sentinel's first ladder rung). Executed on the scrub thread; the
  /// flag dies with the engine on a resync, so callers re-assert it every
  /// sentinel round.
  void prioritize_chunk(std::size_t cls, std::size_t chunk, bool on);

  /// Blocks until everything offered/scheduled before the call has been
  /// processed. The scrubber must be started.
  void drain();

  ScrubberCounters counters() const noexcept;

  /// The recovery engine's working model. Only meaningful while the
  /// scrubber thread is stopped (tests / post-shutdown inspection).
  const model::HdcModel& working_model() const noexcept { return working_; }
  const model::RecoveryEngine& engine() const noexcept { return *engine_; }

 private:
  struct Command {
    enum class Kind {
      kAttackRate,   ///< BitFlipInjector::inject at `rate`
      kAttackFlips,  ///< exactly `flips` bit flips (ChaosAgent ticks)
      kPriority,     ///< engine repair-priority change (sentinel)
      kRestoreState, ///< rehydrate engine counters (crash recovery)
    };
    Kind kind = Kind::kAttackRate;
    double rate = 0.0;
    fault::AttackMode mode = fault::AttackMode::kRandom;
    std::uint64_t seed = 0;
    std::size_t flips = 0;
    std::size_t target_plane = static_cast<std::size_t>(-1);
    double cluster_fraction = 0.05;
    std::size_t cls = 0;
    std::size_t chunk = 0;
    bool on = true;
    model::RecoveryEngineState engine_state;  ///< kRestoreState payload
  };

  void enqueue_command(Command cmd);

  void thread_main();
  void run_commands();
  void publish_if_dirty();
  /// Buffers the word range one engine repair rewrote (scrub thread).
  void note_repair(const model::ObserveResult& result);
  /// Reports a successful publication to the persist hook (scrub thread;
  /// seen_version_ has already advanced to the published version).
  void emit_publication(std::span<const RepairedRange> ranges);
  /// Adopts an externally published snapshot (a hot reload) as the new
  /// working copy, restarting the engine: pending repair state targeted
  /// the old weights and must not leak into the new ones. No-op while
  /// the published version is the scrubber's own.
  void resync_if_stale();

  ModelSnapshot& snapshot_;
  ScrubberConfig config_;
  model::HdcModel working_;      ///< the live (authoritative) model
  /// Engine bound to working_; optional so a resync can rebuild it
  /// against the reloaded weights. Never empty after construction.
  std::optional<model::RecoveryEngine> engine_;
  TrustRing ring_;
  /// Last snapshot version this thread published or adopted. When the
  /// live version differs, someone reloaded the model underneath us.
  std::uint64_t seen_version_ = 0;  ///< scrubber-thread-local after start

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  std::mutex command_mutex_;
  std::vector<Command> commands_;

  // offered_/scheduled_ are bumped by producers *after* a successful
  // hand-off; done_ by the consumer after processing. drain() waits for
  // done_ to catch the snapshot it took of the hand-off counters.
  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> scheduled_commands_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> done_commands_{0};

  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> substituted_bits_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> drops_{0};    ///< offer() ring-full rejections
  std::atomic<std::uint64_t> resyncs_{0};  ///< reloads adopted by the thread
  std::atomic<std::uint64_t> priority_marks_{0};
  /// Bits substituted by gate-flagged suspect queries (scrub thread).
  std::atomic<std::uint64_t> suspect_substitutions_{0};
  std::uint64_t dirty_bits_ = 0;  ///< scrubber-thread-local

  /// Installed before start(); read lock-free from worker threads.
  std::unique_ptr<TrustGate> gate_;

  /// Set before start(), read on the scrub thread only.
  PersistHook persist_hook_;
  /// Ranges repaired since the last successful publication (scrub-thread
  /// local). Cleared on publish (reported), failed publish and resync
  /// (both discard the repairs themselves, so the journal must too).
  std::vector<RepairedRange> pending_ranges_;
};

}  // namespace robusthd::serve
