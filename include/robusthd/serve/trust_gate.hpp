#pragma once
// TrustGate — admission control for the scrubber's repair evidence.
//
// The self-healing loop turns high-confidence traffic into bit
// substitutions, which makes "high confidence" an attack surface: a
// white-box adversary can craft queries that saturate the softmax
// confidence *and* carry a rival class's bits in exactly one chunk — the
// signature the recovery engine reads as a memory fault (see
// adversary::PoisonCampaign). Confidence alone cannot tell the two apart;
// the trust gate adds three checks that can, each cheap enough for the
// worker hot path:
//
//  1. Margin floor — the winner-vs-runner-up similarity margin must clear
//     the same noise-floor multiple the recovery engine's own margin gate
//     uses (sigma * sqrt(2) * 0.5 / sqrt(D)). Redundant with the engine's
//     gate, but rejecting here keeps junk out of the trust ring entirely.
//
//  2. Per-class fair share — a sliding admission window caps how much of
//     the trust ring any one predicted class may consume. Without it a
//     single hot (or hostile) class monopolizes the ring and the repair
//     balance starves every other class of evidence.
//
//  3. Canary agreement — the one check the adversary cannot satisfy.
//     Per class, the gate holds a bit-majority centroid of the canary
//     queries with that label. A natural member of the class agrees with
//     its centroid well above chance in *every* chunk; a poison query
//     agrees everywhere except the payload chunks, where it carries
//     another class's bits. A chunk is "alien" on either of two
//     criteria, and max_alien_chunks aliens mark the query suspect:
//       a. absolute — agreement below 0.5 + alien_sigma * 0.5 /
//          sqrt(chunk_bits), i.e. indistinguishable from random bits.
//          Decisive when classes are near-orthogonal (synthetic data).
//       b. relative — agreement more than relative_gap below the mean
//          agreement of the query's *other* chunks. Real datasets have
//          correlated classes (cross-class plane agreement ~0.8 on
//          PAMAP), so a rival-plane chunk clears the absolute floor
//          easily — but a natural query is uniformly mediocre across
//          chunks while a poison query pairs near-plane-perfect clean
//          chunks with one deep localized deficit. The mean-minus-min
//          agreement gap separates them (natural p99 ~0.08 vs poison
//          ~0.10-0.15 on PAMAP), and the poison queries that slip under
//          the gap threshold are exactly the ones whose rival bits
//          mostly coincide with the victim's — the least damaging ones.
//
// Suspect queries are rejected when `enforce` is set. With enforce off
// the gate is a pure observer (shadow mode): everything passes, suspects
// are tagged through the trust ring, and the scrubber attributes any
// substitutions they cause to `suspect_substitutions` — the measurement
// mode the undefended half of bench/adversarial_attacks runs in.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "robusthd/hv/binvec.hpp"

namespace robusthd::serve {

/// Gate tuning. Defaults are inert (`enabled == false`): existing servers
/// keep the bare confidence-threshold behaviour until they opt in.
struct TrustGateConfig {
  /// Master switch. Off: Server installs no gate at all.
  bool enabled = false;
  /// true: reject failing offers. false: shadow mode — observe, count and
  /// tag suspects, but admit everything.
  bool enforce = true;
  /// Margin floor in units of the Hamming noise floor sqrt(2)*0.5/sqrt(D)
  /// (same scale as RecoveryConfig::margin_gate_sigma). <= 0 disables.
  double margin_sigma = 4.0;
  /// Sliding admission window (offers) for fair-share accounting.
  /// 0 disables rate limiting.
  std::size_t rate_window = 256;
  /// A class may take at most max(min_class_share,
  /// fair_share_factor * rate_window / num_classes) admissions per window.
  double fair_share_factor = 2.0;
  std::size_t min_class_share = 8;
  /// Chunk count for the canary-agreement sweep. 0 = inherit the
  /// recovery engine's chunk count (Server wires this up).
  std::size_t chunks = 0;
  /// Absolute alien threshold in noise-floor units: a chunk whose
  /// agreement with the class centroid is below 0.5 + alien_sigma * 0.5 /
  /// sqrt(d_chunk) is indistinguishable from another class's bits.
  /// <= 0 disables the whole canary-agreement check.
  double alien_sigma = 2.0;
  /// Relative alien threshold: a chunk is also alien when its agreement
  /// falls more than this far below the mean agreement of the query's
  /// other chunks — the localized-deficit signature of a substitution
  /// payload on datasets whose classes are too correlated for the
  /// absolute floor to bite. <= 0 disables the relative criterion.
  double relative_gap = 0.10;
  /// Suspect when at least this many chunks are alien.
  std::size_t max_alien_chunks = 1;
};

/// Monotone gate counters (merged into ScrubberCounters / ServerStats).
struct TrustGateCounters {
  std::uint64_t checked = 0;        ///< offers inspected
  std::uint64_t margin_rejects = 0; ///< failed the margin floor
  std::uint64_t rate_rejects = 0;   ///< failed fair-share admission
  std::uint64_t poisoned_offers = 0;///< flagged suspect by canary agreement
  std::uint64_t gate_rejects = 0;   ///< offers actually rejected (enforce)
};

/// Thread-safe admission gate; one instance per Scrubber, shared by every
/// worker thread. All state is atomic — check() takes no locks.
class TrustGate {
 public:
  /// Builds the per-class canary centroids (bit-majority over the
  /// canaries of each label). Classes with no canaries get an empty
  /// centroid and skip the agreement check. `config.chunks` must be
  /// normalised (> 0) by the caller when alien_sigma > 0 and canaries
  /// exist; Server does this from RecoveryConfig::chunks.
  TrustGate(const TrustGateConfig& config, std::size_t num_classes,
            std::size_t dimension, std::span<const hv::BinVec> canaries,
            std::span<const int> canary_labels);

  struct Verdict {
    bool accept = true;   ///< may enter the trust ring
    bool suspect = false; ///< failed canary agreement (tagged through)
  };

  /// Inspects one would-be offer. `predicted`/`margin` come from the
  /// worker's confidence assessment of the query.
  Verdict check(const hv::BinVec& query, int predicted,
                double margin) noexcept;

  TrustGateCounters counters() const noexcept;

  const TrustGateConfig& config() const noexcept { return config_; }
  /// The class centroid the agreement check compares against (empty when
  /// the class had no canaries). Exposed for tests.
  const hv::BinVec& centroid(std::size_t cls) const noexcept {
    return centroids_[cls];
  }

 private:
  bool rate_admit(std::size_t cls) noexcept;
  bool canary_agrees(const hv::BinVec& query, std::size_t cls) const noexcept;

  TrustGateConfig config_;
  std::size_t dim_ = 0;
  double margin_floor_ = 0.0;
  std::vector<hv::BinVec> centroids_;

  /// Fair-share window. Offers bump window_total_; when it crosses
  /// rate_window one thread wins a CAS and re-zeroes the per-class
  /// counts. Races around the epoch edge over- or under-admit a handful
  /// of offers — admission control, not accounting, so that is fine.
  std::atomic<std::uint64_t> window_total_{0};
  std::vector<std::atomic<std::uint32_t>> class_counts_;

  mutable std::atomic<std::uint64_t> checked_{0};
  mutable std::atomic<std::uint64_t> margin_rejects_{0};
  mutable std::atomic<std::uint64_t> rate_rejects_{0};
  mutable std::atomic<std::uint64_t> poisoned_offers_{0};
  mutable std::atomic<std::uint64_t> gate_rejects_{0};
};

}  // namespace robusthd::serve
