#pragma once
// Epoch-published model snapshots: readers stay off locks on the hot path.
//
// The serving workers score queries against an *immutable* HdcModel; the
// recovery scrubber repairs its own private working copy and publishes a
// fresh immutable snapshot when the repair actually changed bits. Readers
// hold a cached shared_ptr and re-validate it against an atomic version
// counter:
//  * the common case (no publication since the last batch) is a single
//    relaxed-to-acquire load — no shared cache line is written, no lock
//    is touched;
//  * only when the version moved does a reader take the mutex, and then
//    just long enough to copy a shared_ptr;
//  * retired snapshots are reclaimed by shared_ptr once the last in-
//    flight batch referencing them completes (the epoch).
//
// A bare std::atomic<std::shared_ptr> would make even the refresh
// wait-free, but libstdc++'s lock-bit implementation is opaque to
// ThreadSanitizer (false data-race reports on every publish/acquire
// pair), and a TSan-clean serve layer is worth more than shaving the
// already-rare refresh. This is the same contract Montage's Recoverable
// draws: recovery runs against its own state with an explicit
// publication step, never inside the readers' hot path.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "robusthd/model/hdc_model.hpp"

namespace robusthd::serve {

class ModelSnapshot {
 public:
  explicit ModelSnapshot(model::HdcModel initial)
      : current_(std::make_shared<const model::HdcModel>(std::move(initial))) {
  }

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  /// The current immutable model. Hold the returned pointer for the whole
  /// batch: every query in the batch then sees one consistent model.
  std::shared_ptr<const model::HdcModel> acquire() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// The current model together with the version it was published as —
  /// read atomically, so a writer tracking versions (the scrubber) can
  /// tell exactly which publication its copy corresponds to.
  std::pair<std::shared_ptr<const model::HdcModel>, std::uint64_t>
  acquire_versioned() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return {current_, version_.load(std::memory_order_relaxed)};
  }

  /// Lock-free revalidation for hot readers: when `cached_version` still
  /// matches the published version, `cached` is left untouched and no
  /// shared state is written. Otherwise refreshes both under the mutex.
  void refresh(std::shared_ptr<const model::HdcModel>& cached,
               std::uint64_t& cached_version) const {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    if (cached && v == cached_version) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    cached = current_;
    cached_version = version_.load(std::memory_order_relaxed);
  }

  /// Publishes `next` as the new current model and returns the version it
  /// was published as. Safe against any number of readers and writers
  /// (the mutex serialises writers); the critical section is one
  /// shared_ptr move — the model copy itself is prepared outside it.
  std::uint64_t publish(model::HdcModel next) {
    auto snapshot = std::make_shared<const model::HdcModel>(std::move(next));
    const std::lock_guard<std::mutex> lock(mutex_);
    current_ = std::move(snapshot);
    return version_.fetch_add(1, std::memory_order_release) + 1;
  }

  /// Conditional publish: succeeds only while the published version still
  /// equals `expected_version`. This is how the scrubber's repair
  /// publications avoid clobbering a concurrent Server::reload — if
  /// someone else published since the scrubber last synced, the stale
  /// repaired copy is rejected and the caller resyncs instead.
  bool try_publish(model::HdcModel next, std::uint64_t expected_version) {
    auto snapshot = std::make_shared<const model::HdcModel>(std::move(next));
    const std::lock_guard<std::mutex> lock(mutex_);
    if (version_.load(std::memory_order_relaxed) != expected_version) {
      return false;
    }
    current_ = std::move(snapshot);
    version_.fetch_add(1, std::memory_order_release);
    return true;
  }

  /// Monotonic publication count (starts at 0 for the initial model).
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;  ///< guards current_ (version_ is atomic)
  std::shared_ptr<const model::HdcModel> current_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace robusthd::serve
