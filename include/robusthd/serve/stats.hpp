#pragma once
// Observability surface of the serving runtime.
//
// Everything here is updated from hot paths, so the recording side is
// lock-free: log2-bucketed histograms over relaxed atomic counters. The
// reading side (stats()) takes a consistent-enough snapshot for
// monitoring — counters are monotone, so a snapshot is always a valid
// recent state even while workers keep recording.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace robusthd::serve {

/// Lock-free latency histogram: value v lands in bucket floor(log2(v)),
/// covering 1ns .. ~2^47 ns (~1.6 days) — far wider than any sane service
/// time. Percentiles are bucket-resolution (a factor-of-2 band), which is
/// the standard monitoring trade-off.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t nanos) noexcept {
    const auto bucket = static_cast<std::size_t>(
        std::bit_width(nanos | 1) - 1);  // log2, 0 for 0/1ns
    buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(nanos, std::memory_order_relaxed);
  }

  struct Summary {
    std::uint64_t count = 0;
    double mean_ns = 0.0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
  };

  /// Running mean in nanoseconds — two relaxed loads, cheap enough for a
  /// per-request admission estimate (Server::estimated_wait_ns).
  double mean_ns() const noexcept {
    const auto c = count_.load(std::memory_order_relaxed);
    return c == 0 ? 0.0
                  : static_cast<double>(
                        sum_ns_.load(std::memory_order_relaxed)) /
                        static_cast<double>(c);
  }

  Summary summarize() const noexcept {
    Summary s;
    std::array<std::uint64_t, kBuckets> counts{};
    for (std::size_t b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[b].load(std::memory_order_relaxed);
      s.count += counts[b];
    }
    if (s.count == 0) return s;
    s.mean_ns = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
                static_cast<double>(s.count);
    s.p50_ns = percentile_from(counts, s.count, 0.50);
    s.p99_ns = percentile_from(counts, s.count, 0.99);
    return s;
  }

  /// Zeroes the histogram so measurement phases (e.g. soak baseline vs
  /// under-chaos) can be read independently. Not atomic with respect to
  /// concurrent record() calls — callers quiesce or accept a few straddling
  /// samples, the standard monitoring trade-off.
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  static double percentile_from(
      const std::array<std::uint64_t, kBuckets>& counts, std::uint64_t total,
      double p) noexcept {
    const auto rank = static_cast<std::uint64_t>(
        p * static_cast<double>(total - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) {
        // Geometric midpoint of the bucket's [2^b, 2^(b+1)) band.
        return static_cast<double>(1ull << b) * 1.5;
      }
    }
    return static_cast<double>(1ull << (kBuckets - 1));
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Exact small-value distribution for batch sizes (1..kMax, clamped).
class BatchSizeDistribution {
 public:
  static constexpr std::size_t kMax = 64;

  void record(std::size_t batch) noexcept {
    const std::size_t slot = batch == 0 ? 0 : (batch <= kMax ? batch - 1
                                                             : kMax - 1);
    buckets_[slot].fetch_add(1, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    items_.fetch_add(batch, std::memory_order_relaxed);
  }

  std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }

  double mean() const noexcept {
    const auto b = batches_.load(std::memory_order_relaxed);
    return b == 0 ? 0.0
                  : static_cast<double>(items_.load(std::memory_order_relaxed)) /
                        static_cast<double>(b);
  }

  std::uint64_t at(std::size_t batch_size) const noexcept {
    return batch_size == 0 || batch_size > kMax
               ? 0
               : buckets_[batch_size - 1].load(std::memory_order_relaxed);
  }

  /// Zeroes the distribution (same caveats as LatencyHistogram::reset).
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    batches_.store(0, std::memory_order_relaxed);
    items_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kMax> buckets_{};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> items_{0};
};

/// Point-in-time snapshot returned by Server::stats().
struct ServerStats {
  // Admission.
  std::uint64_t submitted = 0;   ///< requests accepted into the queue
  std::uint64_t rejected = 0;    ///< try_submit failures (queue full/closed)
  std::uint64_t completed = 0;   ///< promises fulfilled
  /// Requests dropped because their propagated deadline expired before a
  /// worker reached them (the client already gave up — scoring would be
  /// wasted work). Fulfilled with Response::expired, counted here.
  std::uint64_t deadline_sheds = 0;
  std::size_t queue_depth = 0;   ///< instantaneous

  // Batching.
  std::uint64_t batches = 0;
  double mean_batch = 0.0;

  // Per-stage latency.
  LatencyHistogram::Summary queue_wait;  ///< enqueue -> dequeue
  LatencyHistogram::Summary service;     ///< score + respond, per query
  LatencyHistogram::Summary end_to_end;  ///< enqueue -> promise fulfilled

  // Recovery / trust flow.
  std::uint64_t trusted = 0;        ///< confidence cleared the gate
  std::uint64_t scrub_offered = 0;  ///< trusted queries handed to the ring
  std::uint64_t scrub_dropped = 0;  ///< worker offers lost to a full ring
  /// Ring-full drops counted at the ring itself (all producers, not just
  /// the serving workers) — the authoritative silent-drop count.
  std::uint64_t trust_drops = 0;
  std::uint64_t scrub_processed = 0;
  std::uint64_t scrub_repairs = 0;          ///< engine updates committed
  std::uint64_t scrub_substituted_bits = 0; ///< bits actually rewritten
  std::uint64_t faults_injected = 0;        ///< via inject_faults()
  std::uint64_t snapshots_published = 0;
  std::uint64_t model_version = 0;

  // Trust gate (serve::TrustGate; all zero when the gate is disabled).
  /// Offers the gate's canary-agreement check flagged as likely
  /// adversarial (counted in shadow mode too).
  std::uint64_t poisoned_offers = 0;
  /// Offers the gate rejected outright (enforce mode: margin floor,
  /// fair-share rate limit or canary disagreement).
  std::uint64_t gate_rejects = 0;
  /// Bits the recovery engine substituted on behalf of gate-flagged
  /// suspect queries — the measured poisoning of the self-healing loop.
  std::uint64_t suspect_substitutions = 0;

  // Hot reload (RHD2 model store integration).
  std::uint64_t reloads = 0;  ///< models published via reload()/load_model()
  /// load_model() calls rejected by blob validation (CRC mismatch,
  /// truncation, bad header) — the serving model was left untouched.
  std::uint64_t integrity_failures = 0;
  /// Times the scrubber re-adopted an externally reloaded snapshot as its
  /// working copy (engine state reset).
  std::uint64_t scrub_resyncs = 0;

  // Resilience ladder (ChaosAgent + Sentinel + degradation).
  std::uint64_t chaos_ticks = 0;       ///< ChaosAgent attack ticks executed
  std::uint64_t chaos_flips = 0;       ///< flips scheduled by the ChaosAgent
  std::uint64_t canary_runs = 0;       ///< sentinel canary replays completed
  double canary_accuracy = 0.0;        ///< latest effective canary accuracy
  std::size_t quarantined_chunks = 0;  ///< instantaneous quarantine size
  std::uint64_t priority_marks = 0;    ///< sentinel repair-priority commands
  std::uint64_t degraded_responses = 0;  ///< answered under quarantine mask
  std::uint64_t abstained_responses = 0; ///< shed while the breaker was open
  std::uint64_t breaker_trips = 0;
  bool breaker_open = false;           ///< instantaneous breaker state
  std::uint64_t reload_retries = 0;    ///< breaker last-good reload attempts

  // Memory layout of the live snapshot (mem::PlaneArena mirror).
  std::size_t arena_bytes = 0;  ///< arena allocation size; 0 == arena-less
  bool arena_hugepage = false;  ///< MADV_HUGEPAGE accepted by the kernel

  // Durability (robusthd::persist epoch log; docs/serialization.md). All
  // zero when ServerConfig::persist.dir is empty.
  std::uint64_t epochs_closed = 0;   ///< WAL epochs committed (1 fsync each)
  std::uint64_t wal_bytes = 0;       ///< record bytes appended to segments
  std::uint64_t wal_rotations = 0;   ///< generation starts (reload/compact)
  std::uint64_t wal_compactions = 0; ///< WALs folded into a fresh base
  std::uint64_t persist_io_errors = 0; ///< nonzero => the log shut itself off
  /// Records committed by Server::recover at startup — a replay gauge, not
  /// a serving counter (preserved across reset()).
  std::uint64_t replay_records = 0;

  /// Zeroes every cumulative field of this snapshot, keeping the
  /// instantaneous gauges (queue_depth, model_version, quarantined_chunks,
  /// breaker_open). Soak phases subtract a baseline snapshot this way;
  /// Server::reset_stats() resets the live counters themselves.
  void reset() noexcept {
    const std::size_t depth = queue_depth;
    const std::uint64_t version = model_version;
    const std::size_t quarantined = quarantined_chunks;
    const bool open = breaker_open;
    const std::size_t arena = arena_bytes;
    const bool huge = arena_hugepage;
    const std::uint64_t replayed = replay_records;
    *this = ServerStats{};
    queue_depth = depth;
    model_version = version;
    quarantined_chunks = quarantined;
    breaker_open = open;
    arena_bytes = arena;
    arena_hugepage = huge;
    replay_records = replayed;
  }
};

}  // namespace robusthd::serve
