#pragma once
// Bounded MPMC request queue — the admission edge of the serving runtime.
//
// Multiple producer threads (client frontends) push encoded queries;
// multiple consumer threads (batching workers) pop them. The queue is
// bounded so overload turns into backpressure (push blocks) or explicit
// rejection (try_push fails) instead of unbounded memory growth — a
// serving system's first line of defence.
//
// Shutdown contract: close() wakes every blocked producer and consumer.
// Pushes after close fail; pops continue to *drain* whatever was accepted
// before the close and only then report exhaustion. Graceful shutdown is
// therefore "close, then join consumers": no accepted request is dropped.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace robusthd::serve {

/// Mutex + condvar bounded queue. Simple by design: the hot cost of a
/// serving cycle is scoring, not queue transfer, and a blocking queue
/// gives exact FIFO and a provable drain-on-close — properties the
/// lock-free trust ring (scrubber.hpp) deliberately trades away.
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Blocks while the queue is full. Returns false (item not consumed)
  /// if the queue is closed.
  bool push(T&& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; on failure (full or closed) `item` is untouched.
  bool try_push(T& item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; drains remaining items after
  /// close() and then returns nullopt.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take(lock);
  }

  /// pop() with a timeout; nullopt on timeout or exhaustion.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    return take(lock);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    return take(lock);
  }

  /// Rejects future pushes and wakes every waiter. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Instantaneous number of queued items (monitoring only).
  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace robusthd::serve
