#pragma once
// Persistent serving workers.
//
// Unlike util::ThreadPool (fork/join over an index range), serving
// workers are long-running: each one loops "take a batch, score it,
// fulfil the promises" until the request queue closes and drains. This
// class owns only the thread lifecycle — start N workers on the same
// main function, join them, and surface the first worker exception on
// join instead of losing it to std::terminate.

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace robusthd::serve {

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool() { join(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches `threads` workers, each running worker_main(worker_index)
  /// to completion. Call once.
  void start(std::size_t threads,
             std::function<void(std::size_t)> worker_main) {
    main_ = std::move(worker_main);
    threads_.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      threads_.emplace_back([this, w] {
        try {
          main_(w);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
      });
    }
  }

  std::size_t size() const noexcept { return threads_.size(); }

  /// Joins every worker; rethrows the first exception any of them died
  /// with. Idempotent (subsequent calls are no-ops).
  void join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    std::exception_ptr error;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      std::swap(error, first_error_);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  std::vector<std::thread> threads_;
  std::function<void(std::size_t)> main_;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace robusthd::serve
