#pragma once
// Storage-integrity round-trip experiment: does the model store detect
// the paper's attacks when they land on the *serialized* model?
//
// The in-memory experiments (Table 3) measure how much damage the
// representation absorbs; this one measures whether damage to the model
// *at rest* is even detectable. Each trial copies a serialized blob,
// flips bits at a Table-3 rate (uniformly over header + payload — the
// whole file is the attack surface), and attempts to deserialize the
// corrupted copy. RHD2 blobs must reject every corrupted copy (CRC32C:
// all 1/2-bit errors, random multi-bit with P[miss] = 2^-32); legacy
// RHD1 blobs mostly load corrupted payloads silently, which is exactly
// the gap the RHD2 format closes. Storage integrity checking composes
// with in-memory self-recovery: detect-and-refuse at load time, then
// detect-and-repair at serve time.

#include <cstddef>
#include <span>
#include <vector>

#include "robusthd/util/rng.hpp"

namespace robusthd::core {

/// One cell of the detection sweep (one flip rate).
struct IntegrityCell {
  double flip_rate = 0.0;       ///< requested fraction of blob bits
  std::size_t trials = 0;       ///< corrupted copies attempted
  std::size_t corrupted = 0;    ///< trials where >= 1 bit actually flipped
  std::size_t detected = 0;     ///< corrupted copies deserialize() rejected
  std::size_t loaded_clean = 0; ///< zero-flip trials (rate rounded to 0)

  /// P[detect | corrupted] — the acceptance-criteria number.
  double detection_rate() const noexcept {
    return corrupted == 0
               ? 1.0
               : static_cast<double>(detected) / static_cast<double>(corrupted);
  }
};

/// Flips `round(rate x blob_bits)` distinct random bits in copies of
/// `blob` (`trials` independent copies) and counts how many corrupted
/// copies deserialize() rejects. Zero-flip trials (tiny rate x small
/// blob) must load successfully and are tallied in `loaded_clean`;
/// a zero-flip trial that *fails* to load throws (the input blob itself
/// was bad — a harness bug, not a detection event).
IntegrityCell storage_roundtrip(std::span<const std::byte> blob, double rate,
                                std::size_t trials, util::Xoshiro256& rng);

/// Single-bit sweep: flips exactly one bit per trial at `trials`
/// uniformly chosen positions (header bits included). For RHD2 the
/// detection rate here is exactly 1 — CRC32C misses no single-bit error.
IntegrityCell storage_single_bit(std::span<const std::byte> blob,
                                 std::size_t trials, util::Xoshiro256& rng);

}  // namespace robusthd::core
