#pragma once
// ECC-protected model deployment — the conventional alternative RobustHD
// claims to make unnecessary (Section 6.6).
//
// Wraps a trained HdcModel's class planes in SECDED(72,64) protected
// storage. Faults are injected into the *protected* representation (data
// words + check bytes); a scrub cycle decodes every word, repairs what
// SECDED can repair, and writes the payload back into the live model.
// `bench/ecc_vs_recovery` races this against the unsupervised recovery
// engine under DRAM-retention error rates.

#include <vector>

#include "robusthd/fault/memory.hpp"
#include "robusthd/mem/ecc_memory.hpp"
#include "robusthd/model/hdc_model.hpp"

namespace robusthd::core {

/// SECDED-protected storage for a binary HDC model.
class EccProtectedModel {
 public:
  /// Snapshots the model's planes into protected storage. The model object
  /// remains the live copy used for inference; refresh_model() re-derives
  /// it from storage after faults + scrubbing.
  explicit EccProtectedModel(model::HdcModel& model);

  /// The protected stored representation (data + check bits) — the attack
  /// surface. Note it is ~12.5% larger than the raw model.
  std::vector<fault::MemoryRegion> memory_regions();

  /// Read-only view of the same stored representation for const callers
  /// (storage accounting, overhead reporting) — stored_bits() is const,
  /// and region-level inspection should not force mutable access.
  std::vector<fault::ConstMemoryRegion> memory_regions() const;

  /// Runs a scrub: decode/correct every protected word, then write the
  /// (possibly partially corrupted) payload back into the live model.
  mem::EccProtectedMemory::ScrubReport scrub_and_refresh();

  /// Total stored bits including the ECC overhead.
  std::size_t stored_bits() const noexcept;

 private:
  model::HdcModel& model_;
  std::vector<mem::EccProtectedMemory> planes_;  ///< one per (class, plane)
};

}  // namespace robusthd::core
