#pragma once
// End-user facade: an HDC classifier with the same Classifier interface as
// the baselines, bundling encoder + model (and optionally a recovery
// engine) behind one object. This is the "RobustHD system" a downstream
// application holds.

#include <memory>
#include <optional>

#include "robusthd/baseline/classifier.hpp"
#include "robusthd/hv/encoder.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/model/recovery.hpp"

namespace robusthd::core {

/// Facade configuration.
struct HdcClassifierConfig {
  hv::EncoderConfig encoder{};
  model::HdcConfig model{};
};

/// Trained HDC classifier over raw (normalised) feature vectors.
class HdcClassifier final : public baseline::Classifier {
 public:
  /// Trains encoder item memory + class hypervectors on the dataset.
  static HdcClassifier train(const data::Dataset& train_data,
                             const HdcClassifierConfig& config = {});

  /// Reassembles a classifier from its parts (deserialisation): the
  /// encoder is rebuilt deterministically from its config, the model is
  /// adopted as-is.
  static HdcClassifier assemble(const hv::EncoderConfig& encoder_config,
                                std::size_t feature_count,
                                model::HdcModel model);

  int predict(std::span<const float> features) const override;
  std::vector<fault::MemoryRegion> memory_regions() override;
  std::unique_ptr<Classifier> clone() const override;
  std::string name() const override { return "RobustHD"; }

  /// Predicts and, when self-recovery is enabled, lets the RecoveryEngine
  /// observe the query (detection + substitution happen inline).
  int predict_and_recover(std::span<const float> features);

  /// Turns on the adaptive self-recovery runtime.
  void enable_recovery(const model::RecoveryConfig& config);
  bool recovery_enabled() const noexcept { return engine_ != nullptr; }
  const model::RecoveryEngine* recovery_engine() const noexcept {
    return engine_.get();
  }

  const hv::RecordEncoder& encoder() const noexcept { return *encoder_; }
  const hv::EncoderConfig& encoder_config() const noexcept {
    return encoder_config_;
  }
  const model::HdcModel& model() const noexcept { return model_; }
  model::HdcModel& model() noexcept { return model_; }

 private:
  hv::EncoderConfig encoder_config_{};
  std::shared_ptr<const hv::RecordEncoder> encoder_;  ///< immutable, shared by clones
  model::HdcModel model_;
  std::unique_ptr<model::RecoveryEngine> engine_;
};

}  // namespace robusthd::core
