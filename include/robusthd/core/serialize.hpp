#pragma once
// Model serialisation — the RHD2 integrity-checked model store.
//
// The paper's threat model is "the trained model sits in attackable
// memory" — which presumes models get stored and shipped, and makes the
// on-disk blob part of the attack surface. The RHD2 format therefore
// treats storage like the rest of the repo treats memory: assume bits
// flip, detect it.
//
// Layout (all fields little-endian, written with memcpy):
//
//   [HeaderV2: 64 bytes]
//     magic "RHD2", version, model shape (dimension, levels, encoder
//     seed, feature count, precision, classes), payload byte count,
//     payload CRC32C, header CRC32C (over the preceding 60 bytes)
//   [payload: num_classes x precision_bits planes of raw plane words]
//
// Every header field is validated against hard sanity bounds *before any
// allocation*, the blob size must match the header exactly (no trailing
// bytes), and both CRCs must verify — a single flipped bit anywhere in
// the file is detected (CRC32C catches all 1/2-bit errors; random
// multi-bit corruption slips through with probability 2^-32, measured in
// bench/storage_integrity). Legacy RHD1 blobs (no CRC) written before
// this format still load, with the same bounds and exact-size checks.
// docs/serialization.md has the full layout and compatibility policy.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "robusthd/core/hdc_classifier.hpp"

namespace robusthd::core {

/// Typed serialization failure. Every rejection in this layer throws a
/// SerializeError; the code says *why* so callers (the persist replayer,
/// the CLI, tests) can distinguish an unreadable file from a corrupt one
/// without string-matching. Derives from std::runtime_error, so existing
/// catch (const std::runtime_error&) sites keep working.
struct SerializeError : std::runtime_error {
  enum class Code {
    kIo,         ///< open/read/write/stat failed (errno-level)
    kEmpty,      ///< zero-size or unreadable-size (tellg() == -1) file
    kTruncated,  ///< shorter than its header promises
    kMalformed,  ///< bad magic/version/shape/trailing bytes
    kIntegrity,  ///< a CRC32C check failed
  };
  SerializeError(Code c, const std::string& what)
      : std::runtime_error(what), code(c) {}
  Code code;
};

/// On-disk format versions. serialize() always writes the latest;
/// deserialize() reads every version listed here.
inline constexpr std::uint32_t kFormatRhd1 = 1;  ///< legacy, no integrity
inline constexpr std::uint32_t kFormatRhd2 = 2;  ///< CRC32C-protected

/// Hard sanity bounds on header fields, enforced before any allocation —
/// a corrupted (or hostile) header must not be able to drive the loader
/// into gigabyte reserves.
inline constexpr std::uint64_t kMaxDimension = 1ull << 26;    ///< 64M bits/plane
inline constexpr std::uint64_t kMaxLevels = 1ull << 20;
inline constexpr std::uint64_t kMaxFeatureCount = 1ull << 20;
inline constexpr std::uint32_t kMaxClasses = 1u << 16;

/// Validated summary of a blob's header (what `robusthd info` prints and
/// tests assert on). For RHD2 blobs both CRCs have been verified by the
/// time inspect() returns; `integrity_checked` records which guarantee
/// the blob carries.
struct BlobInfo {
  std::uint32_t version = 0;
  std::size_t dimension = 0;
  std::size_t levels = 0;
  std::uint64_t encoder_seed = 0;
  std::size_t feature_count = 0;
  unsigned precision_bits = 0;
  std::size_t num_classes = 0;
  bool integrity_checked = false;  ///< true iff the format carries CRCs
};

/// Serialises a trained classifier to a self-contained RHD2 byte blob.
std::vector<std::byte> serialize(const HdcClassifier& classifier);

/// Encoder-side header fields that an HdcModel alone does not carry.
/// serialize_model() stores them so a blob written from a bare model (the
/// serving runtime's persistence checkpoints) still round-trips through
/// deserialize() when the metadata is real, and through
/// deserialize_model() regardless.
struct ModelMeta {
  std::uint64_t levels = 0;
  std::uint64_t encoder_seed = 0;
  std::uint64_t feature_count = 0;
};

/// Serialises a bare model (no classifier/encoder) to an RHD2 blob. The
/// payload and integrity guarantees are identical to serialize(); the
/// encoder fields come from `meta` (zeros are valid — the blob then only
/// loads through deserialize_model()).
std::vector<std::byte> serialize_model(const model::HdcModel& model,
                                       const ModelMeta& meta = {});

/// Reconstructs just the model (planes + precision) from any RHD1/RHD2
/// blob, with the full validation stack but no encoder construction —
/// what the crash-recovery replayer uses to rebuild serving state.
model::HdcModel deserialize_model(std::span<const std::byte> blob);

/// Legacy RHD1 writer (no CRCs). Kept so compatibility tests and the
/// storage-integrity experiment can produce pre-RHD2 blobs on demand; new
/// code should never call this.
std::vector<std::byte> serialize_rhd1(const HdcClassifier& classifier);

/// Validates a blob's header and CRCs without reconstructing the model.
/// Throws std::runtime_error exactly when deserialize() would.
BlobInfo inspect(std::span<const std::byte> blob);

/// Validates a header *prefix* only (>= 48 bytes for RHD1, >= 64 for
/// RHD2): magic/version dispatch, sanity bounds, and — for RHD2 — the
/// header CRC and payload-size consistency. Payload bytes are not
/// required or touched. This is the validate-before-allocate step of the
/// file loader: the header is read and bounded first, and only then is
/// an allocation of expected_blob_bytes() made.
BlobInfo inspect_header(std::span<const std::byte> header_prefix);

/// Total blob size (header + payload) a blob with this validated header
/// must have — the loader's allocation bound and exact-size check.
std::size_t expected_blob_bytes(const BlobInfo& info);

/// Reconstructs a classifier from serialize()'s output (RHD2 or legacy
/// RHD1). Throws std::runtime_error on malformed, truncated, trailing-
/// garbage, out-of-bounds or CRC-failing input.
HdcClassifier deserialize(std::span<const std::byte> blob);

/// Crash-atomic, durable model save: the blob is written to an O_EXCL
/// temp file, fsync'd, renamed over `path`, and the parent directory is
/// fsync'd (util::atomic_write_file) — after a crash at any instant,
/// `path` holds either the complete previous file or the complete new
/// one, never a torn RHD2 blob. Throws SerializeError/util::FsError.
void save_model(const HdcClassifier& classifier, const std::string& path);

/// save_model for a bare model (persistence checkpoints, `wal-recover
/// --out`). Same atomicity contract.
void save_model(const model::HdcModel& model, const std::string& path,
                const ModelMeta& meta = {});

/// Loads a model file with validate-before-allocate semantics: the
/// 64-byte header is read and fully checked first (inspect_header), the
/// allocation is bounded by what the validated header promises, and the
/// file size must match it exactly. Empty files, unreadable sizes and
/// header-level lies throw a typed SerializeError before any
/// payload-sized allocation happens.
HdcClassifier load_model(const std::string& path);

/// load_model without encoder reconstruction (RHD1/RHD2, same checks).
model::HdcModel load_model_planes(const std::string& path);

}  // namespace robusthd::core
