#pragma once
// Model serialisation — the RHD2 integrity-checked model store.
//
// The paper's threat model is "the trained model sits in attackable
// memory" — which presumes models get stored and shipped, and makes the
// on-disk blob part of the attack surface. The RHD2 format therefore
// treats storage like the rest of the repo treats memory: assume bits
// flip, detect it.
//
// Layout (all fields little-endian, written with memcpy):
//
//   [HeaderV2: 64 bytes]
//     magic "RHD2", version, model shape (dimension, levels, encoder
//     seed, feature count, precision, classes), payload byte count,
//     payload CRC32C, header CRC32C (over the preceding 60 bytes)
//   [payload: num_classes x precision_bits planes of raw plane words]
//
// Every header field is validated against hard sanity bounds *before any
// allocation*, the blob size must match the header exactly (no trailing
// bytes), and both CRCs must verify — a single flipped bit anywhere in
// the file is detected (CRC32C catches all 1/2-bit errors; random
// multi-bit corruption slips through with probability 2^-32, measured in
// bench/storage_integrity). Legacy RHD1 blobs (no CRC) written before
// this format still load, with the same bounds and exact-size checks.
// docs/serialization.md has the full layout and compatibility policy.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "robusthd/core/hdc_classifier.hpp"

namespace robusthd::core {

/// On-disk format versions. serialize() always writes the latest;
/// deserialize() reads every version listed here.
inline constexpr std::uint32_t kFormatRhd1 = 1;  ///< legacy, no integrity
inline constexpr std::uint32_t kFormatRhd2 = 2;  ///< CRC32C-protected

/// Hard sanity bounds on header fields, enforced before any allocation —
/// a corrupted (or hostile) header must not be able to drive the loader
/// into gigabyte reserves.
inline constexpr std::uint64_t kMaxDimension = 1ull << 26;    ///< 64M bits/plane
inline constexpr std::uint64_t kMaxLevels = 1ull << 20;
inline constexpr std::uint64_t kMaxFeatureCount = 1ull << 20;
inline constexpr std::uint32_t kMaxClasses = 1u << 16;

/// Validated summary of a blob's header (what `robusthd info` prints and
/// tests assert on). For RHD2 blobs both CRCs have been verified by the
/// time inspect() returns; `integrity_checked` records which guarantee
/// the blob carries.
struct BlobInfo {
  std::uint32_t version = 0;
  std::size_t dimension = 0;
  std::size_t levels = 0;
  std::uint64_t encoder_seed = 0;
  std::size_t feature_count = 0;
  unsigned precision_bits = 0;
  std::size_t num_classes = 0;
  bool integrity_checked = false;  ///< true iff the format carries CRCs
};

/// Serialises a trained classifier to a self-contained RHD2 byte blob.
std::vector<std::byte> serialize(const HdcClassifier& classifier);

/// Legacy RHD1 writer (no CRCs). Kept so compatibility tests and the
/// storage-integrity experiment can produce pre-RHD2 blobs on demand; new
/// code should never call this.
std::vector<std::byte> serialize_rhd1(const HdcClassifier& classifier);

/// Validates a blob's header and CRCs without reconstructing the model.
/// Throws std::runtime_error exactly when deserialize() would.
BlobInfo inspect(std::span<const std::byte> blob);

/// Reconstructs a classifier from serialize()'s output (RHD2 or legacy
/// RHD1). Throws std::runtime_error on malformed, truncated, trailing-
/// garbage, out-of-bounds or CRC-failing input.
HdcClassifier deserialize(std::span<const std::byte> blob);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_model(const HdcClassifier& classifier, const std::string& path);
HdcClassifier load_model(const std::string& path);

}  // namespace robusthd::core
