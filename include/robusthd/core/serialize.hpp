#pragma once
// Model serialisation.
//
// The paper's threat model is "the trained model sits in attackable
// memory" — which presumes models get stored and shipped. This module
// gives RobustHD a deployable on-disk format: a small versioned header
// (encoder configuration — the item memory rebuilds deterministically from
// its seed — plus model shape) followed by the raw class-plane words, i.e.
// exactly the bytes the fault injector attacks.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "robusthd/core/hdc_classifier.hpp"

namespace robusthd::core {

/// Serialises a trained classifier to a self-contained byte blob.
std::vector<std::byte> serialize(const HdcClassifier& classifier);

/// Reconstructs a classifier from serialize()'s output. Throws
/// std::runtime_error on malformed or version-mismatched input.
HdcClassifier deserialize(std::span<const std::byte> blob);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_model(const HdcClassifier& classifier, const std::string& path);
HdcClassifier load_model(const std::string& path);

}  // namespace robusthd::core
