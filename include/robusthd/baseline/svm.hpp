#pragma once
// Linear multiclass SVM baseline (Table 3).
//
// One-vs-rest hinge loss trained with SGD and L2 regularisation; deployed
// with quantised weights like the other baselines.

#include "robusthd/baseline/classifier.hpp"
#include "robusthd/baseline/fixedpoint.hpp"

namespace robusthd::baseline {

struct SvmConfig {
  std::size_t epochs = 12;
  float learning_rate = 0.02f;
  float l2 = 1.0e-4f;
  Precision precision = Precision::kInt8;
  std::uint64_t seed = 0x57a;
};

/// Deployed linear SVM: score_c(x) = w_c · x + b_c, argmax wins.
class LinearSvm final : public Classifier {
 public:
  static LinearSvm train(const data::Dataset& train_data,
                         const SvmConfig& config);

  int predict(std::span<const float> features) const override;
  std::vector<fault::MemoryRegion> memory_regions() override;
  std::unique_ptr<Classifier> clone() const override;
  std::string name() const override { return "SVM"; }

  std::vector<float> scores(std::span<const float> features) const;

 private:
  std::size_t features_ = 0;
  std::size_t num_classes_ = 0;
  QuantizedTensor weights_;  ///< row-major k×n
  QuantizedTensor bias_;     ///< k
};

}  // namespace robusthd::baseline
