#pragma once
// Multilayer perceptron baseline — the "DNN" of Tables 1 and 3.
//
// Trained from scratch in float (mini-batch SGD, ReLU, softmax cross-
// entropy; architecture in the spirit of the paper's LookNN-derived
// configs), then deployed with quantised parameters (int8 by default).
// Inference reads the quantised storage, so injected bit flips corrupt the
// effective weights exactly as a memory attack would.

#include <cstdint>
#include <vector>

#include "robusthd/baseline/classifier.hpp"
#include "robusthd/baseline/fixedpoint.hpp"
#include "robusthd/util/matrix.hpp"

namespace robusthd::baseline {

/// Training/deployment configuration.
struct MlpConfig {
  std::vector<std::size_t> hidden = {64};
  std::size_t epochs = 10;
  float learning_rate = 0.05f;
  float lr_decay = 0.9f;       ///< multiplicative per-epoch decay
  std::size_t batch_size = 32;
  Precision precision = Precision::kInt8;
  /// Activation saturation bound applied after every layer, mirroring
  /// saturating accumulator hardware (keeps exploded weights finite).
  float activation_limit = 1.0e6f;
  std::uint64_t seed = 0xd2;
};

/// A deployed (quantised) fully connected network.
class Mlp final : public Classifier {
 public:
  /// Trains on the dataset and quantises the result.
  static Mlp train(const data::Dataset& train_data, const MlpConfig& config);

  int predict(std::span<const float> features) const override;
  std::vector<fault::MemoryRegion> memory_regions() override;
  std::unique_ptr<Classifier> clone() const override;
  std::string name() const override { return "DNN"; }

  /// Raw logits (used by tests).
  std::vector<float> logits(std::span<const float> features) const;

  std::size_t parameter_count() const noexcept;

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    QuantizedTensor weights;  ///< row-major out×in
    QuantizedTensor bias;     ///< out
  };

  MlpConfig config_;
  std::vector<Layer> layers_;
  std::size_t num_classes_ = 0;
};

}  // namespace robusthd::baseline
