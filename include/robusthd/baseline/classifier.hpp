#pragma once
// Common interface for all attackable classifiers (HDC wrapper and the
// three baselines), used by the examples and integration tests.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "robusthd/data/dataset.hpp"
#include "robusthd/fault/memory.hpp"

namespace robusthd::baseline {

/// A trained, deployable classifier whose stored model can be attacked.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Predicted class for one normalised sample.
  virtual int predict(std::span<const float> features) const = 0;

  /// The stored model bytes, for fault injection.
  virtual std::vector<fault::MemoryRegion> memory_regions() = 0;

  /// Deep copy (campaigns attack copies, never the trained original).
  virtual std::unique_ptr<Classifier> clone() const = 0;

  virtual std::string name() const = 0;

  /// Accuracy over a dataset; default loops predict().
  virtual double evaluate(const data::Dataset& dataset) const;
};

}  // namespace robusthd::baseline
