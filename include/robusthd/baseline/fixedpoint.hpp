#pragma once
// Fixed-point (quantised) parameter storage for the baseline learners.
//
// The paper's baselines store weights as 8-bit fixed point (Section 2 /
// Section 6.2, following TPU-style int8 inference). A symmetric per-tensor
// scheme is used: w ≈ q * scale with q in [-127, 127]. This is the
// representation the fault injector attacks — a flip of q's MSB changes the
// weight by ±128*scale, which is what makes the binary-representation
// baselines fragile and targeted attacks devastating.

#include <cstdint>
#include <span>
#include <vector>

#include "robusthd/fault/memory.hpp"

namespace robusthd::baseline {

/// Storage precision of a deployed baseline model.
enum class Precision {
  kInt8,     ///< 8-bit fixed point (paper default)
  kInt16,    ///< 16-bit fixed point (Figure 4a "higher precision")
  kFloat32,  ///< raw IEEE floats (exponent bits attackable)
};

/// Number of bits per stored value.
constexpr unsigned bits_of(Precision p) noexcept {
  switch (p) {
    case Precision::kInt8: return 8;
    case Precision::kInt16: return 16;
    case Precision::kFloat32: return 32;
  }
  return 8;
}

/// A float tensor quantised to `Precision` with a single symmetric scale.
/// The quantised buffer is the *stored representation*: reads dequantise on
/// the fly, so injected bit flips propagate into inference exactly as they
/// would on real hardware.
/// How a tensor's sign is represented in storage.
enum class Signedness {
  kAuto,    ///< unsigned iff every value is non-negative
  kSigned,  ///< always two's complement (MSB is a sign bit)
};

class QuantizedTensor {
 public:
  QuantizedTensor() = default;

  /// Quantises `values` at the given precision.
  QuantizedTensor(std::span<const float> values, Precision precision,
                  Signedness signedness = Signedness::kSigned);

  std::size_t size() const noexcept { return count_; }
  Precision precision() const noexcept { return precision_; }
  float scale() const noexcept { return scale_; }

  /// Dequantised read of element i. Float32 tensors read the stored float
  /// verbatim (including any NaN/Inf an exponent flip produced — that *is*
  /// the failure mode being studied; callers clamp at the activation level).
  float get(std::size_t i) const noexcept;

  /// The raw stored bytes, exposed for fault injection.
  fault::MemoryRegion region(std::string name);

  /// True when the tensor was all-non-negative and is stored unsigned
  /// (full 8/16-bit magnitude range, no sign bit to flip).
  bool is_unsigned() const noexcept { return unsigned_; }

 private:
  Precision precision_ = Precision::kInt8;
  std::size_t count_ = 0;
  float scale_ = 1.0f;
  bool unsigned_ = false;
  std::vector<std::int8_t> q8_;
  std::vector<std::int16_t> q16_;
  std::vector<float> f32_;
};

/// Clamps a possibly NaN/Inf value into [-limit, limit]; NaN maps to 0.
/// Applied at layer boundaries so a single exploded weight produces a large
/// but finite activation (mirrors saturating fixed-point MAC hardware).
float saturate(float value, float limit) noexcept;

}  // namespace robusthd::baseline
