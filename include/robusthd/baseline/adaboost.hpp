#pragma once
// Multiclass AdaBoost (SAMME) over decision stumps — the boosting baseline
// of Table 3.
//
// Stumps are trained on per-feature quantile buckets (fast weighted splits)
// and deployed with quantised parameters: thresholds and stage weights as
// 8-bit fixed point, vote classes and feature ids as integers. All of it is
// exposed to the injector; invalid indices produced by flips are wrapped at
// inference (hardware would fetch *some* feature/class, not crash).

#include <cstdint>

#include "robusthd/baseline/classifier.hpp"
#include "robusthd/baseline/fixedpoint.hpp"

namespace robusthd::baseline {

struct AdaBoostConfig {
  std::size_t rounds = 250;   ///< number of stumps (redundancy is what buys
                              ///  the ensemble its fault tolerance)
  std::size_t buckets = 32;   ///< quantile candidates per feature
  Precision precision = Precision::kInt8;
  std::uint64_t seed = 0xb005;
};

/// Deployed boosted-stump ensemble.
class AdaBoost final : public Classifier {
 public:
  static AdaBoost train(const data::Dataset& train_data,
                        const AdaBoostConfig& config);

  int predict(std::span<const float> features) const override;
  std::vector<fault::MemoryRegion> memory_regions() override;
  std::unique_ptr<Classifier> clone() const override;
  std::string name() const override { return "AdaBoost"; }

  std::size_t round_count() const noexcept { return feature_ids_.size(); }
  std::vector<float> scores(std::span<const float> features) const;

 private:
  std::size_t features_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<std::int16_t> feature_ids_;  ///< one per stump
  std::vector<std::int8_t> left_class_;    ///< vote when x[f] <= threshold
  std::vector<std::int8_t> right_class_;   ///< vote when x[f] >  threshold
  QuantizedTensor thresholds_;             ///< one per stump
  QuantizedTensor alphas_;                 ///< stage weights
};

}  // namespace robusthd::baseline
