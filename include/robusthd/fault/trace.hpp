#pragma once
// Attack recording and replay.
//
// Fault forensics needs the *exact* flip pattern, not just the rate: which
// bits flipped decides whether a campaign cell was lucky, whether two
// models saw equivalent damage, and whether a recovery run can be
// reproduced bit-for-bit after the fact. An AttackTrace captures flips as
// (region, bit) pairs, replays onto any equally-shaped region set, and
// serialises to a compact blob.

#include <cstdint>
#include <span>
#include <vector>

#include "robusthd/fault/injector.hpp"

namespace robusthd::fault {

/// One recorded flip.
struct FlipEvent {
  std::uint32_t region = 0;
  std::uint64_t bit = 0;

  bool operator==(const FlipEvent&) const = default;
};

/// A replayable record of one attack.
class AttackTrace {
 public:
  AttackTrace() = default;

  std::size_t size() const noexcept { return events_.size(); }
  std::span<const FlipEvent> events() const noexcept { return events_; }

  /// Records an attack by diffing the regions around an injection:
  /// snapshots `regions`, runs `inject`, and stores every bit that
  /// changed. Returns the injector's report.
  FlipReport record(std::span<MemoryRegion> regions, double rate,
                    AttackMode mode, util::Xoshiro256& rng);

  /// Applies the recorded flips to another (equally shaped) region set.
  /// Throws std::out_of_range if a recorded event does not fit.
  void replay(std::span<MemoryRegion> regions) const;

  /// Compact binary serialisation.
  std::vector<std::byte> serialize() const;
  static AttackTrace deserialize(std::span<const std::byte> blob);

 private:
  std::vector<FlipEvent> events_;
};

}  // namespace robusthd::fault
