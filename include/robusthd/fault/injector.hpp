#pragma once
// Bit-flip fault injection (Section 2 / Section 6.2 of the paper).
//
// Two attack models:
//  * Random  — flips uniformly chosen distinct bits anywhere in the model
//    memory (technology noise, relaxed-refresh DRAM, worn NVM cells).
//  * Targeted — a worst-case adversary that spends the same flip budget on
//    the most significant bits of the stored values (row-hammer style
//    attacks on exponent/MSB bits, as in Rakin et al.'s bit-flip attack).

#include <cstdint>
#include <unordered_set>

#include "robusthd/fault/memory.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::fault {

/// Which bits an attack selects.
enum class AttackMode {
  kRandom,    ///< uniform over all stored bits (technology noise)
  kTargeted,  ///< most significant bits of stored values first (worst case)
  /// Same total budget, but concentrated in contiguous spans — the
  /// physical profile of row-hammer and locally worn cells, and the damage
  /// shape RobustHD's chunk detector is built to localise.
  kClustered,
};

/// Outcome summary of one injection pass.
struct FlipReport {
  std::size_t flipped = 0;
  std::size_t total_bits = 0;

  double rate() const noexcept {
    return total_bits ? static_cast<double>(flipped) /
                            static_cast<double>(total_bits)
                      : 0.0;
  }
};

/// Stateless injector; all randomness comes from the caller's generator.
class BitFlipInjector {
 public:
  /// Attack entry point. `rate` is the fraction of stored *values*
  /// corrupted (the paper's "x% error rate" on a weight memory):
  ///  * kRandom    — each attacked value gets one uniformly chosen bit
  ///                 flipped;
  ///  * kTargeted  — each attacked value gets its most significant bit
  ///                 flipped (budget spent in region order, most sensitive
  ///                 region first);
  ///  * kClustered — the same flip budget, but concentrated in contiguous
  ///                 spans (row-hammer locality).
  /// For 1-bit regions (binary hypervectors) a value is a bit, so all
  /// modes coincide with a plain bit error rate — the holographic
  /// representation has no preferable bits, which is the paper's point.
  static FlipReport inject(std::span<MemoryRegion> regions, double rate,
                           AttackMode mode, util::Xoshiro256& rng);

  /// Uniform physical bit errors at the given BER over every stored bit —
  /// the model used for DRAM retention failures and worn NVM cells
  /// (Figures 4a/4b), where physics does not know about value boundaries.
  static FlipReport inject_bit_errors(std::span<MemoryRegion> regions,
                                      double bit_error_rate,
                                      util::Xoshiro256& rng);

  /// Flips exactly `count` distinct random bits in one region (building
  /// block for continuous attack streams).
  static std::size_t flip_random_bits(MemoryRegion& region, std::size_t count,
                                      util::Xoshiro256& rng);

  /// Flips exactly min(count, bit_count) bits, choosing most-significant
  /// positions of the region's values first, spilling to the next
  /// significance tier when the budget exceeds the number of values, and
  /// finally to the tail bits past the last whole value (regions whose
  /// bit count is not a multiple of value_bits), so the budget is spent
  /// in full for every width.
  static std::size_t flip_targeted_bits(MemoryRegion& region,
                                        std::size_t count,
                                        util::Xoshiro256& rng);

  /// Flips `count` distinct bits inside one contiguous random span covering
  /// `cluster_fraction` of the region (clamped so the span can hold them).
  static std::size_t flip_clustered_bits(MemoryRegion& region,
                                         std::size_t count,
                                         double cluster_fraction,
                                         util::Xoshiro256& rng);

  /// Spends an exact flip budget of `count` bits with the given attack
  /// shape — the per-tick primitive of continuous in-service chaos
  /// campaigns. `target_region` < regions.size() confines the whole budget
  /// to that region (for 1-bit hypervector planes, *which plane* is the
  /// only meaningful form of targeting); any other value splits the budget
  /// across regions proportionally to their size, the integer remainder
  /// landing on randomly chosen regions so none is structurally favoured.
  /// Returns the number of flips performed.
  static std::size_t flip_budget(std::span<MemoryRegion> regions,
                                 std::size_t count, AttackMode mode,
                                 std::size_t target_region,
                                 double cluster_fraction,
                                 util::Xoshiro256& rng);
};

/// Continuous attack process: on every step() call it flips a number of
/// random bits so that the *cumulative* flipped fraction approaches the
/// configured rate over `steps_to_full` steps. Used by the recovery
/// experiments where faults accumulate while the model serves queries.
class StreamAttacker {
 public:
  StreamAttacker(double total_rate, std::size_t steps_to_full,
                 std::uint64_t seed);

  /// Injects this step's share of flips into the regions. The attacker
  /// assumes it is pointed at the *same* memory every step (positions are
  /// tracked globally across the region list, in order).
  FlipReport step(std::span<MemoryRegion> regions);

  /// Net corrupted fraction: positions drawn an even number of times have
  /// flipped back to their original value and are not counted, so this is
  /// the fraction of bits that actually differ from the pre-attack state
  /// (what a detector or an accuracy measurement can see).
  double cumulative_rate() const noexcept { return injected_rate_; }

  /// Total flip operations performed, duplicates included (the raw budget
  /// spent; always >= net flips).
  std::uint64_t gross_flips() const noexcept { return gross_flips_; }

 private:
  double total_rate_;
  std::size_t steps_to_full_;
  std::size_t steps_done_ = 0;
  double injected_rate_ = 0.0;
  double carry_bits_ = 0.0;
  std::uint64_t gross_flips_ = 0;
  /// Global bit positions currently flipped relative to the original
  /// memory (parity tracking for the net rate).
  std::unordered_set<std::size_t> net_flipped_;
  util::Xoshiro256 rng_;
};

}  // namespace robusthd::fault
