#pragma once
// Fault-campaign runner: repeat (copy model → inject → evaluate) and report
// quality-loss statistics. Every table/figure bench that attacks a stored
// model goes through this so methodology is identical everywhere.

#include <functional>

#include "robusthd/fault/injector.hpp"
#include "robusthd/util/stats.hpp"

namespace robusthd::fault {

/// Parameters of one campaign cell (one table entry).
struct CampaignConfig {
  double error_rate = 0.0;
  AttackMode mode = AttackMode::kRandom;
  std::size_t repetitions = 5;
  std::uint64_t seed = 0xa77ac4;
};

/// Aggregated result of a campaign cell.
struct CampaignResult {
  double clean_accuracy = 0.0;
  util::RunningStats faulty_accuracy;
  double mean_quality_loss() const noexcept {
    return util::quality_loss(clean_accuracy, faulty_accuracy.mean());
  }
};

/// `make_victim` must return a freshly attackable copy of the trained model
/// (cheap clone); `regions_of` exposes its memory; `evaluate` returns its
/// test accuracy. The runner never mutates the original model.
template <typename Model>
CampaignResult run_campaign(
    const CampaignConfig& config, double clean_accuracy,
    const std::function<Model()>& make_victim,
    const std::function<std::vector<MemoryRegion>(Model&)>& regions_of,
    const std::function<double(const Model&)>& evaluate) {
  CampaignResult result;
  result.clean_accuracy = clean_accuracy;
  util::Xoshiro256 rng(config.seed);
  for (std::size_t r = 0; r < config.repetitions; ++r) {
    Model victim = make_victim();
    auto regions = regions_of(victim);
    BitFlipInjector::inject(regions, config.error_rate, config.mode, rng);
    result.faulty_accuracy.add(evaluate(victim));
  }
  return result;
}

}  // namespace robusthd::fault
