#pragma once
// The attack surface abstraction.
//
// Every model in this repo (HDC class hypervectors, int8 DNN/SVM weights,
// AdaBoost parameters) exposes its *stored representation* as raw byte
// regions. The injector operates only on these bytes, so the comparison
// between representations is apples-to-apples: the same flip budget lands on
// whatever the model actually keeps in memory.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace robusthd::fault {

/// One contiguous block of model memory.
struct MemoryRegion {
  std::span<std::byte> bytes;
  /// Width in bits of the values stored in this region: 8 for int8 weights,
  /// 32 for floats, 1 for packed binary hypervectors. Targeted attacks use
  /// it to find each value's most significant bit; for value_bits == 1 all
  /// bits are equivalent and targeted degenerates to random — exactly the
  /// paper's observation about holographic representations.
  unsigned value_bits = 8;
  std::string name;

  std::size_t bit_count() const noexcept { return bytes.size() * 8; }
};

/// Read-only view of a stored region: what const callers (accounting,
/// reporting, serialisation) get instead of the writable attack surface.
struct ConstMemoryRegion {
  std::span<const std::byte> bytes;
  unsigned value_bits = 8;
  std::string name;

  std::size_t bit_count() const noexcept { return bytes.size() * 8; }
};

/// Total bits across regions.
std::size_t total_bits(std::span<const MemoryRegion> regions) noexcept;
std::size_t total_bits(std::span<const ConstMemoryRegion> regions) noexcept;

}  // namespace robusthd::fault
