#pragma once
// Gradient-free adversarial example generation against HdcModel.
//
// HDC classifiers expose no gradients, but they are linear enough in the
// Hamming domain that an attacker does not need any (Yang & Ren,
// "Adversarial Attacks on Brain-Inspired Hyperdimensional Computing-Based
// Classifiers"). Two attack surfaces:
//
//  * Encoded queries (white-box): flipping query bit i moves the
//    winner-vs-rival margin by exactly -2/D, 0 or +2/D depending on how
//    the bit relates to the two class planes, so the highest-leverage
//    dimensions can be ranked in closed form and flipped greedily under a
//    Hamming perturbation budget. No search at all — the score leverage
//    *is* the gradient.
//
//  * Raw feature vectors (black-box through the encoder): a genetic
//    search over L-infinity-bounded feature perturbations, scored by the
//    rival-minus-winner margin after encoding, followed by a boundary
//    bisection that shrinks a successful perturbation back toward the
//    original sample.
//
// Both attackers are deterministic in their seeds and leave the model
// untouched — they produce queries, which is exactly what makes them
// dangerous to the self-healing loop: a high-confidence adversarial query
// is indistinguishable from a trusted repair hint until the trust gate
// looks at *where* the query disagrees with the class it claims to be
// (serve::TrustGate, docs/resilience.md "Threat model: input-space
// attacks").

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "robusthd/hv/binvec.hpp"
#include "robusthd/hv/encoder_base.hpp"
#include "robusthd/model/confidence.hpp"
#include "robusthd/model/hdc_model.hpp"

namespace robusthd::adversary {

/// Greedy bit-flip attack tuning.
struct BitFlipConfig {
  /// Hamming perturbation budget: at most this many query bits flipped.
  std::size_t max_flips = 64;
  /// Adversarial target class; -1 picks the easiest rival (the runner-up
  /// of the clean prediction).
  int target = -1;
  /// Re-score cadence during the greedy walk: the attack checks for
  /// success every `step` flips, so the reported flips_used overshoots
  /// the minimal budget by at most step - 1.
  std::size_t step = 8;
};

/// Outcome of one bit-flip attack.
struct BitFlipResult {
  hv::BinVec adversarial;        ///< the perturbed query
  bool success = false;          ///< prediction left the original class
  bool hit_target = false;       ///< prediction landed on the target class
  std::size_t flips_used = 0;    ///< Hamming distance to the clean query
  int original_prediction = -1;
  int final_prediction = -1;
  /// Confidence of the *final* prediction — what the serving trust gate
  /// would see. An attack that flips the label but craters the confidence
  /// is caught by plain abstention; the dangerous ones keep this high.
  double final_confidence = 0.0;
  double final_margin = 0.0;
};

/// Greedy bit-flip search on an encoded query: ranks dimensions by their
/// exact per-class score leverage (bits where the original winner's plane
/// and the target's plane disagree, and the query currently sides with
/// the winner — each flip moves the margin by 2/D) and flips them in
/// order under the budget. 1-bit models only (throws otherwise).
BitFlipResult greedy_bit_flip(const model::HdcModel& model,
                              const hv::BinVec& query,
                              const BitFlipConfig& config = {},
                              const model::ConfidenceConfig& confidence = {});

/// Attack success over a query set at one budget: `any` counts flipped
/// predictions; `confident` counts only flips whose final confidence
/// clears `trust_threshold` — the success rate against a service that
/// abstains on (or at least refuses to *trust*) low-confidence answers.
struct SuccessRates {
  double any = 0.0;
  double confident = 0.0;
  double mean_flips = 0.0;  ///< mean flips used over successful attacks
};
SuccessRates bit_flip_success(const model::HdcModel& model,
                              std::span<const hv::BinVec> queries,
                              std::size_t budget, double trust_threshold,
                              const model::ConfidenceConfig& confidence = {});

/// Genetic / boundary feature-space attack tuning.
struct GeneticConfig {
  std::size_t population = 16;
  std::size_t generations = 30;
  std::size_t elite = 4;      ///< survivors cloned into the next generation
  /// L-infinity budget per (normalised, [0,1]) feature.
  double epsilon = 0.10;
  double mutation_rate = 0.20;   ///< per-feature mutation probability
  double mutation_scale = 0.5;   ///< mutation step, in units of epsilon
  int target = -1;               ///< -1 = untargeted
  /// Bisection steps of the post-success boundary walk back toward the
  /// original sample (0 keeps the first success as-is).
  std::size_t boundary_steps = 8;
  std::uint64_t seed = 0xa77acc;
};

/// Outcome of one feature-space attack.
struct GeneticResult {
  std::vector<float> adversarial;  ///< perturbed feature vector
  bool success = false;
  double linf = 0.0;  ///< max |adversarial - original| over features
  int original_prediction = -1;
  int final_prediction = -1;
  double final_confidence = 0.0;
  std::size_t generations_used = 0;
};

/// Gradient-free genetic search on the raw feature vector, scored through
/// the encoder: perturbations live in the epsilon-ball around `features`
/// (clamped to [0,1]); fitness is the rival-minus-winner similarity margin
/// of the encoded candidate. On success, a boundary bisection blends the
/// winner back toward the original to minimise the L-infinity distance.
GeneticResult genetic_feature_attack(const model::HdcModel& model,
                                     const hv::Encoder& encoder,
                                     std::span<const float> features,
                                     const GeneticConfig& config = {},
                                     const model::ConfidenceConfig&
                                         confidence = {});

}  // namespace robusthd::adversary
