#pragma once
// PoisonCampaign — the attack on the self-healing loop itself.
//
// The scrubber's premise is that high-confidence traffic is trustworthy
// repair evidence. A white-box attacker inverts that premise: start from a
// class's own blessed plane (so the query is maximally similar to the
// class — confidence saturates and the margin gate passes), then overwrite
// a few chunks with a *rival* class's plane bits. The recovery engine's
// chunk sweep sees exactly what a real fault looks like — one chunk where
// the local winner contradicts the global winner — and "repairs" the
// victim's plane toward the rival's bits. Every substituted bit is wrong.
//
// The campaign streams such queries at a live serve::Server, rotating the
// victim class (so the engine's per-class repair balance never throttles
// the attack) and keeping the dirty-chunk payload bit-exact across the
// wave (so the engine's consensus majority *is* the rival's plane).
// wrong_bits() then measures the damage: the Hamming distance between the
// blessed reference and the served model, which for a quiet (fault-free)
// server is entirely attack-induced substitution.
//
// The defense is serve::TrustGate (per-chunk canary agreement + fair-share
// rate limiting); docs/resilience.md, "Threat model: input-space attacks".

#include <cstddef>
#include <cstdint>
#include <vector>

#include "robusthd/hv/binvec.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/serve/server.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::adversary {

/// Campaign shape.
struct PoisonConfig {
  /// Chunking of the crafted payloads. Must match the victim's
  /// RecoveryConfig::chunks for the contradiction signal to line up with
  /// the engine's own sweep ranges.
  std::size_t chunks = 20;
  /// Poisoned chunks per query (contiguous, starting at the wave's chunk).
  std::size_t dirty_chunks = 1;
  /// Always poison this chunk; SIZE_MAX rotates one chunk per wave.
  std::size_t fixed_chunk = static_cast<std::size_t>(-1);
  /// Waves submitted by run(); the server is drained between waves so the
  /// scrubber consumes each wave before the next lands.
  std::size_t waves = 24;
  /// Queries per attacked class per wave. Keep >= the engine's consensus
  /// requirement (3) so a single wave can fill a chunk's vote window.
  std::size_t queries_per_class = 4;
  /// Rotate the victim over every class (rival = next class). With false,
  /// only target_class is attacked — the engine's repair-balance slack
  /// then caps the damage, which is itself worth measuring.
  bool all_classes = true;
  std::size_t target_class = 0;
  /// Bit-flip probability outside the dirty chunks: decorrelates the
  /// waves' clean regions without disturbing the payload.
  double query_noise = 0.005;
  std::uint64_t seed = 0x90150;
};

/// What the campaign observed from the outside.
struct PoisonReport {
  std::size_t sent = 0;      ///< queries submitted
  std::size_t answered = 0;  ///< responses received
  std::size_t trusted = 0;   ///< responses the worker marked trusted
  std::size_t failed = 0;    ///< submissions that never completed
};

/// Crafts and streams recovery-poisoning queries at a serve::Server.
class PoisonCampaign {
 public:
  /// `reference` is the attacker's copy of the blessed model (white-box
  /// assumption: the attacker knows the planes it is poisoning toward).
  /// Throws std::invalid_argument for non-1-bit models or bad config.
  PoisonCampaign(model::HdcModel reference, const PoisonConfig& config = {});

  /// The next wave of adversarial queries (advances the rotation state).
  std::vector<hv::BinVec> craft_wave();

  /// Runs the full campaign: waves() x craft_wave() -> submit -> drain.
  PoisonReport run(serve::Server& server);

  /// Total Hamming distance between two models' stored planes — on a
  /// fault-free server, the attack's wrong-bit substitution count.
  static std::size_t wrong_bits(const model::HdcModel& blessed,
                                const model::HdcModel& current);

  const model::HdcModel& reference() const noexcept { return reference_; }
  const PoisonConfig& config() const noexcept { return config_; }

 private:
  model::HdcModel reference_;
  PoisonConfig config_;
  util::Xoshiro256 rng_;
  std::size_t wave_ = 0;
};

}  // namespace robusthd::adversary
