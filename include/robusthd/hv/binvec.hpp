#pragma once
// Packed binary hypervector.
//
// The deployed RobustHD model is binary (Section 3.2: "To ensure robustness,
// we always use HDC with a binary model"), so the fundamental type stores D
// bits in 64-bit words. All hot operations — XOR binding, Hamming distance,
// permutation — are word-parallel and branch-free.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>

#include "robusthd/kernels/kernels.hpp"
#include "robusthd/util/aligned.hpp"
#include "robusthd/util/bitops.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::hv {

/// A D-dimensional binary hypervector packed into uint64 words.
///
/// Invariant: bits at positions >= dimension() in the last word are zero;
/// every mutating operation restores this so popcount-based distances never
/// see garbage tail bits.
class BinVec {
 public:
  BinVec() = default;

  /// All-zeros vector of the given dimension.
  explicit BinVec(std::size_t dimension)
      : dim_(dimension), words_(util::words_for_bits(dimension), 0) {
    assert(words_.empty() || util::is_cacheline_aligned(words_.data()));
  }

  /// I.i.d. uniform random vector — the holographic representation's
  /// building block (each bit is 1 with probability 1/2).
  static BinVec random(std::size_t dimension, util::Xoshiro256& rng);

  std::size_t dimension() const noexcept { return dim_; }
  std::size_t word_count() const noexcept { return words_.size(); }
  bool empty() const noexcept { return dim_ == 0; }

  bool get(std::size_t i) const noexcept { return util::get_bit(words(), i); }
  void set(std::size_t i, bool v) noexcept {
    util::set_bit(mutable_words(), i, v);
  }
  void flip(std::size_t i) noexcept { util::flip_bit(mutable_words(), i); }

  /// Number of set bits (SIMD-dispatched).
  std::size_t count_ones() const noexcept {
    return kernels::popcount(words_.data(), words_.size());
  }

  /// In-place XOR binding with another vector of equal dimension.
  BinVec& bind(const BinVec& other) noexcept;

  /// In-place bitwise NOT (tail bits re-zeroed).
  BinVec& invert() noexcept;

  /// Circular left rotation by `amount` bit positions (permutation op used
  /// for sequence encoding). Word-level funnel shift: O(D/64), not O(D).
  BinVec rotated(std::size_t amount) const;

  /// Read-only / mutable word views. The mutable view is what the fault
  /// injector attacks: it is the literal stored representation of the model.
  std::span<const std::uint64_t> words() const noexcept { return words_; }
  std::span<std::uint64_t> mutable_words() noexcept { return words_; }

  /// Clears bits beyond dimension() in the final word. Call after writing
  /// raw words from outside (e.g. after a fault campaign on the raw bytes).
  void mask_tail() noexcept;

  bool operator==(const BinVec& other) const noexcept = default;

 private:
  std::size_t dim_ = 0;
  /// 64-byte-aligned storage: vector loads in the SIMD kernels never split
  /// a cache line, even on the non-arena (per-BinVec) fallback path.
  util::AlignedU64Vec words_;
};

/// Hamming distance between two vectors of equal dimension.
std::size_t hamming(const BinVec& a, const BinVec& b) noexcept;

/// Normalised similarity in [0, 1]: 1 - hamming/D. Random vectors score
/// ~0.5; identical vectors score 1.
double similarity(const BinVec& a, const BinVec& b) noexcept;

/// XOR binding returning a new vector.
BinVec bind(const BinVec& a, const BinVec& b);

/// Hamming distance restricted to the bit range [begin, end) — the chunk
/// primitive of the RobustHD fault detector.
std::size_t hamming_range(const BinVec& a, const BinVec& b, std::size_t begin,
                          std::size_t end) noexcept;

/// hamming_range over raw packed word spans (each at least
/// words_for_bits(end) words) — the same word/edge-mask resolution applied
/// to storage that is not a BinVec, e.g. plane rows inside a
/// mem::PlaneArena. Bit-identical to the BinVec overload on equal words.
std::size_t hamming_range(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b, std::size_t begin,
                          std::size_t end) noexcept;

}  // namespace robusthd::hv
