#pragma once
// Item memory: the fixed random hypervectors the encoder binds with.
//
// * Base (ID) hypervectors B_k — one i.i.d. random vector per feature
//   position, pairwise ~D/2 apart, retain where a value occurred.
// * Level hypervectors L_j — quantisation levels of the feature value.
//   Built by cumulative random flips so that similar values map to similar
//   hypervectors and the extreme levels are ~D/2 apart (standard ID-level
//   encoding, as used by the paper's encoder reference [19]).

#include <cstdint>
#include <vector>

#include "robusthd/hv/binvec.hpp"
#include "robusthd/util/rng.hpp"

namespace robusthd::hv {

/// Immutable after construction; shared by the encoder for train and test.
class ItemMemory {
 public:
  /// Generates base vectors for `feature_count` positions and `level_count`
  /// value levels of dimension `dimension`, deterministically from `seed`.
  ItemMemory(std::size_t dimension, std::size_t feature_count,
             std::size_t level_count, std::uint64_t seed);

  std::size_t dimension() const noexcept { return dim_; }
  std::size_t feature_count() const noexcept { return bases_.size(); }
  std::size_t level_count() const noexcept { return levels_.size(); }

  const BinVec& base(std::size_t feature) const noexcept {
    return bases_[feature];
  }
  const BinVec& level(std::size_t level) const noexcept {
    return levels_[level];
  }

  /// Maps a normalised feature value in [0, 1] to a level index.
  std::size_t level_index(float value) const noexcept;

 private:
  std::size_t dim_;
  std::vector<BinVec> bases_;
  std::vector<BinVec> levels_;
};

}  // namespace robusthd::hv
