#pragma once
// Bundling accumulators.
//
// HDC bundling is per-dimension integer addition of binary vectors followed
// by a majority threshold. Encoding a sample bundles up to ~800 bound
// vectors (one per feature), so the encoder uses a word-parallel bit-sliced
// counter (O(log n) word ops per 64 dimensions) instead of 10,000 scalar
// counters. Class training bundles far fewer, larger vectors and uses plain
// int32 counters for clarity.

#include <cstdint>
#include <vector>

#include "robusthd/hv/binvec.hpp"

namespace robusthd::hv {

/// Word-parallel unsigned counters: plane p holds bit p of every
/// dimension's count. Adding a binary vector is a ripple-carry add over the
/// planes, which costs O(planes) word ops per word of input.
class BitSliceCounter {
 public:
  BitSliceCounter() = default;
  explicit BitSliceCounter(std::size_t dimension);

  std::size_t dimension() const noexcept { return dim_; }
  std::size_t plane_count() const noexcept { return planes_.size(); }
  std::size_t added() const noexcept { return added_; }

  /// counts += bits (each dimension incremented where `bits` has a 1).
  void add(const BinVec& bits);

  /// counts += (a XOR b) — the fused bind-then-bundle step of record
  /// encoding. Equivalent to add(bind(a, b)) but never materialises the
  /// bound vector, so an encode loop does zero allocations per feature.
  void add_bound(const BinVec& a, const BinVec& b);

  /// Per-dimension count.
  std::uint32_t count(std::size_t dim) const noexcept;

  /// Majority threshold: bit i of the result is 1 iff count(i)*2 > total,
  /// ties broken by `tie_break` (a deterministic pseudo-random vector keeps
  /// thresholded vectors unbiased when the bundle size is even).
  BinVec threshold_majority(const BinVec* tie_break = nullptr) const;

  /// Allocation-free variant: writes the majority threshold into `out`
  /// (resized only when the dimension changed). Word-parallel bit-sliced
  /// compare — O(planes) word ops per 64 dimensions, not O(D * planes).
  void threshold_majority_into(BinVec& out,
                               const BinVec* tie_break = nullptr) const;

  /// Threshold against an arbitrary cut: bit i = count(i) > cut.
  BinVec threshold(std::uint32_t cut) const;

  /// Clears the counters for reuse. Plane storage is zeroed in place and
  /// kept, so a reused counter (EncodeWorkspace) allocates nothing once
  /// its plane count has stabilised.
  void reset();

  /// Re-targets the counter to `dimension`, reusing plane storage when the
  /// word width is unchanged.
  void resize(std::size_t dimension);

 private:
  std::size_t dim_ = 0;
  std::size_t words_ = 0;
  std::size_t added_ = 0;
  std::vector<std::vector<std::uint64_t>> planes_;
};

/// Plain signed per-dimension counters used for class-hypervector training
/// and retraining (supports subtraction for perceptron-style updates).
class SignedAccumulator {
 public:
  explicit SignedAccumulator(std::size_t dimension)
      : counts_(dimension, 0) {}

  std::size_t dimension() const noexcept { return counts_.size(); }

  /// counts[i] += bit_i ? +1 : -1, scaled by weight (bipolar bundling).
  void add(const BinVec& bits, std::int32_t weight = 1);

  std::int32_t count(std::size_t dim) const noexcept { return counts_[dim]; }
  std::int32_t& count(std::size_t dim) noexcept { return counts_[dim]; }

  /// Sign threshold: bit i = counts[i] > 0 (ties -> tie_break bit or 0).
  BinVec sign(const BinVec* tie_break = nullptr) const;

  /// Quantises each counter into `bits`-bit magnitude levels and returns
  /// one binary plane per bit (plane p carries weight 2^p). This is the
  /// multi-precision model of Table 1: 1 bit == sign only, 2 bits == sign
  /// plus one magnitude level.
  std::vector<BinVec> quantize_planes(unsigned bits) const;

 private:
  std::vector<std::int32_t> counts_;
};

}  // namespace robusthd::hv
