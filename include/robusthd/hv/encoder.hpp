#pragma once
// Record-based (ID-level) encoder: H = threshold( Σ_k  L(f_k) ⊕ B_k ).
//
// This is the encoding of Section 3.1: each feature value is quantised to a
// level hypervector, bound (XOR) to that feature position's base
// hypervector, all n bound vectors are bundled, and the bundle is majority-
// thresholded back to a binary query hypervector.

#include <memory>
#include <span>

#include "robusthd/data/dataset.hpp"
#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/encoder_base.hpp"
#include "robusthd/hv/itemmemory.hpp"

namespace robusthd::hv {

/// Encoder configuration.
struct EncoderConfig {
  std::size_t dimension = 10000;  ///< D (paper default ~10k)
  std::size_t levels = 32;        ///< feature-value quantisation levels
  std::uint64_t seed = 0x1d1e5;   ///< item-memory seed
};

/// Stateless after construction; thread-compatible (const encode).
class RecordEncoder final : public Encoder {
 public:
  RecordEncoder(std::size_t feature_count, const EncoderConfig& config);

  std::size_t dimension() const noexcept override {
    return memory_.dimension();
  }
  std::size_t feature_count() const noexcept override {
    return memory_.feature_count();
  }
  const ItemMemory& item_memory() const noexcept { return memory_; }

  /// Encodes one normalised sample (values in [0,1]) into a binary query
  /// hypervector.
  BinVec encode(std::span<const float> features) const override;

  /// Zero-allocation encode: fused bind-then-ripple-add into the
  /// workspace's counter, word-parallel majority threshold into `out`.
  /// Steady state (ws warm, out sized) allocates nothing.
  void encode_into(std::span<const float> features, BinVec& out,
                   EncodeWorkspace& ws) const override;

 private:
  ItemMemory memory_;
  BinVec tie_break_;  ///< fixed random vector breaking majority ties
};

}  // namespace robusthd::hv
