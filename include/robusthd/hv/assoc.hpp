#pragma once
// Hyperdimensional associative memory.
//
// A labelled store of hypervectors with nearest-neighbour Hamming search —
// the data structure behind HDC inference (class hypervectors are the
// degenerate one-prototype-per-label case) and behind the associative-
// memory line of work the paper builds on. Supports exemplar mode (every
// insert kept) and prototype mode (inserts within a merge radius of an
// existing entry bundle into it, keeping the store compact).

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/binvec.hpp"

namespace robusthd::hv {

/// One search hit.
struct AssocMatch {
  std::size_t slot = 0;
  int label = -1;
  std::size_t distance = std::numeric_limits<std::size_t>::max();
};

/// Labelled hypervector store with Hamming search.
class AssociativeMemory {
 public:
  struct Config {
    std::size_t dimension = 10000;
    /// Inserts whose nearest same-label entry is within this Hamming
    /// distance bundle into it instead of opening a new slot.
    /// 0 disables merging (pure exemplar store).
    std::size_t merge_radius = 0;
  };

  explicit AssociativeMemory(const Config& config) : config_(config) {}

  std::size_t size() const noexcept { return slots_.size(); }
  std::size_t dimension() const noexcept { return config_.dimension; }

  /// Inserts (or merges) a labelled hypervector; returns the slot index.
  std::size_t insert(const BinVec& vector, int label);

  /// Nearest entry by Hamming distance; empty when the store is empty.
  std::optional<AssocMatch> nearest(const BinVec& query) const;

  /// The k nearest entries, closest first.
  std::vector<AssocMatch> top_k(const BinVec& query, std::size_t k) const;

  /// Majority-label prediction over the k nearest entries (-1 if empty).
  int predict(const BinVec& query, std::size_t k = 1) const;

  /// Read access to a stored vector (prototype slots return the current
  /// majority of everything bundled into them).
  const BinVec& vector(std::size_t slot) const noexcept {
    return slots_[slot].vector;
  }
  int label(std::size_t slot) const noexcept { return slots_[slot].label; }
  /// How many inserts a slot has absorbed.
  std::size_t bundled(std::size_t slot) const noexcept {
    return slots_[slot].count;
  }

 private:
  struct Slot {
    BinVec vector;              // deployed (majority) form
    SignedAccumulator counts;   // running bundle
    int label = -1;
    std::size_t count = 0;

    explicit Slot(std::size_t dim) : vector(dim), counts(dim) {}
  };

  Config config_;
  std::vector<Slot> slots_;
};

}  // namespace robusthd::hv
