#pragma once
// Sequence (n-gram) encoding — the temporal side of hyperdimensional
// computing. The paper's benchmarks include inherently temporal data (UCI
// HAR, PAMAP are accelerometer streams); n-gram encoding is the standard
// HDC way to fold order into a hypervector: an n-gram is the binding of
// its symbols under increasing rotation, and a sequence is the bundle of
// its sliding n-grams:
//
//   G(t) = ρ^{n-1}(S[t]) ⊕ ρ^{n-2}(S[t+1]) ⊕ ... ⊕ S[t+n-1]
//   H    = majority( G(0), G(1), ... )
//
// Rotation ρ makes binding order-sensitive (ρ(a)⊕b ≠ ρ(b)⊕a), which is
// exactly what distinguishes "ab" from "ba".

#include <cstdint>
#include <vector>

#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/binvec.hpp"

namespace robusthd::hv {

/// Encodes sequences of discrete symbols into hypervectors.
class SequenceEncoder {
 public:
  struct Config {
    std::size_t dimension = 10000;
    std::size_t ngram = 3;
    std::uint64_t seed = 0x5e9;
  };

  /// `alphabet` distinct symbols, each assigned an i.i.d. random code.
  SequenceEncoder(std::size_t alphabet, const Config& config);

  std::size_t dimension() const noexcept { return dim_; }
  std::size_t alphabet_size() const noexcept { return symbols_.size(); }
  std::size_t ngram() const noexcept { return n_; }

  const BinVec& symbol(std::size_t s) const noexcept { return symbols_[s]; }

  /// Hypervector of one n-gram starting at `window[0]` (window.size() must
  /// be exactly ngram()).
  BinVec encode_ngram(std::span<const std::size_t> window) const;

  /// Bundle of all sliding n-grams of the sequence. Sequences shorter than
  /// n are encoded as a single (right-aligned) partial gram.
  BinVec encode(std::span<const std::size_t> sequence) const;

 private:
  std::size_t dim_;
  std::size_t n_;
  std::vector<BinVec> symbols_;
  /// symbols pre-rotated by each position 0..n-1: rotated_[p * A + s].
  std::vector<BinVec> rotated_;
  BinVec tie_break_;
};

}  // namespace robusthd::hv
