#pragma once
// Alternative encoders (for the encoder ablation).
//
// * ThermometerEncoder — per-feature thermometer level chains: each feature
//   owns a private random flip order, so its levels form a strictly
//   monotone Hamming chain; bound to the feature's base vector and bundled
//   like the record encoder. Differences from RecordEncoder: level chains
//   are per-feature (no cross-feature level correlation).
// * RandomProjectionEncoder — h_i = sign(Σ_k w_ik · (f_k - 1/2)) with a
//   sparse ±1 projection (the classic LSH/random-indexing encoder). No
//   item memory at all; binarisation happens per output bit.

#include <cstdint>

#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/encoder_base.hpp"
#include "robusthd/hv/itemmemory.hpp"

namespace robusthd::hv {

/// Thermometer (per-feature level chain) encoder.
class ThermometerEncoder final : public Encoder {
 public:
  struct Config {
    std::size_t dimension = 10000;
    std::size_t levels = 32;
    std::uint64_t seed = 0x7e4;
  };

  ThermometerEncoder(std::size_t feature_count, const Config& config);

  std::size_t dimension() const noexcept override { return dim_; }
  std::size_t feature_count() const noexcept override { return features_; }
  BinVec encode(std::span<const float> features) const override;

 private:
  std::size_t dim_;
  std::size_t levels_;
  /// Precomputed bound codes: codes_[k * levels + j] = base_k ⊕ level_{k,j}
  /// (trades ~D·n·levels/8 bytes of memory for O(1) per-feature encoding).
  std::vector<BinVec> codes_;
  std::size_t features_ = 0;
  BinVec tie_break_;
};

/// Sparse random-projection (sign) encoder.
class RandomProjectionEncoder final : public Encoder {
 public:
  struct Config {
    std::size_t dimension = 10000;
    /// Input taps per output bit.
    std::size_t sparsity = 32;
    std::uint64_t seed = 0x94a;
  };

  RandomProjectionEncoder(std::size_t feature_count, const Config& config);

  std::size_t dimension() const noexcept override { return dim_; }
  std::size_t feature_count() const noexcept override { return features_; }
  BinVec encode(std::span<const float> features) const override;

 private:
  std::size_t dim_;
  std::size_t features_;
  std::size_t sparsity_;
  /// Flattened taps: for output bit i, entries [i*sparsity, (i+1)*sparsity)
  /// hold feature indices; the matching sign lives in signs_.
  std::vector<std::uint32_t> taps_;
  std::vector<std::int8_t> signs_;
};

}  // namespace robusthd::hv
