#pragma once
// Abstract feature-vector encoder interface.
//
// The paper uses the record-based (ID-level) encoder; the library ships two
// more (thermometer and random-projection) so the encoder itself can be
// ablated — robustness claims should survive the choice of encoding, and
// `bench/ablation_encoders` checks that they do.

#include <span>
#include <vector>

#include "robusthd/data/dataset.hpp"
#include "robusthd/hv/binvec.hpp"

namespace robusthd::hv {

/// Maps normalised feature vectors (values in [0,1]) to binary
/// hypervectors. Implementations are deterministic in their seed and
/// thread-compatible (const encode).
class Encoder {
 public:
  virtual ~Encoder() = default;

  virtual std::size_t dimension() const noexcept = 0;
  virtual std::size_t feature_count() const noexcept = 0;

  /// Encodes one sample.
  virtual BinVec encode(std::span<const float> features) const = 0;

  /// Encodes every row of a dataset.
  std::vector<BinVec> encode_all(const data::Dataset& dataset) const;
};

}  // namespace robusthd::hv
