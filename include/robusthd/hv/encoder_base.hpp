#pragma once
// Abstract feature-vector encoder interface.
//
// The paper uses the record-based (ID-level) encoder; the library ships two
// more (thermometer and random-projection) so the encoder itself can be
// ablated — robustness claims should survive the choice of encoding, and
// `bench/ablation_encoders` checks that they do.

#include <span>
#include <utility>
#include <vector>

#include "robusthd/data/dataset.hpp"
#include "robusthd/hv/accumulator.hpp"
#include "robusthd/hv/binvec.hpp"

namespace robusthd::hv {

/// Reusable encode scratch: owns the bit-sliced bundle counter so a hot
/// encode loop (trainer, serve worker) performs zero heap allocations per
/// sample once the counter's plane stack has reached its working depth.
/// One workspace per thread; never share across threads.
struct EncodeWorkspace {
  BitSliceCounter counter;

  /// Fingerprint of the owned storage. Steady-state paths assert (debug)
  /// that it stops changing — i.e. that encoding really allocates nothing.
  std::pair<std::size_t, std::size_t> capacity_signature() const noexcept {
    return {counter.dimension(), counter.plane_count()};
  }
};

/// Maps normalised feature vectors (values in [0,1]) to binary
/// hypervectors. Implementations are deterministic in their seed and
/// thread-compatible (const encode).
class Encoder {
 public:
  virtual ~Encoder() = default;

  virtual std::size_t dimension() const noexcept = 0;
  virtual std::size_t feature_count() const noexcept = 0;

  /// Encodes one sample.
  virtual BinVec encode(std::span<const float> features) const = 0;

  /// Allocation-aware variant: encodes into `out`, reusing `ws` across
  /// calls. The default forwards to encode(); encoders with a hot path
  /// (RecordEncoder) override it with a zero-allocation implementation.
  virtual void encode_into(std::span<const float> features, BinVec& out,
                           EncodeWorkspace& ws) const {
    (void)ws;
    out = encode(features);
  }

  /// Encodes every row of a dataset.
  std::vector<BinVec> encode_all(const data::Dataset& dataset) const;
};

}  // namespace robusthd::hv
