#pragma once
// Error-correction-code cost model (Sections 5.2 and 6.6).
//
// The conventional fix for unreliable memory is SECDED ECC: per 64-bit
// word, 8 check bits, single-error correction. It costs storage, energy on
// every access, and — crucially — stops helping once the raw bit error
// rate makes double-bit words common. RobustHD's claim is that the HDC
// representation plus self-recovery makes this machinery unnecessary; this
// model quantifies what is being removed and where ECC breaks down.

#include <cstddef>

namespace robusthd::mem {

/// SECDED(72,64)-style code description.
struct EccParams {
  std::size_t data_bits = 64;
  std::size_t check_bits = 8;
  /// Encode+decode energy overhead per access, relative to a raw access.
  double access_energy_overhead = 0.20;

  double storage_overhead() const noexcept {
    return static_cast<double>(check_bits) / static_cast<double>(data_bits);
  }
};

/// Probability that a protected word is uncorrectable (≥ 2 raw bit errors
/// among data+check bits) at raw bit error rate `ber`.
double uncorrectable_word_rate(double ber, const EccParams& params = {});

/// Effective post-ECC *bit* error rate seen by the application: an
/// uncorrectable word is emitted with its (≥2) raw flips intact.
double residual_bit_error_rate(double ber, const EccParams& params = {});

}  // namespace robusthd::mem
