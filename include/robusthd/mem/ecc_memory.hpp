#pragma once
// Functional SECDED (72,64) error-correcting memory.
//
// The analytical model in ecc.hpp prices ECC; this module *implements* it:
// an extended Hamming code over 64-bit words (8 check bits, single-error
// correction + double-error detection) wrapped around a byte buffer. The
// Figure-4b narrative — SECDED saves a conventional model at trace-level
// BER but collapses at the percent-level BER of relaxed refresh — can then
// be demonstrated end-to-end on real stored models, not just priced.

#include <cstdint>
#include <span>
#include <vector>

namespace robusthd::mem {

/// Outcome of decoding one protected word.
enum class EccOutcome {
  kClean,          ///< no error detected
  kCorrected,      ///< single-bit error corrected
  kUncorrectable,  ///< double-bit (or worse, detected) error
};

/// Computes the 8 SECDED check bits of a 64-bit data word
/// (7 Hamming parity bits over the 71-bit codeword + 1 overall parity).
std::uint8_t secded_encode(std::uint64_t data) noexcept;

/// Decodes a (data, check) pair in place; returns what happened. On
/// kCorrected the flipped bit (data or check) has been repaired.
EccOutcome secded_decode(std::uint64_t& data, std::uint8_t& check) noexcept;

/// A byte buffer stored under SECDED protection, 8 data bytes per word.
///
/// The *stored* representation (data words + check bytes) is what a fault
/// injector attacks; reads run the decoder, transparently correcting
/// single-bit upsets and passing uncorrectable words through unrepaired
/// (real hardware raises an MCE and returns the raw word; models keep
/// running with whatever bits survive).
class EccProtectedMemory {
 public:
  /// Takes a snapshot of `payload` under ECC. Size is padded up to a
  /// multiple of 8 bytes internally.
  explicit EccProtectedMemory(std::span<const std::byte> payload);

  std::size_t payload_size() const noexcept { return payload_size_; }
  std::size_t word_count() const noexcept { return words_.size(); }

  /// The raw stored bits (data + check), exposed for fault injection.
  std::span<std::byte> stored_data() noexcept;
  std::span<std::byte> stored_checks() noexcept;

  /// Read-only views of the same stored bits (accounting / inspection).
  std::span<const std::byte> stored_data() const noexcept;
  std::span<const std::byte> stored_checks() const noexcept;

  /// Decodes every word (correcting what it can) and writes the payload
  /// back to `out` (must be payload_size() bytes). Returns per-outcome
  /// counts.
  struct ScrubReport {
    std::size_t clean = 0;
    std::size_t corrected = 0;
    std::size_t uncorrectable = 0;
  };
  ScrubReport read_all(std::span<std::byte> out);

  /// Storage overhead of the protection, in bits.
  std::size_t overhead_bits() const noexcept { return words_.size() * 8; }

 private:
  std::size_t payload_size_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint8_t> checks_;
};

}  // namespace robusthd::mem
