#pragma once
// robusthd::mem::PlaneArena — contiguous tiled class-plane storage.
//
// The associative memory of a deployed HDC model is k (or k * precision)
// fixed-length bit planes that every hot loop streams together: batched
// scoring, the recovery engine's chunk sweep, the sentinel's drift diff.
// Storing each plane as its own heap vector makes that stream a pointer-
// table gather over scattered allocations with no alignment or locality
// guarantee. The arena instead owns *all* planes of one model snapshot in
// a single 64-byte-aligned allocation (optionally hugepage-backed via
// madvise(MADV_HUGEPAGE), with graceful fallback when transparent
// hugepages are unavailable):
//
//   plane p  ->  [base + p*stride_words, base + p*stride_words + words)
//
// The stride is the word count rounded up to 8 (one 512-bit vector /
// cache line), so every plane row starts cache-line-aligned and the
// padding words stay zero. Tiling is a property of the *kernels*, not the
// layout: plane(i) stays a plain contiguous row (existing callers keep
// working), while the arena-native kernels (kernels::hamming_matrix_arena)
// walk the word dimension in tiles sized so one tile of all k planes fits
// in L2 — the in-memory-HDC "associative memory as one array" view with
// cache blocking on top. Integer popcount partial sums make every tile
// split bit-identical to the untiled traversal.

#include <cstddef>
#include <cstdint>

#include "robusthd/hv/binvec.hpp"
#include "robusthd/kernels/kernels.hpp"

namespace robusthd::mem {

struct PlaneArenaConfig {
  /// Target footprint of one tile across *all* planes. Sized to half a
  /// typical per-core L2 so the query block and quarantine mask fit
  /// beside it. Tile width = l2_tile_bytes / (8 * planes), rounded down
  /// to a whole 512-bit vector (8 words) and clamped to [8, words].
  std::size_t l2_tile_bytes = 1u << 20;
  /// Request transparent hugepages for the allocation. Best-effort: when
  /// the kernel refuses (THP disabled, allocation too small), the arena
  /// silently runs on normal pages and hugepage_backed() reports false.
  bool hugepages = true;

  /// Reads ROBUSTHD_ARENA_TILE_KB / ROBUSTHD_ARENA_HUGEPAGES (0 disables)
  /// over the defaults — the bench and CLI tuning knobs.
  static PlaneArenaConfig from_env();
};

/// One model snapshot's plane storage. Deep-copyable (snapshot publication
/// copies the whole arena in one memcpy) and movable; default-constructed
/// arenas are empty and hold no allocation.
class PlaneArena {
 public:
  PlaneArena() = default;
  PlaneArena(std::size_t planes, std::size_t dimension,
             const PlaneArenaConfig& config = PlaneArenaConfig::from_env());
  ~PlaneArena();

  PlaneArena(const PlaneArena& other);
  PlaneArena& operator=(const PlaneArena& other);
  PlaneArena(PlaneArena&& other) noexcept;
  PlaneArena& operator=(PlaneArena&& other) noexcept;

  bool empty() const noexcept { return base_ == nullptr; }
  std::size_t num_planes() const noexcept { return planes_; }
  std::size_t dimension() const noexcept { return dim_; }
  /// Live words per plane (words_for_bits(dimension())).
  std::size_t words() const noexcept { return words_; }
  /// Allocation stride between consecutive plane rows, a multiple of 8.
  std::size_t stride_words() const noexcept { return stride_words_; }
  /// Tile width in words the kernels block on (multiple of 8, or == words
  /// for single-tile arenas).
  std::size_t tile_words() const noexcept { return tile_words_; }
  std::size_t num_tiles() const noexcept {
    return tile_words_ == 0 ? 0 : (words_ + tile_words_ - 1) / tile_words_;
  }
  /// Total allocation size in bytes.
  std::size_t bytes() const noexcept { return bytes_; }
  /// True when the MADV_HUGEPAGE request was accepted by the kernel.
  bool hugepage_backed() const noexcept { return hugepage_backed_; }

  const std::uint64_t* data() const noexcept { return base_; }
  const std::uint64_t* plane(std::size_t p) const noexcept {
    return base_ + p * stride_words_;
  }
  std::uint64_t* plane(std::size_t p) noexcept {
    return base_ + p * stride_words_;
  }

  /// The kernel-facing view (base, stride, words, tile geometry).
  kernels::PlaneSet view() const noexcept {
    kernels::PlaneSet ps;
    ps.base = base_;
    ps.planes = planes_;
    ps.stride_words = stride_words_;
    ps.words = words_;
    ps.tile_words = tile_words_;
    return ps;
  }

  /// Copies a BinVec's words into plane row p (dimensions must match).
  void store_plane(std::size_t p, const hv::BinVec& v) noexcept;
  /// Copies plane row p back out into a BinVec of the arena's dimension.
  void load_plane(std::size_t p, hv::BinVec& out) const noexcept;
  /// Copies the word range [word_begin, word_end) of `src`'s storage into
  /// the same range of plane row p — the one-tile republish primitive: a
  /// scrubber repair confined to one chunk moves only that chunk's words.
  void store_words(std::size_t p, std::size_t word_begin,
                   std::size_t word_end, const std::uint64_t* src) noexcept;

 private:
  void allocate(const PlaneArenaConfig& config);
  void release() noexcept;

  std::uint64_t* base_ = nullptr;
  std::size_t planes_ = 0;
  std::size_t dim_ = 0;
  std::size_t words_ = 0;
  std::size_t stride_words_ = 0;
  std::size_t tile_words_ = 0;
  std::size_t bytes_ = 0;
  bool hugepage_backed_ = false;
  bool mmapped_ = false;
};

}  // namespace robusthd::mem
