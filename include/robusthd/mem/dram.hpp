#pragma once
// DRAM refresh-relaxation model (Section 6.6, Figure 4b).
//
// DRAM cells leak; the standard 64 ms refresh rewrites every row before the
// weakest cells decay. Cell retention times follow a lognormal with a long
// tail of strong cells and a thin tail of weak ones, so stretching the
// refresh interval trades an exponentially growing bit-error rate against
// linearly shrinking refresh power. RobustHD's point: a binary HDC model
// rides far down that curve (4-6% BER) with negligible quality loss, while
// an int8 DNN cannot, so HDC converts refresh relaxation directly into
// energy savings with no ECC.

#include <cstddef>

namespace robusthd::mem {

/// Retention/power description of one DRAM device.
struct DramParams {
  double base_refresh_ms = 64.0;       ///< JEDEC interval, ~0 error
  /// Lognormal retention of cells: median retention (ms) and sigma. The
  /// defaults put BER(64 ms) ≈ 0 and reach single-digit-% BER in the
  /// hundreds of ms, matching published retention studies' shape.
  double retention_median_ms = 6000.0;
  double retention_sigma = 1.0;
  /// Fraction of total DRAM power spent on refresh at the base interval.
  double refresh_power_fraction = 0.30;

  static DramParams ddr4() { return DramParams{}; }
};

/// Bit error rate when refreshing every `interval_ms` (lognormal CDF of
/// retention at the interval).
double bit_error_rate(double interval_ms, const DramParams& params);

/// Refresh interval (ms) that yields the requested BER (inverse of
/// bit_error_rate).
double interval_for_error_rate(double ber, const DramParams& params);

/// Total-power multiplier relative to the base interval: refresh power
/// scales with refresh frequency, the rest is unchanged.
double relative_power(double interval_ms, const DramParams& params);

/// Energy-efficiency improvement of relaxing to `interval_ms`, as the
/// paper reports it: (P_base - P_relaxed) / P_base.
double energy_efficiency_gain(double interval_ms, const DramParams& params);

}  // namespace robusthd::mem
