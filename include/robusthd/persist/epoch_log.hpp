#pragma once
// EpochLog — the epoch-based write-ahead durability layer of
// robusthd::persist (the ROADMAP's "crash-consistent epoch persistence"
// item, shaped after Montage's EpochSys: mutations batch into epochs,
// and persistence is only ever claimed at epoch boundaries).
//
// On-disk layout of a persist directory:
//
//   base-<gen>.rhd2          atomic RHD2 checkpoint opening generation g
//   wal-<gen>-<seq>.log      append-only WAL segments extending that base
//
// A *generation* is one base checkpoint plus the segments that extend
// it. The log thread drains appended publications every epoch_period,
// writes them as CRC32C-framed records (wal.hpp), and commits the batch
// with an EpochClose record followed by one fsync — that close is the
// durability point; everything after the last close is discarded on
// replay. Segments rotate at segment_bytes; when a generation's WAL
// grows past compact_bytes the log folds its shadow model into a fresh
// base checkpoint and starts generation g+1 (replay time stays bounded).
// A hot reload rotates generations the same way, with the reloaded blob
// as the new base — queued deltas that targeted the pre-reload weights
// carry a model version <= the new base's and are discarded, never
// merged into the wrong model.
//
// The log maintains a *shadow* copy of every plane's words, advanced by
// exactly the deltas it writes; each EpochClose carries a CRC32C over
// the full shadow. Replay recomputes that CRC over the rebuilt model,
// which makes "recovery is bit-identical to the last closed epoch" a
// verified property end to end (the crash harness's central assertion).
//
// Threading: append_publication()/rotate_generation() are safe from any
// thread (in practice the scrub thread and reload callers); everything
// that touches the filesystem or the shadow runs on the single log
// thread. Filesystem failures on that thread cannot propagate to the
// appenders — the log trips a permanent failed flag (PersistCounters::
// io_errors), stops writing, and the server keeps serving undurably,
// mirroring the degradation ladder's "shed the feature, not the
// service" stance.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "robusthd/core/serialize.hpp"
#include "robusthd/model/recovery.hpp"
#include "robusthd/persist/wal.hpp"

namespace robusthd::persist {

/// Durability knobs (ServerConfig::persist). An empty dir disables the
/// whole layer — the server then runs exactly as before this subsystem.
struct PersistConfig {
  std::string dir;  ///< persist directory; empty == persistence off
  /// Epoch cadence: how often the log thread drains, writes and fsyncs.
  /// Work lost in a crash is bounded by one period.
  std::chrono::milliseconds epoch_period{25};
  std::size_t segment_bytes = 4u << 20;   ///< WAL segment rotation cap
  /// Generation WAL ceiling: past this, closed epochs are folded into a
  /// fresh base checkpoint (compaction) and the old generation deleted.
  std::size_t compact_bytes = 64u << 20;
};

/// Monotone counters surfaced into ServerStats.
struct PersistCounters {
  std::uint64_t epochs_closed = 0;
  std::uint64_t wal_bytes = 0;      ///< record bytes written, all gens
  std::uint64_t deltas_appended = 0;
  std::uint64_t stale_discards = 0; ///< deltas dropped at a rotation fence
  std::uint64_t rotations = 0;      ///< generation starts (reload/compact)
  std::uint64_t compactions = 0;
  std::uint64_t segments_opened = 0;
  std::uint64_t io_errors = 0;      ///< nonzero => log is dead, serving isn't
};

/// One rewritten word range, captured at publication time. `words` holds
/// the *content* (not a diff), so replaying any suffix-complete set of
/// closed epochs converges to the writer's shadow.
struct PlaneWrite {
  std::uint32_t cls = 0;
  std::uint32_t plane = 0;
  std::uint64_t word_begin = 0;
  std::vector<std::uint64_t> words;
};

/// File-name scheme shared with the replayer.
std::string base_file_name(std::uint64_t generation);
std::string segment_file_name(std::uint64_t generation, std::uint64_t seq);
bool parse_base_file_name(const std::string& name, std::uint64_t& generation);
bool parse_segment_file_name(const std::string& name,
                             std::uint64_t& generation, std::uint64_t& seq);

class EpochLog {
 public:
  /// Opens (creating if needed) the persist directory, writes `base_blob`
  /// as the base checkpoint of a fresh generation (one past the highest
  /// already on disk), seeds the shadow from it, opens segment 0 and
  /// starts the log thread. `base_version` is the snapshot version the
  /// base corresponds to: only deltas with a strictly greater version
  /// are accepted into this generation. Throws core::SerializeError /
  /// util::FsError when the directory or blob is unusable.
  EpochLog(PersistConfig config, std::vector<std::byte> base_blob,
           std::uint64_t base_version);
  ~EpochLog();

  EpochLog(const EpochLog&) = delete;
  EpochLog& operator=(const EpochLog&) = delete;

  /// Queues one snapshot publication: the rewritten ranges plus (when the
  /// publisher runs a recovery engine) its durable state. The whole
  /// publication is enqueued atomically, so a generation fence can never
  /// split it. Cheap for the caller — all I/O happens on the log thread.
  void append_publication(
      std::uint64_t model_version, std::vector<PlaneWrite> writes,
      std::optional<model::RecoveryEngineState> engine_state);

  /// Queues a generation rotation around `base_blob` (a hot reload): the
  /// current epoch is closed, the blob becomes base-<gen+1>.rhd2, and
  /// queued publications with model_version <= base_version are dropped.
  void rotate_generation(std::vector<std::byte> base_blob,
                         std::uint64_t base_version);

  /// Synchronous barrier: returns once everything appended before the
  /// call is on stable storage under a closed epoch (or the log has
  /// tripped its failed flag). Test/shutdown determinism.
  void close_epoch();

  /// Final drain + close, then joins the log thread. Idempotent; the
  /// destructor calls it.
  void stop();

  PersistCounters counters() const noexcept;
  std::uint64_t generation() const noexcept;

 private:
  struct Op {
    enum class Kind { kPublication, kRotate } kind = Kind::kPublication;
    std::uint64_t model_version = 0;  // publication
    std::vector<PlaneWrite> writes;
    std::optional<model::RecoveryEngineState> engine_state;
    std::vector<std::byte> base_blob;  // rotation
    std::uint64_t base_version = 0;
  };

  void thread_main();
  /// Writes a new base checkpoint + segment 0 of the next generation and
  /// re-seeds the shadow. Runs on the constructing thread once, then
  /// only on the log thread.
  void begin_generation(std::vector<std::byte> base_blob,
                        std::uint64_t base_version);
  void open_segment();
  void write_frames(std::span<const std::byte> frames);
  void close_epoch_on_thread();
  void maybe_rotate_segment();
  void maybe_compact();
  void apply_to_shadow(const PlaneWrite& write);
  std::uint32_t shadow_crc() const noexcept;
  void delete_older_generations();
  void fail_log() noexcept;

  PersistConfig config_;

  // Log-thread state (constructor-then-log-thread only).
  std::uint64_t generation_ = 0;
  std::uint64_t base_version_ = 0;
  std::uint64_t max_applied_version_ = 0;
  std::uint64_t segment_seq_ = 0;
  std::uint64_t record_seq_ = 0;
  std::uint64_t epoch_ = 0;
  std::size_t segment_bytes_written_ = 0;
  std::size_t generation_wal_bytes_ = 0;
  int segment_fd_ = -1;
  bool dirty_ = false;  ///< records written since the last close
  core::BlobInfo base_info_{};
  core::ModelMeta meta_{};
  std::size_t words_per_plane_ = 0;
  std::vector<std::uint64_t> shadow_;  ///< rows * wpp, class-major
  std::optional<model::RecoveryEngineState> last_engine_state_;

  std::atomic<std::uint64_t> generation_public_{0};

  mutable std::mutex mutex_;  ///< guards ops_ and the barrier counters
  std::condition_variable cv_;        ///< log thread waits here
  std::condition_variable barrier_cv_;///< close_epoch() waiters
  std::vector<Op> ops_;
  std::uint64_t barriers_requested_ = 0;
  std::uint64_t barriers_done_ = 0;
  bool stop_ = false;
  std::atomic<bool> failed_{false};

  // Counters (relaxed atomics; read from any thread).
  std::atomic<std::uint64_t> epochs_closed_{0};
  std::atomic<std::uint64_t> wal_bytes_{0};
  std::atomic<std::uint64_t> deltas_appended_{0};
  std::atomic<std::uint64_t> stale_discards_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> compactions_{0};
  std::atomic<std::uint64_t> segments_opened_{0};
  std::atomic<std::uint64_t> io_errors_{0};

  std::thread thread_;
  bool started_ = false;
};

}  // namespace robusthd::persist
