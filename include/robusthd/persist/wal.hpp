#pragma once
// WAL record framing — the byte-level grammar of robusthd::persist.
//
// A WAL segment is a flat sequence of CRC32C-framed records, written
// append-only and fsync'd at epoch boundaries (epoch_log.hpp owns the
// when; this header owns the what). The framing borrows the fleet wire
// protocol's discipline: a fixed little-endian header carrying its own
// CRC, a payload CRC checked before any payload byte is interpreted,
// and a hard payload bound checked *before* allocation — a torn tail,
// a flipped bit or a hostile length field all land in the same place:
// the reader stops cleanly at the first bad record and reports how far
// it got. Readers never throw on corrupt input; corruption is a normal
// return, because a torn tail is the *expected* state of the final
// segment after a kill-9.
//
// Record layout (all integers little-endian, memcpy in/out):
//
//   [RecordHeader: 32 bytes]
//     magic "RWL1" | type u16 | flags u16 | seq u64
//     payload_bytes u32 | payload_crc u32 | reserved u32
//     header_crc u32   (CRC32C over the preceding 28 bytes)
//   [payload: payload_bytes bytes, zero-padded to an 8-byte boundary]
//
// The pad keeps every record header (and the u64 words inside plane
// deltas) naturally aligned in an mmap'd or in-memory segment; decoders
// still memcpy, so alignment is a nicety, not a correctness dependence.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "robusthd/model/recovery.hpp"

namespace robusthd::persist {

inline constexpr std::uint32_t kWalMagic = 0x314C5752u;  // "RWL1" LE
inline constexpr std::size_t kRecordHeaderBytes = 32;
/// Hard payload bound, checked before any allocation. A full plane at
/// the serialization layer's kMaxDimension (64M bits) is 8 MiB; 16 MiB
/// leaves headroom for the record's own fields.
inline constexpr std::size_t kMaxRecordPayload = 16u << 20;

/// Record vocabulary. Every segment opens with a kBaseRef naming the
/// generation and base-checkpoint version it extends; kEpochClose is the
/// commit point — records after the last close in a segment are an
/// unterminated epoch and are discarded on replay.
enum class RecordType : std::uint16_t {
  kBaseRef = 1,        ///< {generation, base_version} — segment prologue
  kPlaneDelta = 2,     ///< rewritten word range of one class plane
  kRecoveryState = 3,  ///< RecoveryEngine durable counters
  kEpochClose = 4,     ///< commit: {epoch, state_crc over all plane words}
};

/// A decoded plane-range delta: words [word_begin, word_begin+n) of
/// plane `plane` of class `cls` were rewritten while snapshot version
/// `model_version` was current. Replay discards deltas whose version is
/// <= the generation's base version (they raced a reload rotation).
struct PlaneDelta {
  std::uint64_t model_version = 0;
  std::uint32_t cls = 0;
  std::uint32_t plane = 0;
  std::uint64_t word_begin = 0;
  std::vector<std::uint64_t> words;
};

/// Segment prologue: which base checkpoint this segment's deltas extend.
struct BaseRef {
  std::uint64_t generation = 0;
  std::uint64_t base_version = 0;
};

/// Epoch commit record. state_crc is CRC32C over *all* plane words of
/// the writer's shadow model (class-major, plane-minor, raw u64 bytes)
/// at close time — replay recomputes it over the rebuilt model, so "the
/// recovered model is bit-identical to the last closed epoch" is a
/// checked property, not an assumption.
struct EpochClose {
  std::uint64_t epoch = 0;
  std::uint32_t state_crc = 0;
};

/// Appends one framed record (header + payload + pad) to `out`.
void encode_record(std::vector<std::byte>& out, RecordType type,
                   std::uint64_t seq, std::span<const std::byte> payload);

/// Payload codecs. Encoders append to a scratch vector; decoders return
/// nullopt on any malformed payload (short, inconsistent counts) and
/// never throw past a bad record.
void encode_base_ref(std::vector<std::byte>& out, const BaseRef& ref);
void encode_plane_delta(std::vector<std::byte>& out, const PlaneDelta& delta);
void encode_recovery_state(std::vector<std::byte>& out,
                           const model::RecoveryEngineState& state);
void encode_epoch_close(std::vector<std::byte>& out, const EpochClose& close);

std::optional<BaseRef> decode_base_ref(std::span<const std::byte> payload);
std::optional<PlaneDelta> decode_plane_delta(
    std::span<const std::byte> payload);
std::optional<model::RecoveryEngineState> decode_recovery_state(
    std::span<const std::byte> payload);
std::optional<EpochClose> decode_epoch_close(
    std::span<const std::byte> payload);

/// One record as the reader hands it out: the payload span aliases the
/// segment buffer (valid while the buffer lives).
struct RecordView {
  RecordType type = RecordType::kBaseRef;
  std::uint64_t seq = 0;
  std::span<const std::byte> payload;
};

/// Forward scanner over one segment's bytes. next() yields records until
/// the end of the buffer or the first bad frame — truncated header,
/// wrong magic, over-bound length, or either CRC failing — and then
/// returns false forever. Nothing here throws: a torn tail is a normal
/// outcome, reported through torn().
class SegmentReader {
 public:
  explicit SegmentReader(std::span<const std::byte> segment) noexcept
      : data_(segment) {}

  /// Advances to the next record. False at a clean end or a tear.
  bool next(RecordView& out) noexcept;

  /// Bytes consumed by fully verified records.
  std::size_t offset() const noexcept { return offset_; }
  /// True once a bad frame stopped the scan (bytes remained past the
  /// last good record, but they do not parse as one).
  bool torn() const noexcept { return torn_; }

 private:
  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
  bool torn_ = false;
  bool done_ = false;
};

}  // namespace robusthd::persist
