#pragma once
// Crash recovery: rebuild a serving model from a persist directory.
//
// recover_dir() is the read half of the EpochLog contract:
//   1. pick the highest generation whose base checkpoint validates
//      (bases are written atomically, so normally the highest, full
//      stop — earlier generations are a defence against a base that was
//      corrupted *after* being written, e.g. by the storage itself);
//   2. replay its WAL segments in sequence order, committing records
//      only at EpochClose boundaries — a torn tail (the expected state
//      of the final segment after a kill-9) and everything after the
//      last close are discarded, never partially applied;
//   3. verify the rebuilt model's CRC32C against the state_crc the
//      writer recorded at its last epoch close — "bit-identical to the
//      last closed epoch" as a checked result, not a hope.
//
// Nothing in replay throws on corrupt WAL bytes: bad frames end the scan
// (SegmentReader) and malformed-but-CRC-valid payloads end it defensively
// (ReplayStats::discarded_records says how much was dropped). Only an
// unusable *directory* — no loadable base at all — is an error, reported
// as a nullopt rather than an exception so "nothing to recover" and
// "recovered" are both ordinary control flow.

#include <cstdint>
#include <optional>
#include <string>

#include "robusthd/core/serialize.hpp"
#include "robusthd/model/hdc_model.hpp"
#include "robusthd/model/recovery.hpp"

namespace robusthd::persist {

/// What replay saw, surfaced into ServerStats and the CLI.
struct ReplayStats {
  std::uint64_t segments = 0;         ///< WAL segments opened
  std::uint64_t replay_records = 0;   ///< records committed (closed epochs)
  std::uint64_t epochs_applied = 0;
  std::uint64_t discarded_records = 0;///< torn tail + unterminated epoch
  std::uint64_t wal_bytes = 0;        ///< segment bytes scanned
  bool torn_tail = false;             ///< a segment ended mid-record
  /// Replayed model CRC == last EpochClose's state_crc. True when no
  /// epoch closed (the base alone is trivially consistent).
  bool state_crc_ok = true;
};

/// A recovered serving state.
struct Recovered {
  model::HdcModel model;
  core::BlobInfo base_info{};
  std::uint64_t generation = 0;
  /// Snapshot version the recovered state corresponds to (the highest
  /// version folded in; new deltas must be fenced above it).
  std::uint64_t model_version = 0;
  std::optional<model::RecoveryEngineState> engine_state;
  ReplayStats stats;
};

/// True when `dir` holds at least one base checkpoint file (no
/// validation — existence only, the cheap "should I recover?" probe).
bool has_state(const std::string& dir);

/// Replays `dir` as described above. nullopt when no generation has a
/// loadable base checkpoint. Filesystem errors on the directory itself
/// propagate as util::FsError.
std::optional<Recovered> recover_dir(const std::string& dir);

}  // namespace robusthd::persist
